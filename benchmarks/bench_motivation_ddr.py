"""Section 2.2 motivation quantified: DDR row-hit harvesting vs the MAC.

The paper's argument chain: (a) conventional DDR controllers aggregate
at the device via row-buffer-hit harvesting (FR-FCFS); (b) irregular
traffic starves that mechanism; (c) the HMC's closed-page policy removes
it entirely; hence (d) aggregation must move to the processor side —
the MAC.  This bench measures (b) directly: the row-hit rate an FR-FCFS
DDR4 channel extracts from each benchmark's raw access stream, against
the same stream's MAC coalescing efficiency.
"""

import statistics

from repro.ddr.device import DDRDevice
from repro.eval.report import format_table, pct
from repro.eval.runner import cached_trace, dispatch
from repro.workloads.registry import benchmark_names

from conftest import attach, run_figure


def test_motivation_ddr_vs_mac(benchmark):
    def run():
        out = {}
        for name in benchmark_names():
            raw = dispatch(name, "raw", threads=4, ops_per_thread=1000)
            dev = DDRDevice()
            for i, pkt in enumerate(raw.packets):
                dev.submit(pkt, i)
            dev.run()
            mac = dispatch(name, "mac", threads=4, ops_per_thread=1000)
            out[name] = (dev.row_hit_rate, mac.stats.coalescing_efficiency)
        return out

    table = run_figure(benchmark, run, "Motivation: DDR vs MAC")
    print()
    print(
        format_table(
            ["benchmark", "DDR row-hit rate", "MAC efficiency"],
            [[k, pct(h), pct(e)] for k, (h, e) in table.items()],
            title="Section 2.2: device-side harvesting vs processor-side "
            "coalescing",
        )
    )
    hits = [h for h, _ in table.values()]
    effs = [e for _, e in table.values()]
    attach(
        benchmark,
        avg_ddr_row_hit=statistics.mean(hits),
        avg_mac_eff=statistics.mean(effs),
    )
    # The MAC recovers more aggregation than FR-FCFS harvests on the
    # irregular suite (and harvesting is *unavailable* on closed-page HMC).
    assert statistics.mean(effs) > statistics.mean(hits)
