"""Figure 1 — cache miss-rate analysis.

Paper: (left) the 12 benchmarks average 49.09 % LLC-to-memory miss rate,
SG and HPCG above 50 %; (right) sequential ``A[i]=B[i]`` stays <= 2.36 %
while random ``A[i]=B[C[i]]`` grows from 3.12 % to 63.85 % as the
dataset sweeps 80 KB -> 32 GB.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table, pct

from conftest import attach, run_figure


def test_fig1_left_benchmark_missrates(benchmark):
    rates = run_figure(
        benchmark, lambda: E.fig1_benchmark_missrates(), "Fig. 1 (left)"
    )
    avg = statistics.mean(rates.values())
    print()
    print(
        format_table(
            ["benchmark", "miss rate"],
            [[k, pct(v)] for k, v in rates.items()],
            title="Fig. 1 (left): miss rate per benchmark (paper avg 49.09%)",
        )
    )
    print(f"measured average: {pct(avg)}")
    attach(benchmark, measured_avg=avg, paper_avg=0.4909)
    assert 0.15 < avg < 0.75
    # SG tops the chart, as in the paper.
    assert rates["SG"] == max(rates.values())


def test_fig1_right_seq_vs_random(benchmark):
    sweep = run_figure(benchmark, lambda: E.fig1_seq_vs_random(), "Fig. 1 (right)")
    rows = [
        [f"{size:,}", pct(seq), pct(rnd)] for size, (seq, rnd) in sweep.items()
    ]
    print()
    print(
        format_table(
            ["dataset (B)", "sequential", "random"],
            rows,
            title="Fig. 1 (right): seq vs random miss rate "
            "(paper: seq <= 2.36%, random 3.12% -> 63.85%)",
        )
    )
    seqs = [s for s, _ in sweep.values()]
    rands = [r for _, r in sweep.values()]
    attach(
        benchmark,
        seq_final=seqs[-1],
        random_first=rands[0],
        random_final=rands[-1],
        paper_random_final=0.6385,
    )
    assert max(seqs) < 0.05
    assert rands[-1] > 5 * rands[0]
