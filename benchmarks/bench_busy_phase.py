"""Busy-phase wall time — per-component event wheel + vectorized kernels.

The original skip engine only won when the *whole node* was quiescent:
one busy component (a core in an issue cooldown, an ARQ entry waiting
out its window, a bank mid-access) pinned every other component to
lockstep.  The per-component event wheel parks blocked cores on their
own wake heap and lets the node prove quiescence in O(1), so the dense
"busy phase" the MAC paper actually targets — vaults saturated with
coalesced FLIT traffic, deep bank conflicts serializing on tRC — now
skips the dead cycles *between* memory events instead of ticking
through them.

Two shapes:

``bank_conflict``
    Every core hammers distinct DRAM rows of one (vault, bank), so the
    bank's row cycle serializes everything: the bank is busy every
    cycle (bandwidth-bound at the bank) while the rest of the node
    waits tens of cycles between completions.  This is the regime the
    wheel targets; the acceptance gate demands >= 5x here.

``saturated_vaults``
    Deep-LSQ cores spraying random rows keep the MAC and all vaults
    busy with real work nearly every cycle; there is little to skip
    and the engine must not cost more than a few percent.

Both runs assert bit-identical results (cycles + full metrics) before
any timing is recorded; the artifact feeds scripts/bench_compare.py.
"""

import random
import time

from repro.core.request import MemoryRequest, RequestType
from repro.eval.report import format_table
from repro.hmc.config import HMCConfig
from repro.node.node import Node

from conftest import attach, run_figure


def _conflict_rows(count, vault=0, bank=0):
    """Row-aligned addresses that all map to one (vault, bank)."""
    cfg = HMCConfig()
    rows = []
    row = 0
    while len(rows) < count:
        addr = row << cfg.row_offset_bits
        if cfg.vault_of(addr) == vault and cfg.bank_of(addr) == bank:
            rows.append(addr)
        row += 1
    return rows


def _conflict_streams(cores, ops):
    rows = _conflict_rows(cores * ops)
    return [
        iter(
            [
                MemoryRequest(
                    addr=rows[c * ops + i] | ((i % 16) << 4),
                    rtype=RequestType.LOAD if i % 4 else RequestType.STORE,
                    tid=c,
                    tag=i,
                    core=c,
                )
                for i in range(ops)
            ]
        )
        for c in range(cores)
    ]


def _random_streams(cores, ops, rows):
    out = []
    for c in range(cores):
        rng = random.Random(c * 7 + 1)
        out.append(
            iter(
                [
                    MemoryRequest(
                        addr=(rng.randrange(rows) << 8)
                        | (rng.randrange(16) << 4),
                        rtype=RequestType.LOAD if i % 4 else RequestType.STORE,
                        tid=c,
                        tag=i,
                        core=c,
                    )
                    for i in range(ops)
                ]
            )
        )
    return out


SHAPES = {
    "bank_conflict": lambda: Node(_conflict_streams(8, 600)),
    "saturated_vaults": lambda: Node(_random_streams(8, 1500, 256)),
}


def _timed_run(engine, build, rounds=2):
    """Best-of-N wall time (first pass pays interpreter warmup)."""
    best = float("inf")
    for _ in range(rounds):
        node = build()
        t0 = time.perf_counter()
        node.run(engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best, node


def test_busy_phase(benchmark):
    def run():
        out = {}
        for label, build in SHAPES.items():
            t_lock, lock = _timed_run("lockstep", build)
            t_skip, skip = _timed_run("skip", build)
            # Equivalence first: a fast wrong answer is worthless.
            assert skip.cycle == lock.cycle, label
            assert skip.metrics() == lock.metrics(), label
            out[label] = {
                "lockstep_s": t_lock,
                "skip_s": t_skip,
                "speedup": t_lock / t_skip,
                "cycles": lock.stats.cycles,
            }
        return out

    out = run_figure(benchmark, run, "busy phase: per-component event wheel")
    for label, row in out.items():
        attach(
            benchmark,
            **{
                f"{label}_lockstep_s": row["lockstep_s"],
                f"{label}_skip_s": row["skip_s"],
                f"{label}_speedup": row["speedup"],
            },
        )
    print()
    print(
        format_table(
            ["workload", "cycles", "lockstep (s)", "skip (s)", "speedup"],
            [
                [
                    label,
                    row["cycles"],
                    round(row["lockstep_s"], 3),
                    round(row["skip_s"], 3),
                    f"{row['speedup']:.2f}x",
                ]
                for label, row in out.items()
            ],
            title="identical results, wall-clock only",
        )
    )
    # Acceptance: >=5x where the wheel matters; no pathological cost
    # where it cannot win (the saturated shape hovers around 1.0x with
    # ~15% wall-clock noise on loaded CI runners, hence the 0.85 floor).
    assert out["bank_conflict"]["speedup"] >= 5.0
    assert out["saturated_vaults"]["speedup"] >= 0.85
