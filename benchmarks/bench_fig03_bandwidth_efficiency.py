"""Figure 3 — analytic bandwidth efficiency/overhead vs request size.

Paper: efficiency climbs 33.33 % -> 88.89 % and overhead falls 66.66 %
-> 11.11 % as the request grows 16 B -> 256 B (a 2.67x improvement).
"""

import pytest

from repro.eval import experiments as E
from repro.eval.report import format_table, pct

from conftest import attach, run_figure


def test_fig3_bandwidth_efficiency(benchmark):
    table = run_figure(benchmark, E.fig3_bandwidth_efficiency, "Fig. 3")
    print()
    print(
        format_table(
            ["request size (B)", "efficiency", "overhead"],
            [[s, pct(e), pct(o)] for s, (e, o) in sorted(table.items())],
            title="Fig. 3: bandwidth efficiency vs request size",
        )
    )
    eff16, _ = table[16]
    eff256, _ = table[256]
    attach(benchmark, eff_16B=eff16, eff_256B=eff256, improvement=eff256 / eff16)
    assert eff16 == pytest.approx(1 / 3)
    assert eff256 == pytest.approx(8 / 9)
    assert eff256 / eff16 == pytest.approx(2.67, abs=0.01)
