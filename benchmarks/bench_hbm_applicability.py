"""Section 4.3 — MAC applicability to HBM.

The paper claims the MAC transfers to HBM by widening the FLIT map and
table (1 KB rows, 64 FLITs) and swapping the packet protocol for burst
trains, "without modifying any of the associated coalescing design and
logic".  This bench runs the full suite against both stacks with the
appropriately parameterized MAC and compares activation/conflict
reductions.
"""

import statistics

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.packet import CoalescedRequest
from repro.core.stats import MACStats
from repro.eval.report import format_table, pct
from repro.eval.runner import cached_trace
from repro.hbm.device import HBMDevice
from repro.trace.record import to_requests
from repro.workloads.registry import benchmark_names

from conftest import attach, run_figure

HBM_MAC = dict(row_bytes=1024, max_request_bytes=1024)


def test_hbm_applicability(benchmark):
    def run():
        out = {}
        for name in benchmark_names():
            trace = cached_trace(name, 4, 1000)
            requests = list(to_requests(trace))
            st = MACStats()
            pkts = coalesce_trace_fast(requests, MACConfig(**HBM_MAC), stats=st)

            raw_dev, mac_dev = HBMDevice(), HBMDevice()
            for i, r in enumerate(requests):
                if not r.is_fence:
                    raw_dev.submit(
                        CoalescedRequest(addr=r.addr & ~15, size=16, rtype=r.rtype), i
                    )
            t = 0
            for p in pkts:
                mac_dev.submit(p, t)
                t += 2
            out[name] = (
                st.coalescing_efficiency,
                raw_dev.stats.activations,
                mac_dev.stats.activations,
                raw_dev.bank_conflicts,
                mac_dev.bank_conflicts,
            )
        return out

    table = run_figure(benchmark, run, "Section 4.3: MAC on HBM")
    rows = [
        [name, pct(eff), ra, ma, rc, mc]
        for name, (eff, ra, ma, rc, mc) in table.items()
    ]
    print()
    print(
        format_table(
            [
                "benchmark",
                "efficiency (1 KB rows)",
                "raw ACTs",
                "MAC ACTs",
                "raw conflicts",
                "MAC conflicts",
            ],
            rows,
            title="MAC on HBM (section 4.3)",
        )
    )
    effs = [v[0] for v in table.values()]
    attach(benchmark, avg_hbm_efficiency=statistics.mean(effs))
    for name, (eff, ra, ma, rc, mc) in table.items():
        assert ma < ra, name  # fewer activations everywhere
        assert mc <= rc, name
    # 1 KB rows coalesce at least as well as 256 B rows on average.
    assert statistics.mean(effs) > 0.45
