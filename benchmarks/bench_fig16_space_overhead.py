"""Figure 16 — MAC space overhead vs ARQ entry count.

Paper: the ARQ grows 512 B -> 16 KB over 8 -> 256 entries; the full
32-entry MAC occupies 2062 B of storage plus 32 comparators and 4 OR
gates — comparable to a 32-line fully associative cache.
"""

import pytest

from repro.core.config import MACConfig
from repro.eval import experiments as E
from repro.eval.area import mac_area
from repro.eval.report import format_table, human_bytes

from conftest import attach, run_figure


def test_fig16_space_overhead(benchmark):
    table = run_figure(benchmark, lambda: E.fig16_space_overhead(), "Fig. 16")
    print()
    print(
        format_table(
            ["ARQ entries", "ARQ bytes"],
            [[n, human_bytes(b)] for n, b in sorted(table.items())],
            title="Fig. 16: ARQ storage (paper 512 B -> 16 KB)",
        )
    )
    report = mac_area(MACConfig())
    print(
        f"total MAC @32 entries: {report.total_bytes} B, "
        f"{report.comparators} comparators, {report.or_gates} OR gates"
    )
    attach(benchmark, total_bytes=report.total_bytes, paper_total=2062)
    assert table[8] == 512
    assert table[256] == 16 << 10
    assert report.total_bytes == 2062
