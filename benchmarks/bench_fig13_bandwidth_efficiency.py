"""Figure 13 — bandwidth efficiency of coalesced vs raw traffic.

Paper: coalesced accesses average 70.35 % bandwidth efficiency against
the 33.33 % of raw 16 B requests — control overhead drops from 66.67 %
to 29.65 %.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table, pct

from conftest import attach, run_figure


def test_fig13_bandwidth_efficiency(benchmark):
    table = run_figure(benchmark, lambda: E.fig13_bandwidth_efficiency(), "Fig. 13")
    print()
    print(
        format_table(
            ["benchmark", "coalesced eff", "raw eff"],
            [[k, pct(v), pct(1 / 3)] for k, v in table.items()],
            title="Fig. 13: bandwidth efficiency (paper avg 70.35% vs 33.33%)",
        )
    )
    avg = statistics.mean(table.values())
    print(f"measured average: {pct(avg)}")
    attach(benchmark, measured_avg=avg, paper_avg=0.7035)
    # Every benchmark beats the raw baseline...
    assert all(v > 1 / 3 for v in table.values())
    # ...and the suite average lands in the paper's regime (~2x raw).
    assert 0.55 < avg < 0.85
