"""Validation — executed programs vs synthetic generators.

DESIGN.md substitution 1 replaces compiled benchmarks with synthetic
access-pattern generators.  This bench validates the substitution where
both forms exist: kernels *executed* on the mini-ISA machine (real
programs, real data dependences) must coalesce like their synthetic
counterparts.

====================  ==========================  =====================
executed kernel       synthetic counterpart       expected relation
====================  ==========================  =====================
vector copy (SPM)     SG-SEQ                      both ~0.875
gather (big table)    SG's cold-gather component  both low
GUPS                  IS histogram core           both lowest
stencil (SPM pencil)  MG fine sweeps              both high
====================  ==========================  =====================
"""

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.eval.report import format_table, pct
from repro.isa.kernels import run_gather, run_gups, run_stencil, run_vector_copy
from repro.trace.record import to_requests
from repro.workloads.registry import make

from conftest import attach, run_figure


def eff_of(trace):
    st = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
    return st.coalescing_efficiency


def test_validation_executed_vs_synthetic(benchmark):
    def run():
        executed = {
            "copy": eff_of(run_vector_copy(elements=256).trace),
            "gather": eff_of(run_gather(count=256).trace),
            "gups": eff_of(run_gups(updates=256).trace),
            "stencil": eff_of(run_stencil(elements=256).trace),
        }
        synthetic = {
            "copy": eff_of(
                make("SG-SEQ").generate(threads=1, ops_per_thread=800)
            ),
            "gups": eff_of(make("IS").generate(threads=1, ops_per_thread=800)),
            "stencil": eff_of(make("MG").generate(threads=1, ops_per_thread=800)),
        }
        return executed, synthetic

    executed, synthetic = run_figure(benchmark, run, "Validation: ISA vs synthetic")
    print()
    rows = [
        ["copy / SG-SEQ", pct(executed["copy"]), pct(synthetic["copy"])],
        ["stencil / MG", pct(executed["stencil"]), pct(synthetic["stencil"])],
        ["gups / IS", pct(executed["gups"]), pct(synthetic["gups"])],
        ["gather / (cold)", pct(executed["gather"]), "-"],
    ]
    print(
        format_table(
            ["pattern", "executed kernel", "synthetic generator"],
            rows,
            title="Substitution validation: real execution vs generators",
        )
    )
    attach(benchmark, **{f"exec_{k}": v for k, v in executed.items()})

    # Streaming kernels agree closely with their generators...
    assert abs(executed["copy"] - synthetic["copy"]) < 0.1
    # ...and the qualitative ordering is identical in both worlds.
    assert executed["stencil"] > executed["gather"] > executed["gups"] - 0.05
    assert synthetic["stencil"] > synthetic["gups"]
    # GUPS and IS both live at the bottom of their respective worlds.
    # (Single-threaded synthetic IS keeps its sequential key stream
    # window-resident, so its floor sits higher than raw GUPS.)
    assert executed["gups"] < 0.2 and synthetic["gups"] < 0.45
