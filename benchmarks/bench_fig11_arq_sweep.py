"""Figure 11 — impact of ARQ entry count on coalescing efficiency.

Paper: suite-average efficiency climbs 37.58 % -> 56.04 % as entries go
8 -> 256, with diminishing relative gains of +22.11 / +15.72 / +5.53 %
at 16 / 32 / 64 entries — making 32 the sweet spot the paper picks.
"""

from repro.eval import experiments as E
from repro.eval.report import format_table, pct

from conftest import attach, run_figure


def test_fig11_arq_sweep(benchmark):
    sweep = run_figure(benchmark, lambda: E.fig11_arq_sweep(), "Fig. 11")
    entries = sorted(sweep)
    print()
    print(
        format_table(
            ["ARQ entries", "avg efficiency"],
            [[n, pct(sweep[n])] for n in entries],
            title="Fig. 11: ARQ sweep (paper 37.58% -> 56.04%)",
        )
    )
    gains = {
        b: sweep[b] / sweep[a] - 1 for a, b in zip(entries, entries[1:])
    }
    print("relative gains:", {k: pct(v) for k, v in gains.items()})
    attach(
        benchmark,
        eff_8=sweep[8],
        eff_32=sweep[32],
        eff_256=sweep[256],
        paper_eff_8=0.3758,
        paper_eff_256=0.5604,
    )
    # Monotone growth from the paper's starting level...
    assert abs(sweep[8] - 0.3758) < 0.08
    for a, b in zip(entries, entries[1:]):
        assert sweep[b] > sweep[a]
    # ...with diminishing returns: 8->16 gains more than 32->64.
    assert gains[16] > gains[64]
