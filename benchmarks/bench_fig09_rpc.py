"""Figure 9 — raw requests per cycle offered to the MAC (Eq. 2).

Paper: every benchmark offers more than 2 raw requests/cycle; the suite
averages up to 9.32 with 8 cores at 3.3 GHz.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table

from conftest import attach, run_figure


def test_fig9_requests_per_cycle(benchmark):
    rpc = run_figure(benchmark, E.fig9_requests_per_cycle, "Fig. 9")
    print()
    print(
        format_table(
            ["benchmark", "RPC"],
            [[k, v] for k, v in rpc.items()],
            title="Fig. 9: raw requests per cycle (paper: all > 2, avg ~9.32)",
        )
    )
    avg = statistics.mean(rpc.values())
    print(f"measured average: {avg:.2f}")
    attach(benchmark, measured_avg=avg, paper_avg=9.32, min_rpc=min(rpc.values()))
    assert all(v > 2 for v in rpc.values())
    assert abs(avg - 9.32) < 1.0
