"""Figure 17 — memory-system speedup of MAC vs raw dispatch.

Paper: replaying each transaction stream through HMCSim with and
without MAC reduces memory-system latency by 60.73 % on average, with
MG, GRAPPOLO, SG and SPARSELU above 70 %.

We report two readings of "latency" (the paper does not pin one down):
stream makespan (includes the MAC's 0.5 packet/cycle issue pacing) and
mean per-transaction latency.  The paper's 60.73 % lands between our
two averages; see EXPERIMENTS.md.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table, pct

from conftest import attach, run_figure

PAPER_WINNERS = ("MG", "GRAPPOLO", "SG", "SPARSELU")


def test_fig17_speedup(benchmark):
    table = run_figure(benchmark, lambda: E.fig17_speedup(), "Fig. 17")
    rows = [
        [name, pct(v["makespan_speedup"]), pct(v["latency_speedup"])]
        for name, v in table.items()
    ]
    print()
    print(
        format_table(
            ["benchmark", "makespan speedup", "latency speedup"],
            rows,
            title="Fig. 17: memory-system speedup (paper avg 60.73%)",
        )
    )
    avg_mk = statistics.mean(v["makespan_speedup"] for v in table.values())
    avg_lat = statistics.mean(v["latency_speedup"] for v in table.values())
    print(f"averages: makespan {pct(avg_mk)}, latency {pct(avg_lat)}")
    attach(
        benchmark,
        avg_makespan_speedup=avg_mk,
        avg_latency_speedup=avg_lat,
        paper_avg=0.6073,
    )
    # The paper's average falls inside our two readings.
    assert avg_mk - 0.05 <= 0.6073 <= avg_lat + 0.05
    # The paper's named winners all gain strongly on both readings.
    for name in PAPER_WINNERS:
        assert table[name]["makespan_speedup"] > 0.4, name
        assert table[name]["latency_speedup"] > 0.6, name
