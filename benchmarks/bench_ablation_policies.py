"""Ablations beyond the paper's figures.

1. Section 2.3.2's strawman quantified: always-256 B packets maximize
   the Eq. 1 metric while wasting most of the transferred data — the
   argument for the adaptive FLIT table.
2. FLIT-table policy comparison (SPAN vs POPCOUNT vs EXACT): how much
   overfetch the paper's single-packet table trades for packet count.
3. Latency-hiding bypass on/off under the cycle engine.
"""

import statistics

from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.eval import experiments as E
from repro.eval.report import format_table, pct
from repro.eval.runner import dispatch
from repro.baselines.fixed import useful_data_fraction
from repro.workloads.registry import benchmark_names

from conftest import attach, run_figure


def test_ablation_fixed_256_strawman(benchmark):
    table = run_figure(
        benchmark, lambda: E.ablation_fixed_256(), "Ablation: fixed 256 B"
    )
    rows = [
        [
            name,
            pct(row["fixed_bandwidth_eff"]),
            pct(row["fixed_useful_fraction"]),
            pct(row["mac_bandwidth_eff"]),
            pct(row["mac_useful_fraction"]),
        ]
        for name, row in table.items()
    ]
    print()
    print(
        format_table(
            ["benchmark", "256B eff", "256B useful", "MAC eff", "MAC useful"],
            rows,
            title="Section 2.3.2 strawman: fixed 256 B vs adaptive MAC",
        )
    )
    avg_fixed_useful = statistics.mean(
        r["fixed_useful_fraction"] for r in table.values()
    )
    avg_mac_useful = statistics.mean(r["mac_useful_fraction"] for r in table.values())
    attach(benchmark, fixed_useful=avg_fixed_useful, mac_useful=avg_mac_useful)
    assert avg_mac_useful > avg_fixed_useful


def test_ablation_flit_table_policies(benchmark):
    def run():
        out = {}
        for policy in FlitTablePolicy:
            effs, usefuls, pkts = [], [], 0
            for name in benchmark_names():
                res = dispatch(name, "mac", flit_policy=policy)
                effs.append(res.stats.coalescing_efficiency)
                usefuls.append(useful_data_fraction(res.packets))
                pkts += len(res.packets)
            out[policy.value] = (
                statistics.mean(effs),
                statistics.mean(usefuls),
                pkts,
            )
        return out

    table = run_figure(benchmark, run, "Ablation: FLIT-table policy")
    print()
    print(
        format_table(
            ["policy", "avg efficiency", "avg useful fraction", "packets"],
            [[k, pct(e), pct(u), p] for k, (e, u, p) in table.items()],
            title="FLIT-table policy ablation",
        )
    )
    attach(benchmark, **{f"useful_{k}": v[1] for k, v in table.items()})
    # EXACT never overfetches; SPAN (the paper's) trades some usefulness
    # for a single packet per row.
    assert table["exact"][1] >= table["span"][1]
    # EXACT splits sparse rows -> at least as many packets as SPAN.
    assert table["exact"][2] >= table["span"][2]


def test_ablation_latency_hiding(benchmark):
    def run():
        from repro.core.mac import MAC
        from repro.trace.record import to_requests
        from repro.eval.runner import cached_trace

        out = {}
        for lh in (True, False):
            cfg = MACConfig(latency_hiding=lh)
            effs = []
            for name in ("SG", "MG", "IS"):
                mac = MAC(cfg)
                mac.process(list(to_requests(cached_trace(name, 4, 1000))))
                effs.append(mac.stats.coalescing_efficiency)
            out[lh] = statistics.mean(effs)
        return out

    table = run_figure(benchmark, run, "Ablation: latency hiding")
    print()
    print(
        format_table(
            ["latency hiding", "avg efficiency (cycle engine)"],
            [[k, pct(v)] for k, v in table.items()],
            title="Latency-hiding bypass ablation",
        )
    )
    attach(benchmark, with_lh=table[True], without_lh=table[False])
    # The bypass burst trades a little efficiency for fill throughput.
    assert table[False] >= table[True] - 0.02
