"""Fault sweep — link bandwidth efficiency vs FLIT error rate.

Replays one irregular trace through the HMC model under increasing
per-FLIT error rates, for three dispatch schemes: the MAC, direct 16 B
dispatch (paper's "without MAC") and the fixed-256 B strawman.  Every
CRC failure costs a replay, so delivered-payload efficiency falls as
the error rate rises; coalesced packets carry more FLITs per CRC and so
present a bigger corruption cross-section, while the fixed baseline
additionally wastes wire FLITs on data nobody asked for.

Efficiency here is useful payload bytes delivered per wire byte
serialized (replays included), the fault-domain analogue of Fig. 13.
"""

from repro.baselines.direct import dispatch_raw
from repro.baselines.fixed import dispatch_fixed, useful_data_fraction
from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.eval.parallel import run_tasks
from repro.eval.report import format_table, pct
from repro.faults import FaultConfig
from repro.hmc.config import HMCConfig
from repro.seeding import DEFAULT_SEED
from repro.trace.record import to_requests
from repro.workloads.registry import make

from conftest import attach, run_figure

ERROR_RATES = (0.0, 1e-4, 1e-3, 5e-3, 2e-2)
SCHEMES = ("MAC", "direct", "fixed")


def _schemes():
    records = make("sg", seed=DEFAULT_SEED).generate(threads=4, ops_per_thread=300)
    requests = list(to_requests(records))
    cfg = MACConfig()
    mac = coalesce_trace_fast(
        list(requests), cfg, FlitTablePolicy.SPAN, MACStats()
    )
    direct = dispatch_raw(list(requests), cfg, MACStats())
    fixed = dispatch_fixed(list(requests), cfg, MACStats())
    return {
        "MAC": (mac, 1.0),
        "direct": (direct, 1.0),
        # Fixed-256 B payloads are mostly padding; scale by the fraction
        # of each packet anybody actually requested.
        "fixed": (fixed, useful_data_fraction(fixed)),
    }


#: Per-worker memo of the packet streams: the trace and all three
#: dispatches are rebuilt at most once per pool worker.
_SCHEME_CACHE = {}


def _packets(scheme):
    if not _SCHEME_CACHE:
        _SCHEME_CACHE.update(_schemes())
    return _SCHEME_CACHE[scheme]


def _efficiency(packets, useful_fraction, ber):
    # Every cell's fault stream is fixed by its descriptor alone (root
    # seed + its own BER), never by scheduling: the same seed serves all
    # schemes and rates for a like-for-like comparison, exactly as in
    # the serial sweep.
    faults = FaultConfig.simple(flit_ber=ber, seed=DEFAULT_SEED, retry_limit=64)
    from repro.hmc.device import HMCDevice

    dev = HMCDevice(HMCConfig(faults=faults))
    t = 0
    for p in packets:
        dev.submit(p, t)
        t += 1
    # Count what actually crossed the links (replays included), not the
    # nominal per-packet FLITs of the device stats.
    wire_bytes = 16 * sum(link.wire_flits for link in dev.links)
    return (dev.stats.payload_bytes * useful_fraction) / wire_bytes


def _sweep_cell(task):
    scheme, ber = task
    packets, frac = _packets(scheme)
    return scheme, ber, _efficiency(packets, frac, ber)


def _sweep(jobs=1):
    tasks = [(scheme, ber) for scheme in SCHEMES for ber in ERROR_RATES]
    table = {scheme: {} for scheme in SCHEMES}
    for scheme, ber, eff in run_tasks(_sweep_cell, tasks, jobs=jobs):
        table[scheme][ber] = eff
    return table


def test_fault_sweep_bandwidth_efficiency(benchmark, eval_jobs):
    table = run_figure(
        benchmark,
        lambda: _sweep(jobs=eval_jobs),
        "Fault sweep: efficiency vs FLIT error rate",
    )
    print()
    print(
        format_table(
            ["FLIT BER"] + list(table),
            [
                [f"{ber:g}"] + [pct(table[s][ber]) for s in table]
                for ber in ERROR_RATES
            ],
            title="link bandwidth efficiency under FLIT errors",
        )
    )
    for scheme, row in table.items():
        attach(benchmark, **{f"{scheme}_clean": row[0.0], f"{scheme}_worst": row[ERROR_RATES[-1]]})

    mac, direct, fixed = table["MAC"], table["direct"], table["fixed"]
    # Fault-free ordering is the Fig. 13 story: MAC beats raw dispatch,
    # and both beat the padded fixed-256 B strawman's useful efficiency.
    assert mac[0.0] > direct[0.0] > fixed[0.0]
    # Errors only ever cost bandwidth: efficiency is non-increasing in
    # the error rate for every scheme.
    for row in table.values():
        effs = [row[ber] for ber in ERROR_RATES]
        assert all(a >= b for a, b in zip(effs, effs[1:]))
    # And at 2e-2 per FLIT the replays are visible, not lost in noise.
    assert mac[ERROR_RATES[-1]] < mac[0.0]
    # The MAC stays ahead of direct dispatch across the whole sweep.
    assert all(mac[ber] > direct[ber] for ber in ERROR_RATES)
