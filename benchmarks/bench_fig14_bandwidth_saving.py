"""Figure 14 — control-overhead bandwidth saved by coalescing.

Paper: 22.76 GB saved per benchmark on average at paper-scale traces.
The scale-free number is bytes saved per raw request; multiplying by
the paper's per-benchmark request counts (~10^9) recovers GB-scale
savings.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table, human_bytes

from conftest import attach, run_figure

#: Requests per benchmark in the paper's runs, inferred from Fig. 14's
#: 22.76 GB average saving at ~24 B/request (scale anchor only).
PAPER_SCALE_REQUESTS = 1.0e9


def test_fig14_bandwidth_saving(benchmark):
    table = run_figure(benchmark, lambda: E.fig14_bandwidth_saving(), "Fig. 14")
    rows = [
        [
            name,
            human_bytes(row["saved_bytes"]),
            f"{row['saved_bytes_per_request']:.2f}",
            f"{row['wire_saved_bytes_per_request']:.2f}",
            human_bytes(row["saved_bytes_per_request"] * PAPER_SCALE_REQUESTS),
        ]
        for name, row in table.items()
    ]
    print()
    print(
        format_table(
            [
                "benchmark",
                "control saved (trace)",
                "control B/req",
                "net wire B/req",
                "at paper scale",
            ],
            rows,
            title="Fig. 14: bandwidth saving (paper avg 22.76 GB/benchmark)",
        )
    )
    per_req = [row["saved_bytes_per_request"] for row in table.values()]
    avg = statistics.mean(per_req)
    attach(benchmark, avg_saved_bytes_per_request=avg)
    # Fig. 14's control-only saving is positive everywhere and bounded
    # by the 32 B control cost of one access.
    assert all(0 < v < 32 for v in per_req)
