"""Supervised pool overhead — plain run_tasks vs run_supervised wall time.

Runs the same 18-cell design-space grid twice on the process pool: once
through the plain chunked executor (``run_tasks``) and once under the
crash-resilient supervisor (per-cell dispatch, deadline tracking, retry
bookkeeping — ``repro.eval.supervisor``).  The two result lists must be
bit-identical, and the supervised run must stay within 5 % of plain
wall time (with a small absolute grace so sub-second runs don't gate on
scheduler noise): resilience is bookkeeping around the cells, never
work inside them.

The measured ratio lands in the ``BENCH_supervisor_overhead.json``
artifact, so ``scripts/bench_compare.py`` tracks it across runs.
"""

import time

from repro.eval.report import format_table
from repro.eval.runner import cached_trace
from repro.eval.supervisor import SupervisorConfig
from repro.eval.sweeps import sweep_grid

from conftest import attach, run_figure

AXES = {
    "arq_entries": [8, 32, 128],
    "row_bytes": [128, 256, 512],
}
WORKLOADS = ("SG", "IS")
THREADS = 4
OPS_PER_THREAD = 2000

#: Relative overhead budget, plus an absolute grace for short runs.
MAX_OVERHEAD = 0.05
GRACE_S = 0.25


def _grid(jobs: int, supervise=None):
    return sweep_grid(
        AXES,
        workloads=WORKLOADS,
        threads=THREADS,
        ops_per_thread=OPS_PER_THREAD,
        jobs=jobs,
        supervise=supervise,
    )


def test_supervisor_overhead(benchmark, eval_jobs):
    jobs = eval_jobs if eval_jobs != 1 else 4

    def measure():
        for name in WORKLOADS:
            cached_trace(name, THREADS, OPS_PER_THREAD)
        _grid(jobs=jobs)  # warm-up: fork/import costs hit neither side
        t0 = time.perf_counter()
        plain = _grid(jobs=jobs)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        supervised = _grid(jobs=jobs, supervise=SupervisorConfig())
        t_supervised = time.perf_counter() - t0
        return plain, supervised, t_plain, t_supervised

    plain, supervised, t_plain, t_supervised = run_figure(
        benchmark, measure, "Supervisor overhead: plain vs supervised pool"
    )

    assert supervised == plain  # resilience never changes results

    overhead = (t_supervised - t_plain) / t_plain if t_plain > 0 else 0.0
    attach(
        benchmark,
        cells=len(plain),
        workers=jobs,
        plain_s=t_plain,
        supervised_s=t_supervised,
        overhead_frac=overhead,
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["grid cells", len(plain)],
                ["workers", jobs],
                ["plain (s)", round(t_plain, 3)],
                ["supervised (s)", round(t_supervised, 3)],
                ["overhead", f"{overhead * 100:+.1f}%"],
                ["budget", f"{MAX_OVERHEAD * 100:.0f}% + {GRACE_S}s grace"],
            ],
            title="supervised pool overhead",
        )
    )
    assert t_supervised <= t_plain * (1 + MAX_OVERHEAD) + GRACE_S, (
        f"supervisor overhead {overhead * 100:.1f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% budget"
    )
