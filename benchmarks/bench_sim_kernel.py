"""Simulation-kernel engines — lockstep vs quiescence-skipping wall time.

The skip engine's value proposition: on *latency-bound* workloads
(shallow-LSQ stall-on-miss cores, the paper's base core) almost every
cycle is quiescent — all cores blocked on an in-flight response — so
fast-forwarding to the next wake event removes the bulk of the Python
tick overhead.  On *bandwidth-bound* workloads (deep LSQs keeping the
MAC busy) there is nothing to skip and the engine must not cost more
than a few percent.  Both runs assert bit-identical results first; the
artifact records the wall times and speedups for bench_compare.py.
"""

import random
import time

from repro.core.request import MemoryRequest, RequestType
from repro.eval.report import format_table
from repro.node.node import Node

from conftest import attach, run_figure


def _streams(cores, ops, rows):
    out = []
    for c in range(cores):
        rng = random.Random(c * 7 + 1)
        out.append(
            iter(
                [
                    MemoryRequest(
                        addr=(rng.randrange(rows) << 8)
                        | (rng.randrange(16) << 4),
                        rtype=RequestType.LOAD if i % 4 else RequestType.STORE,
                        tid=c,
                        tag=i,
                        core=c,
                    )
                    for i in range(ops)
                ]
            )
        )
    return out


#: (cores, ops/core, rows, lsq_capacity).  lsq=1 is the paper's strict
#: stall-on-miss base core: one outstanding miss, hundreds of quiescent
#: cycles per request.  lsq=None (default 64) keeps the MAC saturated.
SHAPES = {
    "latency_bound": (2, 400, 64, 1),
    "bandwidth_bound": (8, 1500, 256, None),
}


def _timed_run(engine, shape, rounds=2):
    """Best-of-N wall time: the first pass through an engine's loop pays
    CPython's adaptive-interpreter specialization warmup (~10%)."""
    cores, ops, rows, lsq = shape
    best = float("inf")
    for _ in range(rounds):
        node = Node(_streams(cores, ops, rows), lsq_capacity=lsq)
        t0 = time.perf_counter()
        node.run(engine=engine)
        best = min(best, time.perf_counter() - t0)
    return best, node


def test_sim_kernel_engines(benchmark):
    def run():
        out = {}
        for label, shape in SHAPES.items():
            t_lock, lock = _timed_run("lockstep", shape)
            t_skip, skip = _timed_run("skip", shape)
            # Equivalence first: a fast wrong answer is worthless.
            assert skip.cycle == lock.cycle, label
            assert skip.metrics() == lock.metrics(), label
            out[label] = {
                "lockstep_s": t_lock,
                "skip_s": t_skip,
                "speedup": t_lock / t_skip,
                "cycles": lock.stats.cycles,
            }
        return out

    out = run_figure(benchmark, run, "sim kernel: lockstep vs skip engine")
    for label, row in out.items():
        attach(
            benchmark,
            **{
                f"{label}_lockstep_s": row["lockstep_s"],
                f"{label}_skip_s": row["skip_s"],
                f"{label}_speedup": row["speedup"],
            },
        )
    print()
    print(
        format_table(
            ["workload", "cycles", "lockstep (s)", "skip (s)", "speedup"],
            [
                [
                    label,
                    row["cycles"],
                    round(row["lockstep_s"], 3),
                    round(row["skip_s"], 3),
                    f"{row['speedup']:.2f}x",
                ]
                for label, row in out.items()
            ],
            title="identical results, wall-clock only",
        )
    )
    # Acceptance: big win where it matters, no harm where it cannot help.
    assert out["latency_bound"]["speedup"] >= 2.0
    assert out["bandwidth_bound"]["speedup"] >= 0.95
