"""Energy ablation — the section-2.2.1 power motivation quantified.

Prices each benchmark's raw vs coalesced packet stream with published
per-operation energies (SerDes pJ/bit, activation nJ/row, column
pJ/bit) and reports the memory-path energy saved by the MAC.
"""

import statistics

from repro.eval.energy import energy_saving, stream_energy
from repro.eval.report import format_table, pct
from repro.eval.runner import dispatch
from repro.workloads.registry import benchmark_names

from conftest import attach, run_figure


def test_energy_saving(benchmark):
    def run():
        out = {}
        for name in benchmark_names():
            raw = dispatch(name, "raw", threads=4, ops_per_thread=1000)
            mac = dispatch(name, "mac", threads=4, ops_per_thread=1000)
            saving = energy_saving(raw.packets, mac.packets)
            mac_rep = stream_energy(mac.packets)
            out[name] = (saving, mac_rep.pj_per_packet)
        return out

    table = run_figure(benchmark, run, "Energy ablation")
    print()
    print(
        format_table(
            ["benchmark", "energy saved", "pJ/packet (MAC)"],
            [[k, pct(s), round(p, 0)] for k, (s, p) in table.items()],
            title="Memory-path energy: raw vs MAC",
        )
    )
    savings = [s for s, _ in table.values()]
    attach(benchmark, avg_energy_saving=statistics.mean(savings))
    # Coalescing saves energy on every benchmark (fewer activations +
    # less control traffic outweigh any payload overfetch).
    assert all(s > 0 for s in savings)
    assert statistics.mean(savings) > 0.2
