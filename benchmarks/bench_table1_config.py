"""Table 1 — simulation-environment configuration validation.

Checks that the library's default configuration realizes the paper's
simulated system, including the 93 ns average HMC access latency, which
is a *derived* property of the device timing model.
"""

from repro.eval import experiments as E
from repro.eval.report import format_table
from repro.hmc.device import HMCDevice

from conftest import attach, run_figure


def test_table1_configuration(benchmark):
    cfg = run_figure(benchmark, E.table1_config, "Table 1")
    print()
    print(
        format_table(
            ["parameter", "value"],
            [[k, v] for k, v in cfg.items()],
            title="Table 1: simulation environment",
        )
    )
    dev = HMCDevice()
    lat_ns = dev.unloaded_read_latency(16) / cfg["cpu_freq_ghz"]
    print(f"unloaded HMC read latency: {lat_ns:.1f} ns (paper: 93 ns)")
    attach(benchmark, hmc_latency_ns=lat_ns, paper_latency_ns=93)
    assert cfg["cores"] == 8
    assert cfg["cpu_freq_ghz"] == 3.3
    assert cfg["spm_bytes_per_core"] == 1 << 20
    assert cfg["hmc_links"] == 4
    assert cfg["hmc_capacity_gb"] == 8
    assert cfg["hmc_row_bytes"] == 256
    assert cfg["arq_entries"] == 32
    assert cfg["arq_entry_bytes"] == 64
    assert abs(lat_ns - 93) < 5
