"""Shared helpers for the per-figure benchmark harness.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic(rounds=1)``): the measured quantity of interest is the
figure's *result*, not Python's runtime, so the timing is informative
only.  Results are attached as ``extra_info`` (visible in
``--benchmark-verbose``/JSON output) and printed (visible with ``-s``).
"""

from __future__ import annotations

from typing import Any, Callable

import pytest


def pytest_addoption(parser) -> None:
    # Shared knob with tests/conftest.py; tolerate double registration
    # when both conftests load in one invocation.
    try:
        parser.addoption(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for parallel-capable benches "
            "(1 = serial, 0 = all cores)",
        )
    except ValueError:
        pass


@pytest.fixture
def eval_jobs(request) -> int:
    """The --jobs knob: worker count for parallel-capable benches."""
    return int(request.config.getoption("--jobs"))


def run_figure(benchmark, fn: Callable[[], Any], title: str) -> Any:
    """Execute a figure driver once under the benchmark fixture."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = title
    return result


def attach(benchmark, **values) -> None:
    """Record paper-vs-measured values in the benchmark report."""
    for key, value in values.items():
        if isinstance(value, float):
            value = round(value, 4)
        benchmark.extra_info[key] = value
