"""Shared helpers for the per-figure benchmark harness.

Every bench runs its experiment exactly once under pytest-benchmark
(``pedantic(rounds=1)``): the measured quantity of interest is the
figure's *result*, not Python's runtime, so the timing is informative
only.  Results are attached as ``extra_info`` (visible in
``--benchmark-verbose``/JSON output) and printed (visible with ``-s``).

Additionally, every figure driver that goes through :func:`run_figure`
leaves a machine-readable artifact ``BENCH_<name>.json`` (wall time +
every ``attach``-ed key metric) in ``--bench-json-dir``, so CI can diff
two runs with ``scripts/bench_compare.py`` and fail on wall-time
regressions without parsing pytest-benchmark's full report format.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path
from typing import Any, Callable, List

import pytest

#: Benchmark fixtures seen this session; dumped at session finish.
_RESULTS: List[Any] = []


def pytest_addoption(parser) -> None:
    # Shared knob with tests/conftest.py; tolerate double registration
    # when both conftests load in one invocation.
    try:
        parser.addoption(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for parallel-capable benches "
            "(1 = serial, 0 = all cores)",
        )
    except ValueError:
        pass
    try:
        parser.addoption(
            "--bench-json-dir",
            default=None,
            help="directory for the BENCH_<name>.json artifacts "
            "(wall time + key metrics per figure driver)",
        )
    except ValueError:
        pass


@pytest.fixture
def eval_jobs(request) -> int:
    """The --jobs knob: worker count for parallel-capable benches."""
    return int(request.config.getoption("--jobs"))


def run_figure(benchmark, fn: Callable[[], Any], title: str) -> Any:
    """Execute a figure driver once under the benchmark fixture."""
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    benchmark.extra_info["figure"] = title
    benchmark.extra_info["wall_time_s"] = round(time.perf_counter() - t0, 4)
    _RESULTS.append(benchmark)
    return result


def attach(benchmark, **values) -> None:
    """Record paper-vs-measured values in the benchmark report."""
    for key, value in values.items():
        if isinstance(value, float):
            value = round(value, 4)
        benchmark.extra_info[key] = value


def _artifact_name(bench_name: str) -> str:
    """``test_fig9_requests_per_cycle[x]`` -> ``BENCH_fig9_requests_per_cycle[x]``."""
    name = re.sub(r"^test_", "", bench_name)
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")
    return f"BENCH_{name}.json"


def pytest_sessionfinish(session, exitstatus) -> None:
    """Dump one BENCH_<name>.json per figure driver run this session.

    Written at session finish (not per test) so ``attach`` calls made
    after :func:`run_figure` returned are included.
    """
    if not _RESULTS:
        return
    opt = session.config.getoption("--bench-json-dir")
    # Default next to this conftest, so the artifact location does not
    # depend on the directory pytest was launched from.
    out_dir = Path(opt) if opt else Path(__file__).parent / "results"
    out_dir.mkdir(parents=True, exist_ok=True)
    for bench in _RESULTS:
        info = dict(bench.extra_info)
        artifact = {
            "name": bench.name,
            "wall_time_s": info.pop("wall_time_s", None),
            "figure": info.pop("figure", None),
            "metrics": info,
        }
        path = out_dir / _artifact_name(bench.name)
        # Atomic write: a crashed/killed session never leaves a torn
        # artifact for scripts/bench_compare.py to choke on.
        from repro.ioutil import atomic_write_text

        atomic_write_text(path, json.dumps(artifact, indent=2, sort_keys=True))
    _RESULTS.clear()
