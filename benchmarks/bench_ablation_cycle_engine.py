"""Ablation — the section-4.4 cadence's structural efficiency ceiling.

EXPERIMENTS.md judgement call 3: with the paper's stated rates (the ARQ
accepts at most 1 raw request/cycle and pops exactly one entry every 2
cycles), a saturated MAC cannot eliminate more than ~50 % of requests
*regardless of the access pattern* — in steady state packets = pops =
intake − merges, and intake caps at 1/cycle while pops run at 0.5/cycle.

This bench demonstrates the ceiling empirically: workloads whose
pattern-level coalescibility (window engine) is far above 50 % all pin
near 50 % under the cycle engine, while workloads below 50 % agree
between engines.
"""

import statistics

from repro.eval.report import format_table, pct
from repro.eval.runner import dispatch
from repro.workloads.registry import benchmark_names

from conftest import attach, run_figure


def test_cycle_engine_equilibrium(benchmark):
    def run():
        out = {}
        for name in benchmark_names():
            window = dispatch(name, "mac", threads=4, ops_per_thread=1500)
            cycle = dispatch(name, "mac-cycle", threads=4, ops_per_thread=1500)
            out[name] = (
                window.stats.coalescing_efficiency,
                cycle.stats.coalescing_efficiency,
            )
        return out

    table = run_figure(benchmark, run, "Ablation: cycle-engine ceiling")
    print()
    print(
        format_table(
            ["benchmark", "window engine", "cycle engine"],
            [[k, pct(w), pct(c)] for k, (w, c) in table.items()],
            title="Section 4.4 cadence: pattern-level vs rate-limited "
            "coalescing",
        )
    )
    attach(
        benchmark,
        max_cycle_eff=max(c for _, c in table.values()),
        avg_window_eff=statistics.mean(w for w, _ in table.values()),
    )
    for name, (window_eff, cycle_eff) in table.items():
        # The rate ceiling: the cycle engine never beats ~52 % however
        # coalescable the pattern is (a little slack for drain effects).
        assert cycle_eff <= 0.55, name
        # And it never exceeds the pattern-level opportunity.
        assert cycle_eff <= window_eff + 0.05, name
    # At least one high-locality workload demonstrates the gap.
    gaps = [w - c for w, c in table.values()]
    assert max(gaps) > 0.10
