"""Figure 10 — coalescing efficiency per benchmark at 2/4/8 threads.

Paper: suite averages 48.37 / 50.51 / 52.86 % at 2/4/8 threads; above
60 % for MG, GRAPPOLO, SG, SP and SPARSELU at 8 threads.

Known deviation (see EXPERIMENTS.md): the paper reports a mildly
*increasing* thread trend, our window-contention model yields a mildly
*decreasing* one; the 8-thread per-benchmark levels and ordering match.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table, pct

from conftest import attach, run_figure

PAPER_AVG = {2: 0.4837, 4: 0.5051, 8: 0.5286}
PAPER_WINNERS = ("MG", "GRAPPOLO", "SG", "SP", "SPARSELU")


def test_fig10_coalescing_efficiency(benchmark):
    table = run_figure(
        benchmark, lambda: E.fig10_coalescing_efficiency(), "Fig. 10"
    )
    names = list(table[8])
    rows = [[n] + [pct(table[t][n]) for t in (2, 4, 8)] for n in names]
    print()
    print(
        format_table(
            ["benchmark", "2 threads", "4 threads", "8 threads"],
            rows,
            title="Fig. 10: coalescing efficiency "
            "(paper avgs 48.37/50.51/52.86%)",
        )
    )
    avgs = {t: statistics.mean(table[t].values()) for t in (2, 4, 8)}
    print("measured averages:", {t: pct(v) for t, v in avgs.items()})
    attach(
        benchmark,
        avg_2t=avgs[2],
        avg_4t=avgs[4],
        avg_8t=avgs[8],
        paper_avg_8t=PAPER_AVG[8],
    )
    # Headline: the 8-thread suite average lands near the paper's 52.86 %.
    assert abs(avgs[8] - PAPER_AVG[8]) < 0.06
    # The paper's five named winners clear 60 %.
    for name in PAPER_WINNERS:
        assert table[8][name] > 0.60, name
