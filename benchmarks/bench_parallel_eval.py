"""Parallel evaluation engine — serial vs process-pool wall time.

Runs one 27-cell design-space grid (3 ARQ depths x 3 entry sizes x 3 row
sizes over SG) twice through ``sweep_grid``: serially (``jobs=1``) and on
a 4-worker process pool (``jobs=4``, override with ``--jobs N``).  The
two result lists must be bit-identical — the pool only changes wall
time, never values or order — and both timings land in the benchmark
JSON (``extra_info``) so the speedup trajectory is tracked across runs.

On a >=4-core machine the pool is expected to cut wall time by >=2x;
on fewer cores the numbers are still recorded but the speedup assertion
is skipped (a pool cannot beat serial without spare cores).
"""

import os
import time

from repro.eval.report import format_table
from repro.eval.runner import cached_trace
from repro.eval.sweeps import sweep_grid

from conftest import attach, run_figure

AXES = {
    "arq_entries": [8, 32, 128],
    "arq_entry_bytes": [46, 64, 128],
    "row_bytes": [128, 256, 512],
}
WORKLOADS = ("SG",)
THREADS = 4
OPS_PER_THREAD = 2000


def _grid(jobs: int):
    return sweep_grid(
        AXES,
        workloads=WORKLOADS,
        threads=THREADS,
        ops_per_thread=OPS_PER_THREAD,
        jobs=jobs,
    )


def test_parallel_eval_speedup(benchmark, eval_jobs):
    jobs = eval_jobs if eval_jobs != 1 else 4

    def measure():
        # Warm the trace cache first so both runs pay zero generation
        # cost (workers inherit the warm cache through fork).
        for name in WORKLOADS:
            cached_trace(name, THREADS, OPS_PER_THREAD)
        t0 = time.perf_counter()
        serial = _grid(jobs=1)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = _grid(jobs=jobs)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = run_figure(
        benchmark, measure, "Parallel eval: serial vs pool wall time"
    )

    # Determinism is the contract: same order, same values, any jobs.
    assert parallel == serial

    cells = len(serial)
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    cores = os.cpu_count() or 1
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["grid cells", cells],
                ["workers", jobs],
                ["cores", cores],
                ["serial (s)", round(t_serial, 3)],
                ["parallel (s)", round(t_parallel, 3)],
                ["speedup", round(speedup, 2)],
            ],
            title="sweep_grid serial vs parallel",
        )
    )
    attach(
        benchmark,
        cells=cells,
        jobs=jobs,
        cores=cores,
        serial_seconds=t_serial,
        parallel_seconds=t_parallel,
        speedup=speedup,
    )

    assert cells >= 27
    # Speedup only exists with spare cores; record-but-don't-fail below 4.
    if cores >= 4 and jobs >= 4:
        assert speedup >= 2.0, f"expected >=2x at {jobs} workers, got {speedup:.2f}x"
