"""Section 2.2.1 ablation — why the HMC runs closed-page.

"Compared with the 8 KB~16 KB rows in DDR3, shorter rows reduce the row
buffer hit rate, making the open page mode impractical."  This bench
maps each benchmark's raw request stream onto open-page banks at 256 B
(HMC), 1 KB (HBM) and 8 KB (DDR) row lengths and measures the row-hit
rate an open-page policy could actually harvest.
"""

import statistics

from repro.eval.page_policy import row_length_study
from repro.eval.report import format_table, pct
from repro.eval.runner import dispatch
from repro.workloads.registry import benchmark_names

from conftest import attach, run_figure

ROWS = (256, 1024, 8192)


def test_page_policy_row_length(benchmark):
    def run():
        out = {}
        for name in benchmark_names():
            raw = dispatch(name, "raw", threads=4, ops_per_thread=1000)
            out[name] = row_length_study(raw.packets, ROWS)
        return out

    table = run_figure(benchmark, run, "Section 2.2.1: page policy")
    rows = [
        [name] + [pct(study[n]) for n in ROWS] for name, study in table.items()
    ]
    print()
    print(
        format_table(
            ["benchmark", "256 B rows", "1 KB rows", "8 KB rows"],
            rows,
            title="Open-page row-hit rate vs row length (section 2.2.1)",
        )
    )
    avgs = {n: statistics.mean(study[n] for study in table.values()) for n in ROWS}
    print("averages:", {n: pct(v) for n, v in avgs.items()})
    attach(benchmark, **{f"hit_{n}B": avgs[n] for n in ROWS})
    # The paper's claim: hit rate grows with row length; at 256 B the
    # residual hits come almost entirely from back-to-back SPM block
    # transfers — the *irregular* workloads (SORT's probe-interrupted
    # runs, MG's multi-pencil alternation, SG's gathers) collapse to
    # single-digit..30 % rates, and those are the workloads the
    # architecture targets.  Combined with 512 banks' open-row power,
    # closed-page wins.
    assert avgs[256] < avgs[1024] < avgs[8192]
    assert avgs[8192] > avgs[256] + 0.2
    assert min(study[256] for study in table.values()) < 0.25
    # At DDR row lengths nearly everything hits: the harvesting DDR
    # controllers rely on exists only there.
    assert avgs[8192] > 0.85
