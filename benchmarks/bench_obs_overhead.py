"""Observability overhead — tracer-off vs tracer-on wall time.

Runs one benchmark trace through the cycle engine + device replay twice:
once with the default :data:`NULL_TRACER` (the shipping configuration —
every emit site is gated behind a single ``enabled`` attribute check)
and once with a live :class:`EventTracer`.  Both wall times and their
ratio land in the benchmark JSON (``extra_info``), so the cost of the
instrumentation is tracked across runs; the disabled path is expected to
stay within noise of the pre-instrumentation engine.

The result streams are also cross-checked for equality — the deep
bit-identical regression lives in ``tests/obs/test_noop_identical.py``;
here it guards the measurement itself (a tracer that changed the
simulation would make the timing comparison meaningless).
"""

import time

import pytest

from repro.eval.runner import cached_trace, dispatch, replay_on_device
from repro.obs import NULL_TRACER, EventTracer

from conftest import attach, run_figure

pytestmark = pytest.mark.obs

WORKLOAD = "SG"
THREADS = 4
OPS_PER_THREAD = 2000
ROUNDS = 3


def _run(tracer):
    disp = dispatch(
        WORKLOAD, "mac-cycle", threads=THREADS, ops_per_thread=OPS_PER_THREAD,
        tracer=tracer,
    )
    replay = replay_on_device(disp.packets, tracer=tracer)
    return disp, replay


def _time(tracer) -> tuple:
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        result = _run(tracer)
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_obs_overhead(benchmark):
    def measure():
        cached_trace(WORKLOAD, THREADS, OPS_PER_THREAD)  # warm: time engines only
        t_off, off = _time(NULL_TRACER)
        tracer = EventTracer(capacity=1 << 20)
        t_on, on = _time(tracer)
        return t_off, t_on, off, on, tracer

    t_off, t_on, off, on, tracer = run_figure(
        benchmark, measure, "observability overhead (tracer off vs on)"
    )
    (off_disp, off_replay), (on_disp, on_replay) = off, on
    assert on_disp.packets == off_disp.packets
    assert on_disp.stats.snapshot() == off_disp.stats.snapshot()
    assert len(tracer) > 0

    attach(
        benchmark,
        tracer_off_s=t_off,
        tracer_on_s=t_on,
        overhead_ratio=t_on / t_off if t_off else 0.0,
        events_recorded=len(tracer),
        events_dropped=tracer.dropped,
    )
    print(
        f"\nobs overhead: off {t_off * 1e3:.1f} ms, on {t_on * 1e3:.1f} ms "
        f"(x{t_on / t_off:.3f}), {len(tracer)} events"
    )
