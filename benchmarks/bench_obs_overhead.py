"""Observability overhead — tracer/attribution off vs on wall time.

Two measurements, both off-by-default observers against the shipping
no-op configuration (every hook gated behind one ``enabled`` attribute
check):

* **Open loop** (dispatch + device replay) with a live
  :class:`EventTracer` — the tracer's natural habitat, reported as
  ``overhead_ratio``.
* **Closed loop** (full Fig. 4 node via ``attributed_node_run``) with a
  live :class:`AttributionCollector` — the path ``repro analyze``
  actually runs, reported as ``attribution_overhead_ratio`` and
  budgeted at <= 15% over the disabled run (ISSUE 4 acceptance
  criterion, asserted here).  The closed loop is the honest
  denominator: cores, router, MAC and device all burn cycles, so the
  ratio reflects the instrument's share of a real analysis run rather
  than of a stripped-down replay inner loop.
* **Closed loop** again with a live :class:`Timeline` — the
  ``repro run --timeline-out`` path, reported as
  ``timeline_overhead_ratio`` and budgeted at <= 10% over the disabled
  run (ISSUE 9 acceptance criterion, asserted here).  The timeline is
  engine-pumped counter-delta sampling, so its cost is one boundary
  check per tick plus one probe sweep per epoch.

Variants are interleaved round-robin and the best round of each is
kept, so machine-load drift hits all variants equally.  The result
streams are also cross-checked for equality — the deep bit-identical
regressions live in ``tests/obs/test_noop_identical.py`` and
``tests/obs/test_attribution_noop.py``; here they guard the
measurement itself (an observer that changed the simulation would make
the timing comparison meaningless).

All wall times and ratios land in the benchmark JSON (``extra_info``
and the ``BENCH_obs_overhead.json`` artifact), so the cost of the
instrumentation is tracked across runs by ``scripts/bench_compare.py``.
"""

import time

import pytest

from repro.eval.runner import (
    attributed_node_run,
    cached_trace,
    dispatch,
    replay_on_device,
)
from repro.obs import NULL_TIMELINE, NULL_TRACER, EventTracer, Timeline
from repro.obs.attribution import NULL_ATTRIBUTION, AttributionCollector

from conftest import attach, run_figure

pytestmark = pytest.mark.obs

WORKLOAD = "SG"
THREADS = 4
OPS_PER_THREAD = 2000
ROUNDS = 5
#: Acceptance budget: attribution-on node wall time vs the disabled run.
ATTRIBUTION_BUDGET = 1.15
#: Acceptance budget: timeline-on node wall time vs the disabled run.
TIMELINE_BUDGET = 1.10


def _open_loop(tracer=NULL_TRACER):
    disp = dispatch(
        WORKLOAD, "mac-cycle", threads=THREADS, ops_per_thread=OPS_PER_THREAD,
        tracer=tracer,
    )
    replay = replay_on_device(disp.packets, tracer=tracer)
    return disp, replay


def _closed_loop(attrib, timeline=NULL_TIMELINE):
    return attributed_node_run(
        WORKLOAD, threads=THREADS, ops_per_thread=OPS_PER_THREAD, attrib=attrib,
        timeline=timeline,
    )


def test_obs_overhead(benchmark):
    def measure():
        cached_trace(WORKLOAD, THREADS, OPS_PER_THREAD)  # warm: time engines only
        tracer = EventTracer(capacity=1 << 20)
        attrib = AttributionCollector()
        # Interleave the variants round-robin so machine-load drift hits
        # all of them equally.  Per variant pair the ratio is taken
        # per-round (off and on measured back-to-back share machine
        # conditions) and the best round wins — independent best-of
        # minima would compare an off-spike-free round against an
        # on-spiked one and report phantom overhead.
        rounds = []
        off = traced = node_off = node_attr = node_tl = timeline = None
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            off = _open_loop()
            t_off = time.perf_counter() - t0
            t0 = time.perf_counter()
            traced = _open_loop(tracer=tracer)
            t_trace = time.perf_counter() - t0
            t0 = time.perf_counter()
            node_off = _closed_loop(NULL_ATTRIBUTION)
            t_node_off = time.perf_counter() - t0
            t0 = time.perf_counter()
            node_attr = _closed_loop(attrib)
            t_node_attr = time.perf_counter() - t0
            # Fresh Timeline per round: bind() is keyed on id(model) and
            # each round builds a new node, so a recycled object id must
            # never be mistaken for an already-bound model.
            timeline = Timeline()
            t0 = time.perf_counter()
            node_tl = _closed_loop(NULL_ATTRIBUTION, timeline=timeline)
            t_node_tl = time.perf_counter() - t0
            rounds.append((t_off, t_trace, t_node_off, t_node_attr, t_node_tl))
        return rounds, off, traced, node_off, node_attr, node_tl, tracer, attrib, timeline

    rounds, off, traced, node_off, node_attr, node_tl, tracer, attrib, timeline = run_figure(
        benchmark, measure, "observability overhead (tracer/attribution off vs on)"
    )
    t_off = min(r[0] for r in rounds)
    t_trace = min(r[1] for r in rounds)
    t_node_off = min(r[2] for r in rounds)
    t_node_attr = min(r[3] for r in rounds)
    (off_disp, _) = off
    (trace_disp, _) = traced
    assert trace_disp.packets == off_disp.packets
    assert trace_disp.stats.snapshot() == off_disp.stats.snapshot()
    assert len(tracer) > 0

    t_node_tl = min(r[4] for r in rounds)

    (_, plain_node) = node_off
    (_, attr_node) = node_attr
    (_, tl_node) = node_tl
    assert attr_node.cycle == plain_node.cycle
    assert attr_node.mac.stats.snapshot() == plain_node.mac.stats.snapshot()
    assert attr_node.device.stats.snapshot() == plain_node.device.stats.snapshot()
    assert attrib.finalized > 0
    assert tl_node.cycle == plain_node.cycle
    assert tl_node.mac.stats.snapshot() == plain_node.mac.stats.snapshot()
    assert sum(len(s["epochs"]) for s in timeline.export()["series"].values()) > 0

    trace_ratio = min(r[1] / r[0] for r in rounds if r[0] > 0)
    attr_ratio = min(r[3] / r[2] for r in rounds if r[2] > 0)
    timeline_ratio = min(r[4] / r[2] for r in rounds if r[2] > 0)
    attach(
        benchmark,
        tracer_off_s=t_off,
        tracer_on_s=t_trace,
        node_off_s=t_node_off,
        node_attribution_s=t_node_attr,
        node_timeline_s=t_node_tl,
        overhead_ratio=trace_ratio,
        attribution_overhead_ratio=attr_ratio,
        timeline_overhead_ratio=timeline_ratio,
        events_recorded=len(tracer),
        events_dropped=tracer.dropped,
        requests_attributed=attrib.finalized,
        timeline_series=len(timeline.export()["series"]),
    )
    print(
        f"\nobs overhead: open-loop off {t_off * 1e3:.1f} ms, tracer "
        f"{t_trace * 1e3:.1f} ms (best paired x{trace_ratio:.3f}); node off "
        f"{t_node_off * 1e3:.1f} ms, attribution {t_node_attr * 1e3:.1f} ms "
        f"(best paired x{attr_ratio:.3f}), timeline {t_node_tl * 1e3:.1f} ms "
        f"(best paired x{timeline_ratio:.3f}), {len(tracer)} events, "
        f"{attrib.finalized} requests attributed"
    )
    assert attr_ratio <= ATTRIBUTION_BUDGET, (
        f"attribution overhead x{attr_ratio:.3f} blew the "
        f"x{ATTRIBUTION_BUDGET} budget"
    )
    assert timeline_ratio <= TIMELINE_BUDGET, (
        f"timeline overhead x{timeline_ratio:.3f} blew the "
        f"x{TIMELINE_BUDGET} budget"
    )
