"""Figure 15 — average targets per ARQ entry.

Paper: 2.13 targets merged per entry on average, 3.14 at most, against
the 12-target hardware limit — so the 54 B target segment of a 64 B
entry is never exhausted.
"""

import statistics

from repro.eval import experiments as E
from repro.eval.report import format_table

from conftest import attach, run_figure


def test_fig15_targets_per_entry(benchmark):
    table = run_figure(benchmark, lambda: E.fig15_targets_per_entry(), "Fig. 15")
    print()
    print(
        format_table(
            ["benchmark", "avg targets", "max targets", "limit"],
            [[k, round(a, 2), m, 12] for k, (a, m) in table.items()],
            title="Fig. 15: targets per ARQ entry (paper avg 2.13, max 3.14)",
        )
    )
    avgs = [a for a, _ in table.values()]
    suite_avg = statistics.mean(avgs)
    print(f"measured suite average: {suite_avg:.2f}")
    attach(benchmark, suite_avg=suite_avg, paper_avg=2.13)
    # Every benchmark stays within the hardware limit.
    assert all(m <= 12 for _, m in table.values())
    # The suite average sits in the paper's low-single-digit regime.
    assert 1.3 < suite_avg < 4.5
    # Consistency with Eq. 3: avg targets ~ 1 / (1 - efficiency).
    effs = E.fig10_coalescing_efficiency(thread_counts=(8,), total_ops=24_000)[8]
    for name, (avg, _) in table.items():
        predicted = 1 / (1 - effs[name])
        assert abs(avg - predicted) / predicted < 0.25, name
