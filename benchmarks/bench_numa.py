"""Section 3 generality — coalescing remote traffic at the home node.

The architecture routes remote requests into the home node's Remote
Access Queue, where its MAC coalesces them *together with local
traffic*.  This bench runs a 4-node NUMA system over interleaved shared
data with and without coalescing and measures the conflict and makespan
effect of home-node coalescing on mixed local/remote streams.
"""

from repro.core.request import MemoryRequest, RequestType
from repro.eval.report import format_table, pct
from repro.node.system import NUMASystem

from conftest import attach, run_figure

NODES, CORES, OPS = 4, 2, 300


def _stream(node_id, core_id):
    for i in range(OPS):
        idx = (node_id * 11 + core_id * 5 + i) % 384
        yield MemoryRequest(
            addr=idx * 256 + (i % 16) * 16,
            rtype=RequestType.LOAD if i % 4 else RequestType.STORE,
            tid=core_id,
            tag=i,
            core=core_id,
            node=node_id,
        )


def _run(coalescing: bool):
    system = NUMASystem(
        [[_stream(n, c) for c in range(CORES)] for n in range(NODES)],
        interconnect_latency=120,
        interleave_bytes=1 << 10,
    )
    if not coalescing:
        from repro.core.config import MACConfig
        from repro.core.mac import MAC

        for node in system.nodes:
            mac = MAC(MACConfig(arq_entries=1, latency_hiding=False),
                      node_id=node.node_id)
            mac.request_router.home_fn = system.home
            node.mac = mac
    stats = system.run()
    return system, stats


def test_numa_home_node_coalescing(benchmark):
    def run():
        with_mac, st_mac = _run(True)
        without, st_raw = _run(False)
        return {
            "cycles": (st_mac.cycles, st_raw.cycles),
            "remote": (st_mac.remote_requests, st_raw.remote_requests),
            "conflicts": (
                sum(n.device.bank_conflicts for n in with_mac.nodes),
                sum(n.device.bank_conflicts for n in without.nodes),
            ),
            "merges": sum(n.mac.aggregator.arq.merges for n in with_mac.nodes),
        }

    out = run_figure(benchmark, run, "Section 3: NUMA home-node coalescing")
    print()
    print(
        format_table(
            ["metric", "with MAC", "without"],
            [
                ["cycles", out["cycles"][0], out["cycles"][1]],
                ["bank conflicts", out["conflicts"][0], out["conflicts"][1]],
                ["remote requests", out["remote"][0], out["remote"][1]],
            ],
            title="4-node NUMA, 75% remote traffic",
        )
    )
    print(f"home-node merges: {out['merges']}")
    speedup = 1 - out["cycles"][0] / out["cycles"][1]
    print(f"makespan speedup: {pct(speedup)}")
    attach(benchmark, makespan_speedup=speedup, merges=out["merges"])
    # Remote traffic flows identically either way...
    assert out["remote"][0] == out["remote"][1]
    # ...but coalescing at the home node merges requests and cuts
    # conflicts across the whole system.
    assert out["merges"] > 0
    assert out["conflicts"][0] < out["conflicts"][1]


def test_numa_sharded_scaling(benchmark):
    """Sharded PDES over a 64-node mesh: identity always, speedup if cores.

    The equivalence suite proves shards=k is bit-identical on small
    meshes; this figure measures the wall-clock payoff at scale.  The
    ≥3x speedup assertion is gated on host parallelism — on a 1-CPU
    container the forked shards time-slice one core and sharding can
    only break even.
    """
    import os

    from repro.eval.experiments import numa_scaling

    shard_counts = (1, 4)

    def run():
        return numa_scaling(
            "GUPS", nodes=64, threads=1, ops_per_thread=60,
            shard_counts=shard_counts,
        )

    out = run_figure(benchmark, run, "Sharded PDES scaling, 64-node mesh")
    rows = [
        [
            shards,
            "PDES" if cell["sharded"] else "serial",
            cell["windows"],
            f"{cell['wall_s']:.2f}",
            f"{cell['speedup']:.2f}x",
        ]
        for shards, cell in out["runs"].items()
    ]
    print()
    print(
        format_table(
            ["shards", "backend", "windows", "wall s", "speedup"],
            rows,
            title=f"64-node {out['benchmark']} mesh, conservative windows",
        )
    )
    best = max(cell["speedup"] for cell in out["runs"].values())
    attach(
        benchmark,
        identical=out["identical"],
        best_speedup=best,
        shard_counts=list(shard_counts),
    )
    # The contract half: sharding never changes the simulated outcome.
    assert out["identical"]
    assert out["runs"][4]["sharded"] and out["runs"][4]["windows"] > 0
    # The payoff half, only meaningful with real cores to spread over.
    if (os.cpu_count() or 1) >= 4:
        assert best >= 3.0, f"expected >=3x at 4 shards, got {best:.2f}x"