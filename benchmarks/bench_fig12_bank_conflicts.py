"""Figure 12 — bank-conflict reduction per benchmark.

Paper: the MAC removes ~644 M conflicts per benchmark on average (7.73 B
total) at full benchmark scale.  At our trace scale we verify the same
shape: every benchmark's conflicts drop, with the largest absolute
reductions on the high-locality workloads.
"""

from repro.eval import experiments as E
from repro.eval.report import format_table

from conftest import attach, run_figure


def test_fig12_bank_conflicts(benchmark):
    table = run_figure(benchmark, lambda: E.fig12_bank_conflicts(), "Fig. 12")
    rows = [
        [name, raw, mac, raw - mac, f"{(1 - mac / max(raw, 1)):.1%}"]
        for name, (raw, mac) in table.items()
    ]
    print()
    print(
        format_table(
            ["benchmark", "without MAC", "with MAC", "removed", "reduction"],
            rows,
            title="Fig. 12: bank conflicts (paper: avg ~644M removed at "
            "paper scale; shape = all reduced)",
        )
    )
    total_removed = sum(raw - mac for raw, mac in table.values())
    attach(benchmark, total_removed=total_removed)
    for name, (raw, mac) in table.items():
        assert mac < raw, name
    # Average reduction is substantial (>40 % of raw conflicts).
    total_raw = sum(raw for raw, _ in table.values())
    assert total_removed > 0.4 * total_raw
