"""NoC validation — latency-vs-bandwidth against measured HMC curves.

Hadidi et al.'s HMC characterization ("Demystifying the Characteristics
of 3D-Stacked Memories", IISWC 2017 — see PAPERS.md) measured the
canonical loaded-latency curve of real HMC silicon: read latency is
flat from idle up to more than half of peak bandwidth, drifts up a few
percent through the mid-range, and only takes off in a sharp knee close
to saturation.  This bench drives the simulated device's arbitrated
``xbar`` NoC open loop with a uniform-random read stream at a ladder of
injection rates, reconstructs that curve, and scores it against
reference points digitized from the measured shape.

Two calibration caveats keep the reference honest:

* The reference *latency ratios* (latency / unloaded latency at a given
  link utilization) come from the measured curve's shape; the ratio
  form factors out the absolute clock so the comparison survives our
  Table-1 calibration (93 ns unloaded vs ~105 ns on their Gen2 parts).
* The absolute unloaded latency is checked separately against the
  measured ~105 ns with a wider budget, because the model is calibrated
  to the paper's Table 1 rather than to Hadidi et al.'s silicon.

The artifact ``BENCH_noc_validation.json`` (via ``--bench-json-dir``)
records every model/reference pair and the worst relative error, and
the assertions gate the error budget, so CI fails if a timing change
bends the curve outside the measured envelope.
"""

from repro.core.packet import CoalescedRequest, RequestType
from repro.eval.report import format_table
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice

from conftest import attach, run_figure

#: Node clock from Table 1: cycles / CLK_GHZ = nanoseconds.
CLK_GHZ = 3.3

#: Injection periods (cycles between 128 B reads), idle -> saturation.
PERIODS = (64, 32, 16, 12, 10, 8, 6, 5, 4, 3, 2)

#: (link utilization, latency / unloaded latency) reference points from
#: the measured loaded-latency curve: flat to ~30 %, low-single-digit
#: drift through the mid-range, knee past ~75 %.
REFERENCE_CURVE = (
    (0.08, 1.00),
    (0.15, 1.00),
    (0.30, 1.02),
    (0.45, 1.05),
    (0.60, 1.10),
    (0.75, 1.22),
)

#: Max relative error of the model's latency ratio at each reference
#: utilization (the curve-shape gate).
RATIO_BUDGET = 0.05

#: Measured unloaded read latency (ns) on real silicon and the budget
#: for our Table-1-calibrated model against it.
MEASURED_UNLOADED_NS = 105.0
UNLOADED_BUDGET = 0.15

REQUEST_BYTES = 128
REQUESTS = 2000


def _measure(period: int) -> tuple:
    """(achieved GB/s, mean read latency ns) at one injection period."""
    dev = HMCDevice(HMCConfig(noc_topology="xbar"))
    # Deterministic LCG address stream, uniform over the cube.
    x = 0x9E3779B97F4A7C15
    cycle = 0
    latencies = []
    for _ in range(REQUESTS):
        x = (x * 6364136223846793005 + 1442695040888963407) & ((1 << 64) - 1)
        addr = (x >> 16) & ((1 << 30) - 1) & ~(REQUEST_BYTES - 1)
        resp = dev.submit(
            CoalescedRequest(addr=addr, size=REQUEST_BYTES, rtype=RequestType.LOAD),
            cycle,
        )
        if resp is not None:
            latencies.append(resp.complete_cycle - cycle)
        cycle += period
    gbs = REQUESTS * REQUEST_BYTES / (dev.stats.makespan / CLK_GHZ)
    return gbs, (sum(latencies) / len(latencies)) / CLK_GHZ


def _interpolate(curve, utilization: float) -> float:
    """Latency at ``utilization`` by linear interpolation on the curve."""
    lo = curve[0]
    for hi in curve[1:]:
        if hi[0] >= utilization:
            span = hi[0] - lo[0]
            frac = (utilization - lo[0]) / span if span else 0.0
            return lo[1] + frac * (hi[1] - lo[1])
        lo = hi
    return curve[-1][1]


def test_noc_validation(benchmark):
    def run():
        points = [_measure(p) for p in PERIODS]
        peak = max(gbs for gbs, _ in points)
        unloaded = points[0][1]
        curve = [(gbs / peak, ns) for gbs, ns in points]
        scored = []
        for util, ref_ratio in REFERENCE_CURVE:
            model_ratio = _interpolate(curve, util) / unloaded
            scored.append(
                (util, ref_ratio, model_ratio, abs(model_ratio - ref_ratio) / ref_ratio)
            )
        return {
            "peak_gbs": peak,
            "unloaded_ns": unloaded,
            "curve": curve,
            "scored": scored,
        }

    result = run_figure(
        benchmark, run, "NoC validation: loaded latency vs measured HMC"
    )
    scored = result["scored"]
    max_err = max(err for _, _, _, err in scored)
    unloaded_err = (
        abs(result["unloaded_ns"] - MEASURED_UNLOADED_NS) / MEASURED_UNLOADED_NS
    )
    print()
    print(
        format_table(
            ["utilization", "measured ratio", "model ratio", "rel err"],
            [
                [f"{u:.0%}", f"{ref:.3f}", f"{model:.3f}", f"{err:.1%}"]
                for u, ref, model, err in scored
            ],
            title="Loaded-latency ratio vs measured HMC curve (xbar NoC)",
        )
    )
    print(
        f"peak {result['peak_gbs']:.1f} GB/s, unloaded "
        f"{result['unloaded_ns']:.1f} ns (measured {MEASURED_UNLOADED_NS:.0f} ns, "
        f"err {unloaded_err:.1%}), max curve error {max_err:.1%} "
        f"(budget {RATIO_BUDGET:.0%})"
    )
    attach(
        benchmark,
        peak_gbs=result["peak_gbs"],
        unloaded_ns=result["unloaded_ns"],
        unloaded_rel_err=unloaded_err,
        max_curve_rel_err=max_err,
        ratio_budget=RATIO_BUDGET,
        **{
            f"ratio_at_{int(u * 100)}pct": model
            for u, _, model, _ in scored
        },
    )
    # Error-budget gate: the simulated curve must stay inside the
    # measured envelope at every reference utilization, and the
    # unloaded point must stay near the silicon measurement.
    assert max_err <= RATIO_BUDGET
    assert unloaded_err <= UNLOADED_BUDGET
    # Shape sanity: the knee is sharp and sits past 75 % utilization —
    # latency at the last pre-saturation point is still < 1.5x unloaded
    # while the saturated tail is well above it.
    assert scored[-1][2] < 1.5
    sat_ns = result["curve"][-1][1]
    assert sat_ns > 1.5 * result["unloaded_ns"]
    # Aggregate-bandwidth sanity for a 4-link cube (Table 1: 60 GB/s
    # per direction per link; uniform reads land well under 4x that).
    assert 100.0 < result["peak_gbs"] < 240.0
