#!/usr/bin/env python3
"""Compare two sets of BENCH_<name>.json benchmark artifacts.

The benchmark suite (``benchmarks/``) writes one ``BENCH_<name>.json``
per figure driver — wall time plus the driver's key metrics (see
``benchmarks/conftest.py``).  This script diffs a baseline set against a
candidate set and **fails (exit 1) when any benchmark's wall time
regressed by more than the threshold** (default 20%), so CI can gate on
simulator performance the same way it gates on correctness.

Usage::

    python scripts/bench_compare.py BASELINE CANDIDATE [--threshold 0.2]

``BASELINE`` and ``CANDIDATE`` are each either a directory of
``BENCH_*.json`` files or a single artifact file.  Benchmarks present
on only one side are reported but never fail the gate (new or retired
figures are expected as the suite grows).  Metric values present on
both sides are printed for context; only wall time is gated, because
key metrics are deterministic and already pinned by the test suite.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict


def load_artifacts(path: Path) -> Dict[str, dict]:
    """Load ``{benchmark name: artifact}`` from a file or directory."""
    if path.is_file():
        files = [path]
    elif path.is_dir():
        files = sorted(path.glob("BENCH_*.json"))
    else:
        raise FileNotFoundError(f"no such file or directory: {path}")
    out: Dict[str, dict] = {}
    for f in files:
        data = json.loads(f.read_text())
        name = data.get("name") or f.stem
        out[name] = data
    if not out:
        raise FileNotFoundError(f"no BENCH_*.json artifacts under {path}")
    return out


def _fmt_ratio(ratio: float) -> str:
    sign = "+" if ratio >= 1 else ""
    return f"{sign}{(ratio - 1) * 100:.1f}%"


def compare(
    baseline: Dict[str, dict],
    candidate: Dict[str, dict],
    threshold: float,
) -> int:
    """Print the comparison table; return the number of regressions."""
    names = sorted(set(baseline) | set(candidate))
    width = max(len(n) for n in names)
    regressions = 0
    print(f"{'benchmark':<{width}}  {'base s':>9}  {'cand s':>9}  {'delta':>8}")
    for name in names:
        base = baseline.get(name)
        cand = candidate.get(name)
        if base is None:
            print(f"{name:<{width}}  {'-':>9}  "
                  f"{cand.get('wall_time_s', 0) or 0:>9.3f}  {'new':>8}")
            continue
        if cand is None:
            print(f"{name:<{width}}  "
                  f"{base.get('wall_time_s', 0) or 0:>9.3f}  {'-':>9}  "
                  f"{'removed':>8}")
            continue
        b = base.get("wall_time_s") or 0.0
        c = cand.get("wall_time_s") or 0.0
        if b <= 0:
            print(f"{name:<{width}}  {b:>9.3f}  {c:>9.3f}  {'n/a':>8}")
            continue
        ratio = c / b
        flag = ""
        if ratio > 1 + threshold:
            regressions += 1
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>9.3f}  {c:>9.3f}  "
              f"{_fmt_ratio(ratio):>8}{flag}")
        # Context: shared numeric metrics that moved.
        bm = base.get("metrics") or {}
        cm = cand.get("metrics") or {}
        for key in sorted(set(bm) & set(cm)):
            bv, cv = bm[key], cm[key]
            if (
                isinstance(bv, (int, float))
                and isinstance(cv, (int, float))
                and bv != cv
            ):
                print(f"{'':<{width}}    {key}: {bv} -> {cv}")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json artifacts; fail on wall-time regression."
    )
    parser.add_argument("baseline", type=Path, help="baseline file or directory")
    parser.add_argument("candidate", type=Path, help="candidate file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed relative wall-time growth before failing (default 0.2)",
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="PREFIX",
        help="fail unless the candidate set has a benchmark whose name "
        "starts with PREFIX (repeatable); guards against a figure "
        "silently dropping out of the suite",
    )
    args = parser.parse_args(argv)

    baseline = load_artifacts(args.baseline)
    candidate = load_artifacts(args.candidate)
    for prefix in args.require:
        if not any(name.startswith(prefix) for name in candidate):
            print(
                f"required benchmark missing from candidate set: {prefix}*",
                file=sys.stderr,
            )
            return 1
    regressions = compare(baseline, candidate, args.threshold)
    if regressions:
        print(
            f"\n{regressions} benchmark(s) regressed beyond "
            f"{args.threshold * 100:.0f}% wall time",
            file=sys.stderr,
        )
        return 1
    print(f"\nno wall-time regressions beyond {args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
