"""Tests for atomic artifact writes (repro.ioutil)."""

import json
import os

import pytest

from repro.ioutil import (
    atomic_open,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


def test_atomic_write_text_roundtrip(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "hello\n")
    assert path.read_text() == "hello\n"


def test_atomic_write_replaces_existing(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("old")
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_atomic_write_bytes_and_json(tmp_path):
    atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
    assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"
    atomic_write_json(tmp_path / "d.json", {"a": 1}, sort_keys=True)
    assert json.loads((tmp_path / "d.json").read_text()) == {"a": 1}


def test_atomic_open_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "out.txt"
    atomic_write_text(path, "x")
    assert path.read_text() == "x"


def test_failed_write_leaves_target_and_no_temp(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("precious")
    with pytest.raises(RuntimeError):
        with atomic_open(path) as fh:
            fh.write("partial garbage")
            raise RuntimeError("simulated crash mid-write")
    # The original survives untouched and the temp file is cleaned up.
    assert path.read_text() == "precious"
    assert os.listdir(tmp_path) == ["out.txt"]
