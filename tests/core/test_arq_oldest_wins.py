"""Comparator tie-break: the *oldest* mergeable entry wins (regression).

Latency-hiding bypass fills allocate without consulting the comparators,
so several in-flight entries can share one row key.  Hardware resolves a
multi-hit with a priority encoder towards the FIFO head; the model's
``_index`` dict must therefore always point at the oldest mergeable
entry, promote the next-oldest duplicate when the winner leaves, and the
vectorized argmax-style match must encode the identical rule.  Before
the fix, a later allocation could steal the key from an older entry,
silently changing merge choices between the dict and scan paths.
"""

import pytest

from repro.core.arq import AggregatedRequestQueue
from repro.core.config import MACConfig
from repro.core.request import MemoryRequest, RequestType
from repro.sim import vector


def load(row, flit=0, tag=0, tid=0):
    return MemoryRequest(
        addr=(row << 8) | (flit << 4),
        rtype=RequestType.LOAD,
        tid=tid,
        tag=tag,
        core=tid,
    )


def fence(tag=0):
    return MemoryRequest(addr=0, rtype=RequestType.FENCE, tid=0, tag=tag)


def fill_with_bypass_duplicates(arq_entries=8):
    """Exhaust the bypass burst with two same-key fills up front.

    A fresh queue arms a burst of ``arq_entries`` bypass fills, so the
    first two pushes of row 0 become *separate* entries (the duplicate),
    and the remaining six distinct rows drain the budget.
    """
    q = AggregatedRequestQueue(MACConfig(arq_entries=arq_entries))
    assert q.push(load(0, flit=0, tag=0))
    assert q.push(load(0, flit=1, tag=1))
    for i in range(arq_entries - 2):
        assert q.push(load(100 + i, tag=10 + i))
    assert q.bypass_fills == arq_entries
    assert len(q) == arq_entries and q.full
    return q


class TestOldestWins:
    def test_bypass_duplicates_merge_into_the_oldest_entry(self):
        q = fill_with_bypass_duplicates()
        first, second = q.entries()[0], q.entries()[1]
        assert first.key == second.key  # the bypass-made duplicate

        # Queue is full, but a key hit still merges — into the head copy.
        assert q.push(load(0, flit=2, tag=2))
        assert first.target_count == 2
        assert second.target_count == 1
        assert q.merges == 1

    def test_duplicate_is_promoted_when_the_winner_pops(self):
        q = fill_with_bypass_duplicates()
        second = q.entries()[1]
        winner = q.pop()
        assert winner is not second and winner.key == second.key

        # The surviving copy inherits the comparator: same-key pushes
        # now merge into it (free=1 <= threshold, so no new burst).
        assert q.push(load(0, flit=3, tag=3))
        assert second.target_count == 2
        assert q.match_oldest(second.key) is second

    def test_match_oldest_tracks_the_index_throughout(self):
        q = fill_with_bypass_duplicates()
        key = q.entries()[0].key
        assert q.match_oldest(key) is q.entries()[0]
        q.pop()
        assert q.match_oldest(key) is q.entries()[0]
        # Every live key agrees between dict and all-entries scan.
        for e in q.entries():
            assert q.match_oldest(e.key) is q._index[e.key]

    def test_entry_full_hands_the_key_to_a_fresh_allocation(self):
        cfg = MACConfig(arq_entries=8, latency_hiding=False)
        q = AggregatedRequestQueue(cfg)
        for t in range(cfg.target_capacity):
            assert q.push(load(0, flit=t % 16, tag=t))
        full_entry = q.entries()[0]
        assert full_entry.target_count == cfg.target_capacity
        assert q.match_oldest(full_entry.key) is None  # masked at capacity

        # The next same-key push cannot merge; it allocates a new entry
        # which then owns the comparator (no stale hit on the full one).
        assert q.push(load(0, flit=0, tag=99))
        fresh = q.entries()[1]
        assert fresh.target_count == 1
        assert q.match_oldest(fresh.key) is fresh
        assert q.push(load(0, flit=1, tag=100))
        assert fresh.target_count == 2
        assert full_entry.target_count == cfg.target_capacity

    def test_fence_demoted_duplicates_promote_in_fifo_order(self):
        q = AggregatedRequestQueue(MACConfig(arq_entries=8, latency_hiding=False))
        assert q.push(load(0, tag=0))  # E1
        assert q.push(fence(tag=1))
        assert q.push(load(0, flit=1, tag=2))  # E2: blocked merge, new epoch
        assert q.fence_blocked_merges == 1
        assert q.push(fence(tag=3))  # demotes E2 behind E1 (duplicate)

        e1 = q.pop()
        assert not e1.fence and e1.target_count == 1
        # E2 is now the oldest pre-fence copy; a post-fence push of the
        # same key is still fence-blocked (proving E2 holds the key).
        assert q.push(load(0, flit=2, tag=4))  # E3
        assert q.fence_blocked_merges == 2
        e3 = q.entries()[-1]
        assert q.push(load(0, flit=3, tag=5))  # merges into E3 (same epoch)
        assert e3.target_count == 2


@pytest.mark.parametrize("flag", ["1", "0"], ids=["vector", "fallback"])
class TestVectorizedMatch:
    """The numpy argmax path and the scalar fallback are one comparator."""

    def test_merge_choices_identical(self, flag, monkeypatch):
        monkeypatch.setenv(vector.VECTOR_ENV_VAR, flag)
        q = fill_with_bypass_duplicates(arq_entries=16)
        key = q.entries()[0].key
        assert len(q.comparator_view()) >= 8  # wide enough for the numpy path
        assert q.match_oldest(key) is q.entries()[0]
        q.pop()
        assert q.match_oldest(key) is q.entries()[0]
        assert q.match_oldest(-12345) is None

    def test_sanitizer_cross_check_accepts_duplicates(self, flag, monkeypatch):
        """REPRO_SIM_CHECK=1 validates every dict hit against the scan —
        including the multi-hit case the tie-break fix is about."""
        monkeypatch.setenv("REPRO_SIM_CHECK", "1")
        monkeypatch.setenv(vector.VECTOR_ENV_VAR, flag)
        q = fill_with_bypass_duplicates()
        assert q._check_match is True
        assert q.push(load(0, flit=4, tag=50))  # duplicate-key merge, checked
        q.pop()
        assert q.push(load(0, flit=5, tag=51))  # merge into the promoted copy
        assert q.merges == 2
