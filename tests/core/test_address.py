"""Unit + property tests for the physical address codec (Fig. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.address import AddressCodec
from repro.core.config import MACConfig
from repro.core.request import MemoryRequest, RequestType

CODEC = AddressCodec(MACConfig())

addr_strategy = st.integers(min_value=0, max_value=(1 << 52) - 1)


class TestFieldExtraction:
    def test_paper_layout_example(self):
        # Fig. 5: bits 0-3 FLIT offset, 4-7 FLIT number, 8+ row number.
        addr = (0xABC << 8) | (5 << 4) | 0x3
        assert CODEC.row_number(addr) == 0xABC
        assert CODEC.flit_id(addr) == 5
        assert CODEC.flit_offset(addr) == 0x3
        assert CODEC.row_offset(addr) == (5 << 4) | 0x3

    def test_row_base(self):
        assert CODEC.row_base(0x12345) == 0x12300

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CODEC.row_number(-1)

    def test_address_beyond_52_bits_rejected(self):
        with pytest.raises(ValueError):
            CODEC.row_number(1 << 52)

    def test_52_bit_max_accepted(self):
        CODEC.row_number((1 << 52) - 1)


class TestCompose:
    def test_roundtrip_simple(self):
        addr = CODEC.compose(row=7, flit=3, offset=9)
        assert CODEC.row_number(addr) == 7
        assert CODEC.flit_id(addr) == 3
        assert CODEC.flit_offset(addr) == 9

    def test_flit_out_of_range(self):
        with pytest.raises(ValueError):
            CODEC.compose(row=0, flit=16)

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError):
            CODEC.compose(row=0, flit=0, offset=16)

    @given(addr=addr_strategy)
    def test_decompose_compose_identity(self, addr):
        back = CODEC.compose(
            CODEC.row_number(addr), CODEC.flit_id(addr), CODEC.flit_offset(addr)
        )
        assert back == addr


class TestARQKey:
    def test_t_bit_separates_loads_and_stores(self):
        # Section 4.1.2: same row, different type -> different key.
        load = MemoryRequest(addr=0xA00, rtype=RequestType.LOAD)
        store = MemoryRequest(addr=0xA00, rtype=RequestType.STORE)
        assert CODEC.arq_key(load) != CODEC.arq_key(store)

    def test_t_bit_is_msb(self):
        # The store key is the load key with bit 44 (52-8) set.
        load = MemoryRequest(addr=0xA00, rtype=RequestType.LOAD)
        store = MemoryRequest(addr=0xA00, rtype=RequestType.STORE)
        assert CODEC.arq_key(store) - CODEC.arq_key(load) == 1 << 44

    def test_same_row_same_key(self):
        a = MemoryRequest(addr=0xA10, rtype=RequestType.LOAD)
        b = MemoryRequest(addr=0xAF0, rtype=RequestType.LOAD)
        assert CODEC.arq_key(a) == CODEC.arq_key(b)

    def test_fence_has_no_key(self):
        with pytest.raises(ValueError):
            CODEC.arq_key(MemoryRequest(addr=0, rtype=RequestType.FENCE))

    @given(addr=addr_strategy, is_store=st.booleans())
    def test_key_roundtrip(self, addr, is_store):
        rtype = RequestType.STORE if is_store else RequestType.LOAD
        key = CODEC.arq_key(MemoryRequest(addr=addr, rtype=rtype))
        assert CODEC.key_row(key) == CODEC.row_number(addr)
        assert CODEC.key_type(key) is rtype


class TestAlternativeGeometry:
    def test_1kb_rows(self):
        codec = AddressCodec(MACConfig(row_bytes=1024, max_request_bytes=256))
        addr = (3 << 10) | (63 << 4)
        assert codec.row_number(addr) == 3
        assert codec.flit_id(addr) == 63
