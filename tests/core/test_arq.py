"""Unit tests for the Aggregated Request Queue (section 4.1)."""


from repro.core.arq import AggregatedRequestQueue
from repro.core.config import MACConfig
from repro.core.request import MemoryRequest, RequestType


def req(addr, rtype=RequestType.LOAD, tid=0, tag=0):
    return MemoryRequest(addr=addr, rtype=rtype, tid=tid, tag=tag)


def make_arq(**cfg_kwargs):
    defaults = dict(latency_hiding=False)
    defaults.update(cfg_kwargs)
    return AggregatedRequestQueue(MACConfig(**defaults))


class TestMerging:
    def test_same_row_merges(self):
        arq = make_arq()
        arq.push(req(0xA60, tag=1))  # row 0xA, FLIT 6
        arq.push(req(0xA80, tag=2))  # row 0xA, FLIT 8
        assert len(arq) == 1
        entry = arq.peek()
        assert entry.target_count == 2
        assert entry.flit_map.test(6) and entry.flit_map.test(8)

    def test_paper_fig7_example(self):
        """Requests 1,2,4 (loads, row 0xA) merge; request 3 (store) doesn't."""
        arq = make_arq()
        arq.push(req(0xA60, tag=1))                        # load row A flit 6
        arq.push(req(0xA80, tag=2))                        # load row A flit 8
        arq.push(req(0xA90, rtype=RequestType.STORE, tag=3))  # store row A
        arq.push(req(0xA90, tag=4))                        # load row A flit 9
        assert len(arq) == 2
        load_entry, store_entry = arq.entries()
        assert load_entry.target_count == 3
        assert str(load_entry.flit_map) == "0000001101000000"
        assert store_entry.target_count == 1
        assert store_entry.bypass  # B bit set: cannot coalesce further

    def test_different_rows_allocate(self):
        arq = make_arq()
        arq.push(req(0xA00))
        arq.push(req(0xB00))
        assert len(arq) == 2

    def test_loads_and_stores_never_merge(self):
        arq = make_arq()
        arq.push(req(0xA00, rtype=RequestType.LOAD))
        arq.push(req(0xA00, rtype=RequestType.STORE))
        assert len(arq) == 2

    def test_merge_clears_bypass_bit(self):
        arq = make_arq()
        arq.push(req(0xA00))
        assert arq.peek().bypass
        arq.push(req(0xA10))
        assert not arq.peek().bypass

    def test_merge_preserves_order_of_targets(self):
        arq = make_arq()
        for i, f in enumerate((6, 8, 9)):
            arq.push(req(0xA00 | (f << 4), tag=i))
        assert [t.tag for t in arq.peek().targets] == [0, 1, 2]


class TestCapacity:
    def test_full_queue_rejects(self):
        arq = make_arq(arq_entries=2)
        assert arq.push(req(0x100))
        assert arq.push(req(0x200))
        assert not arq.push(req(0x300))
        assert arq.full

    def test_merge_into_full_queue_succeeds(self):
        # Merges need no free entry.
        arq = make_arq(arq_entries=2)
        arq.push(req(0x100))
        arq.push(req(0x200))
        assert arq.push(req(0x110))
        assert arq.pending_targets() == 3

    def test_target_capacity_limits_merges(self):
        """Section 5.3.3: a 64 B entry holds at most 12 targets."""
        arq = make_arq()
        for i in range(14):
            arq.push(req(0xA00 | ((i % 16) << 4), tag=i))
        entries = arq.entries()
        assert entries[0].target_count == 12
        assert len(arq) == 2  # 13th request opened a fresh entry

    def test_free_entries_counter(self):
        arq = make_arq()
        assert arq.free_entries == 32
        arq.push(req(0x100))
        assert arq.free_entries == 31


class TestFences:
    def test_fence_disables_merging(self):
        arq = make_arq()
        arq.push(req(0xA00, tag=1))
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.push(req(0xA10, tag=2))  # same row, but fence pending
        assert len(arq) == 3
        assert arq.fence_blocked_merges == 1

    def test_merging_resumes_after_fence_pops(self):
        arq = make_arq()
        arq.push(req(0xA00, tag=1))
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.push(req(0xB00, tag=2))
        # Drain up to and including the fence.
        arq.pop()  # row A entry
        arq.pop()  # fence
        assert arq.comparators_enabled
        arq.push(req(0xB10, tag=3))
        assert arq.pending_targets() == 2
        assert len(arq) == 1

    def test_fence_in_full_queue_rejected(self):
        arq = make_arq(arq_entries=1)
        arq.push(req(0x100))
        assert not arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))

    def test_nested_fences(self):
        arq = make_arq()
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.pop()
        assert not arq.comparators_enabled  # second fence still pending
        arq.pop()
        assert arq.comparators_enabled

    def test_same_epoch_requests_merge_behind_fence(self):
        # A fence only separates *epochs*: two requests that both arrived
        # after the fence are on the same side of it and may merge with
        # each other while the fence is still pending.
        arq = make_arq()
        arq.push(req(0xA00, tag=1))
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.push(req(0xA10, tag=2))  # blocked from the pre-fence entry
        arq.push(req(0xA20, tag=3))  # merges with tag=2's entry
        assert len(arq) == 3  # pre-fence row A, fence, post-fence row A
        assert arq.fence_blocked_merges == 1
        assert arq.entries()[-1].target_count == 2

    def test_blocked_counting_stops_after_fence_drains(self):
        # Regression: with back-to-back fences the blocked-merge counter
        # kept ticking for rows whose fenced entry (or fence) had already
        # left the queue — i.e. for merges no fence actually prevented.
        arq = make_arq()
        arq.push(req(0xA00, tag=1))
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.push(req(0xB00, tag=2))
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        arq.pop()  # row A entry
        arq.pop()  # fence 1 (fence 2 still pending)
        # Row A's fenced entry is gone; a fresh row-A request has nothing
        # to illegally merge with, so it allocates without being counted.
        assert arq.push(req(0xA10, tag=3))
        assert arq.fence_blocked_merges == 0
        # Row B *is* still resident on the far side of fence 2: blocked.
        arq.push(req(0xB10, tag=4))
        assert arq.fence_blocked_merges == 1
        # Drain row B and fence 2; the fenced epoch is over, so same-row
        # pushes merge freely again and the counter stays put.
        while arq._fence_pending:
            arq.pop()
        arq.push(req(0xB20, tag=5))
        assert arq.fence_blocked_merges == 1
        assert arq.entries()[-1].target_count == 2  # tag 4 + tag 5 merged


class TestAtomics:
    def test_atomic_never_merges(self):
        arq = make_arq()
        arq.push(req(0xA00))
        arq.push(MemoryRequest(addr=0xA10, rtype=RequestType.ATOMIC))
        arq.push(req(0xA20))
        entries = arq.entries()
        assert len(entries) == 2  # load entry merged; atomic separate
        assert entries[1].atomic and entries[1].bypass

    def test_atomic_does_not_become_merge_target(self):
        arq = make_arq()
        arq.push(MemoryRequest(addr=0xA10, rtype=RequestType.ATOMIC))
        arq.push(req(0xA20))
        assert len(arq) == 2


class TestPop:
    def test_fifo_order(self):
        arq = make_arq()
        arq.push(req(0x100))
        arq.push(req(0x200))
        assert arq.pop().key == AggregatedRequestQueue(
            MACConfig()
        ).codec.arq_key(req(0x100))
        assert len(arq) == 1

    def test_pop_empty_returns_none(self):
        assert make_arq().pop() is None

    def test_popped_entry_not_merge_target(self):
        arq = make_arq()
        arq.push(req(0xA00, tag=1))
        arq.pop()
        arq.push(req(0xA10, tag=2))
        assert len(arq) == 1
        assert arq.peek().target_count == 1


class TestLatencyHiding:
    def test_burst_fill_skips_comparators(self):
        """Edge-triggered: the first burst fills free entries directly."""
        arq = AggregatedRequestQueue(MACConfig(latency_hiding=True))
        arq.push(req(0xA00, tag=1))
        arq.push(req(0xA10, tag=2))  # same row — but bypass budget active
        assert len(arq) == 2
        assert arq.bypass_fills == 2

    def test_rearm_requires_busy_queue(self):
        cfg = MACConfig(arq_entries=4, latency_hiding=True)
        arq = AggregatedRequestQueue(cfg)
        # Initial burst: budget = 4 (all free).
        for i in range(4):
            arq.push(req(0x100 * (i + 1)))
        assert arq.bypass_fills == 4
        # Queue now full -> threshold crossed -> mechanism re-armed, but
        # merges into pending entries work again.
        arq.pop()
        arq.pop()
        arq.pop()  # free = 3 > threshold 2, fires a fresh burst
        arq.push(req(0x500))
        assert arq.bypass_fills == 5

    def test_comparators_used_when_budget_exhausted(self):
        cfg = MACConfig(arq_entries=4, latency_hiding=True)
        arq = AggregatedRequestQueue(cfg)
        for i in range(4):
            arq.push(req(0x100 * (i + 1), tag=i))
        # Budget exhausted and queue full: this merges.
        arq.push(req(0x110, tag=9))
        assert arq.pending_targets() == 5
        assert len(arq) == 4


class TestConservation:
    def test_every_pushed_request_is_in_exactly_one_entry(self):
        import random

        rng = random.Random(7)
        arq = make_arq()
        pushed = []
        popped_targets = 0
        for i in range(500):
            r = req(rng.randrange(64) << 8 | rng.randrange(16) << 4, tag=i % 65536,
                    rtype=rng.choice((RequestType.LOAD, RequestType.STORE)))
            if arq.push(r, cycle=i):
                pushed.append(r)
            if arq.full or rng.random() < 0.3:
                e = arq.pop()
                if e is not None:
                    popped_targets += e.target_count
        while not arq.empty:
            popped_targets += arq.pop().target_count
        assert popped_targets == len(pushed)
