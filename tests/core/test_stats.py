"""Unit tests for MACStats and the packet types."""


from repro.core.packet import (
    CONTROL_BYTES_PER_ACCESS,
    CONTROL_BYTES_PER_PACKET,
    CoalescedRequest,
    CoalescedResponse,
    satisfied_pairs,
)
from repro.core.request import MemoryRequest, RequestType, Target
from repro.core.stats import MACStats


def pkt(size=64, n=2, rtype=RequestType.LOAD, bypassed=False):
    raws = [
        MemoryRequest(addr=0x100 + 16 * i, rtype=rtype, tid=i, tag=i) for i in range(n)
    ]
    return CoalescedRequest(
        addr=0x100,
        size=size,
        rtype=rtype,
        targets=[Target(i, i, i % 16) for i in range(n)],
        requests=raws,
        bypassed=bypassed,
    )


class TestPacket:
    def test_control_constants_match_paper(self):
        # Section 2.2.2: 16 B per packet, 32 B per access.
        assert CONTROL_BYTES_PER_PACKET == 16
        assert CONTROL_BYTES_PER_ACCESS == 32

    def test_wire_bytes(self):
        assert pkt(size=64).wire_bytes == 96
        assert pkt(size=256).wire_bytes == 288

    def test_covers(self):
        p = pkt(size=64)
        assert p.covers(0x100) and p.covers(0x13F)
        assert not p.covers(0x140) and not p.covers(0xFF)

    def test_is_write(self):
        assert pkt(rtype=RequestType.STORE).is_write
        assert not pkt().is_write

    def test_response_latency(self):
        p = pkt()
        p.issue_cycle = 100
        r = CoalescedResponse(request=p, complete_cycle=400)
        assert r.latency == 300
        assert len(satisfied_pairs(r)) == 2


class TestMACStats:
    def test_coalescing_efficiency(self):
        st = MACStats()
        for _ in range(4):
            st.record_raw(RequestType.LOAD)
        st.record_packet(pkt(n=4))
        assert st.coalescing_efficiency == 0.75
        assert st.avg_targets_per_packet == 4.0

    def test_fences_excluded_from_memory_requests(self):
        st = MACStats()
        st.record_raw(RequestType.LOAD)
        st.record_raw(RequestType.FENCE)
        assert st.memory_raw_requests == 1

    def test_paper_consistency_check(self):
        """52.86 % efficiency <-> ~2.12 targets/packet (DESIGN.md sec. 3)."""
        st = MACStats()
        raw = 10000
        packets = int(raw * (1 - 0.5286))
        for _ in range(raw):
            st.record_raw(RequestType.LOAD)
        per = raw // packets
        rem = raw - per * packets
        for i in range(packets):
            st.record_packet(pkt(n=per + (1 if i < rem else 0)))
        assert abs(st.coalescing_efficiency - 0.5286) < 0.001
        assert abs(st.avg_targets_per_packet - 2.12) < 0.02

    def test_bandwidth_efficiency_16b_raw(self):
        """Raw 16 B dispatch must score exactly 1/3 (Fig. 13 baseline)."""
        st = MACStats()
        for i in range(10):
            st.record_raw(RequestType.LOAD)
            st.record_packet(pkt(size=16, n=1, bypassed=True))
        assert abs(st.coalesced_bandwidth_efficiency - 1 / 3) < 1e-9

    def test_bandwidth_saved(self):
        st = MACStats()
        for _ in range(16):
            st.record_raw(RequestType.LOAD)
        st.record_packet(pkt(size=256, n=16))
        # Fig. 2's arithmetic: 16 raw accesses move 768 B, one coalesced
        # 256 B access moves 288 B.  Control-only saving (Fig. 14's
        # metric): 32 B x 15 eliminated requests = 480 B, which equals
        # the net-wire saving here because the row is fully used.
        assert st.raw_wire_bytes() == 768
        assert st.coalesced_wire_bytes == 288
        assert st.bandwidth_saved_bytes() == 480
        assert st.wire_saved_bytes() == 480

    def test_control_vs_wire_saving_diverge_on_overfetch(self):
        from repro.core.request import RequestType

        st = MACStats()
        for _ in range(2):
            st.record_raw(RequestType.LOAD)
        st.record_packet(pkt(size=64, n=2))
        # Two 16 B demands in one 64 B packet: control saves 32 B but
        # the wire moves the same 96 B either way.
        assert st.bandwidth_saved_bytes() == 32
        assert st.wire_saved_bytes() == 0

    def test_size_histogram(self):
        st = MACStats()
        st.record_packet(pkt(size=64))
        st.record_packet(pkt(size=64))
        st.record_packet(pkt(size=128))
        assert st.packet_sizes == {64: 2, 128: 1}

    def test_merge(self):
        a, b = MACStats(), MACStats()
        a.record_raw(RequestType.LOAD)
        a.record_packet(pkt(n=1))
        b.record_raw(RequestType.STORE)
        b.record_packet(pkt(n=1, rtype=RequestType.STORE))
        a.merge(b)
        assert a.raw_requests == 2
        assert a.coalesced_packets == 2
        assert a.raw_stores == 1

    def test_empty_stats(self):
        st = MACStats()
        assert st.coalescing_efficiency == 0.0
        assert st.avg_targets_per_packet == 0.0
        assert st.max_targets_per_packet == 0
        assert st.coalesced_bandwidth_efficiency == 0.0

    def test_efficiency_undefined_without_memory_requests(self):
        # Regression: a stream with zero *memory* raw requests (e.g.
        # fences/atomics only) that still emitted packets used to report
        # a perfect-looking 0.0 efficiency; it must be nan so sweeps and
        # rankings cannot treat the degenerate cell as a real result.
        import math

        st = MACStats()
        st.record_raw(RequestType.FENCE)
        st.record_packet(pkt(n=1))
        assert st.memory_raw_requests == 0
        assert math.isnan(st.coalescing_efficiency)
        assert math.isnan(st.snapshot()["coalescing_efficiency"])
