"""MAC engine tests: cycle engine, window engine, and their agreement."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig
from repro.core.mac import MAC, coalesce_trace_fast
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats


def load(addr, tag=0, tid=0):
    return MemoryRequest(addr=addr, rtype=RequestType.LOAD, tag=tag, tid=tid)


def random_trace(n, rows, seed, store_frac=0.3, fence_frac=0.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        if fence_frac and rng.random() < fence_frac:
            out.append(MemoryRequest(addr=0, rtype=RequestType.FENCE))
            continue
        rtype = RequestType.STORE if rng.random() < store_frac else RequestType.LOAD
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        out.append(MemoryRequest(addr=addr, rtype=rtype, tid=i % 8, tag=i % 65536))
    return out


class TestCycleEngine:
    def test_conservation(self):
        mac = MAC()
        trace = random_trace(1000, 60, seed=1)
        pkts = mac.process(trace)
        n_mem = sum(1 for r in trace if not r.is_fence)
        assert sum(p.raw_count for p in pkts) == n_mem

    def test_idle_after_run(self):
        mac = MAC()
        for i in range(10):
            mac.submit(load(i << 8, tag=i))
        mac.run()
        assert mac.idle()

    def test_coalesces_same_row_bursts(self):
        mac = MAC(MACConfig(latency_hiding=False))
        trace = [load(0xA00 | (f << 4), tag=f) for f in range(8)]
        pkts = mac.process(trace)
        assert len(pkts) < 8
        assert mac.stats.coalescing_efficiency > 0

    def test_latency_hiding_boot_burst_fills_without_merging(self):
        """Section 4.1: at boot the free counter exceeds half the ARQ, so
        the following requests fill entries directly (no comparison) —
        the mechanism that keeps I/O-bound phases and program boot from
        stalling behind the comparators."""
        mac = MAC()  # latency hiding on by default
        trace = [load(0xA00 | (f << 4), tag=f) for f in range(8)]
        pkts = mac.process(trace)
        assert len(pkts) == 8
        assert mac.aggregator.arq.bypass_fills == 8

    def test_submit_full_queue_returns_false(self):
        mac = MAC(queue_capacity=2)
        assert mac.submit(load(0x100))
        assert mac.submit(load(0x200))
        assert not mac.submit(load(0x300))

    def test_atomics_emitted_as_16b(self):
        mac = MAC()
        mac.submit(MemoryRequest(addr=0xA00, rtype=RequestType.ATOMIC))
        pkts = mac.run()
        assert len(pkts) == 1
        assert pkts[0].size == 16
        assert pkts[0].rtype is RequestType.ATOMIC

    def test_fences_partition_packets(self):
        mac = MAC()
        trace = [load(0xA00, tag=1),
                 MemoryRequest(addr=0, rtype=RequestType.FENCE),
                 load(0xA10, tag=2)]
        pkts = mac.process(trace)
        assert len(pkts) == 2


class TestWindowEngine:
    def test_conservation(self):
        trace = random_trace(2000, 80, seed=2, fence_frac=0.01)
        st_ = MACStats()
        pkts = coalesce_trace_fast(trace, stats=st_)
        n_mem = sum(1 for r in trace if not r.is_fence)
        assert sum(p.raw_count for p in pkts) == n_mem
        assert st_.coalesced_packets == len(pkts)

    def test_perfect_burst_hits_target_cap(self):
        # 12 same-row requests (the entry capacity) -> one packet.
        trace = [load(0xA00 | ((f % 16) << 4), tag=f) for f in range(12)]
        pkts = coalesce_trace_fast(trace)
        assert len(pkts) == 1
        assert pkts[0].raw_count == 12

    def test_capacity_split(self):
        trace = [load(0xA00 | ((f % 16) << 4), tag=f) for f in range(13)]
        pkts = coalesce_trace_fast(trace)
        assert len(pkts) == 2
        assert sorted(p.raw_count for p in pkts) == [1, 12]

    def test_window_eviction(self):
        cfg = MACConfig(arq_entries=2, latency_hiding=False)
        # Rows A, B, C then A again: A evicted before its reuse.
        trace = [load(0xA00, tag=1), load(0xB00, tag=2),
                 load(0xC00, tag=3), load(0xA10, tag=4)]
        pkts = coalesce_trace_fast(trace, cfg)
        assert len(pkts) == 4

    def test_types_never_mix(self):
        trace = random_trace(1500, 20, seed=3, store_frac=0.5)
        for pkt in coalesce_trace_fast(trace):
            kinds = {r.rtype for r in pkt.requests}
            assert len(kinds) == 1

    def test_packet_covers_all_its_targets(self):
        trace = random_trace(1500, 30, seed=4)
        for pkt in coalesce_trace_fast(trace):
            for t in pkt.targets:
                flit_addr = (pkt.addr & ~0xFF) + t.flit_id * 16
                assert pkt.covers(flit_addr)

    def test_fence_drains_window(self):
        trace = [load(0xA00, tag=1),
                 MemoryRequest(addr=0, rtype=RequestType.FENCE),
                 load(0xA10, tag=2)]
        pkts = coalesce_trace_fast(trace)
        assert len(pkts) == 2


class TestEngineAgreement:
    """The window engine is the steady-state semantics of the cycle engine."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_both_conserve_requests(self, seed):
        trace = random_trace(300, 25, seed=seed, store_frac=0.4, fence_frac=0.02)
        n_mem = sum(1 for r in trace if not r.is_fence)
        fast = coalesce_trace_fast([
            MemoryRequest(addr=r.addr, rtype=r.rtype, tid=r.tid, tag=r.tag)
            for r in trace
        ])
        mac = MAC()
        cyc = mac.process([
            MemoryRequest(addr=r.addr, rtype=r.rtype, tid=r.tid, tag=r.tag)
            for r in trace
        ])
        assert sum(p.raw_count for p in fast) == n_mem
        assert sum(p.raw_count for p in cyc) == n_mem

    def test_efficiencies_close_on_hot_trace(self):
        trace = random_trace(4000, 40, seed=9)
        st_fast = MACStats()
        coalesce_trace_fast(
            [MemoryRequest(addr=r.addr, rtype=r.rtype, tag=r.tag) for r in trace],
            stats=st_fast,
        )
        mac = MAC()
        mac.process([MemoryRequest(addr=r.addr, rtype=r.rtype, tag=r.tag) for r in trace])
        # The cycle engine pays a warm-up/bypass transient; the two must
        # still land in the same regime.
        assert abs(st_fast.coalescing_efficiency - mac.stats.coalescing_efficiency) < 0.15


class TestResponsePath:
    def test_responses_complete_requests(self):
        from repro.hmc.device import HMCDevice

        mac = MAC()
        trace = [load(0xA00 | (f << 4), tag=f, tid=1) for f in range(6)]
        pkts = mac.process(trace)
        dev = HMCDevice()
        for p in pkts:
            mac.receive_response(dev.submit(p, p.issue_cycle))
        local, remote = mac.deliver_responses()
        assert len(local) == 6 and not remote
        assert all(r.complete_cycle > 0 for _, r in local)
