"""Unit + property tests for the FLIT table (section 4.2.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.flit_table import BuiltSegment, FlitTable, FlitTablePolicy

patterns = st.integers(min_value=0, max_value=15)


def covered_chunks(segments):
    out = set()
    for s in segments:
        out.update(range(s.offset, s.offset + s.length))
    return out


def set_chunks(pattern):
    return {i for i in range(4) if (pattern >> i) & 1}


class TestSpanPolicy:
    table = FlitTable(policy=FlitTablePolicy.SPAN)

    def test_empty_pattern(self):
        assert self.table.lookup(0) == ()

    def test_single_chunk_64(self):
        # Paper: one set bit -> 64 B request.
        for g in range(4):
            segs = self.table.lookup(1 << g)
            assert len(segs) == 1
            assert segs[0] == BuiltSegment(g, 1)
            assert self.table.request_bytes(1 << g) == 64

    def test_paper_example_0110_is_128(self):
        # Fig. 7/8: pattern 0110 -> one 128 B transaction.
        segs = self.table.lookup(0b0110)
        assert len(segs) == 1
        assert segs[0].length == 2
        assert self.table.request_bytes(0b0110) == 128

    def test_adjacent_aligned_pairs_128(self):
        assert self.table.request_bytes(0b0011) == 128
        assert self.table.request_bytes(0b1100) == 128

    def test_full_row_256(self):
        assert self.table.request_bytes(0b1111) == 256

    def test_sparse_pair_widens_to_256(self):
        # 1001 cannot be covered by a contiguous 128 B transaction.
        assert self.table.request_bytes(0b1001) == 256

    def test_three_chunks_256(self):
        assert self.table.request_bytes(0b0111) == 256
        assert self.table.request_bytes(0b1011) == 256

    def test_always_single_packet(self):
        for p in range(1, 16):
            assert self.table.packet_count(p) == 1

    @given(pattern=patterns)
    def test_coverage(self, pattern):
        """Every requested chunk must be inside the emitted segment."""
        assert set_chunks(pattern) <= covered_chunks(self.table.lookup(pattern))

    @given(pattern=patterns)
    def test_sizes_are_supported(self, pattern):
        if pattern:
            assert self.table.request_bytes(pattern) in (64, 128, 256)

    @given(pattern=patterns)
    def test_segment_stays_in_row(self, pattern):
        for s in self.table.lookup(pattern):
            assert 0 <= s.offset and s.offset + s.length <= 4


class TestPopcountPolicy:
    table = FlitTable(policy=FlitTablePolicy.POPCOUNT)

    def test_matches_paper_text_sizing(self):
        # 1, 2, 3/4 set bits -> 64, 128, 256 B (when geometrically valid).
        assert self.table.request_bytes(0b0001) == 64
        assert self.table.request_bytes(0b0011) == 128
        assert self.table.request_bytes(0b0111) == 256
        assert self.table.request_bytes(0b1111) == 256

    def test_sparse_pair_falls_back_to_span(self):
        assert self.table.request_bytes(0b1001) == 256

    @given(pattern=patterns)
    def test_coverage(self, pattern):
        assert set_chunks(pattern) <= covered_chunks(self.table.lookup(pattern))


class TestExactPolicy:
    table = FlitTable(policy=FlitTablePolicy.EXACT)

    def test_no_overfetch_ever(self):
        for p in range(16):
            assert covered_chunks(self.table.lookup(p)) == set_chunks(p)

    def test_sparse_pair_two_packets(self):
        assert self.table.packet_count(0b1001) == 2
        assert self.table.request_bytes(0b1001) == 128  # 2 x 64 B

    def test_run_detection(self):
        segs = self.table.lookup(0b1011)
        assert segs == (BuiltSegment(0, 2), BuiltSegment(3, 1))


class TestTableProperties:
    def test_storage_matches_paper(self):
        # Section 4.2.1: 12 B for the 16-entry table.
        assert FlitTable().storage_bytes == 12

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError):
            FlitTable().lookup(16)
        with pytest.raises(ValueError):
            FlitTable().lookup(-1)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            FlitTable(groups=0)
        with pytest.raises(ValueError):
            FlitTable(groups=17)
        with pytest.raises(ValueError):
            FlitTable(chunk_bytes=0)

    def test_hbm_geometry(self):
        # Section 4.3: 1 KB rows -> 16 groups, larger LUT.
        t = FlitTable(groups=16, chunk_bytes=64)
        assert t.request_bytes(1) == 64
        assert t.request_bytes((1 << 16) - 1) == 1024

    @given(pattern=patterns)
    def test_policies_agree_on_contiguous_patterns(self, pattern):
        """SPAN and POPCOUNT emit identical packets for contiguous runs."""
        chunks = sorted(set_chunks(pattern))
        contiguous = chunks == list(range(chunks[0], chunks[-1] + 1)) if chunks else True
        if contiguous and chunks:
            span = FlitTable(policy=FlitTablePolicy.SPAN).lookup(pattern)
            pop = FlitTable(policy=FlitTablePolicy.POPCOUNT).lookup(pattern)
            if len(chunks) != 3:  # 3 chunks: popcount says 256, span may say 256 too
                assert span == pop
