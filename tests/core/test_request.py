"""Unit tests for raw request primitives."""

import pytest

from repro.core.request import (
    MAX_TAG,
    MAX_TID,
    MemoryRequest,
    RequestType,
    TARGET_BYTES,
    Target,
)


class TestRequestType:
    def test_t_bit_load(self):
        assert RequestType.LOAD.t_bit == 0

    def test_t_bit_store(self):
        assert RequestType.STORE.t_bit == 1

    def test_t_bit_fence_raises(self):
        with pytest.raises(ValueError):
            RequestType.FENCE.t_bit

    def test_t_bit_atomic_raises(self):
        with pytest.raises(ValueError):
            RequestType.ATOMIC.t_bit

    def test_coalescable(self):
        assert RequestType.LOAD.coalescable
        assert RequestType.STORE.coalescable
        assert not RequestType.FENCE.coalescable
        assert not RequestType.ATOMIC.coalescable

    def test_values_are_stable(self):
        # The binary trace format depends on these.
        assert RequestType.LOAD.value == 0
        assert RequestType.STORE.value == 1
        assert RequestType.FENCE.value == 2
        assert RequestType.ATOMIC.value == 3


class TestTarget:
    def test_valid(self):
        t = Target(tid=100, tag=200, flit_id=5)
        assert (t.tid, t.tag, t.flit_id) == (100, 200, 5)

    def test_field_widths_match_paper(self):
        # Section 4.1.1: 2 B TID, 2 B tag, 4-bit FLIT id = 4.5 B.
        assert MAX_TID == 0xFFFF
        assert MAX_TAG == 0xFFFF
        assert TARGET_BYTES == 4.5

    def test_tid_bounds(self):
        Target(tid=MAX_TID, tag=0, flit_id=0)
        with pytest.raises(ValueError):
            Target(tid=MAX_TID + 1, tag=0, flit_id=0)
        with pytest.raises(ValueError):
            Target(tid=-1, tag=0, flit_id=0)

    def test_tag_bounds(self):
        with pytest.raises(ValueError):
            Target(tid=0, tag=MAX_TAG + 1, flit_id=0)

    def test_flit_bounds(self):
        Target(tid=0, tag=0, flit_id=15)   # paper's 256 B rows use 0..15
        Target(tid=0, tag=0, flit_id=63)   # 1 KB HBM rows (section 4.3)
        with pytest.raises(ValueError):
            Target(tid=0, tag=0, flit_id=64)

    def test_frozen(self):
        t = Target(1, 2, 3)
        with pytest.raises(AttributeError):
            t.tid = 9


class TestMemoryRequest:
    def test_defaults(self):
        r = MemoryRequest(addr=0x100, rtype=RequestType.LOAD)
        assert r.size == 8
        assert r.complete_cycle == -1
        assert r.latency == -1

    def test_is_fence(self):
        assert MemoryRequest(addr=0, rtype=RequestType.FENCE).is_fence
        assert not MemoryRequest(addr=0, rtype=RequestType.LOAD).is_fence

    def test_is_atomic(self):
        assert MemoryRequest(addr=0, rtype=RequestType.ATOMIC).is_atomic

    def test_latency_after_completion(self):
        r = MemoryRequest(addr=0, rtype=RequestType.LOAD, issue_cycle=10)
        r.complete_cycle = 110
        assert r.latency == 100
