"""Unit tests for the two-stage pipelined Request Builder (section 4.2)."""

import pytest

from repro.core.address import AddressCodec
from repro.core.arq import AggregatedRequestQueue
from repro.core.builder import RequestBuilder, bypass_packet
from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.request import MemoryRequest, RequestType

CFG = MACConfig(latency_hiding=False)


def entry_for(addrs, rtype=RequestType.LOAD):
    arq = AggregatedRequestQueue(CFG)
    for i, a in enumerate(addrs):
        assert arq.push(MemoryRequest(addr=a, rtype=rtype, tid=0, tag=i))
    assert len(arq) == 1
    return arq.pop()


class TestFunctionalBuild:
    def test_paper_fig8_example(self):
        """FLITs 6,8,9 -> pattern 0110 -> one 128 B packet at offset 64."""
        entry = entry_for([0xA60, 0xA80, 0xA90])
        builder = RequestBuilder(CFG)
        pkts = builder.build(entry)
        assert len(pkts) == 1
        pkt = pkts[0]
        assert pkt.size == 128
        assert pkt.addr == 0xA00 + 64
        assert pkt.raw_count == 3
        assert pkt.rtype is RequestType.LOAD

    def test_single_flit_builds_64(self):
        entry = entry_for([0xA00])
        pkts = RequestBuilder(CFG).build(entry)
        assert pkts[0].size == 64
        assert pkts[0].addr == 0xA00

    def test_full_row_builds_256(self):
        entry = entry_for([0xA00 | (f << 4) for f in range(12)])  # 12-target cap
        pkts = RequestBuilder(CFG).build(entry)
        assert pkts[0].size == 256
        assert pkts[0].addr == 0xA00

    def test_store_entry_builds_store_packet(self):
        entry = entry_for([0xB00, 0xB10], rtype=RequestType.STORE)
        pkt = RequestBuilder(CFG).build(entry)[0]
        assert pkt.rtype is RequestType.STORE
        assert pkt.is_write

    def test_targets_partition_across_exact_segments(self):
        """EXACT policy splits sparse rows; targets follow their chunk."""
        entry = entry_for([0xA00, 0xAF0])  # chunks 0 and 3
        builder = RequestBuilder(CFG, policy=FlitTablePolicy.EXACT)
        pkts = builder.build(entry)
        assert len(pkts) == 2
        assert [p.raw_count for p in pkts] == [1, 1]
        assert pkts[0].covers(0xA00) and pkts[1].covers(0xAF0)

    def test_every_target_covered(self):
        entry = entry_for([0xA00 | (f << 4) for f in (1, 5, 9, 13)])
        for policy in FlitTablePolicy:
            pkts = RequestBuilder(CFG, policy=policy).build(entry)
            for t, raw in zip(entry.targets, entry.requests):
                flit_addr = 0xA00 + t.flit_id * 16
                assert any(p.covers(flit_addr) for p in pkts)


class TestPipelineTiming:
    def test_issue_rate_is_half(self):
        """Section 4.4: the builder issues 0.5 packets per cycle."""
        builder = RequestBuilder(CFG)
        cycle = 0
        emitted = []
        for i in range(10):
            while not builder.can_accept():
                emitted.extend(builder.tick(cycle))
                cycle += 1
            builder.accept(entry_for([0x100 * (i + 1)]))
            emitted.extend(builder.tick(cycle))
            cycle += 1
        while builder.busy:
            emitted.extend(builder.tick(cycle))
            cycle += 1
        assert len(emitted) == 10
        # Steady-state spacing between completions is pop_interval = 2.
        gaps = [
            b.issue_cycle - a.issue_cycle for a, b in zip(emitted[1:-1], emitted[2:])
        ]
        assert all(g == 2 for g in gaps)

    def test_first_packet_latency_is_three_cycles(self):
        """Stage 1 (1 cycle) + stage 2 (2 cycles) = 3 cycles end to end.

        With 0-indexed ticks the packet emerges on the third tick, i.e.
        issue_cycle == 2 after occupying cycles 0, 1 and 2.
        """
        builder = RequestBuilder(CFG)
        builder.accept(entry_for([0x100]))
        out = []
        ticks = 0
        for cycle in range(5):
            out.extend(builder.tick(cycle))
            ticks += 1
            if out:
                break
        assert ticks == 3
        assert out[0].issue_cycle == 2

    def test_accept_when_busy_raises(self):
        builder = RequestBuilder(CFG)
        builder.accept(entry_for([0x100]))
        with pytest.raises(RuntimeError):
            builder.accept(entry_for([0x200]))

    def test_fence_rejected(self):
        builder = RequestBuilder(CFG)
        arq = AggregatedRequestQueue(CFG)
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        with pytest.raises(ValueError):
            builder.accept(arq.pop())

    def test_flush_drains_both_stages(self):
        builder = RequestBuilder(CFG)
        builder.accept(entry_for([0x100]))
        builder.tick(0)  # moves into stage 2
        builder.accept(entry_for([0x200]))
        pkts = builder.flush(1)
        assert len(pkts) == 2
        assert not builder.busy


class TestBypassPacket:
    def test_single_flit_16b(self):
        arq = AggregatedRequestQueue(CFG)
        arq.push(MemoryRequest(addr=0xA63, rtype=RequestType.LOAD, tid=3, tag=9))
        entry = arq.pop()
        pkt = bypass_packet(entry, AddressCodec(CFG), CFG)
        assert pkt.size == 16
        assert pkt.addr == 0xA60  # FLIT aligned
        assert pkt.bypassed
        assert pkt.targets[0].tid == 3

    def test_atomic_bypass(self):
        arq = AggregatedRequestQueue(CFG)
        arq.push(MemoryRequest(addr=0xB20, rtype=RequestType.ATOMIC))
        pkt = bypass_packet(arq.pop(), AddressCodec(CFG), CFG)
        assert pkt.rtype is RequestType.ATOMIC
        assert pkt.size == 16

    def test_fence_bypass_raises(self):
        arq = AggregatedRequestQueue(CFG)
        arq.push(MemoryRequest(addr=0, rtype=RequestType.FENCE))
        with pytest.raises(ValueError):
            bypass_packet(arq.pop(), AddressCodec(CFG), CFG)
