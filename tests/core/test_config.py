"""Unit tests for MACConfig / SystemConfig."""

import pytest

from repro.core.config import MACConfig, PAPER_CONFIG, PAPER_SYSTEM


class TestMACConfigDefaults:
    """The defaults must reproduce Table 1 and sections 4.1-4.4."""

    def test_table1_values(self):
        cfg = PAPER_CONFIG
        assert cfg.arq_entries == 32
        assert cfg.arq_entry_bytes == 64
        assert cfg.row_bytes == 256
        assert cfg.flit_bytes == 16

    def test_flits_per_row(self):
        assert PAPER_CONFIG.flits_per_row == 16

    def test_groups(self):
        # Builder stage 1 partitions 16 FLITs into 4 groups of 4.
        assert PAPER_CONFIG.groups_per_row == 4
        assert PAPER_CONFIG.flits_per_group == 4

    def test_offset_bits(self):
        # Fig. 5: bits 0..3 FLIT offset, bits 4..7 FLIT number.
        assert PAPER_CONFIG.flit_offset_bits == 4
        assert PAPER_CONFIG.row_offset_bits == 8

    def test_target_capacity_is_12(self):
        # Section 5.3.3: (64 - 10) / 4.5 = 12 targets per entry.
        assert PAPER_CONFIG.target_capacity == 12

    def test_bypass_threshold_is_half(self):
        assert PAPER_CONFIG.bypass_threshold == 16

    def test_issue_rate(self):
        # Section 4.4: 0.5 requests per cycle.
        assert PAPER_CONFIG.pop_interval == 2
        assert PAPER_CONFIG.accepts_per_cycle == 1


class TestMACConfigValidation:
    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MACConfig(arq_entries=0)

    def test_row_not_flit_multiple_rejected(self):
        with pytest.raises(ValueError):
            MACConfig(row_bytes=250)

    def test_request_bigger_than_row_rejected(self):
        with pytest.raises(ValueError):
            MACConfig(max_request_bytes=512, row_bytes=256)

    def test_wide_flit_map_rejected(self):
        with pytest.raises(ValueError):
            MACConfig(row_bytes=2048, flit_bytes=16)  # 128 > 64 bits

    def test_zero_pop_interval_rejected(self):
        with pytest.raises(ValueError):
            MACConfig(pop_interval=0)

    def test_misaligned_min_request_rejected(self):
        with pytest.raises(ValueError):
            MACConfig(min_request_bytes=60)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MACConfig().arq_entries = 64


class TestAlternativeGeometries:
    def test_hbm_row(self):
        # Section 4.3: HBM's 1 KB rows just enlarge the FLIT map/table.
        cfg = MACConfig(row_bytes=1024, max_request_bytes=256)
        assert cfg.flits_per_row == 64
        assert cfg.groups_per_row == 16
        assert cfg.row_offset_bits == 10

    def test_small_arq(self):
        cfg = MACConfig(arq_entries=8)
        assert cfg.bypass_threshold == 4

    def test_capacity_scales_with_entry_bytes(self):
        big = MACConfig(arq_entry_bytes=128)
        assert big.target_capacity == (128 - 10) * 2 // 9


class TestSystemConfig:
    def test_table1(self):
        s = PAPER_SYSTEM
        assert s.cores == 8
        assert s.cpu_freq_ghz == 3.3
        assert s.spm_bytes == 1 << 20
        assert s.hmc_links == 4
        assert s.hmc_capacity_gb == 8

    def test_latency_conversion(self):
        s = PAPER_SYSTEM
        # 93 ns at 3.3 GHz ~ 307 cycles; 1 ns SPM ~ 3 cycles.
        assert s.hmc_latency_cycles == round(93 * 3.3)
        assert s.spm_latency_cycles == 3
