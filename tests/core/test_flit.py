"""Unit + property tests for the FLIT map (Fig. 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.flit import FlitMap

bits16 = st.integers(min_value=0, max_value=0xFFFF)


class TestBasics:
    def test_initially_empty(self):
        m = FlitMap()
        assert m.is_empty()
        assert m.count() == 0

    def test_paper_example_bit5(self):
        # Fig. 6: FLIT number 5 requested -> bit[5] set.
        m = FlitMap()
        m.set(5)
        assert m.test(5)
        assert str(m) == "0000000000100000"

    def test_set_is_idempotent(self):
        m = FlitMap()
        m.set(3)
        m.set(3)
        assert m.count() == 1

    def test_out_of_range(self):
        m = FlitMap()
        with pytest.raises(ValueError):
            m.set(16)
        with pytest.raises(ValueError):
            m.test(-1)

    def test_clear(self):
        m = FlitMap()
        m.set(1)
        m.clear()
        assert m.is_empty()

    def test_first_last(self):
        m = FlitMap()
        m.set(3)
        m.set(11)
        assert m.first() == 3
        assert m.last() == 11

    def test_first_empty_raises(self):
        with pytest.raises(ValueError):
            FlitMap().first()

    def test_flit_ids_sorted(self):
        m = FlitMap()
        for f in (9, 2, 14):
            m.set(f)
        assert list(m.flit_ids()) == [2, 9, 14]

    def test_copy_is_independent(self):
        m = FlitMap()
        m.set(1)
        c = m.copy()
        c.set(2)
        assert not m.test(2)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FlitMap(nflits=0)
        with pytest.raises(ValueError):
            FlitMap(nflits=65)

    def test_bits_outside_row_rejected(self):
        with pytest.raises(ValueError):
            FlitMap(nflits=4, bits=0x10)


class TestGroupBits:
    def test_paper_example_0110(self):
        # Fig. 7/8: FLITs 6, 8 and 9 -> groups 0110.
        m = FlitMap()
        for f in (6, 8, 9):
            m.set(f)
        assert m.group_bits(4) == 0b0110

    def test_all_groups(self):
        m = FlitMap(bits=0xFFFF)
        assert m.group_bits(4) == 0b1111

    def test_single_group(self):
        m = FlitMap()
        m.set(0)
        assert m.group_bits(4) == 0b0001
        m2 = FlitMap()
        m2.set(15)
        assert m2.group_bits(4) == 0b1000

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError):
            FlitMap().group_bits(3)

    @given(bits=bits16)
    def test_group_or_consistency(self, bits):
        """A group bit is set iff some FLIT bit in that 4-bit chunk is."""
        m = FlitMap(bits=bits)
        g = m.group_bits(4)
        for group in range(4):
            chunk = (bits >> (group * 4)) & 0xF
            assert bool((g >> group) & 1) == bool(chunk)

    @given(bits=bits16)
    def test_count_matches_ids(self, bits):
        m = FlitMap(bits=bits)
        assert m.count() == len(list(m.flit_ids()))

    @given(bits=st.integers(min_value=1, max_value=0xFFFF))
    def test_first_last_bracket_all_ids(self, bits):
        m = FlitMap(bits=bits)
        ids = list(m.flit_ids())
        assert m.first() == min(ids)
        assert m.last() == max(ids)
