"""Unit tests for request/response routers (sections 3.1, 3.3)."""

import pytest

from repro.core.packet import CoalescedRequest, CoalescedResponse
from repro.core.request import MemoryRequest, RequestType, Target
from repro.core.router import FIFOQueue, RequestRouter, ResponseRouter


def req(addr, node=0, **kw):
    return MemoryRequest(addr=addr, rtype=RequestType.LOAD, node=node, **kw)


class TestFIFOQueue:
    def test_fifo_order(self):
        q = FIFOQueue(4)
        a, b = req(1), req(2)
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b
        assert q.pop() is None

    def test_capacity(self):
        q = FIFOQueue(2)
        assert q.push(req(1)) and q.push(req(2))
        assert not q.push(req(3))
        assert q.rejected == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FIFOQueue(0)

    def test_peek_leaves_queue_intact(self):
        q = FIFOQueue(4)
        q.push(req(1))
        assert q.peek() is q.peek()
        assert len(q) == 1

    def test_drops_alias_and_count(self):
        q = FIFOQueue(1)
        q.push(req(1))
        assert not q.push(req(2)) and not q.push(req(3))
        assert q.drops == q.rejected == 2

    def test_high_water_tracks_peak_occupancy(self):
        q = FIFOQueue(8)
        for i in range(3):
            q.push(req(i))
        q.pop()
        q.pop()
        q.push(req(9))
        assert q.high_water == 3  # peak, not current (which is 2)
        assert len(q) == 2

    def test_high_water_starts_at_zero(self):
        assert FIFOQueue(4).high_water == 0

    def test_rejected_push_does_not_raise_high_water(self):
        q = FIFOQueue(2)
        q.push(req(1))
        q.push(req(2))
        q.push(req(3))  # rejected
        assert q.high_water == 2


class TestRequestRouter:
    def test_default_everything_local(self):
        r = RequestRouter(node_id=0)
        r.route(req(0x12345))
        assert len(r.local_queue) == 1
        assert r.stats.local == 1

    def test_home_function_splits_traffic(self):
        # Even rows home at node 0, odd at node 1.
        r = RequestRouter(node_id=0, home_fn=lambda a: (a >> 8) & 1)
        r.route(req(0x000))
        r.route(req(0x100))
        assert len(r.local_queue) == 1
        assert len(r.global_queue) == 1
        assert r.stats.outbound_remote == 1

    def test_fence_always_local(self):
        r = RequestRouter(node_id=0, home_fn=lambda a: 1)
        fence = MemoryRequest(addr=0, rtype=RequestType.FENCE)
        r.route(fence)
        assert len(r.local_queue) == 1

    def test_remote_arrivals(self):
        r = RequestRouter(node_id=0)
        r.receive_remote(req(0x100, node=1))
        assert len(r.remote_queue) == 1
        assert r.stats.inbound_remote == 1

    def test_local_priority_over_remote(self):
        r = RequestRouter(node_id=0)
        remote = req(0x100, node=1)
        local = req(0x200, node=0)
        r.receive_remote(remote)
        r.route(local)
        assert r.next_for_mac() is local
        assert r.next_for_mac() is remote

    def test_next_outbound(self):
        r = RequestRouter(node_id=0, home_fn=lambda a: 1)
        rq = req(0x100)
        r.route(rq)
        assert r.next_outbound() is rq
        assert r.next_outbound() is None


class TestResponseRouter:
    def _response(self, raws, complete=500):
        pkt = CoalescedRequest(
            addr=0x100,
            size=64,
            rtype=RequestType.LOAD,
            targets=[Target(r.tid, r.tag, 0) for r in raws],
            requests=list(raws),
        )
        return CoalescedResponse(request=pkt, complete_cycle=complete)

    def test_local_delivery(self):
        rr = ResponseRouter(node_id=0)
        raws = [req(0x100, tid=1, tag=7)]
        rr.receive(self._response(raws))
        local, remote = rr.drain()
        assert len(local) == 1 and not remote
        assert raws[0].complete_cycle == 500
        assert rr.completed[(1, 7)] == 500

    def test_remote_split(self):
        rr = ResponseRouter(node_id=0)
        raws = [req(0x100, node=0, tag=1), req(0x110, node=2, tag=2)]
        rr.receive(self._response(raws))
        local, remote = rr.drain()
        assert len(local) == 1 and len(remote) == 1
        assert remote[0][1].node == 2

    def test_buffer_overflow_raises(self):
        rr = ResponseRouter(node_id=0, buffer_capacity=1)
        rr.receive(self._response([req(0x100)]))
        with pytest.raises(RuntimeError):
            rr.receive(self._response([req(0x200)]))

    def test_drain_empties_buffer(self):
        rr = ResponseRouter()
        rr.receive(self._response([req(0x100)]))
        rr.drain()
        assert rr.buffered == 0
        assert rr.drain() == ([], [])
