"""Metamorphic property tests of the coalescing semantics.

These check that the window engine respects structural symmetries of the
problem — transformations of the input trace with predictable effects on
the output packet stream.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats

CFG = MACConfig(latency_hiding=False)


def trace_of(seed, n=400, rows=30):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        rtype = RequestType.STORE if rng.random() < 0.3 else RequestType.LOAD
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        out.append(MemoryRequest(addr=addr, rtype=rtype, tid=i % 8, tag=i))
    return out


def clone(reqs):
    return [
        MemoryRequest(addr=r.addr, rtype=r.rtype, tid=r.tid, tag=r.tag) for r in reqs
    ]


def run(reqs, cfg=CFG):
    stats = MACStats()
    pkts = coalesce_trace_fast(reqs, cfg, stats=stats)
    return pkts, stats


def signature(pkts):
    """Order-insensitive packet structure: (offset-in-row, size, tags)."""
    return sorted(
        (p.addr & 0xFF, p.size, tuple(sorted(t.tag for t in p.targets)))
        for p in pkts
    )


class TestTranslationInvariance:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), shift_rows=st.integers(1, 1 << 30))
    def test_shifting_by_whole_rows_preserves_structure(self, seed, shift_rows):
        """Adding a row-multiple to every address relabels rows but must
        not change what gets merged with what."""
        base = trace_of(seed)
        shifted = [
            MemoryRequest(
                addr=r.addr + (shift_rows << 8), rtype=r.rtype, tid=r.tid, tag=r.tag
            )
            for r in base
        ]
        assert signature(run(clone(base))[0]) == signature(run(shifted)[0])


class TestFenceDecomposition:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), cut=st.integers(1, 399))
    def test_fence_split_equals_separate_runs(self, seed, cut):
        """A fence at position k makes the run equal to coalescing the
        two halves independently."""
        base = trace_of(seed)
        fenced = clone(base[:cut]) + [
            MemoryRequest(addr=0, rtype=RequestType.FENCE)
        ] + clone(base[cut:])
        pkts_fenced, _ = run(fenced)
        pkts_a, _ = run(clone(base[:cut]))
        pkts_b, _ = run(clone(base[cut:]))
        assert signature(pkts_fenced) == signature(pkts_a + pkts_b)


class TestMonotonicity:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_larger_window_never_hurts(self, seed):
        """Doubling the ARQ can only merge more (on fence-free traces)."""
        base = trace_of(seed)
        _, small = run(clone(base), MACConfig(arq_entries=8, latency_hiding=False))
        _, large = run(clone(base), MACConfig(arq_entries=64, latency_hiding=False))
        assert large.coalescing_efficiency >= small.coalescing_efficiency - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_duplicating_trace_never_reduces_efficiency(self, seed):
        """Replaying a trace twice doubles same-row opportunities."""
        base = trace_of(seed, n=150)
        doubled = clone(base) + clone(base)
        _, once = run(clone(base))
        _, twice = run(doubled)
        assert twice.coalescing_efficiency >= once.coalescing_efficiency - 0.02


class TestTagIndependence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_tags_do_not_affect_packetization(self, seed):
        """Coalescing decisions depend only on addresses and types."""
        base = trace_of(seed)
        relabeled = [
            MemoryRequest(addr=r.addr, rtype=r.rtype, tid=0, tag=i % 65536)
            for i, r in enumerate(base)
        ]
        a = [(p.addr, p.size, p.raw_count) for p in run(clone(base))[0]]
        b = [(p.addr, p.size, p.raw_count) for p in run(relabeled)[0]]
        assert a == b
