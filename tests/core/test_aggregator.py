"""Cycle-level tests for the Raw Request Aggregator (sections 4.1/4.4)."""


from repro.core.aggregator import RawRequestAggregator
from repro.core.config import MACConfig
from repro.core.request import MemoryRequest, RequestType

CFG = MACConfig(latency_hiding=False)


def req(addr, rtype=RequestType.LOAD, tag=0):
    return MemoryRequest(addr=addr, rtype=rtype, tag=tag)


def feed_and_drain(agg, requests):
    out = []
    it = iter(requests)
    pending = next(it, None)
    guard = 0
    while pending is not None:
        out.extend(agg.tick(pending))
        if agg.accepted():
            pending = next(it, None)
        guard += 1
        assert guard < 100_000
    out.extend(agg.drain())
    return out


class TestConservation:
    def test_every_request_in_exactly_one_packet(self):
        agg = RawRequestAggregator(CFG)
        reqs = [req((i % 50) << 8 | ((i % 16) << 4), tag=i) for i in range(400)]
        pkts = feed_and_drain(agg, reqs)
        assert sum(p.raw_count for p in pkts) == 400
        tags = sorted(t.tag for p in pkts for t in p.targets)
        assert tags == sorted(r.tag for r in reqs)

    def test_fences_produce_no_packets(self):
        agg = RawRequestAggregator(CFG)
        reqs = [
            req(0x100, tag=1),
            MemoryRequest(addr=0, rtype=RequestType.FENCE),
            req(0x110, tag=2),
        ]
        pkts = feed_and_drain(agg, reqs)
        assert sum(p.raw_count for p in pkts) == 2

    def test_fence_prevents_cross_fence_merge(self):
        agg = RawRequestAggregator(CFG)
        reqs = [
            req(0x100, tag=1),
            MemoryRequest(addr=0, rtype=RequestType.FENCE),
            req(0x110, tag=2),
        ]
        pkts = feed_and_drain(agg, reqs)
        assert len(pkts) == 2  # same row, but split by the fence


class TestCadence:
    def test_builder_bound_issue_rate(self):
        """Non-bypass entries leave at 0.5 packets/cycle (section 4.4)."""
        agg = RawRequestAggregator(CFG)
        # Two-target rows -> all builder-bound.
        reqs = []
        for i in range(40):
            reqs.append(req((i << 8) | 0x00, tag=2 * i))
            reqs.append(req((i << 8) | 0x10, tag=2 * i + 1))
        pkts = feed_and_drain(agg, reqs)
        assert len(pkts) == 40
        gaps = [
            b.issue_cycle - a.issue_cycle
            for a, b in zip(pkts[5:-5], pkts[6:-4])  # steady state
        ]
        assert all(g >= 2 for g in gaps)

    def test_bypass_entries_share_the_pop_cadence(self):
        """B-bit entries skip the builder pipeline but not the 2-cycle
        pop cadence — the fixed cadence is what gives queue residency."""
        agg = RawRequestAggregator(CFG)
        reqs = [req(i << 8, tag=i) for i in range(40)]  # all single-target
        pkts = feed_and_drain(agg, reqs)
        assert all(p.bypassed for p in pkts)
        gaps = [
            b.issue_cycle - a.issue_cycle for a, b in zip(pkts[5:-5], pkts[6:-4])
        ]
        assert all(g == 2 for g in gaps)

    def test_bypass_skips_builder_latency(self):
        """A lone B-bit entry reaches the device without the 3-cycle
        builder pipeline; a built entry pays it."""
        lone = RawRequestAggregator(CFG)
        pkts = feed_and_drain(lone, [req(0x100)])
        bypass_cycle = pkts[0].issue_cycle
        built = RawRequestAggregator(CFG)
        pkts2 = feed_and_drain(built, [req(0x100, tag=1), req(0x110, tag=2)])
        assert pkts2[0].issue_cycle >= bypass_cycle + 2

    def test_accepts_one_per_cycle(self):
        agg = RawRequestAggregator(CFG)
        agg.tick(req(0x100))
        assert agg.accepted()
        assert agg.cycle == 1

    def test_full_arq_rejects_input(self):
        cfg = MACConfig(arq_entries=2, latency_hiding=False)
        agg = RawRequestAggregator(cfg)
        # Pin the queue full faster than it drains (2 allocations, first
        # pop cannot have happened before cycle 0/1).
        agg.tick(req(0x100))
        agg.tick(req(0x200))
        agg.tick(req(0x300))
        # Whether the third was accepted depends on pops; push until a
        # rejection is observed with an always-full queue.
        rejected = False
        for i in range(4, 50):
            agg.tick(req(i << 8))
            if not agg.accepted():
                rejected = True
                break
        assert rejected


class TestDrain:
    def test_drain_empties_everything(self):
        agg = RawRequestAggregator(CFG)
        for i in range(10):
            agg.tick(req(i << 8, tag=i))
        agg.drain()
        assert agg.idle()

    def test_drain_on_idle_is_noop(self):
        agg = RawRequestAggregator(CFG)
        assert agg.drain() == []


class TestStats:
    def test_stats_counters(self):
        agg = RawRequestAggregator(CFG)
        reqs = [req(0x100, tag=1), req(0x110, tag=2), req(0x500, tag=3)]
        pkts = feed_and_drain(agg, reqs)
        st = agg.stats
        assert st.raw_requests == 3
        assert st.coalesced_packets == len(pkts) == 2
        assert 0 < st.coalescing_efficiency < 1
