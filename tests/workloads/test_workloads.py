"""Behavioural tests over the 12-benchmark suite."""

import pytest

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import RequestType
from repro.core.stats import MACStats
from repro.trace.record import to_requests
from repro.workloads.registry import AUXILIARY, BENCHMARKS, benchmark_names, make

ALL_NAMES = benchmark_names()


@pytest.fixture(scope="module")
def small_traces():
    return {
        name: make(name).generate(threads=4, ops_per_thread=600)
        for name in ALL_NAMES
    }


def efficiency(trace):
    st = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
    return st.coalescing_efficiency


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARKS) == 12

    def test_make_case_insensitive(self):
        assert make("sg").name == "SG"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make("NOPE")

    def test_auxiliary(self):
        assert make("SG-SEQ").name == "SG-SEQ"
        assert "SG-SEQ" in AUXILIARY

    def test_paper_figure_order(self):
        assert ALL_NAMES[0] == "SG"
        assert set(ALL_NAMES) >= {"MG", "GRAPPOLO", "SG", "SP", "SPARSELU"}


class TestTraceWellFormedness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_generates_requested_volume(self, small_traces, name):
        trace = small_traces[name]
        assert len(trace) >= 4 * 600

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_addresses_in_52_bit_space(self, small_traces, name):
        for rec in small_traces[name]:
            assert 0 <= rec.addr < (1 << 52)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_threads_all_present(self, small_traces, name):
        assert {r.tid for r in small_traces[name]} == {0, 1, 2, 3}

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_has_loads(self, small_traces, name):
        ops = {r.op for r in small_traces[name]}
        assert RequestType.LOAD in ops

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic(self, name):
        a = make(name, seed=3).generate(threads=2, ops_per_thread=100)
        b = make(name, seed=3).generate(threads=2, ops_per_thread=100)
        assert a == b

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_profiles_offer_over_2_rpc(self, name):
        """Fig. 9: every benchmark offers more than 2 requests/cycle."""
        assert BENCHMARKS[name].profile.rpc(cores=8) > 2.0


class TestCoalescingShape:
    """The per-benchmark ordering the paper's Fig. 10 reports."""

    def test_winners_beat_losers(self, small_traces):
        winners = min(efficiency(small_traces[n]) for n in ("MG", "SP", "SPARSELU"))
        losers = max(efficiency(small_traces[n]) for n in ("IS", "PR"))
        assert winners > losers

    def test_is_is_least_coalescable(self, small_traces):
        effs = {n: efficiency(small_traces[n]) for n in ALL_NAMES}
        assert min(effs, key=effs.get) in ("IS", "PR", "SSCA2")

    def test_all_benchmarks_coalesce_something(self, small_traces):
        for name in ALL_NAMES:
            assert efficiency(small_traces[name]) > 0.05, name

    def test_store_load_mix(self, small_traces):
        """Every benchmark issues some stores (real kernels write).

        BFS is exempt at this tiny scale: its hub-first visit order can
        spend the whole 600-op budget streaming one hub's adjacency
        before the first parent[] update; the larger check below covers
        it.
        """
        for name in ALL_NAMES:
            if name == "BFS":
                continue
            ops = [r.op for r in small_traces[name]]
            assert ops.count(RequestType.STORE) > 0, name

    def test_bfs_stores_at_realistic_scale(self):
        trace = make("BFS").generate(threads=4, ops_per_thread=4000)
        ops = [r.op for r in trace]
        assert ops.count(RequestType.STORE) > 0


class TestSGSpecifics:
    def test_uniform_gather_mode(self):
        wl = make("SG", hot_frac=0.0)
        trace = wl.generate(threads=2, ops_per_thread=400)
        # Uniform gathers over 2^20 elements: coalescing falls well
        # below the default hot/cold configuration.
        assert efficiency(trace) < efficiency(
            make("SG").generate(threads=2, ops_per_thread=400)
        )

    def test_layout_has_three_arrays(self):
        wl = make("SG")
        assert set(wl.layout.regions) == {"A", "B", "C"}

    def test_seq_variant_is_highly_coalescable(self):
        trace = make("SG-SEQ").generate(threads=2, ops_per_thread=400)
        assert efficiency(trace) > 0.8
