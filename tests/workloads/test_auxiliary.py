"""Behavioural tests for the auxiliary (beyond-the-paper) workloads."""

import pytest

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import RequestType
from repro.core.stats import MACStats
from repro.trace.record import to_requests
from repro.workloads.registry import AUXILIARY, make

AUX_NAMES = [n for n in AUXILIARY if n != "SG-SEQ"]


def efficiency(trace):
    st = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
    return st.coalescing_efficiency


@pytest.fixture(scope="module")
def traces():
    return {
        name: make(name).generate(threads=4, ops_per_thread=700)
        for name in AUX_NAMES
    }


class TestWellFormedness:
    @pytest.mark.parametrize("name", AUX_NAMES)
    def test_addresses_valid(self, traces, name):
        for rec in traces[name]:
            assert 0 <= rec.addr < (1 << 52)

    @pytest.mark.parametrize("name", AUX_NAMES)
    def test_deterministic(self, name):
        a = make(name, seed=4).generate(threads=2, ops_per_thread=120)
        b = make(name, seed=4).generate(threads=2, ops_per_thread=120)
        assert a == b

    @pytest.mark.parametrize("name", AUX_NAMES)
    def test_offers_over_2_rpc(self, name):
        assert make(name).profile.rpc(cores=8) > 2.0

    @pytest.mark.parametrize("name", AUX_NAMES)
    def test_coalesces_something(self, traces, name):
        assert efficiency(traces[name]) > 0.05


class TestCharacter:
    def test_fib_issues_atomics(self, traces):
        """Work stealing probes are atomic head swaps."""
        ops = {r.op for r in traces["FIB"]}
        assert RequestType.ATOMIC in ops

    def test_tc_is_adjacency_bound(self, traces):
        """Triangle counting streams adjacency: high coalescibility."""
        assert efficiency(traces["TC"]) > 0.6

    def test_health_is_pointer_chasing(self, traces):
        """Linked-list walks coalesce poorly."""
        assert efficiency(traces["HEALTH"]) < 0.55

    def test_cg_between_is_and_mg(self, traces):
        """Random-pattern SpMV sits between the histogram and stencil."""
        cg = efficiency(traces["CG"])
        is_eff = efficiency(make("IS").generate(threads=4, ops_per_thread=700))
        mg_eff = efficiency(make("MG").generate(threads=4, ops_per_thread=700))
        assert is_eff < cg < mg_eff

    def test_ft_transpose_hurts(self, traces):
        """FT coalesces less than a pure unit-stride workload."""
        seq = efficiency(make("SG-SEQ").generate(threads=4, ops_per_thread=700))
        assert efficiency(traces["FT"]) < seq
