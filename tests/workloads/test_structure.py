"""Structural assertions per workload — each generator must carry the
access-pattern features its benchmark is modelled on."""

import collections


from repro.core.request import RequestType
from repro.workloads.registry import make


def records_of(name, threads=4, ops=800, **kw):
    return make(name, **kw).generate(threads=threads, ops_per_thread=ops)


def region_of(wl, rec, names):
    for n in names:
        if wl.layout.contains(n, rec.addr):
            return n
    return None


class TestSG:
    def test_three_region_mix(self):
        wl = make("SG")
        trace = wl.generate(threads=2, ops_per_thread=600)
        counts = collections.Counter(
            region_of(wl, r, ("A", "B", "C")) for r in trace
        )
        # All three arrays are touched; B (the gather) dominates word ops.
        assert counts["A"] > 0 and counts["B"] > 0 and counts["C"] > 0

    def test_streams_are_flit_sized_blocks(self):
        wl = make("SG")
        trace = wl.generate(threads=2, ops_per_thread=600)
        for r in trace:
            region = region_of(wl, r, ("A", "C"))
            if region:
                assert r.size == 16  # SPM block transfer granularity

    def test_gathers_are_word_sized_loads(self):
        wl = make("SG")
        trace = wl.generate(threads=2, ops_per_thread=600)
        b_recs = [r for r in trace if region_of(wl, r, ("B",))]
        assert all(r.size == 8 and r.op is RequestType.LOAD for r in b_recs)


class TestHPCG:
    def test_multicolor_ordering_strides_rows(self):
        """Consecutive matrix rows of one thread are `colors` apart."""
        wl = make("HPCG")
        trace = wl.generate(threads=1, ops_per_thread=2000)
        y_stores = [
            r.addr for r in trace
            if r.op is RequestType.STORE and wl.layout.contains("y", r.addr)
        ]
        assert len(y_stores) >= 2
        base = wl.layout.base("y")
        rows = [(a - base) // 8 for a in y_stores]
        diffs = {b - a for a, b in zip(rows, rows[1:])}
        assert 8 in diffs  # the color stride


class TestGrappolo:
    def test_community_gathers_cluster(self):
        """>60 % of comm_id gathers land within a few rows of each
        other — the planted community structure."""
        wl = make("GRAPPOLO")
        trace = wl.generate(threads=1, ops_per_thread=2000)
        comm_reads = [
            r.addr >> 8
            for r in trace
            if r.op is RequestType.LOAD and wl.layout.contains("comm_id", r.addr)
        ]
        assert comm_reads
        counts = collections.Counter(comm_reads)
        top_rows = sum(n for _, n in counts.most_common(16))
        assert top_rows / len(comm_reads) > 0.3


class TestSSCA2:
    def test_hub_bias(self):
        """Edge-centric selection revisits high-degree vertices."""
        wl = make("SSCA2")
        trace = wl.generate(threads=2, ops_per_thread=1500)
        nbr_reads = [
            r.addr
            for r in trace
            if wl.layout.contains("neighbors", r.addr)
        ]
        counts = collections.Counter(a >> 8 for a in nbr_reads)
        if counts:
            top = counts.most_common(1)[0][1]
            assert top > len(nbr_reads) / len(counts)  # skewed, not uniform


class TestSP:
    def test_three_sweep_directions(self):
        """The ADI pattern emits both blocked (16 B) and strided (8 B)
        rhs accesses — x-sweeps vs y/z sweeps."""
        wl = make("SP")
        trace = wl.generate(threads=2, ops_per_thread=3000)
        rhs = [r for r in trace if wl.layout.contains("rhs", r.addr)]
        sizes = {r.size for r in rhs}
        assert sizes == {8, 16}


class TestIS:
    def test_histogram_load_store_pairs(self):
        wl = make("IS")
        trace = wl.generate(threads=1, ops_per_thread=600)
        hist = [r for r in trace if wl.layout.contains("histogram", r.addr)]
        # Pairs: each bucket update is load then store on the same address.
        for ld, st_ in zip(hist[::2], hist[1::2]):
            assert ld.op is RequestType.LOAD
            assert st_.op is RequestType.STORE
            assert ld.addr == st_.addr


class TestNQueens:
    def test_stack_locality_dominates(self):
        wl = make("NQUEENS")
        trace = wl.generate(threads=1, ops_per_thread=800)
        stack0 = wl.stacks[0]
        stack_ops = sum(1 for r in trace if stack0 <= r.addr < stack0 + wl.stack_bytes)
        heap_ops = sum(1 for r in trace if wl.layout.contains("task_heap", r.addr))
        assert stack_ops > heap_ops


class TestMG:
    def test_fine_and_coarse_phases(self):
        wl = make("MG")
        trace = wl.generate(threads=1, ops_per_thread=3000)
        sizes = collections.Counter(r.size for r in trace)
        assert sizes[16] > 0  # pencil block transfers
        assert sizes[8] > 0  # coarse-level strided words
        assert sizes[16] > sizes[8]  # fine sweeps dominate
