"""Tests for the workload framework (layout, helpers, interleaving)."""

import numpy as np
import pytest

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile
from repro.workloads.base import (
    MemoryLayout,
    ROW_BYTES,
    WORD,
    Workload,
    interleave_round_robin,
)


class TestMemoryLayout:
    def test_row_alignment(self):
        layout = MemoryLayout()
        a = layout.alloc("a", 100)
        b = layout.alloc("b", 100)
        assert a % ROW_BYTES == 0 and b % ROW_BYTES == 0

    def test_regions_do_not_share_rows(self):
        layout = MemoryLayout()
        a = layout.alloc("a", 100)
        b = layout.alloc("b", 100)
        assert (a + 100 - 1) // ROW_BYTES < b // ROW_BYTES

    def test_duplicate_name_rejected(self):
        layout = MemoryLayout()
        layout.alloc("a", 8)
        with pytest.raises(ValueError):
            layout.alloc("a", 8)

    def test_contains(self):
        layout = MemoryLayout()
        a = layout.alloc("a", 64)
        assert layout.contains("a", a)
        assert layout.contains("a", a + 63)
        assert not layout.contains("a", a + 64)

    def test_zero_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryLayout().alloc("a", 0)

    def test_52_bit_space_enforced(self):
        layout = MemoryLayout(base=(1 << 52) - (1 << 12))
        with pytest.raises(MemoryError):
            layout.alloc("big", 1 << 13)


class TestHelpers:
    def test_spm_prefetch_flit_aligned(self):
        ops = list(Workload.spm_prefetch(0x1000, 8, 64))
        assert all(a % 16 == 0 for a, _, _ in ops)
        assert all(op is RequestType.LOAD for _, op, _ in ops)
        assert all(s == 16 for _, _, s in ops)
        # Covers [0x1000+0 .. 0x1000+8+64): 5 FLITs starting at 0x1000.
        assert [a for a, _, _ in ops] == [0x1000 + 16 * i for i in range(5)]

    def test_spm_writeback_stores(self):
        ops = list(Workload.spm_writeback(0x2000, 0, 32))
        assert len(ops) == 2
        assert all(op is RequestType.STORE for _, op, _ in ops)

    def test_zipf_indices_bounds(self):
        rng = np.random.default_rng(1)
        idx = Workload.zipf_indices(rng, 1000, 500, s=1.1)
        assert idx.min() >= 0 and idx.max() < 1000

    def test_seq_loads(self):
        ops = list(Workload.seq_loads(0x100, start=2, count=3))
        assert [a for a, _, _ in ops] == [0x110, 0x118, 0x120]


class _TwoOpWorkload(Workload):
    name = "TWO"
    profile = ExecutionProfile("TWO", ipc=1.0, rpi=0.5, mem_access_rate=1.0)

    def thread_stream(self, tid, threads, ops, rng):
        for i in range(ops):
            yield (tid << 12) | (i * WORD), RequestType.LOAD, WORD


class TestGenerate:
    def test_round_robin_interleave(self):
        wl = _TwoOpWorkload()
        trace = wl.generate(threads=2, ops_per_thread=3)
        assert [r.tid for r in trace] == [0, 1, 0, 1, 0, 1]

    def test_cycle_stamps_monotone(self):
        wl = _TwoOpWorkload()
        trace = wl.generate(threads=4, ops_per_thread=10)
        cycles = [r.cycle for r in trace]
        assert cycles == sorted(cycles)

    def test_offered_rate_matches_profile(self):
        wl = _TwoOpWorkload()
        trace = wl.generate(threads=8, ops_per_thread=100)
        span = trace[-1].cycle - trace[0].cycle + 1
        rpc = len(trace) / span
        assert rpc == pytest.approx(wl.profile.rpc(8), rel=0.1)

    def test_determinism(self):
        a = _TwoOpWorkload(seed=5).generate(threads=2, ops_per_thread=5)
        b = _TwoOpWorkload(seed=5).generate(threads=2, ops_per_thread=5)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            _TwoOpWorkload().generate(threads=0)
        with pytest.raises(ValueError):
            _TwoOpWorkload().generate(ops_per_thread=0)
        with pytest.raises(ValueError):
            _TwoOpWorkload(scale=0)


class TestInterleave:
    def test_uneven_streams(self):
        s1 = iter([(0, RequestType.LOAD, 8)])
        s2 = iter([(1, RequestType.LOAD, 8), (2, RequestType.LOAD, 8)])
        merged = list(interleave_round_robin([s1, s2]))
        assert [tid for tid, _ in merged] == [0, 1, 1]
