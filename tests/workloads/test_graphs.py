"""Tests for the CSR graph substrate."""

import numpy as np

from repro.workloads.graphs import (
    edges_to_csr,
    rmat_csr,
    rmat_edges,
    uniform_csr,
    uniform_edges,
)


class TestEdgesToCSR:
    def test_simple_graph(self):
        edges = np.array([[0, 1], [0, 2], [2, 1]])
        g = edges_to_csr(edges, 3)
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.degree(0) == 2
        assert g.degree(1) == 0
        assert sorted(g.neighbors_of(0).tolist()) == [1, 2]
        assert g.neighbors_of(2).tolist() == [1]

    def test_row_ptr_monotone(self):
        g = uniform_csr(100, degree=5, seed=1)
        assert (np.diff(g.row_ptr) >= 0).all()
        assert g.row_ptr[0] == 0
        assert g.row_ptr[-1] == g.num_edges

    def test_degrees_sum_to_edges(self):
        g = uniform_csr(64, degree=8, seed=2)
        assert sum(g.degree(v) for v in range(64)) == g.num_edges


class TestRMAT:
    def test_shape_and_range(self):
        edges = rmat_edges(8, edge_factor=4, seed=3)
        assert edges.shape == (256 * 4, 2)
        assert edges.min() >= 0 and edges.max() < 256

    def test_deterministic(self):
        a = rmat_edges(8, seed=5)
        b = rmat_edges(8, seed=5)
        assert (a == b).all()

    def test_seeds_differ(self):
        a = rmat_edges(8, seed=5)
        b = rmat_edges(8, seed=6)
        assert not (a == b).all()

    def test_power_law_degrees(self):
        """R-MAT produces hubs: the max degree far exceeds the mean."""
        g = rmat_csr(11, edge_factor=16, seed=7)
        degrees = np.diff(g.row_ptr)
        assert degrees.max() > 8 * degrees.mean()

    def test_uniform_has_no_hubs(self):
        g = uniform_csr(1 << 11, degree=16, seed=7)
        degrees = np.diff(g.row_ptr)
        assert degrees.max() < 4 * degrees.mean()


class TestUniform:
    def test_edge_count(self):
        assert uniform_edges(50, 200, seed=1).shape == (200, 2)
