"""Unit tests for the open-page row-length study (section 2.2.1)."""

import random

import pytest

from repro.core.packet import CoalescedRequest
from repro.core.request import RequestType
from repro.eval.page_policy import open_page_hit_rate, row_length_study


def read(addr):
    return CoalescedRequest(addr=addr, size=16, rtype=RequestType.LOAD)


class TestOpenPageHitRate:
    def test_back_to_back_same_row_hits(self):
        pkts = [read(0x2000 + 16 * i) for i in range(16)]
        assert open_page_hit_rate(pkts, row_bytes=256) == pytest.approx(15 / 16)

    def test_row_crossing_stream(self):
        """A unit stride stream hits within each row, misses at each
        row boundary: hit rate = 1 - rows/accesses."""
        pkts = [read(16 * i) for i in range(64)]  # 4 x 256 B rows
        assert open_page_hit_rate(pkts, row_bytes=256) == pytest.approx(60 / 64)

    def test_longer_rows_hit_more(self):
        rng = random.Random(5)
        # Clustered traffic: runs of 8 accesses at random 1 KB bases.
        pkts = []
        for _ in range(60):
            base = rng.randrange(1 << 20) & ~0x3FF
            pkts.extend(read(base + 16 * k) for k in range(8))
        short = open_page_hit_rate(pkts, row_bytes=128)
        long_ = open_page_hit_rate(pkts, row_bytes=8192)
        assert long_ > short

    def test_random_traffic_rarely_hits(self):
        rng = random.Random(9)
        pkts = [read(rng.randrange(1 << 30) & ~15) for _ in range(400)]
        assert open_page_hit_rate(pkts, row_bytes=256) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            open_page_hit_rate([], row_bytes=300)
        with pytest.raises(ValueError):
            open_page_hit_rate([], row_bytes=256, banks=7)

    def test_empty_stream(self):
        assert open_page_hit_rate([], row_bytes=256) == 0.0


class TestRowLengthStudy:
    def test_returns_all_lengths(self):
        pkts = [read(16 * i) for i in range(32)]
        study = row_length_study(pkts, (256, 8192))
        assert set(study) == {256, 8192}
        assert study[8192] >= study[256]
