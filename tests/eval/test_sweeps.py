"""Parameter-sweep utility tests."""

import pytest

from repro.core.config import MACConfig
from repro.eval.sweeps import best_point, format_sweep, sweep_grid


class TestSweepGrid:
    def test_grid_shape(self):
        pts = sweep_grid(
            {"arq_entries": [8, 32], "latency_hiding": [True, False]},
            workloads=("SG",),
            ops_per_thread=300,
        )
        assert len(pts) == 4
        combos = {p.params for p in pts}
        assert len(combos) == 4

    def test_multiple_workloads(self):
        pts = sweep_grid({"arq_entries": [16]}, workloads=("SG", "IS"), ops_per_thread=300)
        assert {p.workload for p in pts} == {"SG", "IS"}

    def test_efficiency_monotone_in_entries(self):
        pts = sweep_grid(
            {"arq_entries": [4, 64]}, workloads=("MG",), ops_per_thread=400
        )
        by_entries = {p.param("arq_entries"): p.efficiency for p in pts}
        assert by_entries[64] >= by_entries[4]

    def test_row_bytes_axis_adjusts_max_request(self):
        pts = sweep_grid({"row_bytes": [256, 1024]}, workloads=("SG",), ops_per_thread=300)
        assert len(pts) == 2  # no validation error from max > row

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid({"bogus_field": [1]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid({})

    def test_base_config_respected(self):
        base = MACConfig(latency_hiding=False)
        pts = sweep_grid(
            {"arq_entries": [8]}, workloads=("SG",), ops_per_thread=300, base=base
        )
        assert pts  # runs without error under a custom base


class TestReporting:
    def test_format_sweep(self):
        pts = sweep_grid({"arq_entries": [8]}, workloads=("SG",), ops_per_thread=200)
        text = format_sweep(pts)
        assert "arq_entries" in text and "SG" in text

    def test_format_empty(self):
        assert "empty" in format_sweep([])

    def test_best_point(self):
        pts = sweep_grid(
            {"arq_entries": [4, 64]}, workloads=("SG", "MG"), ops_per_thread=300
        )
        best = best_point(pts)
        assert best.param("arq_entries") == 64

    def test_best_point_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])
