"""Parameter-sweep utility tests."""

import pytest

from repro.core.config import MACConfig
from repro.eval.sweeps import (
    METRIC_MAXIMIZE,
    SweepPoint,
    best_point,
    format_sweep,
    sweep_grid,
)


def _point(params, workload="SG", efficiency=0.5, packets=100, bw=0.5, tgt=2.0):
    return SweepPoint(
        params=params,
        workload=workload,
        efficiency=efficiency,
        packets=packets,
        bandwidth_efficiency=bw,
        avg_targets=tgt,
    )


class TestSweepGrid:
    def test_grid_shape(self):
        pts = sweep_grid(
            {"arq_entries": [8, 32], "latency_hiding": [True, False]},
            workloads=("SG",),
            ops_per_thread=300,
        )
        assert len(pts) == 4
        combos = {p.params for p in pts}
        assert len(combos) == 4

    def test_multiple_workloads(self):
        pts = sweep_grid({"arq_entries": [16]}, workloads=("SG", "IS"), ops_per_thread=300)
        assert {p.workload for p in pts} == {"SG", "IS"}

    def test_efficiency_monotone_in_entries(self):
        pts = sweep_grid(
            {"arq_entries": [4, 64]}, workloads=("MG",), ops_per_thread=400
        )
        by_entries = {p.param("arq_entries"): p.efficiency for p in pts}
        assert by_entries[64] >= by_entries[4]

    def test_row_bytes_axis_adjusts_max_request(self):
        pts = sweep_grid({"row_bytes": [256, 1024]}, workloads=("SG",), ops_per_thread=300)
        assert len(pts) == 2  # no validation error from max > row

    @staticmethod
    def _cell_configs(monkeypatch, **kwargs):
        """Run a sweep, capturing each cell's resolved MACConfig kwargs."""
        import repro.eval.sweeps as sweeps_mod

        seen = []
        original = sweeps_mod._run_sweep_task

        def capture(task):
            seen.append(dict(task.config_kwargs))
            return original(task)

        monkeypatch.setattr(sweeps_mod, "_run_sweep_task", capture)
        sweep_grid(workloads=("SG",), ops_per_thread=200, **kwargs)
        return seen

    def test_small_row_clamps_default_max_request(self, monkeypatch):
        # Default max_request_bytes (256) exceeds a 128 B row; the sweep
        # shrinks it just enough to keep the config valid.
        configs = self._cell_configs(monkeypatch, axes={"row_bytes": [128]})
        assert configs[0]["max_request_bytes"] == 128

    def test_explicit_small_max_request_preserved(self, monkeypatch):
        # Regression: the row-coupling used to clobber a deliberately
        # small base max_request_bytes with the (larger) row size.
        configs = self._cell_configs(
            monkeypatch,
            axes={"row_bytes": [1024]},
            base=MACConfig(max_request_bytes=64),
        )
        assert configs[0]["max_request_bytes"] == 64
        assert configs[0]["row_bytes"] == 1024

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid({"bogus_field": [1]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid({})

    def test_base_config_respected(self):
        base = MACConfig(latency_hiding=False)
        pts = sweep_grid(
            {"arq_entries": [8]}, workloads=("SG",), ops_per_thread=300, base=base
        )
        assert pts  # runs without error under a custom base


class TestReporting:
    def test_format_sweep(self):
        pts = sweep_grid({"arq_entries": [8]}, workloads=("SG",), ops_per_thread=200)
        text = format_sweep(pts)
        assert "arq_entries" in text and "SG" in text

    def test_format_empty(self):
        assert "empty" in format_sweep([])

    def test_best_point(self):
        pts = sweep_grid(
            {"arq_entries": [4, 64]}, workloads=("SG", "MG"), ops_per_thread=300
        )
        best = best_point(pts)
        assert best.param("arq_entries") == 64

    def test_best_point_empty_rejected(self):
        with pytest.raises(ValueError):
            best_point([])

    def test_best_point_packets_minimizes(self):
        # Regression: ``packets`` is lower-is-better (fewer packets =
        # more coalescing); best_point used to always take max and
        # return the *worst* cell.
        pts = [
            _point((("arq_entries", 8),), packets=900),
            _point((("arq_entries", 64),), packets=300),
            _point((("arq_entries", 32),), packets=600),
        ]
        assert best_point(pts, metric="packets").param("arq_entries") == 64

    def test_best_point_efficiency_maximizes(self):
        pts = [
            _point((("arq_entries", 8),), efficiency=0.2),
            _point((("arq_entries", 64),), efficiency=0.8),
        ]
        assert best_point(pts, metric="efficiency").param("arq_entries") == 64

    def test_best_point_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            best_point([_point((("arq_entries", 8),))], metric="workload")

    def test_best_point_skips_nan_cells(self):
        # Regression: a NaN suite-average (undefined efficiency on a
        # degenerate cell) compares as neither larger nor smaller, so
        # max() could hand back the NaN cell as "best"; such cells must
        # be excluded from the ranking.
        nan = float("nan")
        pts = [
            _point((("arq_entries", 8),), efficiency=nan),
            _point((("arq_entries", 64),), efficiency=0.4),
        ]
        assert best_point(pts, metric="efficiency").param("arq_entries") == 64
        assert best_point(list(reversed(pts)), metric="efficiency").param(
            "arq_entries"
        ) == 64

    def test_best_point_all_nan_rejected(self):
        pts = [_point((("arq_entries", 8),), efficiency=float("nan"))]
        with pytest.raises(ValueError, match="NaN"):
            best_point(pts, metric="efficiency")

    def test_metric_direction_map_covers_sweep_metrics(self):
        assert METRIC_MAXIMIZE["packets"] is False
        assert METRIC_MAXIMIZE["efficiency"] is True
        assert METRIC_MAXIMIZE["bandwidth_efficiency"] is True
        assert METRIC_MAXIMIZE["avg_targets"] is True
