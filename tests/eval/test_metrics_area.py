"""Metric (Eqs. 1-3) and area-model tests against the paper's anchors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import MACConfig
from repro.eval import metrics
from repro.eval.area import arq_bytes, builder_bytes, entry_capacity, mac_area


class TestEq1BandwidthEfficiency:
    def test_paper_anchors(self):
        """Fig. 3's endpoints: 33.33 % at 16 B, 88.89 % at 256 B."""
        assert metrics.bandwidth_efficiency(16) == pytest.approx(1 / 3)
        assert metrics.bandwidth_efficiency(256) == pytest.approx(0.8889, abs=1e-4)
        assert metrics.control_overhead_fraction(16) == pytest.approx(2 / 3)
        assert metrics.control_overhead_fraction(256) == pytest.approx(0.1111, abs=1e-4)

    def test_improvement_factor_2_67(self):
        """Section 2.2.2: 256 B improves on 16 B by a factor of 2.67."""
        ratio = metrics.bandwidth_efficiency(256) / metrics.bandwidth_efficiency(16)
        assert ratio == pytest.approx(2.67, abs=0.01)

    @given(size=st.integers(1, 4096))
    def test_monotone_in_size(self, size):
        assert metrics.bandwidth_efficiency(size + 1) > metrics.bandwidth_efficiency(size)

    def test_validation(self):
        with pytest.raises(ValueError):
            metrics.bandwidth_efficiency(0)
        with pytest.raises(ValueError):
            metrics.bandwidth_efficiency(16, overhead_bytes=-1)


class TestEq2RPC:
    def test_formula(self):
        assert metrics.requests_per_cycle(1.0, 0.5, 8, 0.5) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            metrics.requests_per_cycle(0, 0.5, 8, 0.5)
        with pytest.raises(ValueError):
            metrics.requests_per_cycle(1, 0.5, 0, 0.5)


class TestEq3CoalescingEfficiency:
    def test_reduction_reading(self):
        assert metrics.coalescing_efficiency(100, 47) == pytest.approx(0.53)

    def test_bounds(self):
        assert metrics.coalescing_efficiency(0, 0) == 0.0
        assert metrics.coalescing_efficiency(10, 10) == 0.0
        with pytest.raises(ValueError):
            metrics.coalescing_efficiency(5, 6)
        with pytest.raises(ValueError):
            metrics.coalescing_efficiency(-1, 0)

    @given(raw=st.integers(1, 10_000))
    def test_range(self, raw):
        # N raw requests can shrink to at most 1 packet.
        assert 0 <= metrics.coalescing_efficiency(raw, max(raw // 2, 1)) <= 1 - 1 / raw


class TestSpeedup:
    def test_definition(self):
        assert metrics.speedup(100, 40) == pytest.approx(0.6)
        assert metrics.speedup(100, 100) == 0.0
        assert metrics.speedup(100, 150) == pytest.approx(-0.5)
        with pytest.raises(ValueError):
            metrics.speedup(0, 10)


class TestAreaModel:
    def test_fig16_endpoints(self):
        assert arq_bytes(8) == 512
        assert arq_bytes(256) == 16 << 10

    def test_builder_is_14_bytes(self):
        """Section 5.3.3: FLIT-map latch (2 B) + FLIT table (12 B)."""
        assert builder_bytes() == 14

    def test_total_2062_bytes(self):
        """Section 5.3.3: 32-entry MAC = 2048 + 14 = 2062 B."""
        report = mac_area()
        assert report.total_bytes == 2062
        assert report.comparators == 32
        assert report.or_gates == 4

    def test_entry_capacity_12(self):
        assert entry_capacity() == 12

    def test_scales_with_entries(self):
        r = mac_area(MACConfig(arq_entries=128))
        assert r.arq_bytes == 8192
        assert r.comparators == 128

    def test_invalid(self):
        with pytest.raises(ValueError):
            arq_bytes(0)
