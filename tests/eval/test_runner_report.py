"""Runner machinery and report formatting tests."""

import pytest

from repro.core.mac import MAC
from repro.core.stats import MACStats
from repro.eval.report import format_comparison, format_table, human_bytes, pct
from repro.eval.runner import (
    TraceCache,
    cached_trace,
    clear_trace_cache,
    compare_policies,
    dispatch,
    replay_on_device,
    set_trace_cache_limit,
    trace_cache_info,
    warm_trace_cache,
)


class TestCachedTrace:
    def test_is_cached(self):
        a = cached_trace("SG", 2, 200)
        b = cached_trace("SG", 2, 200)
        assert a is b

    def test_distinct_keys(self):
        assert cached_trace("SG", 2, 200) is not cached_trace("SG", 2, 201)

    def test_clear_forces_regeneration(self):
        a = cached_trace("SG", 2, 200)
        clear_trace_cache()
        b = cached_trace("SG", 2, 200)
        assert a is not b
        assert a == b  # same seed, same trace — only the object is new

    def test_warm_then_hit(self):
        clear_trace_cache()
        warm_trace_cache([("SG", 2, 200, 2019)])
        before = trace_cache_info()["hits"]
        cached_trace("SG", 2, 200, 2019)
        assert trace_cache_info()["hits"] == before + 1

    def test_info_reports_occupancy(self):
        clear_trace_cache()
        cached_trace("SG", 2, 200)
        info = trace_cache_info()
        assert info["size"] == 1
        assert info["maxsize"] >= 1

    def test_limit_evicts_oldest(self):
        clear_trace_cache()
        try:
            set_trace_cache_limit(1)
            a = cached_trace("SG", 2, 200)
            cached_trace("IS", 2, 200)  # evicts the SG trace
            assert trace_cache_info()["size"] == 1
            assert cached_trace("SG", 2, 200) is not a
        finally:
            set_trace_cache_limit(32)
            clear_trace_cache()


class TestTraceCache:
    def test_lru_eviction_order(self):
        cache = TraceCache(maxsize=2)
        cache.get("a", lambda: (1,))
        cache.get("b", lambda: (2,))
        cache.get("a", lambda: (1,))  # refresh "a"; "b" is now oldest
        cache.get("c", lambda: (3,))  # evicts "b"
        assert cache.get("a", lambda: ("regen",)) == (1,)
        assert cache.get("b", lambda: ("regen",)) == ("regen",)

    def test_hit_miss_counters(self):
        cache = TraceCache(maxsize=4)
        cache.get("k", lambda: (1,))
        cache.get("k", lambda: (1,))
        assert cache.info() == {"size": 1, "maxsize": 4, "hits": 1, "misses": 1}

    def test_resize_shrinks(self):
        cache = TraceCache(maxsize=4)
        for k in "abcd":
            cache.get(k, lambda: (k,))
        cache.resize(2)
        assert len(cache) == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            TraceCache(maxsize=0)
        with pytest.raises(ValueError):
            TraceCache(maxsize=4).resize(0)


class TestDispatch:
    def test_mac_policy(self):
        res = dispatch("SG", "mac", threads=2, ops_per_thread=300)
        assert res.stats.coalescing_efficiency > 0
        assert res.packets

    def test_raw_policy_no_coalescing(self):
        res = dispatch("SG", "raw", threads=2, ops_per_thread=300)
        assert res.stats.coalescing_efficiency == 0.0
        assert all(p.size == 16 for p in res.packets)

    def test_cycle_policy_agrees_roughly(self):
        fast = dispatch("SG", "mac", threads=2, ops_per_thread=300)
        cyc = dispatch("SG", "mac-cycle", threads=2, ops_per_thread=300)
        assert (
            abs(
                fast.stats.coalescing_efficiency
                - cyc.stats.coalescing_efficiency
            )
            < 0.25
        )

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            dispatch("SG", "nope")

    def test_attach_stats_rebinds_every_component(self):
        # Regression: dispatch used to rewire mac.stats and the
        # aggregator's stats by hand; a component missed by that piecemeal
        # rewiring would record into an orphaned MACStats.
        mac = MAC()
        stats = MACStats()
        mac.attach_stats(stats)
        assert mac.stats is stats
        assert mac.aggregator.stats is stats

    def test_engines_agree_on_raw_request_count(self):
        # Window engine and cycle engine must see the identical request
        # stream; if the cycle engine recorded into an orphaned stats
        # object this count would read zero.
        fast = dispatch("SG", "mac", threads=2, ops_per_thread=300)
        cyc = dispatch("SG", "mac-cycle", threads=2, ops_per_thread=300)
        assert cyc.stats.raw_requests == fast.stats.raw_requests > 0
        assert cyc.stats.memory_raw_requests == fast.stats.memory_raw_requests


class TestReplay:
    def test_raw_vs_mac(self):
        res = compare_policies("SG", threads=2, ops_per_thread=400)
        assert res["raw"].bank_conflicts >= res["mac"].bank_conflicts
        assert res["raw"].wire_bytes > res["mac"].wire_bytes

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            replay_on_device([], cycles_per_packet=-1)


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bee"], [[1, 2.34567], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "2.346" in text

    def test_format_comparison_with_paper(self):
        text = format_comparison("t", {"SG": 0.6}, paper={"SG": 0.62})
        assert "0.62" in text and "0.6" in text

    def test_pct(self):
        assert pct(0.5286) == "52.86%"

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.00 KiB"
        assert "GiB" in human_bytes(22.76 * (1 << 30))
