"""Runner machinery and report formatting tests."""

import pytest

from repro.eval.report import format_comparison, format_table, human_bytes, pct
from repro.eval.runner import (
    cached_trace,
    compare_policies,
    dispatch,
    replay_on_device,
)


class TestCachedTrace:
    def test_is_cached(self):
        a = cached_trace("SG", 2, 200)
        b = cached_trace("SG", 2, 200)
        assert a is b

    def test_distinct_keys(self):
        assert cached_trace("SG", 2, 200) is not cached_trace("SG", 2, 201)


class TestDispatch:
    def test_mac_policy(self):
        res = dispatch("SG", "mac", threads=2, ops_per_thread=300)
        assert res.stats.coalescing_efficiency > 0
        assert res.packets

    def test_raw_policy_no_coalescing(self):
        res = dispatch("SG", "raw", threads=2, ops_per_thread=300)
        assert res.stats.coalescing_efficiency == 0.0
        assert all(p.size == 16 for p in res.packets)

    def test_cycle_policy_agrees_roughly(self):
        fast = dispatch("SG", "mac", threads=2, ops_per_thread=300)
        cyc = dispatch("SG", "mac-cycle", threads=2, ops_per_thread=300)
        assert (
            abs(
                fast.stats.coalescing_efficiency
                - cyc.stats.coalescing_efficiency
            )
            < 0.25
        )

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            dispatch("SG", "nope")


class TestReplay:
    def test_raw_vs_mac(self):
        res = compare_policies("SG", threads=2, ops_per_thread=400)
        assert res["raw"].bank_conflicts >= res["mac"].bank_conflicts
        assert res["raw"].wire_bytes > res["mac"].wire_bytes

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            replay_on_device([], cycles_per_packet=-1)


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bee"], [[1, 2.34567], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "2.346" in text

    def test_format_comparison_with_paper(self):
        text = format_comparison("t", {"SG": 0.6}, paper={"SG": 0.62})
        assert "0.62" in text and "0.6" in text

    def test_pct(self):
        assert pct(0.5286) == "52.86%"

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.00 KiB"
        assert "GiB" in human_bytes(22.76 * (1 << 30))
