"""Tests for the deterministic process-pool executor (repro.eval.parallel)."""

import io

import pytest

from repro.eval.parallel import (
    _ProgressGate,
    pool_available,
    print_progress,
    resolve_jobs,
    run_tasks,
)
from repro.eval.sweeps import sweep_grid

needs_pool = pytest.mark.skipif(
    not pool_available(), reason="platform lacks the fork start method"
)


def _square(x):
    return x * x


def _describe(task):
    # Mixed-type result; exercises result pickling beyond plain ints.
    name, value = task
    return {"name": name, "value": value, "tag": f"{name}:{value}"}


def test_resolve_jobs_semantics():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(-1) >= 1


def test_run_tasks_empty():
    assert run_tasks(_square, []) == []
    assert run_tasks(_square, [], jobs=4) == []


def test_run_tasks_serial_preserves_order():
    assert run_tasks(_square, range(10)) == [x * x for x in range(10)]


@pytest.mark.parallel
@needs_pool
def test_run_tasks_pool_matches_serial(smoke_jobs):
    tasks = list(range(23))  # deliberately not a multiple of any chunk size
    serial = run_tasks(_square, tasks, jobs=1)
    pooled = run_tasks(_square, tasks, jobs=smoke_jobs)
    assert pooled == serial


@pytest.mark.parallel
@needs_pool
def test_run_tasks_pool_structured_results(smoke_jobs):
    tasks = [("w", i) for i in range(9)]
    serial = run_tasks(_describe, tasks, jobs=1)
    pooled = run_tasks(_describe, tasks, jobs=smoke_jobs, chunksize=2)
    assert pooled == serial


@pytest.mark.parallel
@needs_pool
def test_jobs_exceeding_tasks_is_fine(smoke_jobs):
    # More workers than tasks must not hang or drop results.
    assert run_tasks(_square, [3, 4], jobs=max(smoke_jobs, 8)) == [9, 16]


def test_progress_gate_log_every():
    seen = []
    gate = _ProgressGate(lambda done, total: seen.append((done, total)), 10, 3)
    for _ in range(10):
        gate.advance()
    # Fires when crossing each multiple of 3 and at the final completion.
    assert seen == [(3, 10), (6, 10), (9, 10), (10, 10)]


def test_progress_gate_chunked_advance():
    seen = []
    gate = _ProgressGate(lambda done, total: seen.append(done), 12, 5)
    gate.advance(4)  # below first threshold
    gate.advance(4)  # crosses 5
    gate.advance(4)  # crosses 10 and completes
    assert seen == [8, 12]


def test_run_tasks_serial_progress():
    seen = []
    run_tasks(_square, range(6), progress=lambda d, t: seen.append((d, t)), log_every=2)
    assert seen == [(2, 6), (4, 6), (6, 6)]


def test_print_progress_format():
    buf = io.StringIO()
    report = print_progress(prefix="fig10: ", stream=buf)
    report(4, 27)
    assert buf.getvalue() == "fig10: 4/27\n"


# Acceptance criterion: a pooled sweep is bit-identical to the serial one.
_AXES = {"arq_entries": [8, 32], "row_bytes": [256, 512]}


@pytest.mark.parallel
@needs_pool
def test_sweep_grid_jobs4_bit_identical_to_serial():
    serial = sweep_grid(_AXES, threads=2, ops_per_thread=200, jobs=1)
    pooled = sweep_grid(_AXES, threads=2, ops_per_thread=200, jobs=4)
    assert len(serial) == len(pooled) == 4
    for a, b in zip(serial, pooled):
        assert a == b  # frozen dataclasses: exact field-for-field equality


@pytest.mark.parallel
@needs_pool
def test_sweep_grid_progress_reports_total(smoke_jobs):
    seen = []
    sweep_grid(
        {"arq_entries": [8, 32]},
        threads=2,
        ops_per_thread=100,
        jobs=smoke_jobs,
        progress=lambda d, t: seen.append((d, t)),
    )
    assert seen and seen[-1] == (2, 2)
