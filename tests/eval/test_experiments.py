"""Shape tests for every figure driver (small traces, fast settings).

These assert the *qualitative* paper results hold at test scale; the
full-scale numbers live in the benchmarks and EXPERIMENTS.md.
"""

import statistics

import pytest

from repro.eval import experiments as E

SMALL = dict(threads=2, ops_per_thread=500)


class TestFig1:
    def test_missrates_in_range(self):
        mr = E.fig1_benchmark_missrates(names=["SG", "MG"], threads=2, ops_per_thread=400)
        assert 0 < mr["SG"] <= 1
        assert mr["SG"] > mr["MG"]  # irregular gathers miss more

    def test_seq_vs_random_sweep(self):
        sweep = E.fig1_seq_vs_random(
            dataset_bytes=(80_000, 8_000_000, 1 << 30), accesses=6000
        )
        seqs = [s for s, _ in sweep.values()]
        rands = [r for _, r in sweep.values()]
        # Sequential stays near zero; random grows with the dataset.
        # (The paper's 20x growth factor needs the full-size sweep of the
        # Fig. 1 bench; at test scale the first point has proportionally
        # more cold misses, so only the ordering is asserted here.)
        assert max(seqs) < 0.05
        assert rands == sorted(rands)
        assert rands[-1] > 2 * rands[0]
        assert rands[-1] > 0.4


class TestFig3:
    def test_endpoints(self):
        table = E.fig3_bandwidth_efficiency()
        eff16, ovh16 = table[16]
        eff256, ovh256 = table[256]
        assert eff16 == pytest.approx(0.3333, abs=1e-4)
        assert ovh16 == pytest.approx(0.6667, abs=1e-4)
        assert eff256 == pytest.approx(0.8889, abs=1e-4)
        assert ovh256 == pytest.approx(0.1111, abs=1e-4)

    def test_monotone(self):
        table = E.fig3_bandwidth_efficiency()
        sizes = sorted(table)
        effs = [table[s][0] for s in sizes]
        assert effs == sorted(effs)


class TestFig9:
    def test_all_above_2(self):
        rpc = E.fig9_requests_per_cycle()
        assert all(v > 2 for v in rpc.values())

    def test_average_near_paper(self):
        rpc = E.fig9_requests_per_cycle()
        assert statistics.mean(rpc.values()) == pytest.approx(9.32, abs=1.0)


class TestFig10:
    def test_shape(self):
        table = E.fig10_coalescing_efficiency(thread_counts=(4,), total_ops=4000)
        row = table[4]
        assert set(row) == set(E.benchmark_names())
        assert all(0 <= v < 1 for v in row.values())
        # The paper's winners beat the suite median.
        med = statistics.median(row.values())
        for name in ("MG", "SP", "SPARSELU"):
            assert row[name] > med


class TestFig11:
    def test_monotone_with_diminishing_returns(self):
        sweep = E.fig11_arq_sweep(entries=(8, 32, 128), threads=2, ops_per_thread=500)
        assert sweep[8] < sweep[32] < sweep[128]
        assert (sweep[32] - sweep[8]) > (sweep[128] - sweep[32]) * 0.5


class TestFig12:
    def test_conflicts_reduced(self):
        table = E.fig12_bank_conflicts(threads=2, ops_per_thread=400)
        for name, (raw, mac) in table.items():
            assert mac <= raw, name


class TestFig13:
    def test_coalesced_beats_raw_baseline(self):
        table = E.fig13_bandwidth_efficiency(threads=2, ops_per_thread=400)
        assert all(v > 1 / 3 for v in table.values())


class TestFig14:
    def test_savings_positive(self):
        table = E.fig14_bandwidth_saving(threads=2, ops_per_thread=400)
        for name, row in table.items():
            assert row["saved_bytes"] > 0, name
            assert row["saved_bytes_per_request"] > 0


class TestFig15:
    def test_targets_within_hardware_limit(self):
        table = E.fig15_targets_per_entry(threads=2, ops_per_thread=400)
        for name, (avg, peak) in table.items():
            assert 1 <= avg <= 12
            assert peak <= 12


class TestFig16:
    def test_paper_values(self):
        table = E.fig16_space_overhead()
        assert table[8] == 512
        assert table[32] == 2048
        assert table[256] == 16384


class TestFig17:
    def test_winners_positive(self):
        table = E.fig17_speedup(threads=2, ops_per_thread=400)
        for name in ("SG", "MG", "SPARSELU"):
            assert table[name]["makespan_speedup"] > 0
            assert table[name]["latency_speedup"] > 0


class TestTable1:
    def test_matches_paper(self):
        t = E.table1_config()
        assert t["cores"] == 8
        assert t["cpu_freq_ghz"] == 3.3
        assert t["spm_bytes_per_core"] == 1 << 20
        assert t["hmc_links"] == 4
        assert t["arq_entries"] == 32
        assert t["arq_entry_bytes"] == 64


class TestAblation:
    def test_fixed_256_wastes_data(self):
        table = E.ablation_fixed_256(threads=2, ops_per_thread=400)
        for name, row in table.items():
            # The strawman's Eq. 1 score beats the MAC's...
            assert row["fixed_bandwidth_eff"] >= row["mac_bandwidth_eff"] - 0.05
            # ...but it moves far more useless data.
            assert row["fixed_useful_fraction"] <= row["mac_useful_fraction"] + 1e-9
