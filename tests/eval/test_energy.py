"""Energy-model tests."""

import pytest

from repro.core.packet import CoalescedRequest
from repro.core.request import RequestType
from repro.eval.energy import EnergyParams, energy_saving, stream_energy


def pkt(size):
    return CoalescedRequest(addr=0x1000, size=size, rtype=RequestType.LOAD)


class TestStreamEnergy:
    def test_breakdown(self):
        p = EnergyParams(link_pj_per_bit=10, activation_pj_per_row=1000, column_pj_per_bit=2)
        report = stream_energy([pkt(64)], p)
        assert report.link_pj == (64 + 32) * 8 * 10
        assert report.activation_pj == 1000
        assert report.column_pj == 64 * 8 * 2
        assert report.total_pj == report.link_pj + report.activation_pj + report.column_pj

    def test_per_packet(self):
        report = stream_energy([pkt(16), pkt(16)])
        assert report.pj_per_packet == pytest.approx(report.total_pj / 2)

    def test_empty(self):
        report = stream_energy([])
        assert report.total_pj == 0
        assert report.pj_per_packet == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParams(link_pj_per_bit=-1)


class TestSaving:
    def test_fig2_scenario_saves_energy(self):
        """16 raw 16 B accesses vs one 256 B: fewer activations and far
        less control traffic on the links."""
        raw = [pkt(16) for _ in range(16)]
        mac = [pkt(256)]
        saving = energy_saving(raw, mac)
        assert saving > 0.5

    def test_identical_streams_save_nothing(self):
        s = [pkt(64)]
        assert energy_saving(s, s) == 0.0

    def test_activation_energy_dominates_small_access_regime(self):
        p = EnergyParams(link_pj_per_bit=0.01, activation_pj_per_row=900, column_pj_per_bit=0.01)
        raw = stream_energy([pkt(16) for _ in range(16)], p)
        mac = stream_energy([pkt(256)], p)
        # 16 activations vs 1: ~16x energy in this regime.
        assert raw.activation_pj == 16 * mac.activation_pj
