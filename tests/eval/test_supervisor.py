"""Chaos tests for the crash-resilient supervisor (repro.eval.supervisor).

Planted-fault sweeps: cells that crash their worker (``os._exit``),
raise, or sleep past the cell timeout, in roughly 10 % of the grid.
The contract under test: the sweep completes, poison cells come back as
structured ``CellFailure`` results, and every surviving cell is
bit-identical to an uninterrupted clean serial run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.eval.supervisor import (
    CellFailure,
    CheckpointJournal,
    SupervisorConfig,
    SweepReport,
    cell_key,
    run_supervised,
)
from repro.eval.parallel import pool_available, run_tasks
from repro.eval.sweeps import sweep_grid

needs_pool = pytest.mark.skipif(
    not pool_available(), reason="platform lacks the fork start method"
)

#: Fast-retry config shared by the chaos tests.
FAST = dict(max_retries=1, backoff_base=0.001, backoff_cap=0.01)


def _pure(task):
    """The clean behaviour every surviving cell must reproduce."""
    kind, n = task
    return {"n": n, "sq": n * n}


def _chaos(task):
    """Planted-fault cell: poison kinds misbehave, the rest are pure."""
    kind, n = task
    if kind == "exit":
        os._exit(1)
    if kind == "boom":
        raise ValueError(f"planted failure {n}")
    if kind == "sleep":
        time.sleep(30)
    return _pure(task)


def _flaky(task):
    """Fails on the first attempt, succeeds once its flag file exists."""
    flag, n = task
    if not os.path.exists(flag):
        Path(flag).touch()
        raise RuntimeError("transient")
    return n * 7


def _chaos_tasks(n=40):
    """~10 % planted faults, one of each kind, spread through the grid."""
    tasks = [("ok", i) for i in range(n)]
    tasks[3] = ("exit", 3)
    tasks[17] = ("boom", 17)
    tasks[26] = ("exit", 26)
    tasks[33] = ("sleep", 33)
    return tasks


def test_cell_key_stable_and_content_sensitive():
    k1 = cell_key(_pure, ("ok", 1))
    assert k1 == cell_key(_pure, ("ok", 1))
    assert k1 != cell_key(_pure, ("ok", 2))
    assert k1 != cell_key(_chaos, ("ok", 1))
    # Lists and tuples canonicalize identically (JSON has no tuples).
    assert cell_key(_pure, ("ok", [1, 2])) == cell_key(_pure, ("ok", (1, 2)))


def test_serial_error_quarantined_and_survivors_exact(tmp_path):
    tasks = [("ok", i) for i in range(8)]
    tasks[2] = ("boom", 2)
    rep = SweepReport()
    out = run_supervised(
        _chaos, tasks, jobs=1, config=SupervisorConfig(**FAST), report=rep
    )
    assert isinstance(out[2], CellFailure)
    assert out[2].kind == "error" and out[2].attempts == 2
    clean = [_pure(t) for t in tasks]
    assert [r for i, r in enumerate(out) if i != 2] == [
        c for i, c in enumerate(clean) if i != 2
    ]
    assert rep.completed == 8 and len(rep.failures) == 1


def test_serial_retry_recovers_transient_failure(tmp_path):
    flag = str(tmp_path / "flag")
    out = run_supervised(
        _flaky, [(flag, 6)], jobs=1, config=SupervisorConfig(**FAST)
    )
    assert out == [42]


@pytest.mark.parallel
@needs_pool
def test_chaos_sweep_completes_with_bit_identical_survivors():
    tasks = _chaos_tasks()
    rep = SweepReport()
    cfg = SupervisorConfig(cell_timeout=2.0, **FAST)
    out = run_supervised(_chaos, tasks, jobs=4, config=cfg, report=rep)
    clean = [_pure(t) for t in tasks]

    failures = {i: r for i, r in enumerate(out) if isinstance(r, CellFailure)}
    assert set(failures) == {3, 17, 26, 33}
    assert failures[3].kind == "crash" and failures[26].kind == "crash"
    assert failures[17].kind == "error"
    assert failures[33].kind == "timeout"
    for i, r in enumerate(out):
        if i not in failures:
            assert r == clean[i]
    assert rep.completed == len(tasks)
    assert rep.retried >= 4  # every poison cell got its retry


@pytest.mark.parallel
@needs_pool
def test_run_tasks_supervise_delegation():
    tasks = _chaos_tasks()[:20]  # keeps the index-3 crash cell
    out = run_tasks(
        _chaos,
        tasks,
        jobs=3,
        supervise=SupervisorConfig(cell_timeout=2.0, **FAST),
    )
    assert isinstance(out[3], CellFailure)
    assert out[5] == _pure(("ok", 5))


def test_journal_resume_reruns_only_missing_cells(tmp_path):
    journal = tmp_path / "ck.jsonl"
    tasks = [("ok", i) for i in range(10)]
    first = run_supervised(
        _pure, tasks[:6], jobs=1, config=SupervisorConfig(journal=journal)
    )
    rep = SweepReport()
    full = run_supervised(
        _pure,
        tasks,
        jobs=1,
        config=SupervisorConfig(journal=journal, resume=True),
        report=rep,
    )
    assert full == [_pure(t) for t in tasks]
    assert full[:6] == first
    assert rep.resumed == 6 and rep.completed == 4


def test_journal_tolerates_torn_and_corrupt_lines(tmp_path):
    journal = tmp_path / "ck.jsonl"
    tasks = [("ok", i) for i in range(4)]
    run_supervised(_pure, tasks, jobs=1, config=SupervisorConfig(journal=journal))
    # Simulate a SIGKILL mid-write: garbage + a truncated record at EOF.
    with open(journal, "a") as fh:
        fh.write("not json at all\n")
        fh.write('{"key": "abcd", "status": "ok", "payl')
    rep = SweepReport()
    out = run_supervised(
        _pure,
        tasks,
        jobs=1,
        config=SupervisorConfig(journal=journal, resume=True),
        report=rep,
    )
    assert out == [_pure(t) for t in tasks]
    assert rep.resumed == 4


def test_quarantined_cell_retries_on_resume(tmp_path):
    journal = tmp_path / "ck.jsonl"
    flag = str(tmp_path / "flag")
    cfg = SupervisorConfig(journal=journal, max_retries=0, backoff_base=0.001)
    out = run_supervised(_flaky, [(flag, 2)], jobs=1, config=cfg)
    assert isinstance(out[0], CellFailure)
    # Failed records do not replay: the resume re-runs the cell, which
    # now succeeds (its flag file exists).
    cfg2 = SupervisorConfig(journal=journal, resume=True, max_retries=0)
    out2 = run_supervised(_flaky, [(flag, 2)], jobs=1, config=cfg2)
    assert out2 == [14]


@pytest.mark.parallel
@needs_pool
def test_supervised_sweep_grid_matches_plain(tmp_path, smoke_jobs):
    axes = {"arq_entries": [8, 32]}
    plain = sweep_grid(axes, workloads=("SG",), ops_per_thread=200)
    sup = sweep_grid(
        axes,
        workloads=("SG",),
        ops_per_thread=200,
        jobs=smoke_jobs,
        supervise=SupervisorConfig(journal=tmp_path / "ck.jsonl"),
    )
    assert sup == plain
    resumed = sweep_grid(
        axes,
        workloads=("SG",),
        ops_per_thread=200,
        jobs=smoke_jobs,
        supervise=SupervisorConfig(journal=tmp_path / "ck.jsonl", resume=True),
    )
    assert resumed == plain  # SweepPoint codec round-trips exactly


_KILL_PROG = """
import json, sys, time
from repro.eval.supervisor import run_supervised, SupervisorConfig

def cell(n):
    time.sleep(0.08)
    return n * 3

cfg = SupervisorConfig(journal=sys.argv[1], resume=(sys.argv[2] == "resume"))
out = run_supervised(cell, list(range(24)), jobs=2, config=cfg)
print(json.dumps(out))
"""


@pytest.mark.parallel
@needs_pool
def test_sigkill_then_resume_completes(tmp_path):
    """SIGKILL mid-sweep; --resume re-runs only the missing cells."""
    journal = tmp_path / "ck.jsonl"
    env = dict(os.environ, PYTHONPATH=str(Path(repro.__file__).parents[1]))
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_PROG, str(journal), "fresh"],
        stdout=subprocess.PIPE,
        env=env,
    )
    # Let some cells complete, then kill without any chance to clean up.
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        done = journal.exists() and journal.read_text().count('"status": "ok"')
        if done and done >= 4:
            break
        time.sleep(0.05)
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=10)
    assert proc.returncode == -signal.SIGKILL

    partial = journal.read_text().count('"status": "ok"')
    assert 0 < partial < 24

    out = subprocess.run(
        [sys.executable, "-c", _KILL_PROG, str(journal), "resume"],
        stdout=subprocess.PIPE,
        env=env,
        timeout=120,
        check=True,
    )
    assert json.loads(out.stdout) == [n * 3 for n in range(24)]


def test_sigterm_graceful_drain(tmp_path):
    """SIGTERM drains in-flight cells, flushes the journal, exits 130."""
    prog = """
import sys, time
from repro.eval.supervisor import run_supervised, SupervisorConfig, SweepInterrupted

def cell(n):
    time.sleep(0.1)
    return n

cfg = SupervisorConfig(journal=sys.argv[1], grace=5.0)
try:
    run_supervised(cell, list(range(50)), jobs=2, config=cfg)
except SweepInterrupted as exc:
    print("interrupted", exc.completed, flush=True)
    sys.exit(130)
"""
    journal = tmp_path / "ck.jsonl"
    env = dict(os.environ, PYTHONPATH=str(Path(repro.__file__).parents[1]))
    proc = subprocess.Popen(
        [sys.executable, "-c", prog, str(journal)],
        stdout=subprocess.PIPE,
        env=env,
    )
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if journal.exists() and journal.read_text().count('"status": "ok"') >= 2:
            break
        time.sleep(0.05)
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    assert proc.returncode == 130, out
    assert b"interrupted" in out
    # No traceback, and the journal holds a valid prefix of the sweep.
    recs = CheckpointJournal(journal).load()
    assert 0 < len(recs) < 50


def test_trace_cache_save_load_roundtrip(tmp_path):
    from repro.eval.runner import TraceCache, cached_trace

    cache = TraceCache(maxsize=8)
    key = ("SG", 2, 50, 2019)
    trace = cached_trace("SG", 2, 50, 2019)
    cache.get(key, lambda: trace)
    path = tmp_path / "traces.pkl"
    assert cache.save(path) == 1

    fresh = TraceCache(maxsize=8)
    assert fresh.load(path) == 1
    # A hit, not a regeneration: the factory must never run.
    got = fresh.get(key, lambda: (_ for _ in ()).throw(AssertionError("regenerated")))
    assert got == trace and fresh.hits == 1
