"""Config/stats serialization tests."""

import dataclasses
import json

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import MACConfig, SystemConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats
from repro.ddr.device import DDRConfig
from repro.eval.serialize import (
    CONFIG_TYPES,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
    stats_to_dict,
)
from repro.hbm.config import HBMConfig
from repro.hmc.config import HMCConfig


class TestConfigRoundtrip:
    @pytest.mark.parametrize(
        "cfg",
        [
            MACConfig(),
            MACConfig(arq_entries=64, row_bytes=1024, max_request_bytes=1024),
            SystemConfig(),
            HMCConfig(),
            HBMConfig(),
            DDRConfig(),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_roundtrip(self, cfg):
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_nested_configs(self):
        sysc = SystemConfig(mac=MACConfig(arq_entries=8))
        back = config_from_dict(config_to_dict(sysc))
        assert back.mac.arq_entries == 8

    def test_file_roundtrip(self, tmp_path):
        p = tmp_path / "cfg.json"
        save_config(HMCConfig(), p)
        assert load_config(p) == HMCConfig()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"__type__": "Nope"})
        with pytest.raises(ValueError):
            config_from_dict({"arq_entries": 32})

    def test_unregistered_object_rejected(self):
        with pytest.raises(TypeError):
            config_to_dict(object())

    def test_validation_applies_on_load(self):
        data = config_to_dict(MACConfig())
        data["arq_entries"] = 0
        with pytest.raises(ValueError):
            config_from_dict(data)


def _scalar_strategy(value):
    """Perturbations of one default field value, mostly staying valid."""
    if isinstance(value, bool):
        return st.booleans()
    if isinstance(value, int):
        return st.sampled_from(sorted({value, max(1, value // 2), value * 2}))
    if isinstance(value, float):
        return st.sampled_from(sorted({value, value / 2, value * 2}))
    return st.just(value)


@st.composite
def _config_instances(draw, cls=None):
    """A randomly perturbed instance of any registered config type.

    Nested registered configs (``SystemConfig.mac``, ``HMCConfig.timing``
    and friends) recurse, so the round-trip property also covers the
    tagged-dict nesting path.
    """
    if cls is None:
        cls = draw(st.sampled_from(sorted(CONFIG_TYPES.values(), key=lambda c: c.__name__)))
    default = cls()
    kwargs = {}
    for f in dataclasses.fields(default):
        value = getattr(default, f.name)
        if type(value).__name__ in CONFIG_TYPES:
            kwargs[f.name] = draw(_config_instances(cls=type(value)))
        else:
            kwargs[f.name] = draw(_scalar_strategy(value))
    try:
        return cls(**kwargs)
    except ValueError:
        # Cross-field validation (e.g. max_request_bytes > row_bytes)
        # rejected this combination; discard the example.
        assume(False)


class TestRoundtripProperty:
    @settings(max_examples=60, deadline=None)
    @given(cfg=_config_instances())
    def test_dict_roundtrip_all_registered_types(self, cfg):
        data = config_to_dict(cfg)
        assert data["__type__"] == type(cfg).__name__
        assert config_from_dict(data) == cfg

    @settings(max_examples=30, deadline=None)
    @given(cfg=_config_instances(cls=SystemConfig))
    def test_json_roundtrip_nested(self, cfg):
        # SystemConfig nests a MACConfig; the tagged dict must survive an
        # actual JSON encode/decode, not just the dict transform.
        back = config_from_dict(json.loads(json.dumps(config_to_dict(cfg))))
        assert back == cfg
        assert back.mac == cfg.mac


class TestStatsExport:
    def test_dict_matches_properties(self):
        reqs = [
            MemoryRequest(addr=0xA00 | (f << 4), rtype=RequestType.LOAD, tag=f)
            for f in range(6)
        ]
        st = MACStats()
        coalesce_trace_fast(reqs, MACConfig(), stats=st)
        d = stats_to_dict(st)
        assert d["raw_requests"] == 6
        assert d["coalescing_efficiency"] == st.coalescing_efficiency
        assert d["packet_sizes"] == st.packet_sizes
        import json

        json.dumps(d)  # must be JSON-serializable
