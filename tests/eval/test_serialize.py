"""Config/stats serialization tests."""

import pytest

from repro.core.config import MACConfig, SystemConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats
from repro.ddr.device import DDRConfig
from repro.eval.serialize import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
    stats_to_dict,
)
from repro.hbm.config import HBMConfig
from repro.hmc.config import HMCConfig


class TestConfigRoundtrip:
    @pytest.mark.parametrize(
        "cfg",
        [
            MACConfig(),
            MACConfig(arq_entries=64, row_bytes=1024, max_request_bytes=1024),
            SystemConfig(),
            HMCConfig(),
            HBMConfig(),
            DDRConfig(),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_roundtrip(self, cfg):
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_nested_configs(self):
        sysc = SystemConfig(mac=MACConfig(arq_entries=8))
        back = config_from_dict(config_to_dict(sysc))
        assert back.mac.arq_entries == 8

    def test_file_roundtrip(self, tmp_path):
        p = tmp_path / "cfg.json"
        save_config(HMCConfig(), p)
        assert load_config(p) == HMCConfig()

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"__type__": "Nope"})
        with pytest.raises(ValueError):
            config_from_dict({"arq_entries": 32})

    def test_unregistered_object_rejected(self):
        with pytest.raises(TypeError):
            config_to_dict(object())

    def test_validation_applies_on_load(self):
        data = config_to_dict(MACConfig())
        data["arq_entries"] = 0
        with pytest.raises(ValueError):
            config_from_dict(data)


class TestStatsExport:
    def test_dict_matches_properties(self):
        reqs = [
            MemoryRequest(addr=0xA00 | (f << 4), rtype=RequestType.LOAD, tag=f)
            for f in range(6)
        ]
        st = MACStats()
        coalesce_trace_fast(reqs, MACConfig(), stats=st)
        d = stats_to_dict(st)
        assert d["raw_requests"] == 6
        assert d["coalescing_efficiency"] == st.coalescing_efficiency
        assert d["packet_sizes"] == st.packet_sizes
        import json

        json.dumps(d)  # must be JSON-serializable
