"""Set-associative cache model tests."""

import pytest

from repro.cache.cache import SetAssociativeCache


def cache(**kw):
    defaults = dict(capacity_bytes=1024, line_bytes=64, ways=2)
    defaults.update(kw)
    return SetAssociativeCache(**defaults)


class TestBasics:
    def test_compulsory_miss_then_hit(self):
        c = cache()
        assert not c.access(0x100)
        assert c.access(0x100)
        assert c.access(0x13F)  # same line
        assert c.stats.misses == 1 and c.stats.hits == 2

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            cache(line_bytes=60)
        with pytest.raises(ValueError):
            cache(capacity_bytes=1000)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=64 * 2 * 3, line_bytes=64, ways=2)

    def test_flush(self):
        c = cache()
        c.access(0x100)
        c.flush()
        assert not c.contains(0x100)

    def test_contains_is_pure(self):
        c = cache()
        c.access(0x100)
        before = c.stats.accesses
        assert c.contains(0x100)
        assert c.stats.accesses == before


class TestLRU:
    def test_eviction_order(self):
        # 2-way, 8 sets; three lines in the same set.
        c = cache()
        sets = c.sets
        a, b, d = 0, sets * 64, 2 * sets * 64
        c.access(a)
        c.access(b)
        c.access(d)  # evicts a (LRU)
        assert not c.contains(a)
        assert c.contains(b) and c.contains(d)

    def test_touch_refreshes_lru(self):
        c = cache()
        sets = c.sets
        a, b, d = 0, sets * 64, 2 * sets * 64
        c.access(a)
        c.access(b)
        c.access(a)  # a becomes MRU
        c.access(d)  # evicts b
        assert c.contains(a) and not c.contains(b)

    def test_eviction_counter(self):
        c = cache()
        sets = c.sets
        for i in range(3):
            c.access(i * sets * 64)
        assert c.stats.evictions == 1


class TestPrefetch:
    def test_next_line_prefetched(self):
        c = cache(prefetch_next_line=True)
        c.access(0x000)  # miss, prefetch line 1
        assert c.contains(0x40)
        assert c.stats.prefetch_issued == 1

    def test_tagged_streaming(self):
        """A unit-stride stream misses only at page boundaries."""
        c = cache(capacity_bytes=4096, ways=4, prefetch_next_line=True)
        for addr in range(0, 16384, 8):
            c.access(addr)
        # One miss per 4 KB page (4 pages).
        assert c.stats.misses == 4

    def test_prefetch_stops_at_page_boundary(self):
        c = cache(prefetch_next_line=True)
        last_line_of_page = 4096 - 64
        c.access(last_line_of_page)
        assert not c.contains(4096)

    def test_no_prefetch_by_default(self):
        c = cache()
        c.access(0x000)
        assert not c.contains(0x40)

    def test_prefetch_hit_counted(self):
        c = cache(prefetch_next_line=True)
        c.access(0x00)
        c.access(0x40)
        assert c.stats.prefetch_hits == 1


class TestMissRates:
    def test_random_large_misses(self):
        import random

        rng = random.Random(1)
        c = cache(capacity_bytes=4096, ways=4)
        for _ in range(4000):
            c.access(rng.randrange(1 << 30))
        assert c.stats.miss_rate > 0.95

    def test_resident_working_set_hits(self):
        c = cache(capacity_bytes=4096, ways=4)
        for _ in range(4):
            for addr in range(0, 2048, 64):
                c.access(addr)
        # After the first cold pass, everything hits.
        assert c.stats.misses == 32
