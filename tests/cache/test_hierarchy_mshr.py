"""Cache hierarchy and MSHR tests."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mshr import MSHRFile
from repro.core.request import MemoryRequest, RequestType
from repro.trace.record import TraceRecord


class TestHierarchy:
    def test_llc_catches_l1_misses(self):
        h = CacheHierarchy(cores=2, l1_bytes=512, llc_bytes=4096, prefetch=False)
        h.access(0, 0x1000)  # cold: misses both
        # Evict from the single-set L1 (8 ways) with 10 conflicting
        # lines; the 16-way LLC set still holds all 11, so the re-access
        # hits in the LLC only.
        for i in range(1, 11):
            h.access(0, 0x1000 + i * 512)
        h.access(0, 0x1000)
        assert h.stats.llc_misses < h.stats.l1_misses

    def test_miss_rate_definition(self):
        h = CacheHierarchy(cores=1, prefetch=False)
        h.access(0, 0x100)
        h.access(0, 0x100)
        assert h.stats.miss_rate == 0.5  # 1 of 2 reached memory

    def test_run_trace_skips_fences(self):
        h = CacheHierarchy(cores=1, prefetch=False)
        trace = [
            TraceRecord(RequestType.LOAD, 0x100),
            TraceRecord(RequestType.FENCE, 0),
            TraceRecord(RequestType.STORE, 0x100),
        ]
        h.run_trace(trace)
        assert h.stats.accesses == 2

    def test_cores_have_private_l1(self):
        h = CacheHierarchy(cores=2, prefetch=False)
        h.access(0, 0x100)
        h.access(1, 0x100)  # other core's L1 misses, LLC hits
        assert h.stats.l1_misses == 2
        assert h.stats.llc_misses == 1


class TestMSHR:
    def req(self, addr, tag=0):
        return MemoryRequest(addr=addr, rtype=RequestType.LOAD, tag=tag)

    def test_merge_within_fill_window(self):
        m = MSHRFile(entries=4, fill_latency=100)
        assert m.miss(self.req(0x100, 1), cycle=0)
        assert m.miss(self.req(0x120, 2), cycle=50)  # same 64 B line
        assert m.stats.allocations == 1
        assert m.stats.merges == 1

    def test_no_merge_after_fill(self):
        m = MSHRFile(entries=4, fill_latency=100)
        m.miss(self.req(0x100, 1), cycle=0)
        m.miss(self.req(0x120, 2), cycle=150)  # fill already returned
        assert m.stats.allocations == 2

    def test_file_full_stalls(self):
        m = MSHRFile(entries=1, fill_latency=1000)
        assert m.miss(self.req(0x100), 0)
        assert not m.miss(self.req(0x900), 1)
        assert m.stats.stalls == 1

    def test_fixed_line_size(self):
        """The structural limit of section 2.3.2: always one 64 B line."""
        m = MSHRFile(entries=8, line_bytes=64)
        m.miss(self.req(0x100), 0)
        entries = m.drain()
        assert entries[0].line == 0x100 >> 6

    def test_coalescing_efficiency(self):
        m = MSHRFile(entries=8, fill_latency=1000)
        for i in range(4):
            m.miss(self.req(0x100 + i * 8, i), cycle=i)
        assert m.coalescing_efficiency == 0.75

    def test_drain_returns_everything(self):
        m = MSHRFile(entries=8)
        m.miss(self.req(0x100), 0)
        m.miss(self.req(0x900), 0)
        assert len(m.drain()) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MSHRFile(entries=0)
