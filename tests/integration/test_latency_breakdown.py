"""Exactness and soundness of the per-request latency attribution.

Two contracts from DESIGN.md §9, pinned end-to-end:

* **Exactness** — the per-stage latency sums reproduce the end-to-end
  latency cycle for cycle (the stamps telescope), on the full MAC
  pipeline *and* on the direct-mapped (uncoalesced) baseline, in both
  the closed-loop node and the open-loop dispatch/replay harness.
* **Soundness** — stall-cause counters measure wall-clock bottleneck
  time: no ``(site, cause)`` counter may exceed the elapsed cycles of
  the run, whatever the workload shape (hypothesis property).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.runner import attributed_node_run, dispatch, replay_on_device
from repro.obs.attribution import STAGES, AttributionCollector, request_breakdown


def _assert_exact(attrib):
    stage_sum = sum(attrib.stage_cycles.values())
    end_total = attrib.end_to_end.total
    assert stage_sum == end_total, (
        f"stage sums must decompose end-to-end exactly: "
        f"{stage_sum} != {end_total}"
    )
    # The histograms' float totals mirror the pinned integer totals.
    for stage in STAGES:
        assert attrib.stages[stage].total == attrib.stage_cycles[stage]


class TestClosedLoopExactness:
    @pytest.fixture(scope="class")
    def mac_run(self):
        return attributed_node_run("SG", threads=4, ops_per_thread=400)

    @pytest.fixture(scope="class")
    def baseline_run(self):
        return attributed_node_run(
            "SG", threads=4, ops_per_thread=400, coalescing=False
        )

    def test_mac_pipeline_is_exact(self, mac_run):
        attrib, node = mac_run
        assert attrib.finalized > 0
        assert attrib.incomplete == 0
        _assert_exact(attrib)

    def test_direct_mapped_baseline_is_exact(self, baseline_run):
        attrib, node = baseline_run
        assert attrib.finalized > 0
        assert attrib.incomplete == 0
        _assert_exact(attrib)

    def test_every_stage_of_the_full_path_is_populated(self, mac_run):
        attrib, _ = mac_run
        for stage in STAGES:
            assert attrib.stages[stage].count > 0, f"stage {stage} never crossed"

    def test_stage_latencies_are_non_negative(self, mac_run):
        attrib, _ = mac_run
        for stage in STAGES:
            hist = attrib.stages[stage]
            assert hist.min is None or hist.min >= 0, stage

    def test_uncoalesced_baseline_runs_longer(self, mac_run, baseline_run):
        """The A/B the analyze CLI diffs: coalescing shortens the run."""
        _, node = mac_run
        _, base_node = baseline_run
        assert base_node.cycle > node.cycle


class TestOpenLoopExactness:
    def test_dispatch_replay_path_is_exact(self):
        attrib = AttributionCollector()
        disp = dispatch(
            "IS", "mac-cycle", attrib=attrib, threads=4, ops_per_thread=400
        )
        replay_on_device(disp.packets, attrib=attrib, use_issue_cycles=True)
        assert attrib.finalized > 0
        _assert_exact(attrib)

    def test_per_request_breakdowns_telescope(self):
        attrib = AttributionCollector()
        disp = dispatch(
            "SG", "mac-cycle", attrib=attrib, threads=2, ops_per_thread=200
        )
        replay_on_device(disp.packets, attrib=attrib, use_issue_cycles=True)
        seen = 0
        for pkt in disp.packets:
            for raw in pkt.requests:
                bd = request_breakdown(raw)
                if bd is None:
                    continue
                seen += 1
                stages = [v for k, v in bd.items() if k != "end_to_end"]
                assert sum(stages) == bd["end_to_end"]
                assert all(v >= 0 for v in stages)
        assert seen > 0


class TestStallSoundness:
    @settings(max_examples=8, deadline=None)
    @given(
        threads=st.integers(min_value=1, max_value=4),
        ops=st.integers(min_value=50, max_value=250),
        coalescing=st.booleans(),
        name=st.sampled_from(["SG", "IS", "HPCG"]),
    )
    def test_stall_counters_never_exceed_elapsed_cycles(
        self, threads, ops, coalescing, name
    ):
        attrib, node = attributed_node_run(
            name, threads=threads, ops_per_thread=ops, coalescing=coalescing
        )
        elapsed = node.cycle
        assert elapsed > 0
        for site, causes in attrib.stalls.items():
            for cause, cycles in causes.items():
                assert 0 <= cycles <= elapsed, (
                    f"{site}/{cause}: {cycles} stall cycles in a "
                    f"{elapsed}-cycle run"
                )
        _assert_exact(attrib)
