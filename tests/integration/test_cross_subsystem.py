"""Cross-subsystem consistency checks tying the whole library together."""

import pytest

from repro.core.config import MACConfig
from repro.eval.energy import energy_saving
from repro.eval.runner import cached_trace, compare_policies, dispatch
from repro.trace.predictor import predict_efficiency
from repro.trace.analyzer import row_locality


class TestMetricConsistency:
    """Independent computations of the same quantity must agree."""

    @pytest.mark.parametrize("name", ["SG", "MG", "IS"])
    def test_predictor_analyzer_engine_triangle(self, name):
        trace = cached_trace(name, 4, 800)
        cfg = MACConfig()
        engine = dispatch(name, "mac", 4, 800).stats.coalescing_efficiency
        predicted = predict_efficiency(trace, cfg).predicted_efficiency
        upper_bound = row_locality(trace, window=cfg.arq_entries).hit_rate
        assert predicted == pytest.approx(engine, abs=1e-12)
        assert engine <= upper_bound + 1e-9

    def test_wire_accounting_closes(self):
        """MAC-side wire-byte accounting equals device-side FLIT count."""
        res = dispatch("SG", "mac", 2, 500)
        from repro.eval.runner import replay_on_device

        replay = replay_on_device(res.packets)
        assert replay.wire_bytes == res.stats.coalesced_wire_bytes

    def test_targets_vs_efficiency_identity(self):
        """avg targets/packet == raw/packets == 1/(1-efficiency)."""
        st = dispatch("GRAPPOLO", "mac", 4, 800).stats
        assert st.avg_targets_per_packet == pytest.approx(
            st.memory_raw_requests / st.coalesced_packets
        )
        assert st.avg_targets_per_packet == pytest.approx(
            1 / (1 - st.coalescing_efficiency)
        )

    def test_energy_conflict_latency_all_point_the_same_way(self):
        """On a coalescable workload, every axis improves together."""
        res = compare_policies("MG", 2, 600)
        raw_pkts = dispatch("MG", "raw", 2, 600).packets
        mac_pkts = dispatch("MG", "mac", 2, 600).packets
        assert res["mac"].bank_conflicts < res["raw"].bank_conflicts
        assert res["mac"].wire_bytes < res["raw"].wire_bytes
        assert res["mac"].mean_latency < res["raw"].mean_latency
        assert energy_saving(raw_pkts, mac_pkts) > 0


class TestScaleInvariance:
    """Ratio metrics must be stable across trace lengths (DESIGN.md
    substitution 3's premise)."""

    def test_efficiency_stable_under_2x_trace(self):
        short = dispatch("SP", "mac", 4, 800).stats.coalescing_efficiency
        long_ = dispatch("SP", "mac", 4, 1600).stats.coalescing_efficiency
        assert abs(short - long_) < 0.05

    def test_bandwidth_efficiency_stable(self):
        a = dispatch("SORT", "mac", 4, 700).stats.coalesced_bandwidth_efficiency
        b = dispatch("SORT", "mac", 4, 1400).stats.coalesced_bandwidth_efficiency
        assert abs(a - b) < 0.05


class TestSeedSensitivity:
    def test_different_seeds_same_regime(self):
        """Efficiency is a property of the pattern, not the seed."""
        effs = []
        for seed in (1, 2019, 77777):
            trace = dispatch("BFS", "mac", 4, 800, seed=seed)
            effs.append(trace.stats.coalescing_efficiency)
        assert max(effs) - min(effs) < 0.12
