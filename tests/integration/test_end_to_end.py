"""End-to-end integration tests across all subsystems."""

import pytest

from repro.baselines.direct import dispatch_raw
from repro.core.config import MACConfig
from repro.core.mac import MAC, coalesce_trace_fast
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats
from repro.eval.runner import replay_on_device
from repro.hmc.device import HMCDevice
from repro.node.node import Node
from repro.trace.record import to_requests
from repro.workloads.registry import make


class TestTraceToDevicePipeline:
    """Workload -> trace -> MAC -> HMC -> responses, fully wired."""

    @pytest.fixture(scope="class")
    def sg_trace(self):
        return make("SG").generate(threads=4, ops_per_thread=500)

    def test_full_pipeline_conserves_requests(self, sg_trace):
        requests = list(to_requests(sg_trace))
        st = MACStats()
        packets = coalesce_trace_fast(requests, stats=st)
        dev = HMCDevice()
        t = 0
        responses = []
        for p in packets:
            responses.append(dev.submit(p, t))
            t += 2
        delivered = sum(len(r.request.targets) for r in responses)
        assert delivered == len(requests)

    def test_mac_beats_raw_on_every_axis(self, sg_trace):
        requests = list(to_requests(sg_trace))
        raw_pkts = dispatch_raw(
            [MemoryRequest(r.addr, r.rtype, r.tid, r.tag) for r in requests]
        )
        mac_pkts = coalesce_trace_fast(
            [MemoryRequest(r.addr, r.rtype, r.tid, r.tag) for r in requests]
        )
        raw = replay_on_device(raw_pkts, cycles_per_packet=1.0)
        mac = replay_on_device(mac_pkts)
        assert len(mac_pkts) < len(raw_pkts)
        assert mac.bank_conflicts < raw.bank_conflicts
        assert mac.wire_bytes < raw.wire_bytes
        assert mac.mean_latency < raw.mean_latency

    def test_response_targets_match_request_tags(self, sg_trace):
        requests = list(to_requests(sg_trace))[:200]
        mac = MAC(MACConfig(latency_hiding=False))
        packets = mac.process(requests)
        dev = HMCDevice()
        for p in packets:
            mac.receive_response(dev.submit(p, p.issue_cycle))
        local, _ = mac.deliver_responses()
        tags = sorted((t.tid, t.tag) for t, _ in local)
        assert tags == sorted((r.tid, r.tag) for r in requests)


class TestClosedLoopNode:
    def test_benchmark_through_node(self):
        """A real workload drives the closed-loop node to completion."""
        trace = make("SPARSELU").generate(threads=4, ops_per_thread=250)
        per_core = {c: [] for c in range(4)}
        for rec in trace:
            per_core[rec.core % 4].append(rec.to_request(tag=len(per_core[rec.core % 4]) & 0xFFFF))
        node = Node([iter(v) for v in per_core.values()])
        st = node.run()
        assert st.responses_delivered == st.requests_issued == len(trace)
        assert st.coalescing_efficiency > 0

    def test_node_mac_vs_raw_conflicts(self):
        trace = make("MG").generate(threads=4, ops_per_thread=250)

        def streams():
            per_core = {c: [] for c in range(4)}
            for rec in trace:
                per_core[rec.core % 4].append(
                    rec.to_request(tag=len(per_core[rec.core % 4]) & 0xFFFF)
                )
            return [iter(v) for v in per_core.values()]

        with_mac = Node(streams()).run()
        without = Node(streams(), coalescing_enabled=False).run()
        assert with_mac.bank_conflicts < without.bank_conflicts


class TestHBMApplicability:
    """Section 4.3: the same MAC logic drives a 1 KB-row HBM stack."""

    def test_hbm_geometry_mac(self):
        cfg = MACConfig(row_bytes=1024, max_request_bytes=1024)
        trace = [
            MemoryRequest(addr=(3 << 10) | (f << 4), rtype=RequestType.LOAD, tag=f)
            for f in range(12)
        ]
        st = MACStats()
        pkts = coalesce_trace_fast(trace, cfg, stats=st)
        assert len(pkts) == 1
        assert sum(p.raw_count for p in pkts) == 12

    def test_hbm_device_end_to_end(self):
        from repro.hmc.config import HMCConfig

        hbm = HMCConfig(
            row_bytes=1024,
            max_request_bytes=1024,
            column_bytes=32,  # BL4 x 64-bit bus (section 4.3)
            vaults=16,  # HBM: 8-16 pseudo-channels
            banks_per_vault=16,
        )
        cfg = MACConfig(row_bytes=1024, max_request_bytes=1024)
        trace = [
            MemoryRequest(addr=(v << 14) | (f << 4), rtype=RequestType.LOAD, tag=v * 16 + f)
            for v in range(8)
            for f in range(10)
        ]
        pkts = coalesce_trace_fast(trace, cfg)
        dev = HMCDevice(hbm)
        t = 0
        for p in pkts:
            dev.submit(p, t)
            t += 2
        assert dev.stats.requests == len(pkts)
        assert dev.bank_conflicts == 0  # one coalesced access per row


class TestFencesEndToEnd:
    def test_fence_ordering_through_node(self):
        reqs = [
            MemoryRequest(addr=0x100, rtype=RequestType.LOAD, tag=0),
            MemoryRequest(addr=0, rtype=RequestType.FENCE, tag=1),
            MemoryRequest(addr=0x110, rtype=RequestType.STORE, tag=2),
        ]
        node = Node([iter(reqs)])
        node.run()
        load, store = reqs[0], reqs[2]
        assert 0 < load.complete_cycle
        # The store could not issue before the fence saw the load done.
        assert store.issue_cycle > load.complete_cycle - 1
