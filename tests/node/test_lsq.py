"""Unit tests for the load/store queue."""

import pytest

from repro.core.request import MemoryRequest, RequestType
from repro.node.lsq import LoadStoreQueue


def req(tid, tag, cycle=0):
    return MemoryRequest(
        addr=0x100, rtype=RequestType.LOAD, tid=tid, tag=tag, issue_cycle=cycle
    )


class TestLSQ:
    def test_insert_and_complete(self):
        lsq = LoadStoreQueue(4)
        r = req(1, 2)
        assert lsq.insert(r)
        out = lsq.complete(1, 2, cycle=300)
        assert out is r
        assert r.complete_cycle == 300
        assert lsq.empty

    def test_capacity(self):
        lsq = LoadStoreQueue(2)
        assert lsq.insert(req(0, 0))
        assert lsq.insert(req(0, 1))
        assert lsq.full
        assert not lsq.insert(req(0, 2))

    def test_duplicate_rejected(self):
        lsq = LoadStoreQueue(4)
        lsq.insert(req(1, 1))
        with pytest.raises(ValueError):
            lsq.insert(req(1, 1))

    def test_unknown_completion_returns_none(self):
        assert LoadStoreQueue(4).complete(9, 9, 0) is None

    def test_oldest(self):
        lsq = LoadStoreQueue(4)
        lsq.insert(req(0, 0, cycle=20))
        lsq.insert(req(0, 1, cycle=10))
        assert lsq.oldest().tag == 1
        assert LoadStoreQueue(2).oldest() is None

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LoadStoreQueue(0)
