"""Unit tests for the in-order core model."""

import pytest

from repro.core.request import MemoryRequest, RequestType
from repro.node.core import InOrderCore
from repro.node.spm import ScratchpadMemory


def reqs(n, row=1, tid=0):
    return [
        MemoryRequest(
            addr=(row << 8) | ((i % 16) << 4), rtype=RequestType.LOAD, tid=tid, tag=i
        )
        for i in range(n)
    ]


class TestIssue:
    def test_issues_one_per_cycle(self):
        core = InOrderCore(0, iter(reqs(3)))
        out = [core.tick(c) for c in range(3)]
        assert all(o is not None for o in out)
        assert core.stats.issued == 3

    def test_pacing_with_ops_between_mem(self):
        core = InOrderCore(0, iter(reqs(2)), ops_between_mem=2)
        issued = [c for c in range(7) if core.tick(c) is not None]
        assert issued == [0, 3]

    def test_stalls_when_lsq_full(self):
        core = InOrderCore(0, iter(reqs(5)), lsq_capacity=2)
        assert core.tick(0) is not None
        assert core.tick(1) is not None
        assert core.tick(2) is None  # LSQ full
        assert core.stats.stall_cycles == 1
        core.complete(0, 0, cycle=2)
        assert core.tick(3) is not None

    def test_done_when_drained(self):
        core = InOrderCore(0, iter(reqs(1)))
        core.tick(0)
        assert not core.done
        core.complete(0, 0, 1)
        assert core.done


class TestSPMFiltering:
    def test_spm_hits_never_reach_mac(self):
        spm = ScratchpadMemory()
        spm.map(0x100, 0x100)
        core = InOrderCore(0, iter(reqs(4)), spm=spm)
        out = [core.tick(c) for c in range(4)]
        assert all(o is None for o in out)
        assert core.stats.spm_hits == 4
        assert core.stats.mac_requests == 0

    def test_spm_hits_retire_after_latency(self):
        spm = ScratchpadMemory(latency_cycles=3)
        spm.map(0x100, 0x100)
        core = InOrderCore(0, iter(reqs(1)), spm=spm)
        core.tick(0)
        assert not core.done
        core.tick(1)
        core.tick(2)
        core.tick(3)
        assert core.done


class TestFences:
    def test_fence_stalls_until_lsq_empty(self):
        stream = [
            MemoryRequest(addr=0x100, rtype=RequestType.LOAD, tag=0),
            MemoryRequest(addr=0, rtype=RequestType.FENCE, tag=1),
            MemoryRequest(addr=0x200, rtype=RequestType.LOAD, tag=2),
        ]
        core = InOrderCore(0, iter(stream))
        assert core.tick(0).tag == 0
        assert core.tick(1).is_fence
        assert core.tick(2) is None  # fence pending: load 0 outstanding
        assert core.stats.fence_stalls == 1
        core.complete(0, 0, 3)
        assert core.tick(4).tag == 2


class TestRetry:
    def test_retry_reissues_same_request(self):
        core = InOrderCore(0, iter(reqs(2)))
        first = core.tick(0)
        core.retry()
        second = core.tick(1)
        assert second is first
        assert core.stats.issued == 1  # net
        third = core.tick(2)
        assert third.tag == 1

    def test_retry_without_issue_raises(self):
        core = InOrderCore(0, iter(reqs(1)))
        with pytest.raises(RuntimeError):
            core.retry()

    def test_retry_fence_resets_pending(self):
        stream = [MemoryRequest(addr=0, rtype=RequestType.FENCE)]
        core = InOrderCore(0, iter(stream))
        core.tick(0)
        core.retry()
        fence = core.tick(1)
        assert fence.is_fence
