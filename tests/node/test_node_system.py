"""Closed-loop node and NUMA-system integration tests."""

import pytest

from repro.core.request import MemoryRequest, RequestType
from repro.node.interconnect import Interconnect
from repro.node.node import Node
from repro.node.system import NUMASystem, interleaved_home


def stream(core, n=120, rows=97, node=0):
    for i in range(n):
        row = (core * 13 + i // 8) % rows
        yield MemoryRequest(
            addr=(row << 8) | ((i % 8) << 4),
            rtype=RequestType.LOAD,
            tid=core,
            tag=i,
            core=core,
            node=node,
        )


class TestInterconnect:
    def test_latency_and_ordering(self):
        ic = Interconnect(latency_cycles=10)
        ic.send(0, dst=1, payload="a")
        ic.send(5, dst=0, payload="b")
        assert ic.deliver(9) == []
        assert ic.deliver(10) == [(1, "a")]
        assert ic.deliver(20) == [(0, "b")]
        assert ic.in_flight == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Interconnect(-1)


class TestNode:
    def test_all_requests_complete(self):
        node = Node([stream(c) for c in range(4)])
        st = node.run()
        assert st.requests_issued == 480
        assert st.responses_delivered == 480
        assert all(c.done for c in node.cores)

    def test_mac_reduces_conflicts_vs_raw(self):
        node = Node([stream(c) for c in range(4)])
        st = node.run()
        raw = Node([stream(c) for c in range(4)], coalescing_enabled=False)
        st_raw = raw.run()
        assert st.bank_conflicts < st_raw.bank_conflicts

    def test_requests_get_latencies(self):
        node = Node([stream(0, n=20)])
        node.run()
        # Every delivered completion stamped a positive latency.
        assert node.device.stats.requests > 0
        assert node.device.stats.mean_latency > 0


class TestInterleavedHome:
    def test_round_robin(self):
        home = interleaved_home(4, granularity=4096)
        assert home(0) == 0
        assert home(4096) == 1
        assert home(4 * 4096) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            interleaved_home(0)
        with pytest.raises(ValueError):
            interleaved_home(2, granularity=3000)


class TestNUMASystem:
    def test_two_nodes_complete_remote_traffic(self):
        sys2 = NUMASystem(
            [
                [stream(0, n=60, node=0)],
                [stream(0, n=60, node=1)],
            ],
            interconnect_latency=30,
            interleave_bytes=1 << 9,  # 512 B: half the rows are remote
        )
        st = sys2.run()
        assert st.remote_requests > 0
        # Every core drained and every remote response came home.
        for node in sys2.nodes:
            assert all(c.done for c in node.cores)

    def test_single_node_system_all_local(self):
        sys1 = NUMASystem([[stream(0, n=40)]])
        st = sys1.run()
        assert st.remote_requests == 0

    def test_remote_coalescing_happens_at_home_node(self):
        """Remote requests merge in the home node's MAC with local ones."""
        sys2 = NUMASystem(
            [
                [stream(0, n=80, node=0)],
                [stream(0, n=80, node=1)],
            ],
            interleave_bytes=1 << 9,
        )
        sys2.run()
        total_merges = sum(n.mac.aggregator.arq.merges for n in sys2.nodes)
        assert total_merges > 0

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            NUMASystem([])


class TestRemoteResponseAccounting:
    """Satellite regressions for the suppress-and-count contract."""

    def test_bogus_duplicate_completion_dropped_exactly_once(self):
        """A completion no core is waiting for must not double-complete.

        Simulates the message-loss-recovery race: the reissued response
        already went home, then the original limps in late.
        """
        from repro.core.request import Target

        sys2 = NUMASystem(
            [
                [stream(0, n=40, node=0)],
                [stream(0, n=40, node=1)],
            ],
            interconnect_latency=10,
            interleave_bytes=1 << 9,
        )
        bogus_raw = MemoryRequest(
            addr=0, rtype=RequestType.LOAD, tid=0, tag=999, core=0, node=0
        )
        sys2.fabric.send(
            0, dst=0, payload=(Target(tid=0, tag=999, flit_id=0), bogus_raw), src=1
        )
        st = sys2.run()
        assert st.duplicate_remote_drops == 1
        # The duplicate neither completed a core nor counted as a response.
        assert st.responses == st.remote_requests
        for node in sys2.nodes:
            assert all(c.done for c in node.cores)

    def test_fault_injection_surfaces_recovery_counters(self):
        """Timeouts/duplicates under drop faults roll up into SystemStats."""
        from repro.faults import FaultConfig
        from repro.hmc.config import HMCConfig

        sys2 = NUMASystem(
            [
                [stream(0, n=80, node=0)],
                [stream(0, n=80, node=1)],
            ],
            interconnect_latency=10,
            interleave_bytes=1 << 9,
            hmc_config=HMCConfig(
                faults=FaultConfig.simple(
                    drop_rate=2e-2, seed=11, timeout_cycles=500
                )
            ),
        )
        st = sys2.run()
        assert st.response_timeouts > 0
        assert st.response_timeouts == sum(
            n.mac.response_router.timeouts for n in sys2.nodes
        )
        assert st.duplicate_responses == sum(
            n.mac.response_router.duplicates_suppressed for n in sys2.nodes
        )
        for node in sys2.nodes:
            assert all(c.done for c in node.cores)
