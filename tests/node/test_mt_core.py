"""Tests for the temporally multithreaded core (section 3's extension)."""

import collections

import pytest

from repro.core.request import MemoryRequest, RequestType
from repro.node.mt_core import MultithreadedCore
from repro.node.spm import ScratchpadMemory


def stream(tid, n=32, rows=256):
    for i in range(n):
        yield MemoryRequest(
            addr=((tid * 64 + i) % rows) << 8,
            rtype=RequestType.LOAD,
            tid=tid,
            tag=i,
        )


def run_with_latency(core, latency=300, max_cycles=1_000_000):
    """Drive the core against a fixed-latency memory; returns (ops, cycles)."""
    inflight = collections.deque()
    cycle = 0
    issued = 0
    while not core.done:
        while inflight and inflight[0][0] <= cycle:
            _, tid, tag = inflight.popleft()
            core.complete(tid, tag, cycle)
        req = core.tick(cycle)
        if req is not None:
            issued += 1
            inflight.append((cycle + latency, req.tid, req.tag))
        cycle += 1
        assert cycle < max_cycles
    return issued, cycle


class TestContexts:
    def test_single_context_is_stall_on_miss(self):
        """One context = the paper's strict base core: one outstanding."""
        core = MultithreadedCore(0, [stream(0, n=4)])
        ops, cycles = run_with_latency(core, latency=100)
        assert ops == 4
        assert cycles >= 4 * 100  # fully serialized

    def test_throughput_scales_with_contexts(self):
        results = {}
        for k in (1, 8, 32):
            core = MultithreadedCore(0, [stream(t, n=16) for t in range(k)])
            ops, cycles = run_with_latency(core, latency=300)
            results[k] = ops / cycles
        assert results[8] > 5 * results[1]
        assert results[32] > 3 * results[8]

    def test_throughput_approaches_latency_bound(self):
        k, lat = 64, 300
        core = MultithreadedCore(0, [stream(t, n=16) for t in range(k)])
        ops, cycles = run_with_latency(core, latency=lat)
        bound = k / (lat + 1)
        assert ops / cycles > 0.8 * bound

    def test_no_contexts_rejected(self):
        with pytest.raises(ValueError):
            MultithreadedCore(0, [])


class TestBehaviour:
    def test_outstanding_bounded_by_contexts(self):
        core = MultithreadedCore(0, [stream(t, n=8) for t in range(4)])
        for cycle in range(20):
            core.tick(cycle)
            assert core.outstanding <= 4

    def test_spm_hits_do_not_block_context(self):
        spm = ScratchpadMemory()
        spm.map(0x0, 1 << 16)
        core = MultithreadedCore(0, [stream(0, n=8, rows=16)], spm=spm)
        ops, cycles = run_with_latency(core)
        assert core.stats.spm_hits == 8
        assert core.stats.mac_requests == 0
        assert cycles < 100  # never touched the slow path

    def test_switch_accounting(self):
        core = MultithreadedCore(0, [stream(t, n=4) for t in range(2)])
        run_with_latency(core, latency=50)
        assert core.stats.switches > 0

    def test_unknown_completion_is_noop(self):
        core = MultithreadedCore(0, [stream(0, n=1)])
        core.complete(99, 99, 0)  # no crash
