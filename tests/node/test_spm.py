"""Unit tests for the scratchpad memory model."""

import pytest

from repro.node.spm import ScratchpadMemory


class TestMapping:
    def test_map_and_hit(self):
        spm = ScratchpadMemory(1 << 20)
        spm.map(0x1000, 0x100)
        assert spm.access(0x1000) == spm.latency_cycles
        assert spm.access(0x10FF) is not None
        assert spm.access(0x1100) is None

    def test_capacity_enforced(self):
        spm = ScratchpadMemory(1024)
        spm.map(0, 1024)
        with pytest.raises(MemoryError):
            spm.map(0x10000, 1)

    def test_overlap_rejected(self):
        spm = ScratchpadMemory(1 << 20)
        spm.map(0x1000, 0x100)
        with pytest.raises(ValueError):
            spm.map(0x10FF, 0x10)

    def test_unmap_frees_space(self):
        spm = ScratchpadMemory(1024)
        spm.map(0, 1024)
        assert spm.unmap(0) == 1024
        assert spm.free_bytes == 1024
        spm.map(0x100, 512)

    def test_unmap_unknown_raises(self):
        with pytest.raises(KeyError):
            ScratchpadMemory().unmap(0x123)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            ScratchpadMemory(0)
        with pytest.raises(ValueError):
            ScratchpadMemory().map(0, 0)


class TestAccounting:
    def test_hit_rate(self):
        spm = ScratchpadMemory()
        spm.map(0, 64)
        spm.access(0)
        spm.access(100)
        assert spm.hits == 1 and spm.misses == 1
        assert spm.hit_rate == 0.5

    def test_mapped_regions_sorted(self):
        spm = ScratchpadMemory()
        spm.map(0x2000, 16)
        spm.map(0x1000, 16)
        assert spm.mapped_regions() == [(0x1000, 16), (0x2000, 16)]
