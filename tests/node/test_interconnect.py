"""Credit-based fabric unit tests (determinism, flow control, sharding).

The same-cycle ordering tests are the PR 8 regression for the old
global-sequence tie-break: delivery order used to depend on *which
process pushed first*, which sharded simulation cannot reproduce.  The
fabric now keys every hop ``(deliver_cycle, src, seq, dst)`` with
per-source sequence numbers, making same-cycle arbitration a pure
function of message identity.
"""

import itertools

import pytest

from repro.node.interconnect import Hop, Interconnect


def drain(ic, cycle):
    """Deliver repeatedly until the fabric is empty; (cycle, dst, payload)s."""
    out = []
    while ic.in_flight:
        for dst, payload in ic.deliver(cycle):
            out.append((cycle, dst, payload))
        cycle += 1
    return out


class TestDeterministicOrdering:
    def test_same_cycle_ties_break_on_src_then_seq(self):
        ic = Interconnect(latency_cycles=10)
        # Three sources send to one destination in the same cycle, pushed
        # in scrambled source order.
        for src in (2, 0, 1):
            ic.send(0, dst=7, payload=f"s{src}m0", src=src)
        ic.send(0, dst=7, payload="s0m1", src=0)
        got = [p for _, p in ic.deliver(10)]
        assert got == ["s0m0", "s0m1", "s1m0", "s2m0"]

    def test_order_invariant_under_send_interleaving(self):
        """Any cross-source push interleaving delivers identically.

        Per-source send order is fixed (a node's sends are a function of
        its own state), but which process pushes first is not — the old
        global sequence number leaked exactly that.
        """
        per_src = {
            src: [(src, seq) for seq in range(4)] for src in range(3)
        }
        reference = None
        for perm in itertools.permutations(per_src):
            ic = Interconnect(latency_cycles=5)
            streams = {s: iter(msgs) for s, msgs in per_src.items()}
            # Round-robin over sources in permuted order: every
            # interleaving keeps per-source order but scrambles pushes.
            for _ in range(4):
                for src in perm:
                    msg = next(streams[src])
                    ic.send(0, dst=msg[0] % 2, payload=msg, src=src)
            got = drain(ic, 5)
            if reference is None:
                reference = got
            assert got == reference

    def test_many_same_cycle_arrivals_regression(self):
        """Dozens of same-cycle hops arrive in full (src, seq, dst) order."""
        ic = Interconnect(latency_cycles=1, channel_capacity=256)
        expect = {}
        for src in range(8):
            for seq in range(6):
                dst = (src + seq) % 3
                ic.send(0, dst=dst, payload=(src, seq), src=src)
                expect.setdefault(dst, []).append((src, seq))
        for dst in expect:
            expect[dst].sort()  # (src, seq) order, never insertion order
        delivered = {}
        for dst, payload in ic.deliver(1):
            delivered.setdefault(dst, []).append(payload)
        assert delivered == expect


class TestCreditFlowControl:
    def test_channel_capacity_paces_delivery(self):
        ic = Interconnect(latency_cycles=10, channel_capacity=2)
        for i in range(5):
            ic.send(0, dst=1, payload=i, src=0)
        # Credits gate admission: two per cycle, the rest stall.
        assert [p for _, p in ic.deliver(10)] == [0, 1]
        assert ic.credit_stalls == 3
        assert [p for _, p in ic.deliver(11)] == [2, 3]
        assert [p for _, p in ic.deliver(12)] == [4]
        assert ic.in_flight == 0

    def test_stalled_hops_precede_later_arrivals(self):
        ic = Interconnect(latency_cycles=10, channel_capacity=1)
        ic.send(0, dst=1, payload="old0", src=0)
        ic.send(0, dst=1, payload="old1", src=0)
        ic.send(1, dst=1, payload="new", src=0)  # arrives a cycle later
        assert [p for _, p in ic.deliver(10)] == ["old0"]
        assert [p for _, p in ic.deliver(11)] == ["old1"]
        assert [p for _, p in ic.deliver(12)] == ["new"]

    def test_peek_pop_hold_slot_until_popped(self):
        """Head-of-line blocking: an unpopped payload keeps its credit."""
        ic = Interconnect(latency_cycles=5, channel_capacity=1)
        ic.send(0, dst=2, payload="a", src=0)
        ic.send(0, dst=2, payload="b", src=0)
        ic.pump(5)
        assert ic.ready_dsts() == [2]
        assert ic.peek(2) == "a"
        ic.pump(6)  # consumer refused: "a" still holds the only credit
        assert ic.peek(2) == "a"
        assert ic.pop(2, 6) == "a"
        ic.pump(7)  # credit returned at 7: "b" admitted
        assert ic.pop(2, 7) == "b"
        assert ic.in_flight == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Interconnect(-1)
        with pytest.raises(ValueError):
            Interconnect(10, channel_capacity=0)


class TestShardingHooks:
    def test_restrict_exports_remote_sends(self):
        ic = Interconnect(latency_cycles=10)
        ic.restrict([0, 2])
        ic.send(0, dst=2, payload="local", src=0)
        ic.send(0, dst=1, payload="remote", src=0)
        assert ic.exported == 1
        assert ic.messages_sent == 2
        hops = ic.drain_exports()
        assert [h.payload for h in hops] == ["remote"]
        assert ic.exports == []
        # Local hop still delivers here.
        assert ic.deliver(10) == [(2, "local")]

    def test_inject_merges_in_key_order(self):
        """Imported hops interleave with local ones exactly as serial."""
        serial = Interconnect(latency_cycles=4)
        for src in (0, 1):
            for seq in range(3):
                serial.send(0, dst=0, payload=(src, seq), src=src)
        expect = [p for _, p in serial.deliver(4)]

        shard = Interconnect(latency_cycles=4)
        shard.restrict([0])
        for seq in range(3):
            shard.send(0, dst=0, payload=(0, seq), src=0)
        imported = [Hop(4, 1, seq, 0, (1, seq)) for seq in range(3)]
        shard.inject(imported)
        assert [p for _, p in shard.deliver(4)] == expect


class TestWakeProtocol:
    def test_hop_on_skip_target_is_delivered_not_swallowed(self):
        """Half-open skip boundary: an event exactly at the target runs."""
        ic = Interconnect(latency_cycles=7)
        ic.send(0, dst=3, payload="x", src=0)
        assert ic.next_event_cycle(0) == 7
        ic.skip_to(7)  # the hop at exactly 7 must survive the skip
        assert ic.next_event_cycle(7) == 7
        ic.pump(7)
        assert ic.peek(3) == "x"

    def test_undrained_channel_pins_to_now(self):
        ic = Interconnect(latency_cycles=3)
        ic.send(0, dst=1, payload="x", src=0)
        ic.pump(3)
        assert ic.next_event_cycle(3) == 3
        assert ic.next_event_cycle(50) == 50

    def test_stalled_hop_wakes_at_credit_return(self):
        ic = Interconnect(latency_cycles=3, channel_capacity=1)
        ic.send(0, dst=1, payload="a", src=0)
        ic.send(0, dst=1, payload="b", src=0)
        ic.pump(3)
        assert ic.pop(1, 3) == "a"  # credit returns at cycle 4
        # Channel empty but "b" stalled: the fabric must wake at 4.
        assert ic.next_event_cycle(3) == 4

    def test_idle_fabric_reports_no_wake(self):
        ic = Interconnect(latency_cycles=3)
        assert ic.next_event_cycle(0) is None
