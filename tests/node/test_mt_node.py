"""Closed-loop node with multithreaded cores (section 3's extension)."""


from repro.core.request import MemoryRequest, RequestType
from repro.node.node import Node


def stream(tid, n=100, rows=311):
    for i in range(n):
        yield MemoryRequest(
            addr=((tid * 37 + i // 8) % rows) << 8 | (i % 8) << 4,
            rtype=RequestType.LOAD,
            tid=tid,
            tag=i,
            core=tid,
        )


class TestMTNode:
    def test_all_requests_complete(self):
        node = Node.with_multithreaded_cores(
            [stream(t, n=60) for t in range(16)], cores=4
        )
        st = node.run()
        assert st.requests_issued == st.responses_delivered == 16 * 60

    def test_concurrency_enables_cross_thread_coalescing(self):
        """Strict stall-on-miss threads cannot self-coalesce (their own
        same-row accesses are a full memory latency apart); merges come
        only from *cross-thread* coincidence on shared rows, which needs
        high thread counts.  This is why the paper's architecture leans
        on SPM block transfers for same-row adjacency — see
        EXPERIMENTS.md."""

        def shared_stream(tid, n=24):
            for i in range(n):
                row = (i * 7) % 256
                yield MemoryRequest(
                    addr=(row << 8) | ((tid % 16) << 4),
                    rtype=RequestType.LOAD,
                    tid=tid,
                    tag=i,
                    core=tid,
                )

        def run(threads):
            node = Node.with_multithreaded_cores(
                [shared_stream(t) for t in range(threads)], cores=8
            )
            return node.run().coalescing_efficiency

        low = run(16)
        high = run(512)
        assert low < 0.02  # 16 desynchronized threads: nothing merges
        assert high > low + 0.05  # coincidence emerges with concurrency

    def test_concurrency_improves_makespan(self):
        def cycles(threads):
            node = Node.with_multithreaded_cores(
                [stream(t, n=24) for t in range(threads)], cores=8
            )
            return node.run().cycles / (threads * 24)

        # Cycles *per operation* drop sharply with more contexts.
        assert cycles(256) < cycles(16) / 4

    def test_retry_on_backpressure(self):
        # A tiny input queue forces retries; nothing may be lost.
        node = Node.with_multithreaded_cores(
            [stream(t, n=40) for t in range(64)], cores=2
        )
        node.mac.request_router.local_queue.capacity = 2
        st = node.run()
        assert st.responses_delivered == 64 * 40
