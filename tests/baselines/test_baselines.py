"""Tests for the comparator dispatch policies."""

import pytest

from repro.baselines.direct import dispatch_raw
from repro.baselines.fixed import dispatch_fixed, useful_data_fraction
from repro.baselines.mshr_coalescer import dispatch_mshr
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats


def load(addr, tag=0):
    return MemoryRequest(addr=addr, rtype=RequestType.LOAD, tag=tag)


class TestDirectDispatch:
    def test_one_packet_per_request(self):
        reqs = [load(0xA00 + 16 * i, tag=i) for i in range(8)]
        pkts = dispatch_raw(reqs)
        assert len(pkts) == 8
        assert all(p.size == 16 for p in pkts)
        assert all(p.bypassed for p in pkts)

    def test_flit_alignment(self):
        pkts = dispatch_raw([load(0xA07)])
        assert pkts[0].addr == 0xA00

    def test_fences_skipped(self):
        st = MACStats()
        pkts = dispatch_raw(
            [load(0x100), MemoryRequest(addr=0, rtype=RequestType.FENCE)], stats=st
        )
        assert len(pkts) == 1
        assert st.raw_fences == 1

    def test_efficiency_is_exactly_one_third(self):
        """The Fig. 13 raw baseline: 16/(16+32) = 33.33 %."""
        st = MACStats()
        dispatch_raw([load(16 * i) for i in range(100)], stats=st)
        assert st.coalesced_bandwidth_efficiency == pytest.approx(1 / 3)
        assert st.coalescing_efficiency == 0.0


class TestMSHRCoalescer:
    def test_line_merging(self):
        reqs = [load(0x100 + 8 * i, tag=i) for i in range(8)]  # one 64 B line
        pkts = dispatch_mshr(reqs, fill_latency=1000)
        assert len(pkts) == 1
        assert pkts[0].size == 64
        assert pkts[0].raw_count == 8

    def test_merge_window_is_fill_latency(self):
        reqs = [load(0x100, tag=0), load(0x108, tag=1)]
        # At 1 req/cycle with a 1-cycle fill, the second request arrives
        # after the fill: two transactions.
        pkts = dispatch_mshr(reqs, fill_latency=1, requests_per_cycle=0.5)
        assert len(pkts) == 2

    def test_fixed_64B_regardless_of_usage(self):
        """Section 2.3.2: MHA always requests one full cache line."""
        pkts = dispatch_mshr([load(0x100)])
        assert pkts[0].size == 64

    def test_conservation(self):
        import random

        rng = random.Random(3)
        reqs = [load(rng.randrange(1 << 16) & ~0x7, tag=i) for i in range(500)]
        pkts = dispatch_mshr(reqs)
        assert sum(p.raw_count for p in pkts) == 500

    def test_types_not_merged(self):
        reqs = [
            load(0x100, tag=0),
            MemoryRequest(addr=0x108, rtype=RequestType.STORE, tag=1),
        ]
        pkts = dispatch_mshr(reqs, fill_latency=1000)
        assert len(pkts) == 2

    def test_invalid_line_size(self):
        with pytest.raises(ValueError):
            dispatch_mshr([], line_bytes=60)


class TestFixed256:
    def test_always_full_row(self):
        pkts = dispatch_fixed([load(0xA10)])
        assert pkts[0].size == 256
        assert pkts[0].addr == 0xA00

    def test_useful_fraction_collapses_for_single_words(self):
        """Section 2.3.2: single-FLIT packets waste up to 93.75 % at
        FLIT granularity (15/16 of the row unused)."""
        pkts = dispatch_fixed([load(0xA10)])
        assert useful_data_fraction(pkts) == pytest.approx(16 / 256)

    def test_bandwidth_metric_looks_great_anyway(self):
        st = MACStats()
        dispatch_fixed([load(0xA10)], stats=st)
        assert st.coalesced_bandwidth_efficiency == pytest.approx(256 / 288)

    def test_conservation(self):
        reqs = [load((i % 40) << 8 | (i % 16) << 4, tag=i) for i in range(400)]
        pkts = dispatch_fixed(reqs)
        assert sum(p.raw_count for p in pkts) == 400

    def test_fully_used_row_fraction_is_one(self):
        reqs = [load(0xA00 | (f << 4), tag=f) for f in range(12)]
        pkts = dispatch_fixed(reqs)
        assert useful_data_fraction(pkts) == pytest.approx(12 * 16 / 256)

    def test_empty(self):
        assert useful_data_fraction([]) == 0.0
