"""Tests for the DDR4 substrate (open-page banks, FR-FCFS, channel)."""

import random

import pytest

from repro.core.packet import CoalescedRequest
from repro.core.request import RequestType
from repro.ddr.bank import AccessKind, DDRBank
from repro.ddr.controller import FRFCFSController
from repro.ddr.device import DDRConfig, DDRDevice
from repro.ddr.timing import DDRTiming

T = DDRTiming()


class TestTiming:
    def test_latency_ordering(self):
        assert T.row_hit_latency < T.row_miss_latency < T.row_conflict_latency

    def test_unloaded_ddr4_latency_plausible(self):
        # ~47 ns for a row-miss read: typical DDR4 loaded-idle latency.
        dev = DDRDevice()
        ns = dev.unloaded_read_latency() / 3.3
        assert 30 < ns < 70

    def test_validation(self):
        with pytest.raises(ValueError):
            DDRTiming(t_rcd=-1)


class TestOpenPageBank:
    def test_first_access_is_miss(self):
        bank = DDRBank(T)
        assert bank.classify(5) is AccessKind.MISS
        bank.access(0, 5)
        assert bank.misses == 1

    def test_same_row_hits(self):
        """Open page: the row stays open — unlike the HMC bank."""
        bank = DDRBank(T)
        bank.access(0, 5)
        assert bank.classify(5) is AccessKind.HIT
        done = bank.access(10_000, 5)
        assert bank.hits == 1
        assert bank.activations == 1  # no re-activation
        assert done == 10_000 + T.row_hit_latency

    def test_different_row_conflicts(self):
        bank = DDRBank(T)
        bank.access(0, 5)
        bank.access(10_000, 9)
        assert bank.conflicts == 1
        assert bank.activations == 2

    def test_tras_respected(self):
        bank = DDRBank(T)
        bank.access(0, 1)
        # Immediate conflict: precharge cannot start before tRAS.
        done = bank.access(0, 2)
        assert done >= T.t_ras + T.row_conflict_latency - T.t_rp

    def test_row_hit_rate(self):
        bank = DDRBank(T)
        for _ in range(4):
            bank.access(0, 7)
        assert bank.row_hit_rate == 0.75

    def test_negative_arrival(self):
        with pytest.raises(ValueError):
            DDRBank(T).access(-1, 0)


class TestFRFCFS:
    def test_row_hits_served_first(self):
        """The defining reorder: a younger row hit beats an older miss."""
        c = FRFCFSController(banks=2)
        c.banks[0].access(0, row=5)  # open row 5 on bank 0
        start = c.banks[0].ready_cycle
        c.enqueue(start, bank=0, row=9, tag=1)  # older, conflict
        c.enqueue(start + 1, bank=0, row=5, tag=2)  # younger, hit
        first = c.service_one(start + 2)
        assert first.tag == 2
        assert c.stats.reordered == 1

    def test_fcfs_without_hits(self):
        c = FRFCFSController(banks=2)
        c.enqueue(0, bank=0, row=1, tag=1)
        c.enqueue(1, bank=1, row=2, tag=2)
        assert c.service_one(5).tag == 1

    def test_queue_capacity(self):
        c = FRFCFSController(banks=2, queue_depth=1)
        assert c.enqueue(0, 0, 1, 1)
        assert not c.enqueue(0, 0, 2, 2)

    def test_drain_serves_everything(self):
        c = FRFCFSController(banks=4)
        for i in range(40):
            c.enqueue(i, bank=i % 4, row=i % 3, tag=i)
        done = c.drain()
        assert len(done) == 40
        assert all(r.complete_cycle > r.arrival for r in done)

    def test_invalid_bank(self):
        c = FRFCFSController(banks=2)
        with pytest.raises(ValueError):
            c.enqueue(0, bank=2, row=0, tag=0)

    def test_invalid_bank_count(self):
        with pytest.raises(ValueError):
            FRFCFSController(banks=3)


class TestDDRDevice:
    def read(self, addr, size=64):
        return CoalescedRequest(addr=addr, size=size, rtype=RequestType.LOAD)

    def test_sequential_stream_harvests_row_hits(self):
        dev = DDRDevice()
        for i in range(256):
            dev.submit(self.read(i * 64), i)
        dev.run()
        assert dev.row_hit_rate > 0.7

    def test_random_stream_cannot_be_harvested(self):
        """Section 2.2.1's motivation: irregular traffic defeats the
        conventional row-hit harvester even on open-page DDR."""
        dev = DDRDevice()
        rng = random.Random(3)
        for i in range(256):
            dev.submit(self.read(rng.randrange(1 << 28) & ~63), i)
        dev.run()
        assert dev.row_hit_rate < 0.1

    def test_large_requests_split_into_lines(self):
        dev = DDRDevice()
        dev.submit(self.read(0x0, size=256), 0)
        dev.run()
        assert dev.stats.line_accesses == 4

    def test_line_quantization(self):
        dev = DDRDevice()
        dev.submit(self.read(0x10, size=16), 0)  # sub-line access
        dev.run()
        assert dev.stats.line_accesses == 1  # still one full 64 B line

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DDRConfig(line_bytes=60)
        with pytest.raises(ValueError):
            DDRConfig(row_bytes=100)
