"""Kernel tests: functional correctness + trace/coalescing behaviour.

These validate the DESIGN.md substitution at its strongest point: the
access patterns the synthetic workload generators emit match what an
actually executed program produces.
"""

import random

import pytest

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import RequestType
from repro.core.stats import MACStats
from repro.isa.kernels import run_gather, run_parallel_reduce, run_vector_copy
from repro.trace.record import to_requests


def efficiency(trace):
    st = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
    return st


class TestVectorCopy:
    def test_functional(self):
        m = run_vector_copy(elements=96)
        for i in range(96):
            assert m.peek(0x40000 + 8 * i) == i + 1

    def test_trace_is_pure_block_transfers(self):
        m = run_vector_copy(elements=64)
        assert all(r.size == 16 for r in m.trace)
        loads = sum(1 for r in m.trace if r.op is RequestType.LOAD)
        stores = sum(1 for r in m.trace if r.op is RequestType.STORE)
        assert loads == stores == 64 * 8 // 16  # one FLIT per 16 B

    def test_coalesces_like_the_synthetic_seq_workload(self):
        """The executed copy matches SG-SEQ's ~0.875 efficiency."""
        m = run_vector_copy(elements=128)
        st = efficiency(m.trace)
        assert st.coalescing_efficiency > 0.8

    def test_element_count_validated(self):
        with pytest.raises(ValueError):
            run_vector_copy(elements=33)


class TestGather:
    def test_functional(self):
        m = run_gather(count=48, seed=11, table_size=512)
        rng = random.Random(11)
        idx = [rng.randrange(512) for _ in range(48)]
        for i in range(48):
            assert m.peek(0xC0000 + 8 * i) == 3 * idx[i] + 1

    def test_gather_coalesces_worse_than_copy(self):
        g = efficiency(run_gather(count=96).trace)
        c = efficiency(run_vector_copy(elements=96).trace)
        assert g.coalescing_efficiency < c.coalescing_efficiency

    def test_window_resident_table_coalesces_well(self):
        """Shrinking the table below the ARQ window flips the result —
        the locality threshold the MAC lives on."""
        small = efficiency(run_gather(count=96, table_size=256).trace)
        big = efficiency(run_gather(count=96, table_size=1 << 15).trace)
        assert small.coalescing_efficiency > big.coalescing_efficiency + 0.2

    def test_trace_structure(self):
        m = run_gather(count=32)
        # Each iteration: idx load, table load, dst store = 3 records.
        assert len(m.trace) == 3 * 32


class TestParallelReduce:
    def test_functional(self):
        m = run_parallel_reduce(harts=4, elements=128)
        assert m.peek(0x900000) == sum(range(128))

    def test_fences_and_atomics_in_trace(self):
        m = run_parallel_reduce(harts=4, elements=64)
        kinds = [r.op for r in m.trace]
        assert kinds.count(RequestType.FENCE) == 4
        assert kinds.count(RequestType.ATOMIC) == 4

    def test_interleaved_harts_share_rows(self):
        """Four harts scanning adjacent chunks produce cross-thread
        same-row adjacency — the Fig. 2 situation, from real execution."""
        m = run_parallel_reduce(harts=4, elements=256)
        st = efficiency(m.trace)
        assert st.coalescing_efficiency > 0.5

    def test_division_validated(self):
        with pytest.raises(ValueError):
            run_parallel_reduce(harts=3, elements=100)
