"""Executor tests: functional semantics + trace generation."""

import pytest

from repro.core.request import RequestType
from repro.isa.machine import ExecutionError, Machine, run_program


class TestArithmetic:
    def test_basic_ops(self):
        m = run_program(
            """
            li a0, 6
            li a1, 7
            mul a2, a0, a1
            add a3, a2, a0
            sub a4, a3, a1
            li t0, 0x100
            sd a4, 0(t0)
            halt
            """
        )
        assert m.peek(0x100) == 41

    def test_x0_is_hardwired_zero(self):
        m = run_program(
            """
            li x0, 99
            li t0, 0x100
            sd x0, 0(t0)
            halt
            """
        )
        assert m.peek(0x100) == 0

    def test_shifts_and_logic(self):
        m = run_program(
            """
            li a0, 5
            slli a1, a0, 3    # 40
            srli a2, a1, 1    # 20
            li a3, 0xFF
            and a4, a2, a3
            or  a5, a4, a0
            xor a6, a5, a0
            li t0, 0x200
            sd a6, 0(t0)
            halt
            """
        )
        assert m.peek(0x200) == (((5 << 3) >> 1) & 0xFF | 5) ^ 5

    def test_signed_branch(self):
        m = run_program(
            """
            li a0, 0
            sub a0, a0, a1    # a0 = -a1... a1=0 so craft below
            li a1, 1
            sub a0, x0, a1    # a0 = -1
            li t0, 0x300
            blt a0, x0, neg
            li t1, 0
            j store
        neg:
            li t1, 1
        store:
            sd t1, 0(t0)
            halt
            """
        )
        assert m.peek(0x300) == 1


class TestLoops:
    def test_counted_loop(self):
        m = run_program(
            """
            li a0, 0          # sum
            li a1, 0          # i
            li a2, 10
        loop:
            bge a1, a2, done
            add a0, a0, a1
            addi a1, a1, 1
            j loop
        done:
            li t0, 0x400
            sd a0, 0(t0)
            halt
            """
        )
        assert m.peek(0x400) == sum(range(10))

    def test_runaway_program_raises(self):
        with pytest.raises(ExecutionError):
            run_program("spin: j spin", max_steps=1000)


class TestTracing:
    def test_loads_and_stores_traced(self):
        m = run_program(
            """
            li t0, 0x1000
            ld a0, 0(t0)
            sd a0, 8(t0)
            halt
            """,
            data={0x1000: [42]},
        )
        assert m.peek(0x1008) == 42
        ops = [(r.op, r.addr) for r in m.trace]
        assert ops == [(RequestType.LOAD, 0x1000), (RequestType.STORE, 0x1008)]

    def test_fence_and_atomic_traced(self):
        m = run_program(
            """
            li t0, 0x2000
            li t1, 5
            fence
            amoadd a0, t0, t1
            amoadd a1, t0, t1
            halt
            """
        )
        assert m.peek(0x2000) == 10
        # amoadd returns the old value.
        kinds = [r.op for r in m.trace]
        assert kinds == [RequestType.FENCE, RequestType.ATOMIC, RequestType.ATOMIC]

    def test_spm_hits_not_traced(self):
        m = run_program(
            """
            li t0, 0x4000
            spm.pf t0, 64
            ld a0, 0(t0)
            ld a1, 8(t0)
            halt
            """,
            data={0x4000: [7, 9]},
        )
        assert m.harts[0].read(10) == 7 and m.harts[0].read(11) == 9
        # Only the 4 FLIT transfers of the prefetch hit the trace.
        assert len(m.trace) == 4
        assert all(r.size == 16 for r in m.trace)

    def test_writeback_unmaps(self):
        m = run_program(
            """
            li t0, 0x4000
            spm.alloc t0, 32
            li a0, 3
            sd a0, 0(t0)
            spm.wb t0, 32
            sd a0, 8(t0)       # after wb: off-chip again
            halt
            """
        )
        stores = [r for r in m.trace if r.op is RequestType.STORE]
        # 2 FLIT stores from the write-back + 1 word store after it.
        assert len(stores) == 3
        assert m.peek(0x4000) == 3 and m.peek(0x4008) == 3

    def test_misaligned_access_faults(self):
        with pytest.raises(ExecutionError):
            run_program("li t0, 3\nld a0, 0(t0)\nhalt")


class TestMultiHart:
    def test_round_robin_interleaving(self):
        m = run_program(
            """
            li t0, 0x1000
            slli t1, a0, 3
            add t0, t0, t1
            sd a0, 0(t0)
            halt
            """,
            harts=3,
            init_regs={h: {10: h} for h in range(3)},
        )
        assert [m.peek(0x1000 + 8 * h) for h in range(3)] == [0, 1, 2]
        # Trace records carry the issuing hart id.
        assert {r.tid for r in m.trace} == {0, 1, 2}

    def test_atomic_accumulation_across_harts(self):
        m = run_program(
            """
            li t0, 0x8000
            amoadd a1, t0, a0
            halt
            """,
            harts=4,
            init_regs={h: {10: h + 1} for h in range(4)},
        )
        assert m.peek(0x8000) == 1 + 2 + 3 + 4

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Machine("# only a comment")

    def test_zero_harts_rejected(self):
        with pytest.raises(ValueError):
            Machine("halt", harts=0)
