"""Executable CSR SpMV tests (the HPCG/CG pattern from real execution)."""

import pytest

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.isa.kernels import run_spmv
from repro.trace.record import to_requests


def eff(trace):
    st = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
    return st.coalescing_efficiency


class TestFunctional:
    def test_single_hart(self):
        m = run_spmv(rows=24, harts=1)
        for i in range(24):
            assert m.peek(m.y_base + 8 * i) == m.expected_y[i]

    def test_multi_hart_partition(self):
        m = run_spmv(rows=32, harts=4)
        for i in range(32):
            assert m.peek(m.y_base + 8 * i) == m.expected_y[i]

    def test_uneven_partition_rejected(self):
        with pytest.raises(ValueError):
            run_spmv(rows=30, harts=4)


class TestTraceCharacter:
    def test_mix_of_streams_and_gathers(self):
        m = run_spmv(rows=24, nnz_per_row=8)
        x_lo, x_hi = 0x200000, 0x200000 + (1 << 12) * 8
        gathers = [r for r in m.trace if x_lo <= r.addr < x_hi]
        streams = [r for r in m.trace if not x_lo <= r.addr < x_hi]
        assert gathers and streams
        # One x-gather per nonzero.
        assert len(gathers) == 24 * 8

    def test_efficiency_between_copy_and_gups(self):
        from repro.isa.kernels import run_gups, run_vector_copy

        spmv = eff(run_spmv(rows=32, nnz_per_row=8).trace)
        copy = eff(run_vector_copy(elements=128).trace)
        gups = eff(run_gups(updates=192).trace)
        assert gups < spmv < copy

    def test_small_x_vector_coalesces_like_hpcg(self):
        """A window-resident x vector makes SpMV highly coalescable —
        the dense-stencil end of the SpMV spectrum."""
        dense = eff(run_spmv(rows=32, n_cols=256).trace)
        sparse = eff(run_spmv(rows=32, n_cols=1 << 14).trace)
        assert dense > sparse
