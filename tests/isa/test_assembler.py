"""Assembler tests for the mini ISA."""

import pytest

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.instructions import Instruction, parse_register


class TestRegisters:
    def test_x_names(self):
        assert parse_register("x0") == 0
        assert parse_register("x31") == 31

    def test_abi_aliases(self):
        assert parse_register("zero") == 0
        assert parse_register("a0") == 10
        assert parse_register("a7") == 17
        assert parse_register("s2") == 18
        assert parse_register("t0") == 5
        assert parse_register("t6") == 31

    def test_bad_registers(self):
        for bad in ("x32", "x-1", "y3", "a9"):
            with pytest.raises(ValueError):
                parse_register(bad)


class TestAssemble:
    def test_r_type(self):
        (ins,) = assemble("add a0, a1, a2")
        assert ins == Instruction("add", rd=10, rs1=11, rs2=12, line=1)

    def test_i_type_hex_imm(self):
        (ins,) = assemble("addi t0, t0, 0x10")
        assert ins.imm == 16

    def test_memory_operands(self):
        ld, sd = assemble("ld a0, 8(sp)\nsd a0, -16(s0)")
        assert (ld.rd, ld.rs1, ld.imm) == (10, 2, 8)
        assert (sd.rs2, sd.rs1, sd.imm) == (10, 8, -16)

    def test_bare_memory_operand(self):
        (ld,) = assemble("ld a0, (a1)")
        assert ld.imm == 0

    def test_labels_and_branches(self):
        prog = assemble("top: addi x1, x1, 1\nbne x1, x2, top\nj top")
        assert prog[1].target == 0
        assert prog[2].target == 0

    def test_label_on_own_line(self):
        prog = assemble("loop:\n  nop\n  j loop")
        assert prog[1].target == 0

    def test_comments_and_blanks(self):
        prog = assemble("# header\n\nnop  # trailing\n")
        assert len(prog) == 1

    def test_spm_ops(self):
        pf, wb, al = assemble("spm.pf a0, 256\nspm.wb a1, 64\nspm.alloc a2, 128")
        assert (pf.op, pf.rs1, pf.imm) == ("spm.pf", 10, 256)
        assert wb.op == "spm.wb"
        assert al.op == "spm.alloc"

    def test_errors(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate x1")
        with pytest.raises(AssemblyError):
            assemble("add x1, x2")  # operand count
        with pytest.raises(AssemblyError):
            assemble("beq x1, x2, nowhere")
        with pytest.raises(AssemblyError):
            assemble("dup: nop\ndup: nop")
        with pytest.raises(AssemblyError):
            assemble("ld a0, 8[sp]")
        with pytest.raises(AssemblyError):
            assemble("li a0, banana")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError) as exc:
            assemble("nop\nbadop x1")
        assert exc.value.line_no == 2
