"""Tests for the stencil and GUPS kernels."""

import pytest

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import RequestType
from repro.core.stats import MACStats
from repro.isa.kernels import run_gups, run_stencil, run_vector_copy
from repro.trace.record import to_requests


def eff(trace):
    st = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
    return st.coalescing_efficiency


class TestStencil:
    def test_functional(self):
        m = run_stencil(elements=64)
        vals = [i * i % 97 for i in range(64 + 64)]
        dst = 0x40000
        # a0 = src + 256, so in[j] = vals[32 + j].
        for i in range(32, 64):
            expected = vals[32 + i - 1] + vals[32 + i] + vals[32 + i + 1]
            assert m.peek(dst + 8 * i) == expected

    def test_pure_block_traffic(self):
        m = run_stencil(elements=64)
        assert all(r.size == 16 for r in m.trace)

    def test_coalesces_highly(self):
        assert eff(run_stencil(elements=128).trace) > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            run_stencil(elements=50)


class TestGUPS:
    def test_updates_are_load_store_pairs(self):
        m = run_gups(updates=32)
        loads = [r for r in m.trace if r.op is RequestType.LOAD]
        stores = [r for r in m.trace if r.op is RequestType.STORE]
        assert len(loads) == len(stores) == 32
        # Each store updates the address just loaded.
        for ld, st in zip(loads, stores):
            assert ld.addr == st.addr

    def test_table_actually_updated(self):
        m = run_gups(updates=16, table_words=1 << 10)
        touched = {r.addr for r in m.trace}
        assert any(m.peek(a) != 0 for a in touched)

    def test_essentially_uncoalescable(self):
        """GUPS is the canonical irregular benchmark: large table,
        pseudo-random updates, no spatial locality."""
        assert eff(run_gups(updates=192, table_words=1 << 14).trace) < 0.15

    def test_small_table_becomes_coalescable(self):
        small = eff(run_gups(updates=192, table_words=1 << 6).trace)
        big = eff(run_gups(updates=192, table_words=1 << 14).trace)
        assert small > big + 0.2

    def test_multi_hart_sequences_differ(self):
        m = run_gups(updates=32, harts=2)
        a = [r.addr for r in m.trace if r.tid == 0]
        b = [r.addr for r in m.trace if r.tid == 1]
        assert a != b

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            run_gups(table_words=1000)

    def test_ordering_vs_streaming(self):
        """GUPS < copy on coalescing efficiency — the Fig. 1 story told
        by actually executed programs."""
        assert eff(run_gups(updates=96).trace) < eff(
            run_vector_copy(elements=96).trace
        )
