"""Zero-fault runs must stay bit-identical to the pre-fault-injection model.

The golden values below were captured from the model *before* the fault
and retry machinery was added.  Every fault branch is gated on the
injector being absent, so with ``faults=None`` (the default everywhere)
all three engines — closed-loop node, fast coalescing engine, open-loop
device replay — must reproduce these numbers cycle for cycle and byte
for byte.  Any drift here means the fault-free path was disturbed.

(Closed-loop constants re-captured once when the ARQ comparator's
tie-break was fixed to oldest-wins — a deliberate merge-choice change,
verified bit-identical across the lockstep and skip engines.)
"""

import hashlib

from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.hmc.device import HMCDevice
from repro.node.node import Node
from repro.trace.record import to_requests
from repro.workloads.registry import make


def golden_requests():
    records = make("is", seed=7).generate(threads=4, ops_per_thread=200)
    return list(to_requests(records))


def packet_digest(packets):
    h = hashlib.sha256()
    for p in packets:
        h.update(
            f"{p.addr}:{p.size}:{p.rtype}:{len(p.targets)}:{p.bypassed}".encode()
        )
    return h.hexdigest()


class TestClosedLoopNode:
    def test_node_run_is_bit_identical(self):
        requests = golden_requests()
        by_tid = {}
        for r in requests:
            by_tid.setdefault(r.tid, []).append(r)
        node = Node([iter(v) for _, v in sorted(by_tid.items())], node_id=0)
        stats = node.run()

        assert stats.cycles == 4799
        assert stats.requests_issued == 804
        assert stats.responses_delivered == 804
        assert round(stats.coalescing_efficiency, 12) == 0.144278606965
        assert stats.bank_conflicts == 427
        assert round(stats.mean_memory_latency, 12) == 1146.370639534884

        dev = node.device.stats
        assert dev.requests == 688
        assert dev.wire_flits == 2272
        assert dev.payload_bytes == 14336
        assert dev.total_latency_cycles == 788703
        assert dev.last_completion == 4798
        assert dev.first_arrival == 2
        assert (dev.reads, dev.writes) == (421, 267)
        assert node.device.activations == 688

        # And none of the fault machinery left fingerprints.
        assert node.device.injector is None
        assert node.device.fault_stats is None
        assert dev.fault_events == {}
        assert stats.poisoned_responses == 0
        assert stats.response_timeouts == 0
        assert stats.link_retries == 0
        assert stats.failed_links == 0


class TestFastEngine:
    def test_packet_stream_digest_is_stable(self):
        requests = golden_requests()
        stats = MACStats()
        packets = coalesce_trace_fast(
            requests, MACConfig(), FlitTablePolicy.SPAN, stats
        )
        assert stats.memory_raw_requests == 804
        assert stats.coalesced_packets == len(packets) == 604
        assert (
            packet_digest(packets)
            == "9ccdff9db5d747708bea6a245af317404f160590241b1ecbe326d8a4887d32f1"
        )


class TestOpenLoopDevice:
    def test_device_replay_is_bit_identical(self):
        requests = golden_requests()
        packets = coalesce_trace_fast(
            requests, MACConfig(), FlitTablePolicy.SPAN, MACStats()
        )
        dev = HMCDevice()
        t = 0.0
        for p in packets:
            dev.submit(p, int(t))
            t += 2.0
        assert dev.stats.requests == 604
        assert dev.stats.wire_flits == 2016
        assert dev.stats.total_latency_cycles == 394075
        assert dev.stats.last_completion == 2169
        assert dev.bank_conflicts == 362
