"""End-to-end fault injection through the closed-loop node simulation.

The acceptance scenario of the robustness work: a run with a realistic
FLIT error rate *and* a dead link must complete without deadlock, with
every request delivered exactly once and the failures visible in the
per-site counters — not silently absorbed.
"""

import pytest

from repro.faults import FaultConfig
from repro.hmc.config import HMCConfig
from repro.node.node import Node
from repro.node.system import NUMASystem
from repro.trace.record import to_requests
from repro.workloads.registry import make


def streams(threads=4, ops=120, seed=7):
    records = make("is", seed=seed).generate(threads=threads, ops_per_thread=ops)
    by_tid = {}
    for r in to_requests(records):
        by_tid.setdefault(r.tid, []).append(r)
    return [iter(v) for _, v in sorted(by_tid.items())], sum(
        len(v) for v in by_tid.values()
    )


def faulty_node(fault_kwargs, **stream_kwargs):
    core_streams, n_raw = streams(**stream_kwargs)
    cfg = HMCConfig(faults=FaultConfig.simple(**fault_kwargs))
    return Node(core_streams, hmc_config=cfg), n_raw


class TestAcceptanceScenario:
    """1e-3 FLIT errors + one dead link: complete, exactly once, counted."""

    def test_completes_exactly_once_with_visible_counters(self):
        node, n_raw = faulty_node(
            dict(flit_ber=1e-3, dead_links=(1,), seed=42, timeout_cycles=5000)
        )
        stats = node.run(max_cycles=2_000_000)

        # No deadlock, and exactly-once delivery of every raw request.
        assert stats.requests_issued == n_raw
        assert stats.responses_delivered == n_raw
        assert node.done()

        # Nothing poisoned in this scenario: data integrity held.
        assert stats.poisoned_responses == 0

        # Degraded mode is visible: one of four links dead, 25% loss.
        assert stats.failed_links == 1
        assert stats.link_bandwidth_loss == pytest.approx(0.25)
        assert node.degraded

        # Per-site counters surfaced through the stats layer.
        events = node.device.stats.fault_events
        assert events, "fault counters must be exported"
        assert node.device.fault_stats.total("link_failed") >= 1

    def test_dead_link_carries_no_traffic(self):
        node, _ = faulty_node(dict(dead_links=(2,), seed=1))
        node.run(max_cycles=2_000_000)
        dead = node.device.links[2]
        assert dead.wire_flits == 0
        live_flits = sum(link.wire_flits for link in node.device.live_links)
        assert live_flits > 0
        assert node.device.failed_links == [2]


class TestLossRecovery:
    def test_dropped_responses_are_reissued(self):
        node, n_raw = faulty_node(
            dict(drop_rate=0.05, seed=11, timeout_cycles=2000),
            ops=80,
        )
        stats = node.run(max_cycles=2_000_000)
        assert stats.responses_delivered == n_raw
        assert stats.response_timeouts > 0
        assert stats.reissued_packets == stats.response_timeouts
        assert not node.mac.response_router.outstanding

    def test_delayed_responses_exercise_duplicate_suppression(self):
        # Delays longer than the timeout force a re-issue; the delayed
        # original then arrives as a duplicate and must be suppressed.
        node, n_raw = faulty_node(
            dict(delay_rate=0.05, delay_cycles=6000, seed=13, timeout_cycles=3000),
            ops=80,
        )
        stats = node.run(max_cycles=2_000_000)
        assert stats.responses_delivered == n_raw
        assert stats.response_timeouts > 0
        assert stats.duplicate_responses > 0


class TestDataIntegrity:
    def test_uncorrectable_vault_errors_deliver_poison(self):
        node, n_raw = faulty_node(
            dict(vault_error_rate=0.5, seed=3, vault_error_limit=1),
            ops=60,
        )
        stats = node.run(max_cycles=2_000_000)
        # Poison is a *delivery*, not a loss: the run still completes.
        assert stats.responses_delivered == n_raw
        assert stats.poisoned_responses > 0
        assert node.device.fault_stats.total("poisoned") > 0
        assert node.device.fault_stats.total("reread") > 0

    def test_crc_errors_cost_retries_not_data(self):
        node, n_raw = faulty_node(dict(flit_ber=0.01, seed=17), ops=80)
        stats = node.run(max_cycles=2_000_000)
        assert stats.responses_delivered == n_raw
        assert stats.link_crc_errors > 0
        assert stats.link_retries >= stats.link_crc_errors
        assert stats.poisoned_responses == 0


class TestSystemDegradedMode:
    def test_numa_system_reports_aggregate_bandwidth_loss(self):
        records = make("is", seed=7).generate(threads=4, ops_per_thread=60)
        by_tid = {}
        for r in to_requests(records):
            # Trace raws default to node 0; stamp the issuing node so
            # remote completions find their way home.  Threads 0-1 live
            # on node 0, threads 2-3 on node 1, which keeps tid % cores
            # pointing at the issuing core on both nodes.
            r.node = r.tid // 2
            by_tid.setdefault(r.tid, []).append(r)
        groups = [v for _, v in sorted(by_tid.items())]
        per_node = [
            [iter(g) for g in groups if g[0].node == nid] for nid in (0, 1)
        ]
        cfg = HMCConfig(
            faults=FaultConfig.simple(dead_links=(0,), seed=5, timeout_cycles=5000)
        )
        system = NUMASystem(per_node, hmc_config=cfg)
        stats = system.run(max_cycles=2_000_000)
        assert stats.failed_links == 2  # one dead link per node
        assert stats.link_bandwidth_loss == pytest.approx(0.25)
        assert system.degraded_nodes() == [0, 1]

    def test_fault_free_system_reports_no_degradation(self):
        core_streams, _ = streams(threads=2, ops=40)
        system = NUMASystem([core_streams])
        stats = system.run(max_cycles=2_000_000)
        assert stats.failed_links == 0
        assert stats.link_bandwidth_loss == 0.0
        assert system.degraded_nodes() == []
