"""Node-side loss recovery: timeouts, re-issue, duplicates, poison."""


from repro.core.packet import CoalescedRequest, CoalescedResponse
from repro.core.request import MemoryRequest, RequestType, Target
from repro.core.router import ResponseRouter


def packet(addr=0x100, tids=(1,)):
    raws = [
        MemoryRequest(addr=addr + 16 * i, rtype=RequestType.LOAD, tid=tid, tag=i)
        for i, tid in enumerate(tids)
    ]
    return CoalescedRequest(
        addr=addr,
        size=16 * len(raws),
        rtype=RequestType.LOAD,
        targets=[Target(r.tid, r.tag, 16 * i) for i, r in enumerate(raws)],
        requests=raws,
    )


def response(pkt, complete=500, poisoned=False):
    return CoalescedResponse(request=pkt, complete_cycle=complete, poisoned=poisoned)


class TestDispatchTracking:
    def test_register_assigns_monotonic_ids(self):
        rr = ResponseRouter()
        a, b = packet(0x100), packet(0x200)
        assert rr.register_dispatch(a, 0) == 0
        assert rr.register_dispatch(b, 10) == 1
        assert a.packet_id == 0 and b.packet_id == 1
        assert set(rr.outstanding) == {0, 1}

    def test_reregister_keeps_original_id(self):
        rr = ResponseRouter()
        pkt = packet()
        rr.register_dispatch(pkt, 0)
        assert rr.register_dispatch(pkt, 5000) == pkt.packet_id == 0
        assert len(rr.outstanding) == 1
        assert rr.outstanding[0][1] == 5000

    def test_response_retires_outstanding(self):
        rr = ResponseRouter()
        pkt = packet()
        rr.register_dispatch(pkt, 0)
        rr.receive(response(pkt))
        assert not rr.outstanding


class TestTimeouts:
    def test_expired_packets_returned_for_reissue(self):
        rr = ResponseRouter()
        old, young = packet(0x100), packet(0x200)
        rr.register_dispatch(old, 0)
        rr.register_dispatch(young, 3000)
        expired = rr.check_timeouts(now=5000, timeout_cycles=4096)
        assert expired == [old]
        assert rr.timeouts == 1 and rr.reissues == 1
        # The young packet is still tracked, the old one handed back.
        assert list(rr.outstanding) == [young.packet_id]

    def test_scan_stops_at_first_young_entry(self):
        rr = ResponseRouter()
        pkts = [packet(0x100 * (i + 1)) for i in range(4)]
        for i, p in enumerate(pkts):
            rr.register_dispatch(p, i * 1000)
        expired = rr.check_timeouts(now=5100, timeout_cycles=4096)
        assert expired == [pkts[0], pkts[1]]  # dispatched at 0 and 1000

    def test_nothing_expires_before_timeout(self):
        rr = ResponseRouter()
        rr.register_dispatch(packet(), 100)
        assert rr.check_timeouts(now=4195, timeout_cycles=4096) == []
        assert rr.timeouts == 0


class TestDuplicateSuppression:
    def test_late_original_after_reissue_is_suppressed(self):
        rr = ResponseRouter()
        pkt = packet()
        rr.register_dispatch(pkt, 0)
        (reissue,) = rr.check_timeouts(now=5000, timeout_cycles=4096)
        rr.register_dispatch(reissue, 5000)
        # The re-issued copy's response arrives first...
        rr.receive(response(pkt, complete=5600))
        # ...then the delayed original limps in and must be discarded.
        rr.receive(response(pkt, complete=6000))
        assert rr.duplicates_suppressed == 1
        assert rr.buffered == 1
        local, _ = rr.drain()
        assert len(local) == 1

    def test_untracked_responses_never_suppressed(self):
        # Fault-free path: packet_id stays -1 and dedup must not engage.
        rr = ResponseRouter()
        rr.receive(response(packet(0x100)))
        rr.receive(response(packet(0x100)))
        assert rr.duplicates_suppressed == 0
        assert rr.buffered == 2


class TestPoisonPropagation:
    def test_poison_marks_every_raw_request(self):
        rr = ResponseRouter()
        pkt = packet(tids=(1, 2, 3))
        rr.receive(response(pkt, poisoned=True))
        local, _ = rr.drain()
        assert len(local) == 3
        assert all(raw.poisoned for _, raw in local)
        assert rr.poisoned_deliveries == 3

    def test_clean_responses_stay_clean(self):
        rr = ResponseRouter()
        pkt = packet(tids=(1, 2))
        rr.receive(response(pkt))
        local, _ = rr.drain()
        assert not any(raw.poisoned for _, raw in local)
        assert rr.poisoned_deliveries == 0

    def test_poisoned_delivery_still_completes_lsq_entry(self):
        # Poison marks data invalid but must not wedge the core: the
        # completion is still delivered (with the mark) so the pipeline
        # can trap instead of deadlocking.
        rr = ResponseRouter()
        pkt = packet(tids=(7,))
        rr.receive(response(pkt, complete=900, poisoned=True))
        local, _ = rr.drain()
        (target, raw) = local[0]
        assert raw.complete_cycle == 900
        assert rr.completed[(7, 0)] == 900
