"""Property-based tests: the retry protocol delivers exactly once, in order.

Hypothesis drives a link channel with randomly sized packets under
random FLIT/ACK error rates and asserts the protocol invariants the
rest of the fault machinery relies on: every packet is delivered exactly
once, in sequence order, at strictly increasing cycles, and the channel
never goes backwards in time.  Rates are capped below certainty (an
error rate of 1.0 can never deliver) with a retry limit large enough
that the link never gives up.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultConfig, FaultInjector
from repro.hmc.link import LinkChannel, RetryState
from repro.hmc.timing import HMCTiming

#: Retry budget no finite error rate below our cap realistically exhausts.
UNKILLABLE = 10**6


def reliable_channel(flit_ber, ack_ber, seed):
    cfg = FaultConfig.simple(
        flit_ber=flit_ber,
        ack_ber=ack_ber,
        seed=seed,
        retry_limit=UNKILLABLE,
        backoff_base=1,
    )
    inj = FaultInjector(cfg)
    return LinkChannel(HMCTiming(), retry=RetryState(inj, cfg, 0, "req"))


@settings(deadline=None, max_examples=60)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=15),
    flit_ber=st.floats(min_value=0.0, max_value=0.7),
    ack_ber=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_exactly_once_in_order(sizes, flit_ber, ack_ber, seed):
    ch = reliable_channel(flit_ber, ack_ber, seed)
    landings = []
    for nflits in sizes:
        landings.append(ch.transmit(0, nflits))
    rs = ch.retry

    # Exactly once: one delivery log entry per packet, no packet missing.
    seqs = [seq for seq, _ in rs.delivered]
    assert seqs == list(range(len(sizes)))

    # In order, at strictly increasing cycles.
    cycles = [cycle for _, cycle in rs.delivered]
    assert all(a < b for a, b in zip(cycles, cycles[1:]))
    assert cycles == landings

    # Wire accounting: replays add traffic, never remove it.
    assert ch.packets == len(sizes)
    assert ch.flits >= sum(sizes)
    assert rs.duplicates <= rs.retries


@settings(deadline=None, max_examples=40)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=10),
    flit_ber=st.floats(min_value=0.0, max_value=0.7),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_same_seed_reproduces_identical_timeline(sizes, flit_ber, seed):
    a = reliable_channel(flit_ber, 0.0, seed)
    b = reliable_channel(flit_ber, 0.0, seed)
    for nflits in sizes:
        assert a.transmit(0, nflits) == b.transmit(0, nflits)
    assert a.retry.delivered == b.retry.delivered
    assert a.flits == b.flits


@settings(deadline=None, max_examples=40)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=10),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_zero_rates_match_fast_path_cycle_for_cycle(sizes, seed):
    plain = LinkChannel(HMCTiming())
    armed = reliable_channel(0.0, 0.0, seed)
    for nflits in sizes:
        assert plain.transmit(0, nflits) == armed.transmit(0, nflits)
    assert plain.ready_cycle == armed.ready_cycle
    assert plain.flits == armed.flits
    assert armed.retry.retries == 0 and armed.retry.stall_cycles == 0
