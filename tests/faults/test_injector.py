"""Unit tests for the seeded fault injector and its schedule API."""

import pytest

from repro.faults import (
    AckError,
    FaultConfig,
    FaultInjector,
    FaultStats,
    FlitBitError,
    LinkDegradation,
    LinkFailure,
    ResponseFault,
    TransientVaultError,
    Window,
)


class TestWindow:
    def test_default_is_forever(self):
        w = Window()
        assert w.contains(0) and w.contains(10**9)

    def test_half_open_interval(self):
        w = Window(10, 20)
        assert not w.contains(9)
        assert w.contains(10) and w.contains(19)
        assert not w.contains(20)

    def test_at_single_cycle(self):
        w = Window.at(42)
        assert w.contains(42)
        assert not w.contains(41) and not w.contains(43)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Window(10, 10)
        with pytest.raises(ValueError):
            Window(-1)


class TestModelValidation:
    def test_rate_must_be_probability(self):
        with pytest.raises(ValueError):
            FlitBitError(rate=1.0)
        with pytest.raises(ValueError):
            FlitBitError(rate=-0.1)
        with pytest.raises(ValueError):
            TransientVaultError(rate=2.0)

    def test_response_fault_kind_checked(self):
        with pytest.raises(ValueError):
            ResponseFault(kind="explode", rate=0.1)
        for kind in ("poison", "drop"):
            ResponseFault(kind=kind, rate=0.1)
        ResponseFault(kind="delay", rate=0.1, delay_cycles=10)
        with pytest.raises(ValueError):
            ResponseFault(kind="delay", rate=0.1, delay_cycles=0)

    def test_degradation_factor_checked(self):
        with pytest.raises(ValueError):
            LinkDegradation(link=0, factor=0.5)
        assert LinkDegradation(link=0, factor=3.0).factor == 3.0


class TestConfig:
    def test_simple_builds_one_model_per_rate(self):
        cfg = FaultConfig.simple(
            flit_ber=1e-3,
            ack_ber=1e-3,
            vault_error_rate=1e-4,
            poison_rate=1e-3,
            drop_rate=1e-3,
            delay_rate=1e-3,
            dead_links=(2,),
            degraded_links=((1, 2.0),),
        )
        kinds = [type(m).__name__ for m in cfg.models]
        assert kinds.count("FlitBitError") == 1
        assert kinds.count("AckError") == 1
        assert kinds.count("TransientVaultError") == 1
        assert kinds.count("ResponseFault") == 3
        assert kinds.count("LinkFailure") == 1
        assert kinds.count("LinkDegradation") == 1

    def test_simple_zero_rates_is_inert(self):
        assert FaultConfig.simple().models == ()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(retry_limit=0)
        with pytest.raises(ValueError):
            FaultConfig(link_tokens=0)
        with pytest.raises(ValueError):
            FaultConfig(timeout_cycles=0)


class TestInjectorQueries:
    def test_no_models_never_fires(self):
        inj = FaultInjector()
        assert not inj.flit_corrupted(0, 100, 17, "link0.req")
        assert not inj.ack_corrupted(0, 100, "link0.req")
        assert not inj.vault_error(5, 100)
        assert inj.response_fate(100) == ("ok", 0)
        assert not inj.link_failed(0, 10**9)
        assert inj.degrade_factor(0, 100) == 1.0
        assert inj.stats.empty

    def test_certain_flit_error_fires_and_counts(self):
        inj = FaultInjector(FaultConfig(models=(FlitBitError(rate=0.999999),)))
        assert inj.flit_corrupted(0, 0, 17, "link0.req")
        assert inj.stats.counters["link0.req"]["injected_flit_error"] == 1

    def test_link_filter(self):
        inj = FaultInjector(
            FaultConfig(models=(FlitBitError(rate=0.999999, links=(1,)),))
        )
        assert not inj.flit_corrupted(0, 0, 17, "link0.req")
        assert inj.flit_corrupted(1, 0, 17, "link1.req")

    def test_same_seed_same_decisions(self):
        cfg = FaultConfig(models=(FlitBitError(rate=0.3),), seed=99)
        a = FaultInjector(cfg)
        b = FaultInjector(cfg)
        seq_a = [a.flit_corrupted(0, i, 2, "s") for i in range(200)]
        seq_b = [b.flit_corrupted(0, i, 2, "s") for i in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_different_seed_different_decisions(self):
        def mk(s):
            return FaultInjector(
                FaultConfig(models=(FlitBitError(rate=0.3),), seed=s)
            )

        def seq(inj):
            return [inj.flit_corrupted(0, i, 2, "s") for i in range(200)]

        assert seq(mk(1)) != seq(mk(2))

    def test_scheduled_failure_is_deterministic(self):
        inj = FaultInjector(FaultConfig(models=(LinkFailure(link=2, at_cycle=500),)))
        assert not inj.link_failed(2, 499)
        assert inj.link_failed(2, 500)
        assert not inj.link_failed(0, 10**6)

    def test_degrade_factor_takes_worst(self):
        inj = FaultInjector(
            FaultConfig(
                models=(
                    LinkDegradation(link=0, factor=2.0),
                    LinkDegradation(link=0, factor=4.0),
                )
            )
        )
        assert inj.degrade_factor(0, 0) == 4.0
        assert inj.degrade_factor(1, 0) == 1.0

    def test_response_fate_kinds(self):
        inj = FaultInjector(
            FaultConfig(models=(ResponseFault(kind="delay", rate=0.999999,
                                              delay_cycles=777),))
        )
        assert inj.response_fate(0) == ("delay", 777)
        assert inj.stats.counters["response"]["injected_delay"] == 1


class TestScheduleAPI:
    def test_schedule_at_cycle(self):
        inj = FaultInjector()
        inj.schedule_at(1000, FlitBitError(rate=0.999999))
        assert not inj.flit_corrupted(0, 999, 4, "s")
        assert inj.flit_corrupted(0, 1000, 4, "s")
        assert not inj.flit_corrupted(0, 1001, 4, "s")

    def test_schedule_window(self):
        inj = FaultInjector()
        inj.schedule_window(100, 200, AckError(rate=0.999999))
        assert not inj.ack_corrupted(0, 99, "s")
        assert inj.ack_corrupted(0, 150, "s")
        assert not inj.ack_corrupted(0, 200, "s")

    def test_schedule_at_link_failure_uses_start(self):
        inj = FaultInjector()
        inj.schedule_at(4096, LinkFailure(link=1))
        assert not inj.link_failed(1, 4095)
        assert inj.link_failed(1, 4096)

    def test_schedule_is_chainable(self):
        inj = FaultInjector().schedule(FlitBitError(rate=0.1)).schedule(
            AckError(rate=0.1)
        )
        assert isinstance(inj, FaultInjector)

    def test_unknown_model_rejected(self):
        with pytest.raises(TypeError):
            FaultInjector().schedule(object())


class TestStats:
    def test_record_and_aggregate(self):
        st = FaultStats()
        st.record("link0.req", "crc_error")
        st.record("link0.req", "crc_error")
        st.record("link1.rsp", "crc_error", 3)
        assert st.site("link0.req")["crc_error"] == 2
        assert st.total("crc_error") == 5
        assert not st.empty

    def test_rows_and_dict_round_trip(self):
        st = FaultStats()
        st.record("vault3", "reread")
        assert ("vault3", "reread", 1) in st.rows()
        assert st.as_dict() == {"vault3": {"reread": 1}}
        # as_dict is a copy: mutating it must not touch the live counters.
        st.as_dict()["vault3"]["reread"] = 99
        assert st.site("vault3")["reread"] == 1
