"""Unit tests of the link retry protocol (CRC/NAK/replay, tokens, backoff).

These drive :class:`repro.hmc.link.LinkChannel` with a *scripted*
injector whose corruption decisions are fixed lists, so every cycle
count below is computed by hand from the protocol definition.
"""

import pytest

from repro.faults import FaultConfig, FaultStats
from repro.hmc.link import (
    CreditPool,
    Link,
    LinkChannel,
    LinkFailedError,
    RetryState,
    _backoff,
)
from repro.hmc.timing import HMCTiming

LAT = HMCTiming().link_latency  # 92


class ScriptedInjector:
    """Injector double returning pre-scripted corruption decisions."""

    def __init__(self, flit=(), ack=(), dead=(), factor=1.0):
        self.stats = FaultStats()
        self._flit = list(flit)
        self._ack = list(ack)
        self._dead = set(dead)
        self._factor = factor

    def flit_corrupted(self, link, cycle, nflits, site):
        return self._flit.pop(0) if self._flit else False

    def ack_corrupted(self, link, cycle, site):
        return self._ack.pop(0) if self._ack else False

    def link_failed(self, link, cycle):
        return link in self._dead

    def degrade_factor(self, link, cycle):
        return self._factor


def channel(inj, **cfg_kwargs):
    cfg = FaultConfig(**cfg_kwargs)
    return LinkChannel(HMCTiming(), retry=RetryState(inj, cfg, 0, "req"))


class TestCreditPool:
    def test_acquire_within_capacity_is_free(self):
        pool = CreditPool(8)
        assert pool.acquire(10, 8) == 10
        assert pool.available == 0

    def test_acquire_waits_for_returns(self):
        pool = CreditPool(8)
        pool.acquire(0, 8)
        pool.release(100, 8)
        assert pool.acquire(5, 4) == 100

    def test_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            CreditPool(4).acquire(0, 5)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CreditPool(0)


class TestCleanPath:
    def test_clean_transmit_matches_fast_path(self):
        plain = LinkChannel(HMCTiming())
        reliable = channel(ScriptedInjector())
        assert plain.transmit(0, 4) == reliable.transmit(0, 4) == 4 + LAT
        assert plain.ready_cycle == reliable.ready_cycle == 4
        assert plain.flits == reliable.flits == 4
        assert reliable.retry.delivered == [(0, 4 + LAT)]

    def test_sequence_numbers_increment(self):
        ch = channel(ScriptedInjector())
        ch.transmit(0, 2)
        ch.transmit(0, 2)
        ch.transmit(0, 2)
        assert [seq for seq, _ in ch.retry.delivered] == [0, 1, 2]


class TestCrcRetry:
    def test_one_corruption_replays_after_nak_and_backoff(self):
        ch = channel(ScriptedInjector(flit=[True]))
        # Attempt 1: ser 0..4, arrives 96 corrupted; NAK lands 96+92=188;
        # backoff 8 -> replay starts 196, ser ends 200, arrives 292.
        assert ch.transmit(0, 4) == 200 + LAT
        rs = ch.retry
        assert rs.crc_errors == 1 and rs.naks == 1 and rs.retries == 1
        assert rs.delivered == [(0, 200 + LAT)]
        assert ch.packets == 1  # one logical packet...
        assert ch.flits == 8  # ...but both attempts are wire traffic

    def test_backoff_is_exponential_and_capped(self):
        assert [_backoff(8, n) for n in (1, 2, 3, 4)] == [8, 16, 32, 64]
        assert _backoff(8, 100) == 8 << 16

    def test_two_corruptions_compound_backoff(self):
        ch = channel(ScriptedInjector(flit=[True, True]))
        # a1: arrive 96, replay at 96+92+8=196; a2: arrive 292, replay at
        # 292+92+16=400; a3: ser 400..404, arrive 496.
        assert ch.transmit(0, 4) == 404 + LAT
        assert ch.retry.retries == 2

    def test_retry_limit_kills_link(self):
        ch = channel(ScriptedInjector(flit=[True] * 3), retry_limit=2)
        with pytest.raises(LinkFailedError) as exc:
            ch.transmit(0, 4)
        assert "retry limit" in str(exc.value)
        rs = ch.retry
        assert rs.failed and rs.failed_cycle > 0
        assert rs.injector.stats.site("link0.req")["link_failed"] == 1
        # The dead channel refuses further traffic immediately.
        with pytest.raises(LinkFailedError):
            ch.transmit(1000, 1)

    def test_exactly_one_delivery_despite_retries(self):
        ch = channel(ScriptedInjector(flit=[True, False, True, False]))
        ch.transmit(0, 2)
        ch.transmit(0, 2)
        assert [seq for seq, _ in ch.retry.delivered] == [0, 1]


class TestAckLoss:
    def test_lost_ack_causes_suppressed_duplicate(self):
        ch = channel(ScriptedInjector(ack=[True]))
        # First copy arrives intact at 96 and is delivered; its ACK is
        # lost, so the sender replays; the receiver discards the copy.
        assert ch.transmit(0, 4) == 4 + LAT
        rs = ch.retry
        assert rs.delivered == [(0, 4 + LAT)]
        assert rs.duplicates == 1 and rs.retries == 1
        assert rs.crc_errors == 0
        assert rs.injector.stats.site("link0.req")["duplicate_suppressed"] == 1

    def test_persistent_ack_loss_kills_link(self):
        ch = channel(ScriptedInjector(ack=[True] * 3), retry_limit=2)
        with pytest.raises(LinkFailedError) as exc:
            ch.transmit(0, 4)
        assert "lost acks" in str(exc.value)
        # Delivery happened before the protocol gave up on acking it.
        assert len(ch.retry.delivered) == 1


class TestFlowControl:
    def test_token_exhaustion_stalls_sender(self):
        ch = channel(ScriptedInjector(), link_tokens=4, retry_buffer_flits=256)
        assert ch.transmit(0, 4) == 4 + LAT
        # Tokens return when the first packet is consumed at 96; the
        # second packet cannot start serializing before that.
        assert ch.transmit(0, 4) == 96 + 4 + LAT
        assert ch.retry.stall_cycles == 96 - 4

    def test_retry_buffer_exhaustion_stalls_sender(self):
        ch = channel(ScriptedInjector(), link_tokens=256, retry_buffer_flits=4)
        assert ch.transmit(0, 4) == 4 + LAT
        # Retry-buffer space frees when the ACK lands at 96+92=188.
        assert ch.transmit(0, 4) == 188 + 4 + LAT
        assert ch.retry.stall_cycles == 188 - 4

    def test_no_stall_with_roomy_pools(self):
        ch = channel(ScriptedInjector())
        for _ in range(8):
            ch.transmit(0, 4)
        assert ch.retry.stall_cycles == 0


class TestHardFaults:
    def test_scheduled_failure_raises_on_next_use(self):
        ch = channel(ScriptedInjector(dead={0}))
        with pytest.raises(LinkFailedError):
            ch.transmit(0, 4)
        assert ch.retry.failed
        assert ch.flits == 0  # nothing ever hit the wire

    def test_degradation_slows_serialization(self):
        ch = channel(ScriptedInjector(factor=2.0))
        assert ch.transmit(0, 4) == 4 * 2 + LAT
        healthy = channel(ScriptedInjector())
        assert healthy.transmit(0, 4) == 4 + LAT


class TestLinkAggregation:
    def test_attach_faults_arms_both_channels(self):
        link = Link(3, HMCTiming())
        inj = ScriptedInjector()
        link.attach_faults(inj, FaultConfig())
        assert link.request.retry is not None
        assert link.response.retry is not None
        assert link.request.retry.site == "link3.req"
        assert link.response.retry.site == "link3.rsp"
        assert not link.failed and link.failed_cycle == -1

    def test_retry_events_aggregate_both_directions(self):
        link = Link(0, HMCTiming())
        inj = ScriptedInjector(flit=[True, False, True])
        link.attach_faults(inj, FaultConfig())
        link.request.transmit(0, 2)
        link.response.transmit(0, 2)
        assert link.request.retry.crc_errors == 1
        assert link.response.retry.crc_errors == 1
        events = link.retry_events
        assert events["crc_errors"] == 2
        assert events["retries"] == 2

    def test_failed_reports_first_death(self):
        link = Link(0, HMCTiming())
        link.attach_faults(ScriptedInjector(flit=[True] * 20), FaultConfig(retry_limit=1))
        with pytest.raises(LinkFailedError):
            link.request.transmit(0, 4)
        assert link.failed
        assert link.failed_cycle == link.request.retry.failed_cycle
