"""Timeline epoch sampling, export/merge, and engine bit-identity.

The contract under test (DESIGN.md section 13): per-epoch rate deltas
and boundary levels with zero elision, capacity-bounded series, lazy
idempotent binding, shard-merge by epoch summation — and the pinned
invariant that enabling the timeline never changes the simulation,
whether the run is driven by the lockstep or the skip engine.
"""

import json

import pytest

from repro.obs import NULL_TIMELINE, NullTimeline, Timeline
from repro.obs.analyze import load_timeline
from repro.sim import ClockedModel, LockstepEngine, SkipEngine

pytestmark = pytest.mark.obs


class TestNullTimeline:
    def test_disabled_and_silent(self):
        assert NULL_TIMELINE.enabled is False
        assert NULL_TIMELINE.bind(object()) is None
        assert NULL_TIMELINE.pump(100) is None
        assert NULL_TIMELINE.finish(100) is None

    def test_singleton_has_no_state(self):
        assert NullTimeline.__slots__ == ()


class TestValidation:
    def test_epoch_positive(self):
        with pytest.raises(ValueError):
            Timeline(epoch=0)

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            Timeline(capacity=0)

    def test_probe_kind_checked(self):
        tl = Timeline()
        with pytest.raises(ValueError):
            tl.add_probe("x", "gauge", lambda: 0)


class TestSampling:
    def test_rate_records_per_epoch_deltas(self):
        state = {"count": 0}
        tl = Timeline(epoch=10)
        tl.add_probe("c", "rate", lambda: state["count"])
        state["count"] = 3
        tl.pump(10)  # boundary 10 closes epoch 0
        state["count"] = 7
        tl.pump(25)  # boundary 20 closes epoch 1
        assert tl.series("c") == {0: 3, 1: 4}

    def test_level_records_boundary_value(self):
        state = {"depth": 0}
        tl = Timeline(epoch=10)
        tl.add_probe("d", "level", lambda: state["depth"])
        state["depth"] = 5
        tl.pump(10)  # level at boundary 10 opens epoch 1
        state["depth"] = 2
        tl.pump(20)
        assert tl.series("d") == {1: 5, 2: 2}

    def test_zero_samples_elided(self):
        state = {"count": 0}
        tl = Timeline(epoch=10)
        tl.add_probe("c", "rate", lambda: state["count"])
        tl.add_probe("d", "level", lambda: 0)
        tl.pump(100)  # ten quiet boundaries
        state["count"] = 1
        tl.pump(110)
        assert tl.series("c") == {10: 1}
        assert tl.series("d") == {}

    def test_each_boundary_sampled_once(self):
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            return 0

        tl = Timeline(epoch=10)
        tl.add_probe("c", "rate", probe)
        base = calls["n"]  # add_probe baselines rates once
        tl.pump(30)
        tl.pump(30)  # re-pumping the same cycle is a no-op
        tl.pump(7)  # going backwards never re-samples
        assert calls["n"] - base == 3  # boundaries 10, 20, 30

    def test_finish_settles_partial_epoch(self):
        state = {"count": 0}
        tl = Timeline(epoch=10)
        tl.add_probe("c", "rate", lambda: state["count"])
        state["count"] = 4
        tl.pump(10)
        state["count"] = 9
        tl.finish(17)  # trailing partial epoch [10, 17)
        assert tl.series("c") == {0: 4, 1: 5}
        assert tl.export()["cycles"] == 17

    def test_finish_is_idempotent_and_boundary_exact(self):
        state = {"count": 0}
        tl = Timeline(epoch=10)
        tl.add_probe("c", "rate", lambda: state["count"])
        state["count"] = 4
        tl.finish(20)  # run ends exactly on a boundary: no partial epoch
        state["count"] = 99
        tl.finish(20)
        assert tl.series("c") == {0: 4}

    def test_capacity_evicts_oldest_and_counts(self):
        state = {"count": 0}
        tl = Timeline(epoch=10, capacity=3)
        tl.add_probe("c", "rate", lambda: state["count"])
        for b in range(1, 6):  # five busy epochs
            state["count"] += 1
            tl.pump(b * 10)
        assert tl.series("c") == {2: 1, 3: 1, 4: 1}
        assert tl.dropped() == 2
        assert tl.export()["series"]["c"]["dropped"] == 2


class _Probed:
    """Minimal model exposing the ``timeline_probes`` hook."""

    def __init__(self):
        self.count = 0

    def timeline_probes(self):
        return [
            ("m.count", "rate", lambda: self.count),
            ("m.level", "level", lambda: self.count % 3),
        ]


class TestBind:
    def test_bind_installs_probes(self):
        m = _Probed()
        tl = Timeline(epoch=10)
        tl.bind(m)
        m.count = 5
        tl.pump(10)
        assert tl.series("m.count") == {0: 5}

    def test_rebind_same_model_is_noop(self):
        m = _Probed()
        tl = Timeline(epoch=10)
        tl.bind(m)
        m.count = 5
        tl.bind(m)  # must NOT re-baseline the rate probe at 5
        tl.pump(10)
        assert tl.series("m.count") == {0: 5}

    def test_bind_other_model_replaces_probes(self):
        a, b = _Probed(), _Probed()
        tl = Timeline(epoch=10)
        tl.bind(a)
        tl.bind(b)
        b.count = 2
        a.count = 99
        tl.pump(10)
        assert tl.series("m.count") == {0: 2}

    def test_bind_without_hook_is_harmless(self):
        tl = Timeline(epoch=10)
        tl.bind(object())
        tl.pump(50)
        assert len(tl) == 0


class TestExportMerge:
    def test_export_schema(self):
        m = _Probed()
        tl = Timeline(epoch=10)
        tl.bind(m)
        m.count = 4
        tl.finish(25)
        doc = tl.export()
        assert doc["version"] == 1
        assert doc["epoch"] == 10
        assert doc["cycles"] == 25
        assert doc["series"]["m.count"]["kind"] == "rate"
        json.loads(json.dumps(doc))  # int keys are fine in-memory only

    def test_merge_epoch_mismatch_rejected(self):
        tl = Timeline(epoch=10)
        with pytest.raises(ValueError):
            tl.merge_export({"epoch": 20, "series": {}})

    def test_merge_sums_rates_and_takes_max_cycles(self):
        def shard(epochs, cycles):
            return {
                "version": 1,
                "epoch": 10,
                "cycles": cycles,
                "meta": {},
                "series": {
                    "c": {"kind": "rate", "dropped": 0, "epochs": epochs}
                },
            }

        parent = Timeline(epoch=10)
        parent.merge_export(shard({0: 2, 1: 3}, 20))
        parent.merge_export(shard({1: 5, 2: 1}, 30))
        assert parent.series("c") == {0: 2, 1: 8, 2: 1}
        assert parent.export()["cycles"] == 30

    def test_write_json_roundtrips_via_load_timeline(self, tmp_path):
        m = _Probed()
        tl = Timeline(epoch=10)
        tl.bind(m)
        m.count = 6
        tl.finish(15)
        out = tmp_path / "tl.json"
        n = tl.write_json(out, meta={"benchmark": "toy"})
        assert n == len(tl.export()["series"])
        doc = load_timeline(out)
        assert doc["meta"]["benchmark"] == "toy"
        assert doc["series"]["m.count"]["epochs"] == {0: 6, 1: 0} or doc[
            "series"
        ]["m.count"]["epochs"] == {0: 6}


class _PulseModel(ClockedModel):
    """Bursts at scheduled cycles, quiescent (and skippable) between."""

    def __init__(self, events):
        self.events = sorted(events)
        self.fired = []
        self.work = 0

    def done(self):
        return not self.events

    def tick(self):
        if self.events and self.events[0] == self._cycle:
            self.fired.append(self._cycle)
            self.events.pop(0)
            self.work += 1
        self._cycle += 1

    def next_event_cycle(self, now):
        if not self.events:
            return None
        return max(self.events[0], now)

    def skip_to(self, target):
        self._cycle = target

    def timeline_probes(self):
        return [
            ("pulse.work", "rate", lambda: self.work),
            ("pulse.pending", "level", lambda: len(self.events)),
        ]


EVENTS = [3, 95, 100, 101, 257, 300, 301, 555]


class TestEngineIntegration:
    def _run(self, engine_cls, timeline):
        sim = _PulseModel(EVENTS)
        sim.timeline = timeline
        engine_cls().run(sim, max_cycles=10_000)
        return sim

    def test_enabled_timeline_never_changes_the_run(self):
        for engine_cls in (LockstepEngine, SkipEngine):
            plain = self._run(engine_cls, NULL_TIMELINE)
            timed = self._run(engine_cls, Timeline(epoch=100))
            assert timed.fired == plain.fired
            assert timed.cycle == plain.cycle

    def test_lockstep_and_skip_produce_identical_timelines(self):
        tl_lock = Timeline(epoch=100)
        tl_skip = Timeline(epoch=100)
        self._run(LockstepEngine, tl_lock)
        skip_sim = self._run(SkipEngine, tl_skip)
        assert tl_skip.export() == tl_lock.export()
        # The skip engine actually skipped — the equality is not vacuous.
        assert skip_sim.cycle == max(EVENTS) + 1

    def test_boundary_on_skip_target_sampled_once(self):
        # 100 is both an epoch boundary and a burst cycle the skip
        # engine jumps straight to: the boundary must be sampled exactly
        # once, after the jump and before the tick at 100 fires (so
        # epoch 0 sees only the work of cycles 0..99).
        tl = Timeline(epoch=100)
        self._run(SkipEngine, tl)
        work = tl.series("pulse.work")
        assert work[0] == 2  # cycles 3 and 95; the burst at 100 excluded
        assert work[1] == 2  # cycles 100 and 101
        assert sum(work.values()) == len(EVENTS)
