"""Unit tests of the attribution collector (stage stamps + stall taxonomy)."""

import pytest

from repro.core.request import MemoryRequest, RequestType
from repro.obs.attribution import (
    MARKS,
    NULL_ATTRIBUTION,
    STAGE_OF_MARK,
    STAGES,
    AttributionCollector,
    DepthSampler,
    NullAttribution,
    StallCause,
    request_breakdown,
)

pytestmark = pytest.mark.obs


def _req(**kw):
    return MemoryRequest(addr=0x1000, rtype=RequestType.LOAD, **kw)


class TestMarksSchema:
    def test_every_non_first_mark_has_a_stage(self):
        assert set(STAGE_OF_MARK) == set(MARKS[1:])
        assert STAGES == tuple(STAGE_OF_MARK[m] for m in MARKS[1:])

    def test_stall_causes_cover_the_issue_taxonomy(self):
        values = {c.value for c in StallCause}
        assert {
            "arq_full",
            "fence_drain",
            "link_tokens_exhausted",
            "retry_replay",
            "vault_queue_full",
            "bank_conflict",
            "response_backpressure",
        } <= values


class TestBreakdown:
    def test_full_path_telescopes_exactly(self):
        at = AttributionCollector()
        req = _req()
        for i, mark in enumerate(MARKS):
            at.mark(req, mark, 10 * i)
        bd = request_breakdown(req)
        assert bd is not None
        assert all(bd[STAGE_OF_MARK[m]] == 10 for m in MARKS[1:])
        assert bd["end_to_end"] == sum(bd[s] for s in STAGES)

        at.finalize(req)
        assert at.finalized == 1
        assert sum(at.stage_cycles.values()) == at.end_to_end.total

    def test_partial_path_skips_absent_stages_but_stays_exact(self):
        at = AttributionCollector()
        req = _req()
        at.mark(req, "submit", 5)
        at.mark(req, "dispatch", 25)
        at.mark(req, "complete", 125)
        bd = request_breakdown(req)
        assert bd == {"builder": 20, "link_response": 100, "end_to_end": 120}
        at.finalize(req)
        assert sum(at.stage_cycles.values()) == at.end_to_end.total == 120

    def test_restamp_overwrites_for_reissued_requests(self):
        at = AttributionCollector()
        req = _req()
        at.mark(req, "submit", 0)
        at.mark(req, "vault_arrive", 50)
        at.mark(req, "vault_arrive", 300)  # timeout re-issue
        assert request_breakdown(req)["end_to_end"] == 300

    def test_unmarked_request_counts_incomplete(self):
        at = AttributionCollector()
        at.finalize(_req())
        single = _req()
        at.mark(single, "submit", 3)
        at.finalize(single)
        assert at.incomplete == 2
        assert at.finalized == 0
        assert request_breakdown(_req()) is None


class TestStalls:
    def test_stall_accumulates_per_site_and_cause(self):
        at = AttributionCollector()
        at.stall("arq", StallCause.ARQ_FULL)
        at.stall("arq", StallCause.ARQ_FULL, 4)
        at.stall("arq", StallCause.FENCE_DRAIN)
        assert at.stalls["arq"] == {"arq_full": 5, "fence_drain": 1}
        assert at.total_stall_cycles() == {"arq": 6}

    def test_stall_span_clips_overlaps_to_their_union(self):
        at = AttributionCollector()
        at.stall_span("bank", StallCause.BANK_CONFLICT, 10, 20)
        at.stall_span("bank", StallCause.BANK_CONFLICT, 15, 30)  # overlap
        at.stall_span("bank", StallCause.BANK_CONFLICT, 0, 5)  # fully past
        at.stall_span("bank", StallCause.BANK_CONFLICT, 40, 40)  # empty
        assert at.stalls["bank"]["bank_conflict"] == 20  # |[10,30)|

    def test_stall_span_per_cycle_charging_is_idempotent(self):
        at = AttributionCollector()
        for _ in range(8):  # eight cores bouncing in one cycle
            at.stall_span("router", StallCause.INPUT_QUEUE_FULL, 7, 8)
        assert at.stalls["router"]["input_queue_full"] == 1

    def test_watermarks_are_per_site_and_cause(self):
        at = AttributionCollector()
        at.stall_span("link0_req", StallCause.LINK_BUSY, 0, 10)
        at.stall_span("link1_req", StallCause.LINK_BUSY, 0, 10)
        at.stall_span("link0_req", StallCause.RETRY_REPLAY, 0, 10)
        assert at.stalls["link0_req"] == {"link_busy": 10, "retry_replay": 10}
        assert at.stalls["link1_req"] == {"link_busy": 10}


class TestDepthSampler:
    def test_stride_keeps_every_nth(self):
        ds = DepthSampler(stride=4, capacity=64)
        for c in range(40):
            ds.sample("arq", c, c % 7)
        assert len(ds.series("arq")) == 10
        assert [c for c, _ in ds.series("arq")] == list(range(0, 40, 4))

    def test_capacity_decimates_and_doubles_stride(self):
        ds = DepthSampler(stride=1, capacity=8)
        for c in range(64):
            ds.sample("q", c, float(c))
        snap = ds.snapshot()["q"]
        assert snap["points"] < 8
        assert snap["stride"] > 1
        assert snap["offered"] == 64
        # Retained points still span the run in order.
        cycles = [c for c, _ in ds.series("q")]
        assert cycles == sorted(cycles)
        assert cycles[0] == 0

    def test_memory_stays_bounded_over_long_runs(self):
        ds = DepthSampler(stride=1, capacity=16)
        for c in range(10_000):
            ds.sample("q", c, 1.0)
        assert len(ds.series("q")) <= 16

    def test_reset(self):
        ds = DepthSampler()
        ds.sample("q", 0, 1.0)
        ds.reset()
        assert ds.sites() == []
        assert ds.snapshot() == {}


class TestNullAttribution:
    def test_null_is_disabled_and_inert(self):
        assert isinstance(NULL_ATTRIBUTION, NullAttribution)
        assert NULL_ATTRIBUTION.enabled is False
        req = _req()
        NULL_ATTRIBUTION.mark(req, "submit", 1)
        NULL_ATTRIBUTION.finalize(req)
        NULL_ATTRIBUTION.stall("x", StallCause.ARQ_FULL)
        NULL_ATTRIBUTION.stall_span("x", StallCause.ARQ_FULL, 0, 5)
        NULL_ATTRIBUTION.sample_depth("x", 0, 1.0)
        assert req.marks is None


class TestProtocol:
    def _filled(self, offset=0):
        at = AttributionCollector()
        req = _req()
        for i, mark in enumerate(MARKS):
            at.mark(req, mark, offset + 7 * i)
        at.finalize(req)
        at.stall("arq", StallCause.ARQ_FULL, 3)
        at.stall_span("bank", StallCause.BANK_CONFLICT, offset, offset + 9)
        at.sample_depth("arq", offset, 2.0)
        return at

    def test_merge_adds_counts_and_stays_exact(self):
        a, b = self._filled(), self._filled(offset=100)
        a.merge(b)
        assert a.finalized == 2
        assert sum(a.stage_cycles.values()) == a.end_to_end.total
        assert a.stalls["arq"]["arq_full"] == 6
        assert a.stalls["bank"]["bank_conflict"] == 18

    def test_snapshot_shape_round_trips_through_report(self):
        from repro.obs.analyze import build_report

        at = self._filled()
        snap = at.snapshot()
        assert snap["requests_finalized"] == 1
        assert set(snap["stages"]) == set(STAGES)
        report = build_report(at, meta={"k": "v"})
        assert report["exact"] is True
        assert report["critical_stage"] in STAGES
        assert report["top_stalls"][0][2] >= report["top_stalls"][-1][2]

    def test_reset_clears_everything(self):
        at = self._filled()
        at.reset()
        assert at.finalized == 0 and at.incomplete == 0
        assert sum(at.stage_cycles.values()) == 0
        assert at.stalls == {}
        assert at.depth.snapshot() == {}
        # Watermarks cleared too: a fresh span charges in full.
        at.stall_span("bank", StallCause.BANK_CONFLICT, 0, 4)
        assert at.stalls["bank"]["bank_conflict"] == 4
