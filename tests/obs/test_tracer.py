"""EventTracer ring buffer, export formats, and Chrome-trace schema."""

import json
import warnings

import pytest

from repro.obs import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    canonical_key,
    merge_shard_traces,
)

pytestmark = pytest.mark.obs


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("arq", "alloc", 0, key=1) is None

    def test_singleton_has_no_state(self):
        assert NullTracer.__slots__ == ()


class TestRingBuffer:
    def test_emit_records_in_order(self):
        t = EventTracer()
        t.emit("arq", "alloc", 3, key=7)
        t.emit("vault", "conflict", 5)
        assert len(t) == 2
        assert t.events() == [
            (3, "arq", "alloc", {"key": 7}),
            (5, "vault", "conflict", None),
        ]
        assert t.events("arq") == [(3, "arq", "alloc", {"key": 7})]
        assert t.channels() == ["arq", "vault"]

    def test_bounded_with_drop_counter(self):
        t = EventTracer(capacity=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for i in range(10):
                t.emit("c", "e", i)
        assert len(t) == 4
        assert t.dropped == 6
        assert [e[0] for e in t.events()] == [6, 7, 8, 9]

    def test_warns_once_on_ring_wrap(self):
        t = EventTracer(capacity=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for i in range(6):  # wraps on the third emit, then keeps going
                t.emit("c", "e", i)
        wraps = [w for w in caught if issubclass(w.category, RuntimeWarning)]
        assert len(wraps) == 1
        assert "raise --trace-capacity" in str(wraps[0].message)
        assert t.dropped == 4

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_pause_resume(self):
        t = EventTracer()
        t.pause()
        t.emit("c", "e", 0)
        assert len(t) == 0
        t.resume()
        t.emit("c", "e", 1)
        assert len(t) == 1

    def test_clear(self):
        t = EventTracer(capacity=1)
        t.emit("c", "e", 0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            t.emit("c", "e", 1)
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0


def _traced():
    t = EventTracer()
    t.emit("arq", "alloc", 10, key=3, occupancy=1)
    t.emit("arq", "merge", 12, key=3)
    t.emit("link", "nak", 40, site=2, seq=9)
    return t


class TestChromeTrace:
    """Schema checks against the Trace Event Format the viewers expect."""

    def test_document_schema(self):
        doc = _traced().to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["dropped_events"] == 0
        json.loads(json.dumps(doc))  # JSON-serialisable end to end

    def test_event_schema(self):
        doc = _traced().to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(meta) + len(inst) == len(doc["traceEvents"])
        assert len(inst) == 3

        # One thread_name metadata record per channel, tids unique.
        assert {m["name"] for m in meta} == {"thread_name"}
        named = {m["tid"]: m["args"]["name"] for m in meta}
        assert sorted(named.values()) == ["arq", "link"]
        assert len(set(named)) == len(named)

        for e in inst:
            assert set(e) >= {"name", "cat", "ph", "ts", "pid", "tid", "s"}
            assert e["pid"] == 0
            assert e["s"] == "t"
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            assert named[e["tid"]] == e["cat"]

    def test_instant_events_carry_args(self):
        doc = _traced().to_chrome_trace()
        alloc = next(
            e for e in doc["traceEvents"] if e["ph"] == "i" and e["name"] == "alloc"
        )
        assert alloc["args"] == {"key": 3, "occupancy": 1}
        assert alloc["ts"] == 10

    def test_write_chrome_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        n = _traced().write_chrome_trace(out)
        doc = json.loads(out.read_text())
        assert n == len(doc["traceEvents"]) == 5  # 3 events + 2 metadata


class TestShardMerge:
    """merge_shard_traces: the PDES parent's collect-time trace fold."""

    def test_merge_is_canonically_ordered_and_counted(self):
        parent = EventTracer()
        parent.emit("arq", "alloc", 5, key=1)
        shard0 = [(3, "vault", "conflict", None), (5, "arq", "merge", {"key": 1})]
        shard1 = [(4, "link", "nak", {"seq": 2})]
        merge_shard_traces(parent, [(shard0, 0), (shard1, 0)])
        assert parent.events() == sorted(
            [(5, "arq", "alloc", {"key": 1})] + shard0 + shard1,
            key=canonical_key,
        )
        assert parent.shard_counts == {0: 2, 1: 1}
        assert parent.dropped == 0

    def test_merge_order_independent_of_shard_arrival(self):
        a = [(1, "c", "x", None), (9, "c", "y", None)]
        b = [(2, "d", "x", None), (9, "a", "y", None)]
        t1, t2 = EventTracer(), EventTracer()
        merge_shard_traces(t1, [(a, 0), (b, 0)])
        merge_shard_traces(t2, [(b, 0), (a, 0)])
        assert t1.events() == t2.events()

    def test_merge_respects_capacity_keep_newest(self):
        parent = EventTracer(capacity=3)
        events = [(i, "c", "e", None) for i in range(5)]
        merge_shard_traces(parent, [(events, 2)])
        assert [e[0] for e in parent.events()] == [2, 3, 4]
        assert parent.dropped == 2 + 2  # shard drops + merge overflow

    def test_clear_resets_shard_counts(self):
        parent = EventTracer()
        merge_shard_traces(parent, [([(1, "c", "e", None)], 0)])
        assert parent.shard_counts is not None
        parent.clear()
        assert parent.shard_counts is None

    def test_chrome_metadata_carries_shard_events(self):
        parent = EventTracer()
        merge_shard_traces(
            parent, [([(1, "c", "e", None)], 0), ([(2, "c", "f", None)], 0)]
        )
        doc = parent.to_chrome_trace()
        assert doc["otherData"]["shard_events"] == {"0": 1, "1": 1}
        plain = _traced().to_chrome_trace()
        assert "shard_events" not in plain["otherData"]


class TestJsonl:
    def test_write_jsonl(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        n = _traced().write_jsonl(out)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert n == len(rows) == 3
        assert rows[0] == {
            "cycle": 10,
            "channel": "arq",
            "name": "alloc",
            "key": 3,
            "occupancy": 1,
        }
        assert rows[2]["channel"] == "link"
