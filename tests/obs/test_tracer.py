"""EventTracer ring buffer, export formats, and Chrome-trace schema."""

import json

import pytest

from repro.obs import NULL_TRACER, EventTracer, NullTracer

pytestmark = pytest.mark.obs


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.emit("arq", "alloc", 0, key=1) is None

    def test_singleton_has_no_state(self):
        assert NullTracer.__slots__ == ()


class TestRingBuffer:
    def test_emit_records_in_order(self):
        t = EventTracer()
        t.emit("arq", "alloc", 3, key=7)
        t.emit("vault", "conflict", 5)
        assert len(t) == 2
        assert t.events() == [
            (3, "arq", "alloc", {"key": 7}),
            (5, "vault", "conflict", None),
        ]
        assert t.events("arq") == [(3, "arq", "alloc", {"key": 7})]
        assert t.channels() == ["arq", "vault"]

    def test_bounded_with_drop_counter(self):
        t = EventTracer(capacity=4)
        for i in range(10):
            t.emit("c", "e", i)
        assert len(t) == 4
        assert t.dropped == 6
        assert [e[0] for e in t.events()] == [6, 7, 8, 9]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)

    def test_pause_resume(self):
        t = EventTracer()
        t.pause()
        t.emit("c", "e", 0)
        assert len(t) == 0
        t.resume()
        t.emit("c", "e", 1)
        assert len(t) == 1

    def test_clear(self):
        t = EventTracer(capacity=1)
        t.emit("c", "e", 0)
        t.emit("c", "e", 1)
        t.clear()
        assert len(t) == 0
        assert t.dropped == 0


def _traced():
    t = EventTracer()
    t.emit("arq", "alloc", 10, key=3, occupancy=1)
    t.emit("arq", "merge", 12, key=3)
    t.emit("link", "nak", 40, site=2, seq=9)
    return t


class TestChromeTrace:
    """Schema checks against the Trace Event Format the viewers expect."""

    def test_document_schema(self):
        doc = _traced().to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["dropped_events"] == 0
        json.loads(json.dumps(doc))  # JSON-serialisable end to end

    def test_event_schema(self):
        doc = _traced().to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        inst = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(meta) + len(inst) == len(doc["traceEvents"])
        assert len(inst) == 3

        # One thread_name metadata record per channel, tids unique.
        assert {m["name"] for m in meta} == {"thread_name"}
        named = {m["tid"]: m["args"]["name"] for m in meta}
        assert sorted(named.values()) == ["arq", "link"]
        assert len(set(named)) == len(named)

        for e in inst:
            assert set(e) >= {"name", "cat", "ph", "ts", "pid", "tid", "s"}
            assert e["pid"] == 0
            assert e["s"] == "t"
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            assert named[e["tid"]] == e["cat"]

    def test_instant_events_carry_args(self):
        doc = _traced().to_chrome_trace()
        alloc = next(
            e for e in doc["traceEvents"] if e["ph"] == "i" and e["name"] == "alloc"
        )
        assert alloc["args"] == {"key": 3, "occupancy": 1}
        assert alloc["ts"] == 10

    def test_write_chrome_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        n = _traced().write_chrome_trace(out)
        doc = json.loads(out.read_text())
        assert n == len(doc["traceEvents"]) == 5  # 3 events + 2 metadata


class TestJsonl:
    def test_write_jsonl(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        n = _traced().write_jsonl(out)
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert n == len(rows) == 3
        assert rows[0] == {
            "cycle": 10,
            "channel": "arq",
            "name": "alloc",
            "key": 3,
            "occupancy": 1,
        }
        assert rows[2]["channel"] == "link"
