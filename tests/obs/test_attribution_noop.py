"""Attribution must be observation-only: a disabled run is bit-identical.

The regression the ISSUE pins: running with attribution *enabled*
produces exactly the packets, stats and timing of a run holding the
:data:`NULL_ATTRIBUTION` no-op — the collector only ever reads
simulation state, so the stamps, stall charges and depth samples cannot
perturb results.  (Both runs here keep the same replay cadence;
``use_issue_cycles`` is a different arrival model, not an attribution
side effect, so it is exercised in the integration suite instead.)
"""

import pytest

from repro.eval.runner import attributed_node_run, dispatch, replay_on_device
from repro.obs.attribution import NULL_ATTRIBUTION, AttributionCollector

pytestmark = pytest.mark.obs

WORKLOAD = "IS"
SIZING = dict(threads=4, ops_per_thread=400)


def _run(attrib):
    disp = dispatch(WORKLOAD, "mac-cycle", attrib=attrib, **SIZING)
    replay = replay_on_device(disp.packets, attrib=attrib)
    return disp, replay


def test_disabled_run_bit_identical_to_attributed_run():
    base_disp, base_replay = _run(NULL_ATTRIBUTION)
    attrib = AttributionCollector()
    at_disp, at_replay = _run(attrib)

    # The attributed run actually observed something...
    assert attrib.finalized > 0
    assert attrib.stalls, "expected at least one stall site"
    assert attrib.end_to_end.count == attrib.finalized

    # ...and perturbed nothing: identical packet streams (CoalescedRequest
    # is an eq-dataclass and MemoryRequest.marks is compare=False, so this
    # compares every simulated field) and identical stats, both sides.
    assert at_disp.packets == base_disp.packets
    assert at_disp.stats.snapshot() == base_disp.stats.snapshot()
    assert at_replay.device.stats.snapshot() == base_replay.device.stats.snapshot()
    assert at_replay.makespan == base_replay.makespan
    assert at_replay.mean_latency == base_replay.mean_latency


def test_disabled_closed_loop_node_is_bit_identical():
    """Same contract over the full node: cores -> MAC -> device -> delivery."""
    _, base = attributed_node_run(WORKLOAD, attrib=NULL_ATTRIBUTION, **SIZING)
    attrib, node = attributed_node_run(WORKLOAD, **SIZING)

    assert attrib.finalized > 0
    assert node.cycle == base.cycle
    assert node.mac.stats.snapshot() == base.mac.stats.snapshot()
    assert node.device.stats.snapshot() == base.device.stats.snapshot()


def test_disabled_requests_carry_no_marks():
    disp, _ = _run(NULL_ATTRIBUTION)
    for pkt in disp.packets[:32]:
        for raw in pkt.requests:
            assert raw.marks is None
