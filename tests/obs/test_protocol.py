"""StatsMixin contract tests + merge-associativity property over all stats types."""

import copy
import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheStats
from repro.cache.hierarchy import HierarchyStats
from repro.cache.mshr import MSHRStats
from repro.core.router import RouterStats
from repro.core.stats import MACStats
from repro.ddr.controller import ControllerStats
from repro.ddr.device import DDRStats
from repro.hbm.device import HBMStats
from repro.hmc.stats import HMCStats
from repro.hmc.vault import VaultStats
from repro.node.core import CoreStats
from repro.node.mt_core import MTCoreStats
from repro.node.node import NodeStats
from repro.node.system import SystemStats
from repro.obs import Counter, Gauge, Histogram, StatsMixin, StatsProtocol, merge_all
from repro.trace.analyzer import RowLocalityStats

pytestmark = pytest.mark.obs

#: Every StatsMixin adopter in the tree; the associativity property runs
#: over each of them so a new stats class cannot silently break the
#: parallel engine's chunked aggregation.
STATS_CLASSES = [
    CacheStats,
    HierarchyStats,
    MSHRStats,
    RouterStats,
    MACStats,
    ControllerStats,
    DDRStats,
    HBMStats,
    HMCStats,
    VaultStats,
    CoreStats,
    MTCoreStats,
    NodeStats,
    SystemStats,
    RowLocalityStats,
]


def _blank(cls):
    """Instantiate ``cls`` supplying a value for any defaultless field."""
    kwargs = {}
    for f in dataclasses.fields(cls):
        if (
            f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
        ):
            kwargs[f.name] = 4
    return cls(**kwargs)


def _randomise(draw, obj):
    """Fill ``obj``'s fields with drawn values the merge rules accept.

    Floats are drawn as small integers so float addition stays exact
    (the associativity property is about the merge *policies*, not IEEE
    rounding).
    """
    cls = type(obj)
    for f in dataclasses.fields(cls):
        name = f.name
        if name in cls.MERGE_CONFIG:
            continue
        val = getattr(obj, name)
        if isinstance(val, Histogram):
            for v in draw(st.lists(st.integers(1, 500), max_size=4)):
                val.add(v)
        elif isinstance(val, Counter):
            val.inc(draw(st.integers(0, 100)))
        elif isinstance(val, Gauge):
            val.set(float(draw(st.integers(0, 100))))
        elif isinstance(val, dict):
            extra = draw(
                st.dictionaries(
                    st.sampled_from(["a", "b", "c"]), st.integers(0, 20), max_size=3
                )
            )
            for k, v in extra.items():
                val[k] = val.get(k, 0) + v
        elif isinstance(val, list):
            val.extend(draw(st.lists(st.integers(0, 9), max_size=3)))
        elif name in cls.MERGE_MIN_SENTINEL:
            setattr(obj, name, draw(st.sampled_from([-1, 0, 3, 17, 250])))
        elif isinstance(val, bool):
            setattr(obj, name, draw(st.integers(0, 1)))
        elif isinstance(val, float):
            setattr(obj, name, float(draw(st.integers(0, 1000))))
        elif isinstance(val, int):
            setattr(obj, name, draw(st.integers(0, 1000)))
    return obj


@pytest.mark.parametrize("cls", STATS_CLASSES, ids=lambda c: c.__name__)
def test_satisfies_protocol(cls):
    obj = _blank(cls)
    assert isinstance(obj, StatsProtocol)
    snap = obj.snapshot()
    assert isinstance(snap, dict)
    for name in cls.SNAPSHOT_DERIVED:
        assert name in snap


@pytest.mark.parametrize("cls", STATS_CLASSES, ids=lambda c: c.__name__)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_merge_is_associative(cls, data):
    a, b, c = (_randomise(data.draw, _blank(cls)) for _ in range(3))

    left = copy.deepcopy(a)
    left.merge(copy.deepcopy(b))
    left.merge(copy.deepcopy(c))

    bc = copy.deepcopy(b)
    bc.merge(copy.deepcopy(c))
    right = copy.deepcopy(a)
    right.merge(bc)

    assert left.snapshot() == right.snapshot()


@pytest.mark.parametrize("cls", STATS_CLASSES, ids=lambda c: c.__name__)
def test_merge_identity(cls):
    """Merging a fresh (all-defaults) instance changes nothing."""
    obj = _blank(cls)
    before = obj.snapshot()
    obj.merge(_blank(cls))
    assert obj.snapshot() == before


def test_merge_rejects_other_types():
    with pytest.raises(TypeError):
        MACStats().merge(RouterStats())


def test_min_sentinel_policy():
    a, b = HMCStats(), HMCStats()
    a.first_arrival = -1
    b.first_arrival = 7
    a.merge(b)
    assert a.first_arrival == 7
    c = HMCStats()
    c.first_arrival = 3
    a.merge(c)
    assert a.first_arrival == 3
    d = HMCStats()
    d.first_arrival = -1
    a.merge(d)
    assert a.first_arrival == 3


def test_merge_config_must_match_and_survives_reset():
    a, b = RowLocalityStats(window=8), RowLocalityStats(window=16)
    with pytest.raises(ValueError):
        a.merge(b)
    a.window_hits = 5
    a.reset()
    assert a.window == 8
    assert a.window_hits == 0


def test_merge_all_folds_and_validates():
    parts = [MACStats() for _ in range(3)]
    for i, p in enumerate(parts):
        p.raw_requests = i + 1
    total = merge_all(parts[1:], into=parts[0])
    assert total is parts[0]
    assert total.raw_requests == 6
    with pytest.raises(ValueError):
        merge_all([])


def test_reset_restores_defaults():
    s = MACStats()
    s.raw_requests = 10
    s.coalesced_packets = 4
    s.packet_sizes[64] = 2
    s.reset()
    assert s.raw_requests == 0
    assert s.coalesced_packets == 0
    assert s.packet_sizes == {}


def test_mixin_is_slot_free():
    assert StatsMixin.__slots__ == ()
