"""Unit tests for the metric primitives and the registry."""

import pickle

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, flatten

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_and_snapshot(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == {"value": 5}

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_and_reset(self):
        a, b = Counter(3), Counter(4)
        a.merge(b)
        assert a.value == 7
        a.reset()
        assert a.value == 0


class TestGauge:
    def test_policies(self):
        for policy, expect in (("last", 2.0), ("max", 5.0), ("min", 2.0), ("sum", 7.0)):
            g = Gauge(5.0, policy=policy)
            g.merge(Gauge(2.0, policy=policy))
            assert g.value == expect, policy

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            Gauge(policy="median")


class TestHistogram:
    def test_exact_quantiles_match_sorted_interpolation(self):
        h = Histogram()
        for v in (10, 20, 30, 40, 100):
            h.add(v)
        assert h.exact
        assert h.quantile(0.0) == 10
        assert h.quantile(0.25) == 20
        assert h.quantile(0.5) == 30
        assert h.quantile(1.0) == 100

    def test_quantile_range_check(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_empty(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0
        assert h.count == 0

    def test_bounded_memory_beyond_sample_limit(self):
        h = Histogram(sample_limit=16)
        for v in range(1000):
            h.add(v)
        assert h.count == 1000
        assert len(h.samples) == 16
        assert not h.exact
        assert h.min == 0 and h.max == 999

    def test_bucket_quantile_monotone_and_in_range(self):
        h = Histogram(sample_limit=4)
        for v in range(1, 501):
            h.add(v)
        last = 0.0
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            val = h.quantile(q)
            assert h.min <= val <= h.max
            assert val >= last
            last = val

    def test_merge_requires_matching_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1, 2)).merge(Histogram(bounds=(1, 4)))

    def test_merge_accumulates(self):
        a, b = Histogram(), Histogram()
        a.add(5)
        b.add(7, n=2)
        a.merge(b)
        assert a.count == 3
        assert a.total == 19
        assert a.min == 5 and a.max == 7

    def test_pickle_roundtrip(self):
        h = Histogram()
        h.add(42)
        assert pickle.loads(pickle.dumps(h)) == h

    def test_snapshot_keys(self):
        h = Histogram()
        h.add(3)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "total", "dropped", "min", "max", "mean", "p50", "p99",
            "buckets",
        }
        assert snap["buckets"] == {"4": 1}
        assert snap["dropped"] == 0

    def test_dropped_counts_overflow_beyond_sample_limit(self):
        h = Histogram(sample_limit=4)
        for v in range(10):
            h.add(v)
        assert len(h.samples) == 4
        assert h.dropped == 6
        assert not h.exact
        assert h.snapshot()["dropped"] == 6
        # The prefix is arrival-ordered, not a reservoir.
        assert h.samples == [0, 1, 2, 3]

    def test_dropped_tracks_bulk_adds_and_merge(self):
        h = Histogram(sample_limit=3)
        h.add(5, n=10)
        assert h.dropped == 7
        other = Histogram(sample_limit=3)
        other.add(7, n=2)
        h.merge(other)
        assert h.count == 12
        assert h.dropped == 9  # merge cannot grow a full sample prefix
        h.reset()
        assert h.dropped == 0 and h.exact


class TestRegistry:
    def test_flatten(self):
        assert flatten({"a": {"b": 1}, "c": 2}) == {"a.b": 1, "c": 2}

    def test_collect_namespaces_and_sources(self):
        reg = MetricsRegistry()
        c = Counter(3)
        reg.register("ctr", c)
        reg.register("fn", lambda: {"x": {"y": 1}})
        reg.register("raw", {"z": 9})
        out = reg.collect()
        assert out == {"ctr.value": 3, "fn.x.y": 1, "raw.z": 9}

    def test_rejects_dots_and_duplicates(self):
        reg = MetricsRegistry()
        reg.register("a", Counter())
        with pytest.raises(ValueError):
            reg.register("a", Counter())
        with pytest.raises(ValueError):
            reg.register("a.b", Counter())

    def test_bad_source(self):
        reg = MetricsRegistry()
        reg.register("bad", 42)
        with pytest.raises(TypeError):
            reg.collect()
