"""Tracing must be observation-only: a traced run is bit-identical.

The tentpole regression of the observability PR: running the cycle
engine (and the device replay) with tracing disabled produces *exactly*
the packets and stats of a run where an :class:`EventTracer` was wired
in and its buffer discarded.  The tracer only ever reads simulation
state, so enabling it cannot perturb results.
"""

import pytest

from repro.eval.runner import dispatch, replay_on_device
from repro.obs import NULL_TRACER, EventTracer

pytestmark = pytest.mark.obs

WORKLOAD = "IS"
SIZING = dict(threads=4, ops_per_thread=400)


def _run(tracer):
    disp = dispatch(WORKLOAD, "mac-cycle", tracer=tracer, **SIZING)
    replay = replay_on_device(disp.packets, tracer=tracer)
    return disp, replay


def test_disabled_run_bit_identical_to_traced_run():
    base_disp, base_replay = _run(NULL_TRACER)
    tracer = EventTracer()
    traced_disp, traced_replay = _run(tracer)

    # The traced run actually observed something...
    assert len(tracer) > 0
    assert "arq" in tracer.channels()
    assert "vault" in tracer.channels()

    # ...and perturbed nothing: identical packet streams (CoalescedRequest
    # is an eq-dataclass, so this compares every field of every packet)
    # and identical stats snapshots, MAC side and device side.
    assert traced_disp.packets == base_disp.packets
    assert traced_disp.stats.snapshot() == base_disp.stats.snapshot()
    assert traced_replay.device.stats.snapshot() == base_replay.device.stats.snapshot()
    assert traced_replay.makespan == base_replay.makespan
    assert traced_replay.mean_latency == base_replay.mean_latency


def test_paused_tracer_matches_null_tracer():
    """``pause()`` turns a live tracer back into the zero-overhead path."""
    base_disp, _ = _run(NULL_TRACER)
    tracer = EventTracer()
    tracer.pause()
    disp, _ = _run(tracer)
    assert len(tracer) == 0
    assert disp.packets == base_disp.packets
    assert disp.stats.snapshot() == base_disp.stats.snapshot()


def test_metrics_view_is_flat_and_namespaced():
    """The dispatch/replay metrics views stay flat dot-namespaced dicts."""
    disp, replay = _run(NULL_TRACER)
    for view, prefixes in (
        (disp.metrics(), {"mac"}),
        (replay.metrics(), {"device", "vaults", "links"}),
    ):
        assert view, "metrics view should not be empty"
        assert prefixes <= {k.split(".", 1)[0] for k in view}
        for key, value in view.items():
            assert "." in key
            assert not isinstance(value, dict), f"{key} is not flat"
