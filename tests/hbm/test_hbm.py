"""Tests for the HBM substrate and the section-4.3 applicability claim."""

import pytest

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.packet import CoalescedRequest
from repro.core.request import MemoryRequest, RequestType
from repro.core.stats import MACStats
from repro.hbm.config import HBMConfig
from repro.hbm.device import HBMDevice


def read(addr, size=32):
    return CoalescedRequest(addr=addr, size=size, rtype=RequestType.LOAD)


class TestConfig:
    def test_defaults_match_section_43(self):
        cfg = HBMConfig()
        assert cfg.row_bytes == 1 << 10  # 1 KB rows
        assert cfg.burst_bytes == 32  # BL4 x 64-bit

    def test_burst_counts(self):
        cfg = HBMConfig()
        # Section 4.3: MAC's 64 B - 1 KB requests need 2-32 bursts.
        assert cfg.bursts(64) == 2
        assert cfg.bursts(1024) == 32

    def test_channel_and_bank_in_range(self):
        cfg = HBMConfig()
        for addr in range(0, 1 << 22, 4093):
            assert 0 <= cfg.channel_of(addr) < cfg.pseudo_channels
            assert 0 <= cfg.bank_of(addr) < cfg.banks_per_channel

    def test_validation(self):
        with pytest.raises(ValueError):
            HBMConfig(pseudo_channels=3)
        with pytest.raises(ValueError):
            HBMConfig(row_bytes=1000)
        with pytest.raises(ValueError):
            HBMConfig().bursts(0)


class TestDevice:
    def test_unloaded_latency_plausible(self):
        dev = HBMDevice()
        ns = dev.unloaded_read_latency() / 3.3
        assert 40 < ns < 80  # HBM2-class

    def test_burst_quantization(self):
        """A one-FLIT (16 B) bypass packet still moves one 32 B burst."""
        dev = HBMDevice()
        dev.submit(read(0x410, size=16), 0)
        assert dev.stats.bursts == 1

    def test_closed_page_conflicts(self):
        dev = HBMDevice()
        for i in range(8):
            dev.submit(read(0x1000 + 32 * i), 0)
        assert dev.bank_conflicts == 7

    def test_coalesced_row_single_activation(self):
        dev = HBMDevice()
        dev.submit(read(0x1000, size=1024), 0)
        assert dev.stats.activations == 1
        assert dev.stats.bursts == 32
        assert dev.bank_conflicts == 0

    def test_row_crossing_rejected(self):
        with pytest.raises(ValueError):
            HBMDevice().submit(read(0x200, size=1024), 0)

    def test_order_enforced(self):
        dev = HBMDevice()
        dev.submit(read(0x0), 100)
        with pytest.raises(ValueError):
            dev.submit(read(0x400), 50)


class TestMACOnHBM:
    """Section 4.3: same coalescing logic, different protocol."""

    def test_end_to_end(self):
        cfg = MACConfig(row_bytes=1024, max_request_bytes=1024)
        reqs = [
            MemoryRequest(addr=(r << 10) | (f << 4), rtype=RequestType.LOAD, tag=r * 10 + f)
            for r in range(30)
            for f in range(10)
        ]
        st = MACStats()
        pkts = coalesce_trace_fast(reqs, cfg, stats=st)
        assert st.coalescing_efficiency > 0.8
        dev = HBMDevice()
        t = 0
        for p in pkts:
            dev.submit(p, t)
            t += 2
        assert dev.stats.requests == len(pkts)
        assert dev.bank_conflicts == 0

    def test_coalescing_cuts_hbm_activations(self):
        reqs = [
            MemoryRequest(addr=(r << 10) | (f << 5), rtype=RequestType.LOAD, tag=r * 8 + f)
            for r in range(20)
            for f in range(8)
        ]
        cfg = MACConfig(row_bytes=1024, max_request_bytes=1024)
        pkts = coalesce_trace_fast(list(reqs), cfg)

        raw_dev, mac_dev = HBMDevice(), HBMDevice()
        for i, r in enumerate(reqs):
            raw_dev.submit(read(r.addr, 32), i)
        t = 0
        for p in pkts:
            mac_dev.submit(p, t)
            t += 2
        assert mac_dev.stats.activations < raw_dev.stats.activations / 3
        assert mac_dev.bank_conflicts < raw_dev.bank_conflicts
