"""CLI round-trip tests (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_args(self):
        args = build_parser().parse_args(
            ["trace", "SG", "-o", "x.trc", "--threads", "2", "--ops", "10"]
        )
        assert args.benchmark == "SG" and args.threads == 2


class TestCommands:
    def test_trace_then_coalesce(self, tmp_path, capsys):
        out = tmp_path / "t.trc"
        assert main(["trace", "MG", "-o", str(out), "--threads", "2", "--ops", "200"]) == 0
        assert out.exists()
        assert main(["coalesce", str(out)]) == 0
        text = capsys.readouterr().out
        assert "coalescing efficiency" in text

    def test_text_trace_format(self, tmp_path, capsys):
        out = tmp_path / "t.txt"
        main(["trace", "IS", "-o", str(out), "--threads", "2", "--ops", "100"])
        assert out.read_text().startswith(("LD", "ST"))

    def test_replay_all_devices(self, tmp_path, capsys):
        out = tmp_path / "t.trc"
        main(["trace", "SG", "-o", str(out), "--threads", "2", "--ops", "150"])
        for device in ("hmc", "hbm", "ddr"):
            assert main(["replay", str(out), "--device", device]) == 0
        assert main(["replay", str(out), "--no-mac"]) == 0
        text = capsys.readouterr().out
        assert "bank conflicts" in text
        assert "row-hit rate" in text

    def test_replay_policy_and_arq_flags(self, tmp_path, capsys):
        out = tmp_path / "t.trc"
        main(["trace", "SP", "-o", str(out), "--threads", "2", "--ops", "100"])
        assert main(["coalesce", str(out), "--arq", "8", "--policy", "exact"]) == 0

    def test_info(self, capsys):
        assert main(["info"]) == 0
        text = capsys.readouterr().out
        assert "2062" in text
        assert "GRAPPOLO" in text

    def test_figures_fast(self, capsys):
        assert main(["figures", "--fast", "--only", "fig11"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["trace", "NOPE", "-o", str(tmp_path / "x.trc")])

    def test_run_with_observability_exports(self, tmp_path, capsys):
        import json

        trace_out = tmp_path / "events.json"
        metrics_out = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "run",
                    "IS",
                    "--threads",
                    "2",
                    "--ops",
                    "200",
                    "--trace-out",
                    str(trace_out),
                    "--metrics-out",
                    str(metrics_out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "trace events" in text and "metrics" in text
        doc = json.loads(trace_out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["dropped_events"] == 0
        metrics = json.loads(metrics_out.read_text())
        assert "mac.coalesced_packets" in metrics
        assert any(k.startswith("device.") for k in metrics)

    def test_run_jsonl_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "events.jsonl"
        assert (
            main(["run", "IS", "--threads", "2", "--ops", "100", "--trace-out", str(out)])
            == 0
        )
        first = json.loads(out.read_text().splitlines()[0])
        assert {"cycle", "channel", "name"} <= set(first)

    def test_run_without_outputs(self, capsys):
        assert main(["run", "MG", "--threads", "2", "--ops", "100"]) == 0
        assert "coalescing efficiency" in capsys.readouterr().out

    def test_run_attribution_exports_metrics(self, tmp_path, capsys):
        import json

        out = tmp_path / "metrics.json"
        args = ["run", "IS", "--threads", "2", "--ops", "200"]
        assert main(args + ["--metrics-out", str(out)]) == 0
        plain = json.loads(out.read_text())
        assert not any(k.startswith("attribution.") for k in plain)

        assert main(args + ["--attribution", "--metrics-out", str(out)]) == 0
        metrics = json.loads(out.read_text())
        assert metrics["attribution.requests_finalized"] > 0
        assert any(k.startswith("attribution.stages.") for k in metrics)
        assert any(k.startswith("attribution.stalls.") for k in metrics)


class TestAnalyze:
    SIZING = ["--threads", "2", "--ops", "200"]

    def test_analyze_benchmark_prints_exact_report(self, capsys):
        assert main(["analyze", "GUPS"] + self.SIZING) == 0
        text = capsys.readouterr().out
        assert "per-stage latency" in text
        assert "critical stage:" in text
        assert "== end-to-end" in text and ": yes" in text

    def test_analyze_json_report(self, capsys):
        import json

        assert main(["analyze", "SG", "--json"] + self.SIZING) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["exact"] is True
        assert report["requests"] > 0
        assert report["meta"]["benchmark"] == "SG"
        assert report["stage_cycle_sum"] == report["end_to_end"]["total"]

    def test_analyze_metrics_file_round_trip(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        run = ["run", "IS", "--attribution", "--metrics-out", str(metrics)]
        assert main(run + self.SIZING) == 0
        capsys.readouterr()
        assert main(["analyze", "--metrics", str(metrics)]) == 0
        assert ": yes" in capsys.readouterr().out

    def test_analyze_metrics_without_attribution_fails(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        assert main(["run", "IS", "--metrics-out", str(metrics)] + self.SIZING) == 0
        with pytest.raises(ValueError, match="attribution"):
            main(["analyze", "--metrics", str(metrics)])

    def test_analyze_diff_mac_vs_baseline(self, tmp_path, capsys):
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["analyze", "SG", "--report-out", str(a)] + self.SIZING) == 0
        assert (
            main(["analyze", "SG", "--no-mac", "--report-out", str(b)] + self.SIZING)
            == 0
        )
        capsys.readouterr()
        assert main(["analyze", "--diff", str(a), str(b)]) == 0
        text = capsys.readouterr().out
        assert "A/B bottleneck diff" in text
        assert "critical stage:" in text

        assert main(["analyze", "--diff", str(a), str(b), "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        # Uncoalesced baseline runs longer end to end (the §5.2 story).
        assert diff["end_to_end"]["total"]["delta"] > 0

    def test_analyze_without_inputs_exits_2(self, capsys):
        assert main(["analyze"]) == 2
        assert "analyze needs" in capsys.readouterr().err
