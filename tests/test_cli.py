"""CLI round-trip tests (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_args(self):
        args = build_parser().parse_args(
            ["trace", "SG", "-o", "x.trc", "--threads", "2", "--ops", "10"]
        )
        assert args.benchmark == "SG" and args.threads == 2


class TestCommands:
    def test_trace_then_coalesce(self, tmp_path, capsys):
        out = tmp_path / "t.trc"
        assert main(["trace", "MG", "-o", str(out), "--threads", "2", "--ops", "200"]) == 0
        assert out.exists()
        assert main(["coalesce", str(out)]) == 0
        text = capsys.readouterr().out
        assert "coalescing efficiency" in text

    def test_text_trace_format(self, tmp_path, capsys):
        out = tmp_path / "t.txt"
        main(["trace", "IS", "-o", str(out), "--threads", "2", "--ops", "100"])
        assert out.read_text().startswith(("LD", "ST"))

    def test_replay_all_devices(self, tmp_path, capsys):
        out = tmp_path / "t.trc"
        main(["trace", "SG", "-o", str(out), "--threads", "2", "--ops", "150"])
        for device in ("hmc", "hbm", "ddr"):
            assert main(["replay", str(out), "--device", device]) == 0
        assert main(["replay", str(out), "--no-mac"]) == 0
        text = capsys.readouterr().out
        assert "bank conflicts" in text
        assert "row-hit rate" in text

    def test_replay_policy_and_arq_flags(self, tmp_path, capsys):
        out = tmp_path / "t.trc"
        main(["trace", "SP", "-o", str(out), "--threads", "2", "--ops", "100"])
        assert main(["coalesce", str(out), "--arq", "8", "--policy", "exact"]) == 0

    def test_info(self, capsys):
        assert main(["info"]) == 0
        text = capsys.readouterr().out
        assert "2062" in text
        assert "GRAPPOLO" in text

    def test_figures_fast(self, capsys):
        assert main(["figures", "--fast", "--only", "fig11"]) == 0
        assert "fig11" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self, tmp_path):
        with pytest.raises(KeyError):
            main(["trace", "NOPE", "-o", str(tmp_path / "x.trc")])
