"""Unit tests for the shared simulation kernel (repro.sim)."""

import pytest

from repro.sim import (
    Clocked,
    ClockedModel,
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    LockstepEngine,
    SkipEngine,
    engine_names,
    get_engine,
)


class Pulse(ClockedModel):
    """Toy model: acts only at scheduled cycles, quiescent in between."""

    def __init__(self, events):
        self.events = sorted(events)
        self.fired = []
        self.ticks = 0
        self.skipped = 0

    def done(self):
        return not self.events

    def tick(self):
        self.ticks += 1
        if self.events and self.events[0] == self._cycle:
            self.fired.append(self._cycle)
            self.events.pop(0)
        self._cycle += 1

    def next_event_cycle(self, now):
        if not self.events:
            return None
        return max(self.events[0], now)

    def skip_to(self, target):
        self.skipped += target - self._cycle
        self._cycle = target


class Opaque(Pulse):
    """Same toy, but without opting into skipping (base-class default)."""

    def next_event_cycle(self, now):
        return ClockedModel.next_event_cycle(self, now)


class Stuck(ClockedModel):
    """Never finishes and schedules no wake: exercises the guard."""

    def done(self):
        return False

    def tick(self):
        self._cycle += 1

    def next_event_cycle(self, now):
        return None


class TestEngines:
    def test_lockstep_ticks_every_cycle(self):
        sim = Pulse([3, 7, 20])
        LockstepEngine().run(sim, max_cycles=100)
        assert sim.fired == [3, 7, 20]
        assert sim.cycle == 21
        assert sim.ticks == 21  # one tick per cycle, no skipping

    def test_skip_ticks_only_at_events(self):
        sim = Pulse([3, 7, 20])
        SkipEngine().run(sim, max_cycles=100)
        assert sim.fired == [3, 7, 20]
        assert sim.cycle == 21  # same final cycle as lockstep
        assert sim.ticks == 4  # cycle 0 probes, then one tick per event
        assert sim.skipped == 21 - 4

    def test_skip_without_opt_in_degrades_to_lockstep(self):
        # The base-class next_event_cycle returns `now`, so SkipEngine
        # single-steps models that never implemented skip_to.
        sim = Opaque([3, 7])
        SkipEngine().run(sim, max_cycles=100)
        assert sim.ticks == 8
        assert sim.skipped == 0

    @pytest.mark.parametrize("engine", [LockstepEngine(), SkipEngine()])
    def test_overrun_raises_at_identical_cycle(self, engine):
        sim = Stuck()
        with pytest.raises(RuntimeError, match="exceeded max_cycles"):
            engine.run(sim, max_cycles=10)
        assert sim.cycle == 11

    def test_skip_never_jumps_past_the_guard(self):
        # The only event is beyond the budget: the skip is capped at the
        # limit and the guard fires at the same counter as lockstep.
        lock, skip = Pulse([1000]), Pulse([1000])
        with pytest.raises(RuntimeError):
            LockstepEngine().run(lock, max_cycles=10)
        with pytest.raises(RuntimeError):
            SkipEngine().run(skip, max_cycles=10)
        assert skip.cycle == lock.cycle == 11

    def test_relative_budget_counts_from_current_cycle(self):
        sim = Pulse([3, 7])
        LockstepEngine().run(sim, max_cycles=100)
        sim.events = [sim.cycle + 5]
        # Absolute budget of 5 would be long blown; relative is fine.
        LockstepEngine().run(sim, max_cycles=50, relative=True)
        assert sim.fired[-1] == 8 + 5


class TestEngineResolution:
    def test_default_is_lockstep(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert isinstance(get_engine(None), LockstepEngine)

    def test_env_var_selects_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "skip")
        assert isinstance(get_engine(None), SkipEngine)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "skip")
        assert isinstance(get_engine("lockstep"), LockstepEngine)

    def test_instance_passthrough(self):
        eng = SkipEngine()
        assert get_engine(eng) is eng

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            get_engine("warp")

    def test_non_engine_rejected(self):
        with pytest.raises(TypeError):
            get_engine(42)

    def test_names_list_default_first(self):
        names = engine_names()
        assert names[0] == DEFAULT_ENGINE
        assert set(names) == {"lockstep", "skip"}


class TestBoilerplateDedup:
    """MAC / Node / NUMASystem share one run-loop implementation."""

    def test_models_extend_clocked_model(self):
        from repro.core.mac import MAC
        from repro.node.node import Node
        from repro.node.system import NUMASystem

        assert issubclass(MAC, ClockedModel)
        assert issubclass(Node, ClockedModel)
        assert issubclass(NUMASystem, ClockedModel)
        # Each keeps its historical guard message.
        assert "drain" in MAC._overrun_msg
        assert "node" in Node._overrun_msg
        assert "system" in NUMASystem._overrun_msg

    def test_mac_satisfies_clocked_protocol(self):
        from repro.core.mac import MAC

        assert isinstance(MAC(), Clocked)

    def test_mac_drain_guard_regression(self):
        """MAC.run's max-cycles guard is relative and still fires."""
        from repro.core.mac import MAC
        from repro.core.request import MemoryRequest, RequestType

        for engine in ("lockstep", "skip"):
            mac = MAC()
            for i in range(4):
                mac.submit(
                    MemoryRequest(addr=i << 8, rtype=RequestType.LOAD, tag=i)
                )
            with pytest.raises(
                RuntimeError, match="MAC failed to drain within max_cycles"
            ):
                mac.run(max_cycles=0, engine=engine)

    def test_mac_drain_guard_is_relative(self):
        """An already-advanced clock does not eat the drain budget."""
        from repro.core.mac import MAC
        from repro.core.request import MemoryRequest, RequestType

        mac = MAC()
        mac.submit(MemoryRequest(addr=0, rtype=RequestType.LOAD))
        mac.run()
        advanced = mac.cycle
        assert advanced > 0
        mac.submit(MemoryRequest(addr=256, rtype=RequestType.LOAD, tag=1))
        mac.run(max_cycles=advanced)  # absolute budget would already be spent
