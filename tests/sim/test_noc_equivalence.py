"""NoC-refactor equivalence corpus (PR 10's bit-identity contract).

Three guarantees, each hypothesis- or corpus-enforced:

1. ``noc_topology="ideal"`` is bit-identical to the legacy
   :class:`repro.hmc.crossbar.Crossbar` — pinned by substituting a
   crossbar-backed adapter into the device and comparing full runs
   (cycles + metrics) across both engines and under fault injection.
2. The sharded conservative-PDES backend agrees with the serial run
   for every topology/policy, and the NoC's counters survive the shard
   merge (they ride StatsMixin now — the legacy crossbar's raw ints
   were silently dropped).
3. SkipEngine agrees with LockstepEngine for the *new* code paths too:
   arbitrated xbar, ring/mesh hop routing, open/adaptive page policies.
   The NoC and bank keep only absolute cycle stamps, so skipping must
   never change results, whatever the topology.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.request import MemoryRequest, RequestType
from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.noc import NoCStats
from repro.node.node import Node
from repro.node.system import NUMASystem

ENGINES = ("lockstep", "skip")


def make_requests(spec, core, node=0):
    """Fresh request objects per run: runs mutate issue/complete stamps."""
    cores, n, rows, seed, fences = spec
    rng = random.Random(seed * 131 + core)
    out = []
    for i in range(n):
        if fences and i and i % 17 == 0:
            out.append(
                MemoryRequest(
                    addr=0, rtype=RequestType.FENCE, tid=core, tag=i, core=core
                )
            )
            continue
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        rtype = RequestType.STORE if rng.random() < 0.3 else RequestType.LOAD
        out.append(
            MemoryRequest(
                addr=addr, rtype=rtype, tid=core, tag=i, core=core, node=node
            )
        )
    return out


class LegacyCrossbarAdapter:
    """The pre-refactor Crossbar behind the NoC call signature.

    The executable reference for guarantee 1: if ``ideal`` ever drifts
    from these semantics, the substitution runs below diverge.
    """

    def __init__(self, timing):
        self.legacy = Crossbar(timing)
        self.stats = NoCStats()  # device.metrics() expects a StatsMixin

    def to_vault(self, cycle, vault=0, link=0, flits=1):
        return self.legacy.to_vault(cycle)

    def to_link(self, cycle, vault=0, link=0, flits=1):
        return self.legacy.to_link(cycle)

    def next_event_cycle(self, now):
        return self.legacy.next_event_cycle(now)

    def skip_to(self, target):
        self.legacy.skip_to(target)

    def busy_until(self):
        return 0


def run_node(spec, engine, hmc_config=None, legacy=False, max_cycles=None):
    cores = spec[0]
    node = Node(
        [iter(make_requests(spec, c)) for c in range(cores)],
        hmc_config=hmc_config,
    )
    if legacy:
        node.device.noc = LegacyCrossbarAdapter(node.device.config.timing)
    kwargs = {"engine": engine}
    if max_cycles is not None:
        kwargs["max_cycles"] = max_cycles
    node.run(**kwargs)
    return node


def comparable(node):
    """(cycle, metrics) with the NoC's own counters factored out.

    The legacy crossbar never counted FLITs, so ``noc.*`` keys are the
    one legitimate difference between the adapter and the ideal NoC;
    everything else must match exactly.
    """
    metrics = {
        k: v for k, v in node.metrics().items() if "noc." not in k
    }
    return node.cycle, metrics


workload_specs = st.tuples(
    st.integers(min_value=1, max_value=4),  # cores
    st.integers(min_value=1, max_value=48),  # requests per core
    st.integers(min_value=1, max_value=64),  # distinct rows
    st.integers(min_value=0, max_value=2**16),  # stream seed
    st.booleans(),  # sprinkle fences
)


class TestIdealMatchesLegacyCrossbar:
    @settings(max_examples=25, deadline=None)
    @given(spec=workload_specs, engine=st.sampled_from(ENGINES))
    def test_substitution_is_bit_identical(self, spec, engine):
        stock = run_node(spec, engine)
        legacy = run_node(spec, engine, legacy=True)
        assert comparable(stock) == comparable(legacy)

    def test_traffic_counters_agree_with_legacy(self):
        spec = (3, 40, 24, 5, False)
        stock = run_node(spec, "lockstep")
        legacy = run_node(spec, "lockstep", legacy=True)
        assert (
            stock.device.noc.stats.forwarded
            == legacy.device.noc.legacy.forwarded
        )
        assert (
            stock.device.noc.stats.returned
            == legacy.device.noc.legacy.returned
        )

    @pytest.mark.parametrize(
        "fault_kwargs",
        [
            dict(flit_ber=1e-3, seed=42, timeout_cycles=5000),
            dict(dead_links=(1,), seed=7, timeout_cycles=5000),
            dict(drop_rate=5e-3, seed=11, timeout_cycles=2000),
        ],
        ids=["link-retry", "dead-link", "drop-timeout"],
    )
    @pytest.mark.parametrize("engine", ENGINES)
    def test_fault_injection_substitution(self, fault_kwargs, engine):
        from repro.faults import FaultConfig

        spec = (3, 40, 24, 5, False)

        def build():
            return HMCConfig(faults=FaultConfig.simple(**fault_kwargs))

        stock = run_node(spec, engine, hmc_config=build(), max_cycles=2_000_000)
        legacy = run_node(
            spec, engine, hmc_config=build(), legacy=True, max_cycles=2_000_000
        )
        assert comparable(stock) == comparable(legacy)


class TestEnginesAgreeOnNewTopologies:
    """Guarantee 3: skip == lockstep for every new code path."""

    @settings(max_examples=20, deadline=None)
    @given(
        spec=workload_specs,
        topology=st.sampled_from(["xbar", "ring", "mesh"]),
        policy=st.sampled_from(["closed", "open", "adaptive"]),
        arbitration=st.sampled_from(["fifo", "round_robin"]),
    )
    def test_topology_policy_grid(self, spec, topology, policy, arbitration):
        def cfg():
            return HMCConfig(
                noc_topology=topology,
                noc_arbitration=arbitration,
                page_policy=policy,
            )

        lock = run_node(spec, "lockstep", hmc_config=cfg())
        skip = run_node(spec, "skip", hmc_config=cfg())
        assert skip.cycle == lock.cycle
        assert skip.metrics() == lock.metrics()

    def test_shallow_buffers_backpressure_is_engine_stable(self):
        spec = (4, 48, 8, 13, False)

        def cfg():
            return HMCConfig(noc_topology="xbar", noc_buffers=1)

        lock = run_node(spec, "lockstep", hmc_config=cfg())
        skip = run_node(spec, "skip", hmc_config=cfg())
        assert skip.metrics() == lock.metrics()


class TestShardedPDES:
    """Guarantee 2: serial == sharded, and NoC counters survive merges."""

    def build_system(self, hmc_config):
        spec = (2, 40, 32, 9, True)
        return NUMASystem(
            [
                [iter(make_requests(spec, c, node=n)) for c in range(2)]
                for n in range(2)
            ],
            interleave_bytes=256,
            hmc_config=hmc_config,
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(),
            dict(noc_topology="xbar"),
            dict(noc_topology="ring", page_policy="open"),
            dict(noc_topology="mesh", page_policy="adaptive"),
        ],
        ids=["ideal", "xbar", "ring-open", "mesh-adaptive"],
    )
    def test_serial_equals_sharded(self, kwargs):
        serial = self.build_system(HMCConfig(**kwargs))
        serial.run(shards=1)
        sharded = self.build_system(HMCConfig(**kwargs))
        sharded.run(shards=2)
        assert sharded.cycle == serial.cycle
        assert sharded.metrics() == serial.metrics()

    def test_noc_counters_survive_the_shard_merge(self):
        """Satellite 1's regression: the legacy crossbar's forwarded /
        returned ints were dropped by PDES merges; NoCStats must not be."""
        serial = self.build_system(HMCConfig())
        serial.run(shards=1)
        sharded = self.build_system(HMCConfig())
        sharded.run(shards=2)
        key = "noc.forwarded"
        candidates = [k for k in serial.metrics() if k.endswith(key)]
        assert candidates, "device metrics must expose the noc.* namespace"
        for k in candidates:
            assert serial.metrics()[k] > 0
            assert sharded.metrics()[k] == serial.metrics()[k]
