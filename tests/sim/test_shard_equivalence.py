"""Sharded PDES ≡ serial SkipEngine: the mesh-level bit-identity contract.

``NUMASystem.run(shards=k)`` partitions the nodes over forked workers
advancing in conservative safe windows (:mod:`repro.sim.pdes`).  The
contract is *bit-identical* results — same cycle count, same full
metrics dict, same stats snapshot — for any workload, mesh geometry,
MAC config, and fault scenario; sharding may only change wall time.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig, SystemConfig
from repro.core.request import MemoryRequest, RequestType
from repro.node.system import NUMASystem
from repro.sim.pdes import (
    CHAOS_ENV_VAR,
    SHARDS_ENV_VAR,
    ShardCrash,
    resolve_shards,
    shard_node_ids,
    workers_available,
)

pytestmark = pytest.mark.skipif(
    not workers_available(), reason="fork-based shard workers unavailable"
)


def make_requests(spec, node, core):
    nodes, cores, n, rows, seed, fences = spec
    rng = random.Random(seed * 8191 + node * 131 + core)
    out = []
    for i in range(n):
        if fences and i and i % 13 == 0:
            out.append(
                MemoryRequest(
                    addr=0, rtype=RequestType.FENCE, tid=core, tag=i, core=core
                )
            )
            continue
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        rtype = RequestType.STORE if rng.random() < 0.3 else RequestType.LOAD
        out.append(
            MemoryRequest(
                addr=addr, rtype=rtype, tid=core, tag=i, core=core, node=node
            )
        )
    return out


def build_system(
    spec,
    latency=23,
    interleave=256,
    arq_entries=32,
    fault_kwargs=None,
    channel_capacity=64,
):
    nodes, cores = spec[0], spec[1]
    hmc = None
    if fault_kwargs:
        from repro.faults import FaultConfig
        from repro.hmc.config import HMCConfig

        hmc = HMCConfig(faults=FaultConfig.simple(**fault_kwargs))
    return NUMASystem(
        [
            [iter(make_requests(spec, n, c)) for c in range(cores)]
            for n in range(nodes)
        ],
        system=SystemConfig(mac=MACConfig(arq_entries=arq_entries)),
        interconnect_latency=latency,
        interleave_bytes=interleave,
        hmc_config=hmc,
        channel_capacity=channel_capacity,
    )


def outcome(system):
    return (system.cycle, system.stats.snapshot(), system.metrics())


def run_pair(spec, shards, engine="skip", **kwargs):
    serial = build_system(spec, **kwargs)
    serial.run(engine=engine, shards=1)
    assert serial.shard_report is None
    sharded = build_system(spec, **kwargs)
    sharded.run(shards=shards)
    return serial, sharded


mesh_specs = st.tuples(
    st.integers(min_value=2, max_value=4),  # nodes
    st.integers(min_value=1, max_value=2),  # cores per node
    st.integers(min_value=4, max_value=32),  # requests per core
    st.integers(min_value=1, max_value=48),  # distinct rows
    st.integers(min_value=0, max_value=2**16),  # stream seed
    st.booleans(),  # sprinkle fences
)


class TestShardEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        spec=mesh_specs,
        shards=st.integers(min_value=2, max_value=3),
        latency=st.sampled_from([3, 23, 120]),
        arq_entries=st.sampled_from([2, 32]),
    )
    def test_random_meshes_bit_identical(self, spec, shards, latency, arq_entries):
        serial, sharded = run_pair(
            spec, shards, latency=latency, arq_entries=arq_entries
        )
        assert sharded.shard_report is not None
        assert sharded.shard_report.shards == min(shards, spec[0])
        assert outcome(sharded) == outcome(serial)

    def test_matches_lockstep_too(self):
        spec = (3, 2, 24, 16, 7, True)
        serial, sharded = run_pair(spec, 2, engine="lockstep")
        assert outcome(sharded) == outcome(serial)

    def test_tiny_channel_capacity_backpressure(self):
        """Credit stalls and HOL blocking shard identically."""
        spec = (3, 2, 30, 8, 3, False)
        serial, sharded = run_pair(spec, 3, channel_capacity=1, latency=5)
        assert serial.stats.fabric_credit_stalls > 0
        assert outcome(sharded) == outcome(serial)

    def test_more_shards_than_nodes_clamps(self):
        spec = (2, 1, 10, 8, 1, False)
        system = build_system(spec)
        system.run(shards=8)
        assert system.shard_report.shards == 2

    @pytest.mark.parametrize(
        "fault_kwargs",
        [
            dict(flit_ber=1e-3, seed=42, timeout_cycles=5000),
            dict(dead_links=(1,), seed=7, timeout_cycles=5000),
            dict(drop_rate=5e-3, seed=11, timeout_cycles=2000),
        ],
        ids=["flit-ber", "dead-link", "drop-timeout"],
    )
    def test_fault_outcomes_shard_identically(self, fault_kwargs):
        spec = (4, 2, 24, 24, 5, False)
        serial, sharded = run_pair(spec, 2, fault_kwargs=fault_kwargs)
        assert outcome(sharded) == outcome(serial)
        # The satellite-2 accounting: loss-recovery outcomes are
        # surfaced system-wide and identically under sharding.
        assert serial.stats.reissued_packets == sharded.stats.reissued_packets
        assert serial.stats.response_timeouts == sharded.stats.response_timeouts
        assert (
            serial.stats.duplicate_responses == sharded.stats.duplicate_responses
        )


class TestShardResolution:
    def test_env_var_shards_the_run(self, monkeypatch):
        monkeypatch.setenv(SHARDS_ENV_VAR, "2")
        spec = (3, 1, 16, 16, 9, False)
        system = build_system(spec)
        system.run()
        assert system.shard_report is not None
        assert system.shard_report.shards == 2
        reference = build_system(spec)
        reference.run(shards=1)
        assert outcome(system) == outcome(reference)

    def test_resolve_shards(self, monkeypatch):
        monkeypatch.delenv(SHARDS_ENV_VAR, raising=False)
        assert resolve_shards() == 1
        assert resolve_shards(4) == 4
        monkeypatch.setenv(SHARDS_ENV_VAR, "3")
        assert resolve_shards() == 3
        assert resolve_shards(2) == 2  # explicit beats env
        import os

        assert resolve_shards(0) == (os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_shards(-1)

    def test_round_robin_partition(self):
        assert shard_node_ids(5, 2) == [[0, 2, 4], [1, 3]]

    def test_attribution_falls_back_to_serial(self):
        from repro.obs.attribution import AttributionCollector

        spec = (2, 1, 10, 8, 2, False)
        nodes, cores = spec[0], spec[1]
        system = NUMASystem(
            [
                [iter(make_requests(spec, n, c)) for c in range(cores)]
                for n in range(nodes)
            ],
            interleave_bytes=256,
            attrib=AttributionCollector(),
        )
        assert "attribution enabled" in system.shard_blockers()
        system.run(shards=2)
        assert system.shard_report is None  # silent serial fallback
        assert all(c.done for n in system.nodes for c in n.cores)


class TestChaosRecovery:
    """SIGKILL a shard worker mid-run: supervisor-style restart, same bits."""

    def test_sigkilled_worker_restarts_and_matches_serial(self, monkeypatch):
        spec = (4, 2, 20, 16, 13, False)
        monkeypatch.setenv(CHAOS_ENV_VAR, "1:2")  # kill shard 1 at window 2
        sharded = build_system(spec)
        sharded.run(shards=2)
        monkeypatch.delenv(CHAOS_ENV_VAR)
        assert sharded.shard_report.restarts == 1
        serial = build_system(spec)
        serial.run(engine="skip", shards=1)
        assert outcome(sharded) == outcome(serial)

    def test_repeated_crashes_exhaust_restarts(self, monkeypatch):
        from repro.sim import pdes

        spec = (2, 1, 8, 8, 1, False)
        system = build_system(spec)
        # Chaos normally arms only on attempt 0; force it on every
        # attempt to prove the restart budget is bounded.
        orig = pdes._run_windows
        monkeypatch.setattr(
            pdes,
            "_run_windows",
            lambda system, shards, max_cycles, chaos, restarts: orig(
                system, shards, max_cycles, (0, 0), restarts
            ),
        )
        with pytest.raises(ShardCrash):
            pdes.run_sharded(system, 1_000_000, 2, max_restarts=1)
