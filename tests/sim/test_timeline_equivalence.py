"""Serial ≡ sharded timeline and trace collection (DESIGN.md section 13).

The PDES workers sample timeline epochs and trace events shard-locally
and the parent merges them at the window barriers; these tests pin the
contract that made ``event tracing enabled`` disappear from
``shard_blockers()``: the merged artifacts are equal to what the serial
run records — timelines bit-identically, traces up to the canonical
(cycle, channel, name, args) order the parent sorts by.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig, SystemConfig
from repro.node.system import NUMASystem
from repro.obs import (
    NULL_TIMELINE,
    NULL_TRACER,
    EventTracer,
    Timeline,
    canonical_key,
)
from repro.sim.pdes import workers_available

from tests.sim.test_shard_equivalence import make_requests, outcome

pytestmark = pytest.mark.skipif(
    not workers_available(), reason="fork-based shard workers unavailable"
)


def build(spec, timeline=NULL_TIMELINE, tracer=NULL_TRACER):
    nodes, cores = spec[0], spec[1]
    return NUMASystem(
        [
            [iter(make_requests(spec, n, c)) for c in range(cores)]
            for n in range(nodes)
        ],
        system=SystemConfig(mac=MACConfig(arq_entries=32)),
        interconnect_latency=23,
        interleave_bytes=256,
        timeline=timeline,
        tracer=tracer,
    )


def canonical_events(tracer):
    return sorted(tracer.events(), key=canonical_key)


mesh_specs = st.tuples(
    st.integers(min_value=2, max_value=4),  # nodes
    st.integers(min_value=1, max_value=2),  # cores per node
    st.integers(min_value=4, max_value=24),  # requests per core
    st.integers(min_value=1, max_value=32),  # distinct rows
    st.integers(min_value=0, max_value=2**16),  # stream seed
    st.booleans(),  # sprinkle fences
)


class TestTimelineShardEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(spec=mesh_specs, shards=st.integers(min_value=2, max_value=3))
    def test_random_meshes_merge_bit_identically(self, spec, shards):
        serial = build(spec, timeline=Timeline(epoch=64))
        serial.run(engine="skip", shards=1)
        sharded = build(spec, timeline=Timeline(epoch=64))
        sharded.run(shards=shards)
        assert sharded.shard_report is not None
        assert sharded.timeline.export() == serial.timeline.export()
        assert outcome(sharded) == outcome(serial)

    def test_four_shard_timeline_and_trace_merge(self):
        spec = (4, 2, 20, 16, 11, True)
        serial = build(spec, timeline=Timeline(epoch=128), tracer=EventTracer())
        serial.run(engine="skip", shards=1)
        sharded = build(spec, timeline=Timeline(epoch=128), tracer=EventTracer())
        sharded.run(shards=4)
        assert sharded.shard_report.shards == 4
        assert sharded.timeline.export() == serial.timeline.export()
        assert canonical_events(sharded.tracer) == canonical_events(serial.tracer)
        assert sharded.tracer.dropped == serial.tracer.dropped == 0
        # The merged ring remembers where events came from.
        counts = sharded.tracer.shard_counts
        assert counts is not None and sum(counts.values()) == len(sharded.tracer)
        assert outcome(sharded) == outcome(serial)

    def test_timeline_never_changes_the_run(self):
        spec = (3, 2, 18, 12, 5, False)
        plain = build(spec)
        plain.run(shards=2)
        timed = build(spec, timeline=Timeline(epoch=64))
        timed.run(shards=2)
        assert outcome(timed) == outcome(plain)

    def test_tracing_no_longer_blocks_sharding(self):
        spec = (2, 1, 10, 8, 2, False)
        system = build(spec, tracer=EventTracer())
        assert "event tracing enabled" not in system.shard_blockers()
        assert not system.shard_blockers()
        system.run(shards=2)
        assert system.shard_report is not None
        assert len(system.tracer) > 0
