"""SkipEngine ≡ LockstepEngine: the kernel's bit-identity contract.

A skip is taken only when the model proves the span is quiescent, and
``skip_to`` bulk-applies the accounting the skipped ticks would have
performed — so the two engines must agree on the final cycle count and
on the *entire* metrics dict, for any workload, MAC geometry, core
flavour, with attribution on, and under fault injection with link retry.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig, SystemConfig
from repro.core.mac import MAC
from repro.core.request import MemoryRequest, RequestType
from repro.node.node import Node
from repro.node.system import NUMASystem

ENGINES = ("lockstep", "skip")


def make_requests(spec, core, node=0):
    """Fresh request objects per run: runs mutate issue/complete stamps."""
    cores, n, rows, seed, fences = spec
    rng = random.Random(seed * 131 + core)
    out = []
    for i in range(n):
        if fences and i and i % 17 == 0:
            out.append(
                MemoryRequest(
                    addr=0, rtype=RequestType.FENCE, tid=core, tag=i, core=core
                )
            )
            continue
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        rtype = RequestType.STORE if rng.random() < 0.3 else RequestType.LOAD
        out.append(
            MemoryRequest(
                addr=addr, rtype=rtype, tid=core, tag=i, core=core, node=node
            )
        )
    return out


def run_node(spec, engine, lsq_capacity=None, arq_entries=32):
    cores = spec[0]
    node = Node(
        [iter(make_requests(spec, c)) for c in range(cores)],
        system=SystemConfig(mac=MACConfig(arq_entries=arq_entries)),
        lsq_capacity=lsq_capacity,
    )
    node.run(engine=engine)
    return node


workload_specs = st.tuples(
    st.integers(min_value=1, max_value=4),  # cores
    st.integers(min_value=1, max_value=48),  # requests per core
    st.integers(min_value=1, max_value=64),  # distinct rows
    st.integers(min_value=0, max_value=2**16),  # stream seed
    st.booleans(),  # sprinkle fences
)


class TestNodeEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        spec=workload_specs,
        arq_entries=st.sampled_from([1, 2, 8, 32]),
        lsq_capacity=st.sampled_from([None, 1, 4]),
    )
    def test_random_workloads_and_configs(self, spec, arq_entries, lsq_capacity):
        lock = run_node(spec, "lockstep", lsq_capacity, arq_entries)
        skip = run_node(spec, "skip", lsq_capacity, arq_entries)
        assert skip.cycle == lock.cycle
        assert skip.metrics() == lock.metrics()

    def test_latency_bound_shape_actually_skips(self):
        """Sanity: the shallow-LSQ regime is dominated by skippable spans."""
        spec = (2, 40, 8, 1, False)
        lock = run_node(spec, "lockstep", lsq_capacity=1)
        skip = run_node(spec, "skip", lsq_capacity=1)
        assert skip.metrics() == lock.metrics()
        # Stall-on-miss cores leave most cycles quiescent.
        assert lock.stats.cycles > 2 * lock.stats.requests_issued

    def test_multithreaded_cores(self):
        for_engine = {}
        for engine in ENGINES:
            spec = (4, 30, 16, 3, False)
            node = Node.with_multithreaded_cores(
                [iter(make_requests(spec, t)) for t in range(4)], cores=2
            )
            node.run(engine=engine)
            for_engine[engine] = (node.cycle, node.metrics())
        assert for_engine["skip"] == for_engine["lockstep"]


class TestMACEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        spec=workload_specs,
        arq_entries=st.sampled_from([1, 4, 32]),
    )
    def test_process_trace(self, spec, arq_entries):
        outcomes = {}
        for engine in ENGINES:
            mac = MAC(MACConfig(arq_entries=arq_entries))
            reqs = [r for c in range(spec[0]) for r in make_requests(spec, c)]
            packets = mac.process(reqs, engine=engine)
            outcomes[engine] = (
                mac.cycle,
                len(packets),
                mac.stats.snapshot(),
                mac.metrics(),
            )
        assert outcomes["skip"] == outcomes["lockstep"]


class TestAttributionEquivalence:
    def test_attributed_node_run(self):
        from repro.eval.runner import attributed_node_run

        outcomes = {}
        for engine in ENGINES:
            attrib, node = attributed_node_run(
                "GUPS", threads=2, ops_per_thread=150, engine=engine
            )
            outcomes[engine] = (node.cycle, node.metrics(), attrib.snapshot())
        assert outcomes["skip"] == outcomes["lockstep"]

    def test_attribution_exactness_survives_skipping(self):
        from repro.eval.runner import attributed_node_run
        from repro.obs.analyze import build_report

        attrib, _node = attributed_node_run(
            "GUPS", threads=2, ops_per_thread=150, engine="skip"
        )
        report = build_report(attrib)
        assert report["exact"] is True


class TestFaultInjectionEquivalence:
    """Skipping must respect timeout deadlines and link-retry timing."""

    @pytest.mark.parametrize(
        "fault_kwargs",
        [
            dict(flit_ber=1e-3, seed=42, timeout_cycles=5000),
            dict(dead_links=(1,), seed=7, timeout_cycles=5000),
            dict(drop_rate=5e-3, seed=11, timeout_cycles=2000),
        ],
        ids=["link-retry", "dead-link", "drop-timeout"],
    )
    def test_faulty_node(self, fault_kwargs):
        from repro.faults import FaultConfig
        from repro.hmc.config import HMCConfig

        outcomes = {}
        for engine in ENGINES:
            spec = (3, 40, 24, 5, False)
            node = Node(
                [iter(make_requests(spec, c)) for c in range(3)],
                hmc_config=HMCConfig(faults=FaultConfig.simple(**fault_kwargs)),
            )
            node.run(max_cycles=2_000_000, engine=engine)
            outcomes[engine] = (node.cycle, node.metrics())
        assert outcomes["skip"] == outcomes["lockstep"]


class TestNUMAEquivalence:
    def test_two_node_remote_traffic(self):
        outcomes = {}
        for engine in ENGINES:
            streams_per_node = [
                [iter(make_requests((2, 50, 32, 9, True), c, node=n))]
                for n, c in ((0, 0), (1, 1))
            ]
            system = NUMASystem(streams_per_node, interleave_bytes=256)
            system.run(engine=engine)
            outcomes[engine] = (system.cycle, system.metrics())
        assert outcomes["skip"] == outcomes["lockstep"]
