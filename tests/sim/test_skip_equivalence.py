"""SkipEngine ≡ LockstepEngine: the kernel's bit-identity contract.

A skip is taken only when the model proves the span is quiescent, and
``skip_to`` bulk-applies the accounting the skipped ticks would have
performed — so the two engines must agree on the final cycle count and
on the *entire* metrics dict, for any workload, MAC geometry, core
flavour, with attribution on, and under fault injection with link retry.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig, SystemConfig
from repro.core.mac import MAC
from repro.core.request import MemoryRequest, RequestType
from repro.node.node import Node
from repro.node.system import NUMASystem

ENGINES = ("lockstep", "skip")


def make_requests(spec, core, node=0):
    """Fresh request objects per run: runs mutate issue/complete stamps."""
    cores, n, rows, seed, fences = spec
    rng = random.Random(seed * 131 + core)
    out = []
    for i in range(n):
        if fences and i and i % 17 == 0:
            out.append(
                MemoryRequest(
                    addr=0, rtype=RequestType.FENCE, tid=core, tag=i, core=core
                )
            )
            continue
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        rtype = RequestType.STORE if rng.random() < 0.3 else RequestType.LOAD
        out.append(
            MemoryRequest(
                addr=addr, rtype=rtype, tid=core, tag=i, core=core, node=node
            )
        )
    return out


def run_node(spec, engine, lsq_capacity=None, arq_entries=32):
    cores = spec[0]
    node = Node(
        [iter(make_requests(spec, c)) for c in range(cores)],
        system=SystemConfig(mac=MACConfig(arq_entries=arq_entries)),
        lsq_capacity=lsq_capacity,
    )
    node.run(engine=engine)
    return node


workload_specs = st.tuples(
    st.integers(min_value=1, max_value=4),  # cores
    st.integers(min_value=1, max_value=48),  # requests per core
    st.integers(min_value=1, max_value=64),  # distinct rows
    st.integers(min_value=0, max_value=2**16),  # stream seed
    st.booleans(),  # sprinkle fences
)


class TestNodeEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        spec=workload_specs,
        arq_entries=st.sampled_from([1, 2, 8, 32]),
        lsq_capacity=st.sampled_from([None, 1, 4]),
    )
    def test_random_workloads_and_configs(self, spec, arq_entries, lsq_capacity):
        lock = run_node(spec, "lockstep", lsq_capacity, arq_entries)
        skip = run_node(spec, "skip", lsq_capacity, arq_entries)
        assert skip.cycle == lock.cycle
        assert skip.metrics() == lock.metrics()

    def test_latency_bound_shape_actually_skips(self):
        """Sanity: the shallow-LSQ regime is dominated by skippable spans."""
        spec = (2, 40, 8, 1, False)
        lock = run_node(spec, "lockstep", lsq_capacity=1)
        skip = run_node(spec, "skip", lsq_capacity=1)
        assert skip.metrics() == lock.metrics()
        # Stall-on-miss cores leave most cycles quiescent.
        assert lock.stats.cycles > 2 * lock.stats.requests_issued

    def test_multithreaded_cores(self):
        for_engine = {}
        for engine in ENGINES:
            spec = (4, 30, 16, 3, False)
            node = Node.with_multithreaded_cores(
                [iter(make_requests(spec, t)) for t in range(4)], cores=2
            )
            node.run(engine=engine)
            for_engine[engine] = (node.cycle, node.metrics())
        assert for_engine["skip"] == for_engine["lockstep"]


class TestMACEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        spec=workload_specs,
        arq_entries=st.sampled_from([1, 4, 32]),
    )
    def test_process_trace(self, spec, arq_entries):
        outcomes = {}
        for engine in ENGINES:
            mac = MAC(MACConfig(arq_entries=arq_entries))
            reqs = [r for c in range(spec[0]) for r in make_requests(spec, c)]
            packets = mac.process(reqs, engine=engine)
            outcomes[engine] = (
                mac.cycle,
                len(packets),
                mac.stats.snapshot(),
                mac.metrics(),
            )
        assert outcomes["skip"] == outcomes["lockstep"]


class TestAttributionEquivalence:
    def test_attributed_node_run(self):
        from repro.eval.runner import attributed_node_run

        outcomes = {}
        for engine in ENGINES:
            attrib, node = attributed_node_run(
                "GUPS", threads=2, ops_per_thread=150, engine=engine
            )
            outcomes[engine] = (node.cycle, node.metrics(), attrib.snapshot())
        assert outcomes["skip"] == outcomes["lockstep"]

    def test_attribution_exactness_survives_skipping(self):
        from repro.eval.runner import attributed_node_run
        from repro.obs.analyze import build_report

        attrib, _node = attributed_node_run(
            "GUPS", threads=2, ops_per_thread=150, engine="skip"
        )
        report = build_report(attrib)
        assert report["exact"] is True


class TestFaultInjectionEquivalence:
    """Skipping must respect timeout deadlines and link-retry timing."""

    @pytest.mark.parametrize(
        "fault_kwargs",
        [
            dict(flit_ber=1e-3, seed=42, timeout_cycles=5000),
            dict(dead_links=(1,), seed=7, timeout_cycles=5000),
            dict(drop_rate=5e-3, seed=11, timeout_cycles=2000),
        ],
        ids=["link-retry", "dead-link", "drop-timeout"],
    )
    def test_faulty_node(self, fault_kwargs):
        from repro.faults import FaultConfig
        from repro.hmc.config import HMCConfig

        outcomes = {}
        for engine in ENGINES:
            spec = (3, 40, 24, 5, False)
            node = Node(
                [iter(make_requests(spec, c)) for c in range(3)],
                hmc_config=HMCConfig(faults=FaultConfig.simple(**fault_kwargs)),
            )
            node.run(max_cycles=2_000_000, engine=engine)
            outcomes[engine] = (node.cycle, node.metrics())
        assert outcomes["skip"] == outcomes["lockstep"]


#: Small cube for the busy-phase corpus: 4 vaults x 2 banks makes
#: "every vault busy" cheap to reach and conflict-row scanning fast.
def small_cube():
    from repro.hmc.config import HMCConfig

    return HMCConfig(vaults=4, banks_per_vault=2)


def conflict_requests(cfg, core, ops, start=0, vault=0, bank=0):
    """Distinct row-aligned addresses all mapping to one (vault, bank).

    Every access forces a fresh closed-page row cycle on the same bank,
    so the bank serializes the whole node at tRC granularity — the
    deep-bank-conflict regime the per-core event wheel targets.
    """
    out = []
    row = 0
    matched = 0
    while len(out) < ops:
        addr = row << cfg.row_offset_bits
        if cfg.vault_of(addr) == vault and cfg.bank_of(addr) == bank:
            if matched >= start:  # cores pass disjoint [start, start+ops) windows
                out.append(
                    MemoryRequest(
                        addr=addr | ((len(out) % 16) << 4),
                        rtype=RequestType.LOAD if len(out) % 4 else RequestType.STORE,
                        tid=core,
                        tag=len(out),
                        core=core,
                    )
                )
            matched += 1
        row += 1
    return out


class TestBusyPhaseEquivalence:
    """Bandwidth-bound shapes: saturated vaults and deep bank conflicts.

    The per-core event wheel and the vectorized kernels only pay off in
    these regimes, so this is where their accounting is most likely to
    drift — every case pins cycles *and* the full metrics dict.
    """

    def run_conflict_node(self, engine, cores=4, ops=40, lsq_capacity=None):
        cfg = small_cube()
        node = Node(
            [
                iter(conflict_requests(cfg, c, ops, start=c * ops))
                for c in range(cores)
            ],
            hmc_config=cfg,
            lsq_capacity=lsq_capacity,
        )
        node.run(engine=engine)
        return node

    def test_deep_bank_conflict(self):
        lock = self.run_conflict_node("lockstep")
        skip = self.run_conflict_node("skip")
        assert skip.cycle == lock.cycle
        assert skip.metrics() == lock.metrics()
        # Sanity: the single bank really did serialize the run — far
        # more cycles than a conflict-free device would need.
        assert lock.stats.cycles > 20 * lock.stats.requests_issued

    def test_all_vaults_busy_every_cycle(self):
        """Dense random traffic across every vault of the small cube."""
        cfg = small_cube()
        spec = (4, 48, 32, 13, False)
        outcomes = {}
        for engine in ENGINES:
            node = Node(
                [iter(make_requests(spec, c)) for c in range(4)],
                hmc_config=cfg,
            )
            node.run(engine=engine)
            outcomes[engine] = (node.cycle, node.metrics())
        assert outcomes["skip"] == outcomes["lockstep"]

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        lsq_capacity=st.sampled_from([None, 1, 4]),
        arq_entries=st.sampled_from([2, 32]),
    )
    def test_conflict_plus_random_mix(self, seed, lsq_capacity, arq_entries):
        """Half the cores hammer one bank, half spray random rows."""
        cfg = small_cube()

        def build(engine):
            streams = [
                iter(conflict_requests(cfg, 0, 24)),
                iter(conflict_requests(cfg, 1, 24, start=24)),
                iter(make_requests((4, 32, 16, seed, True), 2)),
                iter(make_requests((4, 32, 16, seed, False), 3)),
            ]
            node = Node(
                streams,
                system=SystemConfig(mac=MACConfig(arq_entries=arq_entries)),
                hmc_config=cfg,
                lsq_capacity=lsq_capacity,
            )
            node.run(engine=engine)
            return node

        lock = build("lockstep")
        skip = build("skip")
        assert skip.cycle == lock.cycle
        assert skip.metrics() == lock.metrics()

    def test_vector_kernels_off_is_bit_identical(self, monkeypatch):
        """REPRO_SIM_VECTOR=0 (pure-Python fallbacks) changes nothing."""
        from repro.sim import vector

        results = {}
        for flag in ("1", "0"):
            monkeypatch.setenv(vector.VECTOR_ENV_VAR, flag)
            vector.clear_tables()
            lock = self.run_conflict_node("lockstep", lsq_capacity=4)
            skip = self.run_conflict_node("skip", lsq_capacity=4)
            assert skip.cycle == lock.cycle
            assert skip.metrics() == lock.metrics()
            results[flag] = lock.metrics()
        vector.clear_tables()
        assert results["0"] == results["1"]


class TestNUMAEquivalence:
    def test_two_node_remote_traffic(self):
        outcomes = {}
        for engine in ENGINES:
            streams_per_node = [
                [iter(make_requests((2, 50, 32, 9, True), c, node=n))]
                for n, c in ((0, 0), (1, 1))
            ]
            system = NUMASystem(streams_per_node, interleave_bytes=256)
            system.run(engine=engine)
            outcomes[engine] = (system.cycle, system.metrics())
        assert outcomes["skip"] == outcomes["lockstep"]
