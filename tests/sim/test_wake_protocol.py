"""Wake-protocol registry audit (the "silent lockstep" failure mode).

``ClockedModel.next_event_cycle`` defaults to ``now`` — safe (the skip
engine simply never skips) but silent: one component forgetting to
override it disables skipping system-wide with no symptom except lost
speed.  Every component participating in per-component scheduling
registers via ``@register_wake_protocol``; this suite pins that the
registry is populated, that no registered class still uses the tagged
default, and that the sanitizer warns when one does.
"""

import warnings

import pytest

from repro.sim import (
    ClockedModel,
    SkipEngine,
    WAKE_PROTOCOL_REGISTRY,
    register_wake_protocol,
    wake_protocol_offenders,
)
from repro.sim.watchdog import Watchdog


def test_every_registered_component_overrides_the_default():
    assert wake_protocol_offenders() == []


def test_registry_covers_the_component_tree():
    """The per-component wheel only works if *everything* participates."""
    names = {cls.__name__ for cls in WAKE_PROTOCOL_REGISTRY}
    expected = {
        # node layer
        "Node", "NUMASystem", "InOrderCore", "MultithreadedCore",
        "Interconnect",
        # MAC layer
        "MAC", "RawRequestAggregator", "AggregatedRequestQueue",
        "RequestBuilder", "RequestRouter", "ResponseRouter",
        # device layer
        "HMCDevice", "Vault", "Bank", "Crossbar", "Link",
        # intra-cube NoC topologies (PR 10)
        "IdealNoC", "XbarNoC", "RingNoC", "MeshNoC",
    }
    missing = expected - names
    assert not missing, f"components missing from the wake registry: {missing}"


def test_default_is_tagged_not_overridden():
    fn = ClockedModel.next_event_cycle
    assert getattr(fn, "_default_wake", False) is True
    # And the tag does not leak onto overriding subclasses.
    from repro.node.node import Node

    assert getattr(Node.next_event_cycle, "_default_wake", False) is False


class TestFabricWakeConformance:
    """The credit fabric's wake contract at skip boundaries (PR 8).

    ``skip_to(target)`` uses half-open semantics: a hop landing exactly
    on the skip target must be *delivered* by the post-skip tick, never
    swallowed — the PDES windows lean on this to hand a shard exactly
    the hops with ``deliver_cycle`` inside its window.
    """

    def test_interconnect_is_not_an_offender(self):
        from repro.node.interconnect import Interconnect

        assert wake_protocol_offenders(Interconnect) == []

    def test_numa_skip_lands_on_hop_and_delivers_it(self):
        """System-level: a skip straight to a hop's deliver cycle works."""
        from repro.core.request import MemoryRequest, RequestType
        from repro.node.system import NUMASystem

        def remote_only(node):
            # One request whose home is the *other* node: forces a hop
            # out and a completion hop back, with idle spans between.
            yield MemoryRequest(
                addr=(1 - node) << 9,
                rtype=RequestType.LOAD,
                tid=0,
                tag=0,
                core=0,
                node=node,
            )

        lock = NUMASystem(
            [[remote_only(0)], [remote_only(1)]],
            interconnect_latency=300,
            interleave_bytes=1 << 9,
        )
        st_lock = lock.run(engine="lockstep")
        skip = NUMASystem(
            [[remote_only(0)], [remote_only(1)]],
            interconnect_latency=300,
            interleave_bytes=1 << 9,
        )
        st_skip = skip.run(engine="skip")
        assert st_skip.responses == st_lock.responses == 2
        assert skip.cycle == lock.cycle
        assert st_skip.snapshot() == st_lock.snapshot()


class _Forgetful(ClockedModel):
    """A model that registers but forgets to override the default."""

    def __init__(self):
        self._cycle = 0
        self._left = 3

    def done(self):
        return self._left == 0

    def tick(self):
        self._left -= 1
        self._cycle += 1


def test_offender_detection_on_a_single_class():
    try:
        register_wake_protocol(_Forgetful)
        assert wake_protocol_offenders(_Forgetful) == [_Forgetful]
        assert _Forgetful in wake_protocol_offenders()
    finally:
        WAKE_PROTOCOL_REGISTRY.remove(_Forgetful)
    assert _Forgetful not in WAKE_PROTOCOL_REGISTRY


def test_sanitizer_warns_on_default_wake():
    engine = SkipEngine(watchdog=Watchdog(sanitize=True))
    with pytest.warns(RuntimeWarning, match="does not override"):
        engine.run(_Forgetful(), max_cycles=100)


def test_no_warning_without_sanitize_or_with_override():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # Sanitize off: the defaulted model runs silently (and correctly).
        SkipEngine(watchdog=Watchdog()).run(_Forgetful(), max_cycles=100)

        class _Diligent(_Forgetful):
            def next_event_cycle(self, now):
                return now if self._left else None

        SkipEngine(watchdog=Watchdog(sanitize=True)).run(
            _Diligent(), max_cycles=100
        )
