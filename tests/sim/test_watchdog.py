"""Tests for the simulation watchdog + invariant sanitizer (repro.sim.watchdog)."""

import pytest

from repro.core.request import MemoryRequest, RequestType
from repro.node.node import Node
from repro.sim import (
    CHECK_ENV_VAR,
    NULL_WATCHDOG,
    WATCHDOG_ENV_VAR,
    InvariantViolation,
    LockstepEngine,
    SimulationHang,
    SkipEngine,
    Watchdog,
    default_watchdog,
)


def stream(core, n=120, rows=97, node=0):
    """Deterministic per-core request stream (mixed row locality)."""
    for i in range(n):
        row = (i * 13) % rows
        yield MemoryRequest(
            addr=(row << 8) | ((i % 8) << 4),
            rtype=RequestType.LOAD,
            tid=core,
            tag=i,
            core=core,
            node=node,
        )


class _Wedged:
    """Fake model that ticks forever without progress or scheduled wake."""

    def __init__(self, wake_ahead=0):
        self.cycle = 0
        self.wake_ahead = wake_ahead
        self.snapshots = 0

    def progress_token(self):
        return ("stuck",)

    def next_event_cycle(self, now):
        return now + self.wake_ahead if self.wake_ahead else now

    def hang_snapshot(self):
        self.snapshots += 1
        return {"cycle": self.cycle, "queue": 7}


def _spin(wd, sim, cycles):
    for _ in range(cycles):
        sim.cycle += 1
        wd.observe(sim)


def test_wedged_model_raises_hang_with_snapshot():
    wd = Watchdog(stall_cycles=100, check_interval=1)
    sim = _Wedged()
    with pytest.raises(SimulationHang) as exc:
        _spin(wd, sim, 200)
    assert exc.value.stalled_cycles >= 100
    assert exc.value.snapshot == {"cycle": exc.value.cycle, "queue": 7}
    assert "no progress" in str(exc.value)


def test_scheduled_future_wake_resets_stall_timer():
    # A model waiting on a future deadline (fault-retry backoff, blocked
    # core completion) is not hung, no matter how long the quiet span.
    wd = Watchdog(stall_cycles=100, check_interval=1)
    sim = _Wedged(wake_ahead=1000)
    _spin(wd, sim, 500)  # must not raise


def test_model_without_progress_token_never_hang_checked():
    class Opaque:
        cycle = 0

    wd = Watchdog(stall_cycles=1, check_interval=1)
    sim = Opaque()
    for _ in range(50):
        sim.cycle += 1
        wd.observe(sim)


def test_zero_stall_budget_disables_hang_detection():
    wd = Watchdog(stall_cycles=0, check_interval=1)
    _spin(wd, _Wedged(), 500)  # must not raise


def test_sanitizer_rejects_backwards_cycle():
    wd = Watchdog(check_interval=1, sanitize=True)
    sim = _Wedged(wake_ahead=10)
    sim.cycle = 5
    wd.observe(sim)
    sim.cycle = 3
    with pytest.raises(InvariantViolation, match="backwards"):
        wd.observe(sim)


def test_clean_node_run_passes_full_sanitizer():
    node = Node([stream(c) for c in range(2)])
    engine = LockstepEngine(watchdog=Watchdog(check_interval=1, sanitize=True))
    node.run(engine=engine)
    assert node.stats.responses_delivered == 240


def test_sanitizer_catches_planted_conservation_leak():
    node = Node([stream(c) for c in range(2)])
    node.run()
    node.check_invariants()  # drained node is clean
    # Plant a leak: an issuer-map entry whose raw is in no container.
    node._issuer[("ghost", 0)] = 0
    with pytest.raises(InvariantViolation, match="conservation"):
        node.check_invariants()


def test_sanitizer_catches_link_token_leak():
    from repro.faults import FaultConfig
    from repro.hmc.config import HMCConfig

    # Retry states (and their credit pools) only exist under faults.
    faults = FaultConfig.simple(flit_ber=1e-5, seed=3)
    node = Node([stream(0)], hmc_config=HMCConfig(faults=faults))
    node.run()
    pool = node.device.links[0].request.retry.tokens
    pool.available = pool.capacity + 1  # a returned token was duplicated
    with pytest.raises(InvariantViolation, match="leak"):
        node.check_invariants()


@pytest.mark.parametrize("engine_cls", [LockstepEngine, SkipEngine])
def test_watchdog_on_is_bit_identical_to_off(engine_cls):
    plain = Node([stream(c) for c in range(2)])
    plain.run(engine=engine_cls())
    watched = Node([stream(c) for c in range(2)])
    watched.run(
        engine=engine_cls(
            watchdog=Watchdog(stall_cycles=10_000, check_interval=1, sanitize=True)
        )
    )
    assert watched.stats.snapshot() == plain.stats.snapshot()
    assert watched.cycle == plain.cycle


def test_default_watchdog_env_gating(monkeypatch):
    monkeypatch.delenv(CHECK_ENV_VAR, raising=False)
    monkeypatch.delenv(WATCHDOG_ENV_VAR, raising=False)
    assert default_watchdog() is NULL_WATCHDOG
    monkeypatch.setenv(CHECK_ENV_VAR, "1")
    wd = default_watchdog()
    assert wd.enabled and wd.sanitize
    monkeypatch.delenv(CHECK_ENV_VAR)
    monkeypatch.setenv(WATCHDOG_ENV_VAR, "5000")
    wd = default_watchdog()
    assert wd.enabled and not wd.sanitize and wd.stall_cycles == 5000


def test_env_armed_sanitizer_covers_default_engine(monkeypatch):
    # REPRO_SIM_CHECK=1 flows through get_engine() into a plain run().
    monkeypatch.setenv(CHECK_ENV_VAR, "1")
    node = Node([stream(0)])
    node.run()
    assert node.stats.responses_delivered == 120


def test_no_false_positive_under_fault_retry_backoff():
    """Retry/timeout stalls schedule future wakes; a tight watchdog that
    could never cover the 4000-cycle response timeout must stay quiet."""
    from repro.faults import FaultConfig
    from repro.hmc.config import HMCConfig

    faults = FaultConfig.simple(
        flit_ber=2e-4,
        drop_rate=0.02,
        delay_rate=0.02,
        delay_cycles=600,
        seed=7,
        timeout_cycles=4000,
    )
    node = Node(
        [stream(c, n=150) for c in range(4)], hmc_config=HMCConfig(faults=faults)
    )
    engine = LockstepEngine(
        watchdog=Watchdog(stall_cycles=6000, check_interval=64, sanitize=True)
    )
    node.run(engine=engine)
    assert node.stats.responses_delivered == 600


def test_mac_process_respects_engine_watchdog():
    from repro.core.mac import MAC
    from repro.trace.record import to_requests
    from repro.eval.runner import cached_trace

    reqs = list(to_requests(cached_trace("SG", 2, 100)))
    plain = MAC()
    base = plain.process(list(reqs))
    watched = MAC()
    engine = LockstepEngine(watchdog=Watchdog(check_interval=1, sanitize=True))
    out = watched.process(list(reqs), engine=engine)
    assert len(out) == len(base)
    assert [p.addr for p in out] == [p.addr for p in base]
