"""Exact skip-boundary pins (the bulk-accounting audit of DESIGN.md §10).

``skip(start, end)`` / ``skip_to(end)`` spans are *half-open*: cycle
``end`` itself is never accounted by the skip — it belongs to the tick
that executes the wake.  The two off-by-one failure modes this suite
pins:

* a skip that accounts ``end`` double-counts the wake cycle (visible as
  a duplicated every-64th-cycle attribution sample when ``end`` is a
  multiple of 64);
* a skip that leaves the model *past* ``end`` swallows the wake — a
  completion landing exactly on the skip target would never deliver.

Every case compares against pure lockstep, which is the definition of
correct.
"""

import pytest

from repro.core.aggregator import RawRequestAggregator
from repro.core.config import MACConfig
from repro.core.request import MemoryRequest, RequestType
from repro.node.node import Node
from repro.obs.attribution import AttributionCollector


def make_aggregator():
    at = AttributionCollector()  # depth_stride=1: every offered sample kept
    return RawRequestAggregator(MACConfig(), attrib=at), at


class TestAggregatorBoundary:
    @pytest.mark.parametrize(
        ("start", "end"),
        [
            (0, 1),
            (0, 63),
            (0, 64),  # end exactly on a sample boundary
            (0, 65),
            (0, 128),
            (1, 64),
            (63, 64),  # one-cycle skip onto the boundary
            (64, 128),  # both ends on boundaries
            (65, 127),  # neither end on a boundary
            (100, 164),
        ],
    )
    def test_skip_replays_the_exact_lockstep_sample_sequence(self, start, end):
        lock, lock_at = make_aggregator()
        for _ in range(end):
            lock.tick(None)

        skip, skip_at = make_aggregator()
        for _ in range(start):
            skip.tick(None)
        skip.skip(start, end)

        assert skip.cycle == lock.cycle == end
        assert skip.stats.total_cycles == lock.stats.total_cycles
        assert skip_at.depth.series("arq") == lock_at.depth.series("arq")

        # The landing tick (cycle == end) samples iff end % 64 == 0 —
        # on both paths, exactly once.  A skip that had accounted cycle
        # ``end`` itself would duplicate this sample.
        lock.tick(None)
        skip.tick(None)
        assert skip_at.depth.series("arq") == lock_at.depth.series("arq")

    def test_skip_to_is_a_no_op_at_or_behind_the_current_cycle(self):
        agg, at = make_aggregator()
        for _ in range(10):
            agg.tick(None)
        before = at.depth.series("arq")
        agg.skip_to(10)
        agg.skip_to(3)
        assert agg.cycle == 10
        assert at.depth.series("arq") == before


def _streams(cores, ops, rows=4):
    return [
        iter(
            [
                MemoryRequest(
                    addr=((c * ops + i) % rows) << 8,
                    rtype=RequestType.LOAD,
                    tid=c,
                    tag=i,
                    core=c,
                )
                for i in range(ops)
            ]
        )
        for c in range(cores)
    ]


def _count_ticks(node):
    """Record the cycle number of every executed tick."""
    ticked = []
    orig = node.tick

    def tick():
        ticked.append(node.cycle)
        return orig()

    node.tick = tick
    return ticked


class TestNodeBoundary:
    def test_skip_to_stops_short_of_the_wake(self):
        """After ``skip_to(w)`` the wake cycle is still runnable."""
        node = Node(_streams(1, 4), lsq_capacity=1)
        # Tick until the node parks on a future wake (the in-flight
        # completion of the first load).
        wake = None
        for _ in range(10_000):
            node.tick()
            wake = node.next_event_cycle(node.cycle)
            if wake is not None and wake > node.cycle:
                break
        assert wake is not None and wake > node.cycle

        node.skip_to(wake)
        assert node.cycle == wake  # landed on, not past
        # The wake cycle itself was not consumed by the skip: the node
        # still reports work at ``wake`` for the following tick to run.
        assert node.next_event_cycle(node.cycle) == wake

    def test_wake_on_skip_target_matches_lockstep(self):
        """End-to-end: every skip lands on a cycle lockstep also ran."""
        lock = Node(_streams(2, 12), lsq_capacity=1)
        lock_ticks = _count_ticks(lock)
        lock.run(engine="lockstep")

        skip = Node(_streams(2, 12), lsq_capacity=1)
        skip_ticks = _count_ticks(skip)
        skip.run(engine="skip")

        assert skip.cycle == lock.cycle
        assert skip.metrics() == lock.metrics()
        # The stall-on-miss shape must actually skip...
        assert len(skip_ticks) < len(lock_ticks)
        # ...and every executed skip-side tick is one lockstep also ran
        # (same cycle numbers, no halves or overshoots).
        assert set(skip_ticks) <= set(lock_ticks)
