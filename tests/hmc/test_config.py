"""Unit tests for HMC geometry/protocol configuration."""

import pytest

from repro.hmc.config import HMCConfig, PAPER_HMC


class TestGeometry:
    def test_paper_cube(self):
        # Section 2.2.1: an 8 GB HMC has 512 banks; Table 1: 4 links.
        assert PAPER_HMC.capacity_bytes == 8 << 30
        assert PAPER_HMC.total_banks == 512
        assert PAPER_HMC.links == 4
        assert PAPER_HMC.vaults == 32
        assert PAPER_HMC.banks_per_vault == 16
        assert PAPER_HMC.row_bytes == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            HMCConfig(vaults=33)
        with pytest.raises(ValueError):
            HMCConfig(banks_per_vault=3)
        with pytest.raises(ValueError):
            HMCConfig(row_bytes=300)
        with pytest.raises(ValueError):
            HMCConfig(max_request_bytes=512)
        with pytest.raises(ValueError):
            HMCConfig(links=0)


class TestAddressMapping:
    def test_vault_and_bank_in_range(self):
        for addr in range(0, 1 << 20, 4093):
            assert 0 <= PAPER_HMC.vault_of(addr) < 32
            assert 0 <= PAPER_HMC.bank_of(addr) < 16

    def test_same_row_same_bank(self):
        """Every byte of one 256 B row maps to the same vault+bank."""
        base = 0xABCD00
        v, b = PAPER_HMC.vault_of(base), PAPER_HMC.bank_of(base)
        for off in range(0, 256, 16):
            assert PAPER_HMC.vault_of(base + off) == v
            assert PAPER_HMC.bank_of(base + off) == b

    def test_consecutive_rows_spread_vaults(self):
        """Row-interleaving: consecutive rows land on distinct vaults."""
        vaults = {PAPER_HMC.vault_of(r << 8) for r in range(32)}
        assert len(vaults) == 32

    def test_power_of_two_strides_do_not_alias(self):
        """The XOR fold spreads 8 KB-strided streams (tiled matrices)."""
        vaults = {PAPER_HMC.vault_of(i * 8192) for i in range(64)}
        assert len(vaults) > 8

    def test_global_row(self):
        assert PAPER_HMC.global_row_of(0x1234_00) == 0x1234


class TestFlitArithmetic:
    def test_data_flits(self):
        assert PAPER_HMC.data_flits(16) == 1
        assert PAPER_HMC.data_flits(17) == 2
        assert PAPER_HMC.data_flits(256) == 16

    def test_read_flits(self):
        # Read: 1-FLIT request, (data + 1) response.
        assert PAPER_HMC.request_flits(64, is_write=False) == 1
        assert PAPER_HMC.response_flits(64, is_write=False) == 5

    def test_write_flits(self):
        # Write: (data + 1) request, 1-FLIT response.
        assert PAPER_HMC.request_flits(64, is_write=True) == 5
        assert PAPER_HMC.response_flits(64, is_write=True) == 1

    def test_control_overhead_is_32B_per_access(self):
        """Section 2.2.2: 32 B control per access, read or write."""
        for size in (16, 64, 256):
            for w in (True, False):
                total = PAPER_HMC.request_flits(size, w) + PAPER_HMC.response_flits(
                    size, w
                )
                assert total * 16 - size == 32

    def test_columns(self):
        assert PAPER_HMC.columns(16) == 1
        assert PAPER_HMC.columns(64) == 2
        assert PAPER_HMC.columns(256) == 8

    def test_data_flits_invalid(self):
        with pytest.raises(ValueError):
            PAPER_HMC.data_flits(0)
