"""Unit tests for vault controller, link serialization and crossbar."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.link import Link, LinkChannel
from repro.hmc.timing import HMCTiming
from repro.hmc.vault import Vault

T = HMCTiming()


class TestVault:
    def test_frontend_serializes(self):
        v = Vault(0, HMCConfig())
        d1 = v.access(0, bank_idx=0, dram_row=1, columns=1, is_write=False)
        d2 = v.access(0, bank_idx=1, dram_row=2, columns=1, is_write=False)
        # Different banks, same arrival: front-end spaces them.
        assert d2 - d1 == T.vault_processing

    def test_bank_index_validated(self):
        v = Vault(0, HMCConfig())
        with pytest.raises(ValueError):
            v.access(0, bank_idx=16, dram_row=0, columns=1, is_write=False)

    def test_stats(self):
        v = Vault(0, HMCConfig())
        v.access(0, 0, 0, 1, is_write=False)
        v.access(0, 1, 0, 1, is_write=True)
        assert v.stats.reads == 1 and v.stats.writes == 1
        assert v.stats.queue_wait_cycles > 0  # the write waited

    def test_aggregates(self):
        v = Vault(0, HMCConfig())
        for i in range(4):
            v.access(0, 0, i, 1, is_write=False)
        assert v.bank_accesses == 4
        assert v.bank_conflicts == 3
        assert v.activations == 4


class TestLinkChannel:
    def test_serialization_time(self):
        ch = LinkChannel(T)
        done = ch.transmit(0, nflits=4)
        assert done == 4 * T.cycles_per_flit + T.link_latency

    def test_back_to_back_packets_queue(self):
        ch = LinkChannel(T)
        ch.transmit(0, 10)
        done2 = ch.transmit(0, 1)
        assert done2 == 11 * T.cycles_per_flit + T.link_latency

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            LinkChannel(T).transmit(0, 0)

    def test_counters(self):
        ch = LinkChannel(T)
        ch.transmit(0, 3)
        ch.transmit(0, 2)
        assert ch.flits == 5
        assert ch.packets == 2
        assert ch.busy_cycles == 5 * T.cycles_per_flit


class TestLink:
    def test_directions_independent(self):
        link = Link(0, T)
        link.request.transmit(0, 100)
        done = link.response.transmit(0, 1)
        assert done == T.cycles_per_flit + T.link_latency

    def test_wire_flits(self):
        link = Link(0, T)
        link.request.transmit(0, 2)
        link.response.transmit(0, 5)
        assert link.wire_flits == 7


class TestCrossbar:
    def test_fixed_latency(self):
        xbar = Crossbar(T)
        assert xbar.to_vault(100) == 100 + T.crossbar_latency
        assert xbar.to_link(200) == 200 + T.crossbar_latency
        assert xbar.forwarded == 1 and xbar.returned == 1
