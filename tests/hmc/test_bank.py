"""Unit + property tests for the closed-page bank model."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.bank import Bank
from repro.hmc.timing import HMCTiming

T = HMCTiming()


class TestClosedPage:
    def test_every_access_activates(self):
        """Closed-page policy: no row-buffer hits ever (section 2.2.1)."""
        bank = Bank(T)
        t = 0
        for i in range(5):
            t = bank.access(t + 1000, dram_row=7, columns=1)  # same row!
        assert bank.activations == 5  # even repeated-row accesses activate

    def test_unloaded_access_timing(self):
        bank = Bank(T)
        done = bank.access(0, dram_row=1, columns=1)
        assert done == T.t_activate + T.t_column + T.cycles_per_column

    def test_occupancy_includes_precharge(self):
        bank = Bank(T)
        bank.access(0, dram_row=1, columns=1)
        assert bank.ready_cycle == T.bank_occupancy(1)

    def test_larger_bursts_occupy_longer(self):
        b1, b8 = Bank(T), Bank(T)
        b1.access(0, 1, columns=1)
        b8.access(0, 1, columns=8)
        assert b8.ready_cycle - b1.ready_cycle == 7 * T.cycles_per_column


class TestConflicts:
    def test_conflict_counted_and_serialized(self):
        bank = Bank(T)
        first_done = bank.access(0, 1, 1)
        second_done = bank.access(1, 2, 1)
        assert bank.conflicts == 1
        # Second access starts only after the first's precharge.
        assert second_done == T.bank_occupancy(1) + T.t_activate + T.t_column + T.cycles_per_column
        assert second_done > first_done

    def test_no_conflict_when_spaced(self):
        bank = Bank(T)
        bank.access(0, 1, 1)
        bank.access(T.bank_occupancy(1), 2, 1)
        assert bank.conflicts == 0

    def test_paper_fig2_16_requests_15_conflicts(self):
        """16 simultaneous same-row 16 B requests -> 15 bank conflicts."""
        bank = Bank(T)
        for _ in range(16):
            bank.access(0, dram_row=3, columns=1)
        assert bank.conflicts == 15
        assert bank.accesses == 16

    def test_conflict_rate(self):
        bank = Bank(T)
        for _ in range(4):
            bank.access(0, 1, 1)
        assert bank.conflict_rate == 0.75

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Bank(T).access(-1, 0, 1)


class TestProperties:
    @given(
        arrivals=st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
        columns=st.integers(1, 8),
    )
    def test_no_overlapping_service(self, arrivals, columns):
        """Service windows never overlap: each access's data-ready time
        is strictly after the previous access's data-ready time."""
        bank = Bank(T)
        last_done = -1
        for a in sorted(arrivals):
            done = bank.access(a, dram_row=a % 7, columns=columns)
            assert done > last_done
            last_done = done

    @given(arrivals=st.lists(st.integers(0, 5_000), min_size=2, max_size=20))
    def test_busy_cycles_accounting(self, arrivals):
        bank = Bank(T)
        for a in sorted(arrivals):
            bank.access(a, 0, 1)
        assert bank.busy_cycles == bank.accesses * T.bank_occupancy(1)


class TestClosedPageRowState:
    """Closed page never latches a row — the `last_row` bookkeeping the
    original model carried (but never asserted) is finally exercised."""

    def test_last_row_tracks_most_recent_access(self):
        bank = Bank(T)
        assert bank.last_row == -1
        bank.access(0, dram_row=7, columns=1)
        assert bank.last_row == 7
        bank.access(10_000, dram_row=3, columns=1)
        assert bank.last_row == 3

    def test_row_never_stays_open(self):
        bank = Bank(T)
        for i in range(5):
            bank.access(i * 10_000, dram_row=7, columns=1)
            assert bank.row_open is False
        assert bank.row_hits == 0
        assert bank.last_kind == "closed"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Bank(T, policy="half-open")


class TestOpenPage:
    def test_cold_access_is_plain_activation(self):
        bank = Bank(T, policy="open")
        done = bank.access(0, dram_row=1, columns=1)
        assert done == T.t_activate + T.t_column + T.cycles_per_column
        assert bank.row_open is True
        assert (bank.row_hits, bank.row_misses) == (0, 1)
        assert bank.last_kind == "cold"

    def test_row_hit_skips_activation(self):
        bank = Bank(T, policy="open")
        bank.access(0, dram_row=1, columns=1)
        t1 = 10_000
        done = bank.access(t1, dram_row=1, columns=1)
        assert done == t1 + T.open_hit_cycles(1)
        assert done == t1 + T.t_column + T.cycles_per_column
        assert bank.row_hits == 1
        assert bank.last_kind == "hit"
        assert bank.activations == 1  # the hit did not activate

    def test_row_miss_pays_precharge_up_front(self):
        bank = Bank(T, policy="open")
        bank.access(0, dram_row=1, columns=1)
        t1 = 10_000
        done = bank.access(t1, dram_row=2, columns=1)
        assert done == t1 + T.open_miss_cycles(1)
        assert (
            done
            == t1 + T.t_precharge + T.t_activate + T.t_column + T.cycles_per_column
        )
        assert bank.row_misses == 2  # the cold access also counts as a miss
        assert bank.last_kind == "miss"

    def test_hit_beats_closed_beats_miss(self):
        """The latency ordering that motivates the whole policy space."""
        closed = Bank(T).access(0, 1, 1)
        hit_bank = Bank(T, policy="open")
        hit_bank.access(0, 1, 1)
        hit = hit_bank.access(10_000, 1, 1) - 10_000
        miss_bank = Bank(T, policy="open")
        miss_bank.access(0, 1, 1)
        miss = miss_bank.access(10_000, 2, 1) - 10_000
        assert hit < closed < miss

    def test_open_occupancy_excludes_precharge_on_hit_path(self):
        bank = Bank(T, policy="open")
        bank.access(0, dram_row=1, columns=1)
        # The row stays open: the bank frees as soon as the burst ends.
        assert bank.ready_cycle == T.t_activate + T.t_column + T.cycles_per_column
        assert bank.ready_cycle < T.bank_occupancy(1)

    def test_conflict_semantics_unchanged(self):
        bank = Bank(T, policy="open")
        bank.access(0, 1, 1)
        bank.access(1, 1, 1)  # arrives while busy
        assert bank.conflicts == 1

    def test_row_hit_rate(self):
        bank = Bank(T, policy="open")
        for _ in range(4):
            bank.access(bank.ready_cycle, dram_row=5, columns=1)
        assert bank.row_hit_rate == 0.75  # cold, hit, hit, hit


class TestAdaptivePolicy:
    def test_hit_streak_converges_to_open(self):
        """On a same-row stream adaptive warms up (the first cold touch
        spends its starting confidence), then matches open's hit path."""
        adaptive, open_ = Bank(T, policy="adaptive"), Bank(T, policy="open")
        deltas = []
        for t in range(0, 100_000, 10_000):
            deltas.append(adaptive.access(t, 1, 1) - open_.access(t, 1, 1))
        assert deltas[-1] == 0  # steady state: identical hit latency
        assert all(d == 0 for d in deltas[3:])
        assert adaptive.last_kind == open_.last_kind == "hit"

    def test_miss_streak_closes_the_row(self):
        bank = Bank(T, policy="adaptive")
        row = 0
        for t in range(0, 200_000, 10_000):
            row += 1  # never the same row: zero hit locality
            bank.access(t, row, 1)
        # Confidence exhausted: the bank precharges immediately and the
        # row is left closed, exactly like closed-page operation.
        assert bank.row_open is False
        occupancy_tail = bank.ready_cycle - bank.last_start
        assert occupancy_tail == T.bank_occupancy(1)

    def test_recovers_when_locality_returns(self):
        bank = Bank(T, policy="adaptive")
        row = 0
        for t in range(0, 100_000, 10_000):
            row += 1
            bank.access(t, row, 1)
        assert bank.row_open is False
        hits_before = bank.row_hits
        # Re-touching the same row rebuilds confidence cold-hit by
        # cold-hit until rows stay open and real hits flow again.
        for t in range(200_000, 300_000, 10_000):
            bank.access(t, 42, 1)
        assert bank.row_hits > hits_before

    def test_deterministic(self):
        def run():
            bank = Bank(T, policy="adaptive")
            return [
                bank.access(t, (t // 7) % 5, 1) for t in range(0, 90_000, 3_000)
            ]

        assert run() == run()


class TestOpenPageMap:
    def test_row_interleaving(self):
        from repro.hmc.bank import open_page_map

        # 256 B rows over 4 banks: consecutive rows rotate banks, the
        # in-bank row index increments once per full rotation.
        assert open_page_map(0, 256, 4) == (0, 0)
        assert open_page_map(256, 256, 4) == (1, 0)
        assert open_page_map(3 * 256, 256, 4) == (3, 0)
        assert open_page_map(4 * 256, 256, 4) == (0, 1)
        # Same row, different byte offset: identical mapping.
        assert open_page_map(256 + 255, 256, 4) == open_page_map(256, 256, 4)

    def test_rejects_non_power_of_two(self):
        from repro.hmc.bank import open_page_map

        with pytest.raises(ValueError):
            open_page_map(0, 300, 4)
        with pytest.raises(ValueError):
            open_page_map(0, 256, 3)
