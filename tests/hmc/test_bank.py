"""Unit + property tests for the closed-page bank model."""

import pytest
from hypothesis import given, strategies as st

from repro.hmc.bank import Bank
from repro.hmc.timing import HMCTiming

T = HMCTiming()


class TestClosedPage:
    def test_every_access_activates(self):
        """Closed-page policy: no row-buffer hits ever (section 2.2.1)."""
        bank = Bank(T)
        t = 0
        for i in range(5):
            t = bank.access(t + 1000, dram_row=7, columns=1)  # same row!
        assert bank.activations == 5  # even repeated-row accesses activate

    def test_unloaded_access_timing(self):
        bank = Bank(T)
        done = bank.access(0, dram_row=1, columns=1)
        assert done == T.t_activate + T.t_column + T.cycles_per_column

    def test_occupancy_includes_precharge(self):
        bank = Bank(T)
        bank.access(0, dram_row=1, columns=1)
        assert bank.ready_cycle == T.bank_occupancy(1)

    def test_larger_bursts_occupy_longer(self):
        b1, b8 = Bank(T), Bank(T)
        b1.access(0, 1, columns=1)
        b8.access(0, 1, columns=8)
        assert b8.ready_cycle - b1.ready_cycle == 7 * T.cycles_per_column


class TestConflicts:
    def test_conflict_counted_and_serialized(self):
        bank = Bank(T)
        first_done = bank.access(0, 1, 1)
        second_done = bank.access(1, 2, 1)
        assert bank.conflicts == 1
        # Second access starts only after the first's precharge.
        assert second_done == T.bank_occupancy(1) + T.t_activate + T.t_column + T.cycles_per_column
        assert second_done > first_done

    def test_no_conflict_when_spaced(self):
        bank = Bank(T)
        bank.access(0, 1, 1)
        bank.access(T.bank_occupancy(1), 2, 1)
        assert bank.conflicts == 0

    def test_paper_fig2_16_requests_15_conflicts(self):
        """16 simultaneous same-row 16 B requests -> 15 bank conflicts."""
        bank = Bank(T)
        for _ in range(16):
            bank.access(0, dram_row=3, columns=1)
        assert bank.conflicts == 15
        assert bank.accesses == 16

    def test_conflict_rate(self):
        bank = Bank(T)
        for _ in range(4):
            bank.access(0, 1, 1)
        assert bank.conflict_rate == 0.75

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Bank(T).access(-1, 0, 1)


class TestProperties:
    @given(
        arrivals=st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
        columns=st.integers(1, 8),
    )
    def test_no_overlapping_service(self, arrivals, columns):
        """Service windows never overlap: each access's data-ready time
        is strictly after the previous access's data-ready time."""
        bank = Bank(T)
        last_done = -1
        for a in sorted(arrivals):
            done = bank.access(a, dram_row=a % 7, columns=columns)
            assert done > last_done
            last_done = done

    @given(arrivals=st.lists(st.integers(0, 5_000), min_size=2, max_size=20))
    def test_busy_cycles_accounting(self, arrivals):
        bank = Bank(T)
        for a in sorted(arrivals):
            bank.access(a, 0, 1)
        assert bank.busy_cycles == bank.accesses * T.bank_occupancy(1)
