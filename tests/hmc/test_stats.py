"""HMCStats accounting tests."""

import pytest

from repro.hmc.stats import HMCStats


class TestRecording:
    def test_basic_accumulation(self):
        st = HMCStats()
        st.record(arrival=10, completion=110, size=64, conflicts_delta=1)
        st.record(arrival=20, completion=90, size=16, conflicts_delta=0)
        assert st.requests == 2
        assert st.payload_bytes == 80
        assert st.bank_conflicts == 1
        assert st.mean_latency == pytest.approx((100 + 70) / 2)
        assert st.makespan == 110 - 10

    def test_empty(self):
        st = HMCStats()
        assert st.mean_latency == 0.0
        assert st.makespan == 0
        assert st.p50_latency == 0.0


class TestPercentiles:
    def _filled(self):
        st = HMCStats()
        for lat in (10, 20, 30, 40, 100):
            st.record(0, lat, 16, 0)
        return st

    def test_median(self):
        assert self._filled().p50_latency == 30

    def test_extremes(self):
        st = self._filled()
        assert st.latency_percentile(0.0) == 10
        assert st.latency_percentile(1.0) == 100

    def test_interpolation(self):
        st = self._filled()
        assert st.latency_percentile(0.25) == 20

    def test_p99_near_max(self):
        st = self._filled()
        assert 40 < st.p99_latency <= 100

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            self._filled().latency_percentile(1.5)


class TestReportHelpers:
    def test_bar_chart(self):
        from repro.eval.report import bar_chart

        text = bar_chart({"a": 1.0, "bb": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "##########" in lines[0]
        assert "#####" in lines[1]

    def test_bar_chart_negative(self):
        from repro.eval.report import bar_chart

        text = bar_chart({"x": -0.5, "y": 1.0}, width=10)
        assert "-----" in text

    def test_bar_chart_empty(self):
        from repro.eval.report import bar_chart

        assert bar_chart({}, title="t") == "t"
