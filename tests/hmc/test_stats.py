"""HMCStats accounting tests."""

import pytest

from repro.hmc.stats import HMCStats


class TestRecording:
    def test_basic_accumulation(self):
        st = HMCStats()
        st.record(arrival=10, completion=110, size=64, conflicts_delta=1)
        st.record(arrival=20, completion=90, size=16, conflicts_delta=0)
        assert st.requests == 2
        assert st.payload_bytes == 80
        assert st.bank_conflicts == 1
        assert st.mean_latency == pytest.approx((100 + 70) / 2)
        assert st.makespan == 110 - 10

    def test_empty(self):
        st = HMCStats()
        assert st.mean_latency == 0.0
        assert st.makespan == 0
        assert st.p50_latency == 0.0


class TestPercentiles:
    def _filled(self):
        st = HMCStats()
        for lat in (10, 20, 30, 40, 100):
            st.record(0, lat, 16, 0)
        return st

    def test_median(self):
        assert self._filled().p50_latency == 30

    def test_extremes(self):
        st = self._filled()
        assert st.latency_percentile(0.0) == 10
        assert st.latency_percentile(1.0) == 100

    def test_interpolation(self):
        st = self._filled()
        assert st.latency_percentile(0.25) == 20

    def test_p99_near_max(self):
        st = self._filled()
        assert 40 < st.p99_latency <= 100

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            self._filled().latency_percentile(1.5)


class TestBoundedLatencies:
    def test_latencies_compat_view(self):
        st = HMCStats()
        for lat in (10, 20, 30):
            st.record(0, lat, 16, 0)
        assert st.latencies == [10, 20, 30]

    def test_memory_stays_bounded(self):
        # Regression: ``latencies`` used to be an unbounded list — one
        # int per request forever.  The histogram keeps only a fixed
        # exact-sample prefix while every aggregate stays exact.
        st = HMCStats()
        n = st.latency_hist.sample_limit + 500
        for i in range(n):
            st.record(i, i + 100, 16, 0)
        assert st.requests == n
        assert st.latency_hist.count == n
        assert len(st.latencies) == st.latency_hist.sample_limit
        assert st.mean_latency == pytest.approx(100.0)
        assert st.makespan == (n - 1 + 100) - 0
        # Percentiles remain available (bucket-approximated past the
        # sample limit) and in range.
        assert 0 < st.p50_latency <= n + 100

    def test_reset_preserves_derived_contract(self):
        # Regression: mean_latency/makespan must read 0 again after a
        # reset instead of dividing stale sums by a cleared count.
        st = HMCStats()
        st.record(5, 50, 64, 1)
        st.reset()
        assert st.requests == 0
        assert st.mean_latency == 0.0
        assert st.makespan == 0
        assert st.first_arrival == -1
        assert st.latencies == []

    def test_merge_covers_every_field(self):
        # Regression: hand-rolled aggregation dropped size_histogram /
        # fault_events and mis-combined the first_arrival sentinel.
        a, b = HMCStats(), HMCStats()
        a.record(arrival=10, completion=40, size=64, conflicts_delta=1)
        b.record(arrival=4, completion=90, size=16, conflicts_delta=0)
        b.record(arrival=6, completion=20, size=16, conflicts_delta=2)
        a.merge(b)
        assert a.requests == 3
        assert a.size_histogram == {64: 1, 16: 2}
        assert a.first_arrival == 4  # min of the two, not the sum
        assert a.last_completion == 90
        assert a.bank_conflicts == 3
        assert sorted(a.latencies) == [14, 30, 86]
        assert a.makespan == 86
        assert a.mean_latency == pytest.approx((30 + 86 + 14) / 3)

    def test_merge_with_unset_arrival_sentinel(self):
        a, b = HMCStats(), HMCStats()
        b.record(arrival=7, completion=9, size=16, conflicts_delta=0)
        a.merge(b)  # a never saw a request: its -1 must not win the min
        assert a.first_arrival == 7


class TestReportHelpers:
    def test_bar_chart(self):
        from repro.eval.report import bar_chart

        text = bar_chart({"a": 1.0, "bb": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert "##########" in lines[0]
        assert "#####" in lines[1]

    def test_bar_chart_negative(self):
        from repro.eval.report import bar_chart

        text = bar_chart({"x": -0.5, "y": 1.0}, width=10)
        assert "-----" in text

    def test_bar_chart_empty(self):
        from repro.eval.report import bar_chart

        assert bar_chart({}, title="t") == "t"
