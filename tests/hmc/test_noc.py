"""Unit tests for the configurable intra-cube NoC (repro.hmc.noc)."""

import pytest

from repro.hmc.config import HMCConfig
from repro.hmc.crossbar import Crossbar
from repro.hmc.noc import (
    NOC_ARBITRATIONS,
    NOC_TOPOLOGIES,
    IdealNoC,
    MeshNoC,
    NoCStats,
    RingNoC,
    XbarNoC,
    build_noc,
)
from repro.hmc.timing import HMCTiming

T = HMCTiming()


class TestIdealNoC:
    def test_matches_legacy_crossbar_cycle_for_cycle(self):
        """`ideal` is the executable-reference equivalence: same delay
        as the legacy Crossbar for any cycle, both directions."""
        legacy, noc = Crossbar(T), IdealNoC(T)
        for cycle in (0, 1, 17, 93, 10_000):
            assert noc.to_vault(cycle, vault=3, link=1, flits=9) == legacy.to_vault(cycle)
            assert noc.to_link(cycle, vault=3, link=1, flits=9) == legacy.to_link(cycle)

    def test_no_contention_state(self):
        noc = IdealNoC(T)
        # Simultaneous packets to the same vault: no serialization.
        a = noc.to_vault(100, vault=0, link=0, flits=8)
        b = noc.to_vault(100, vault=0, link=1, flits=8)
        assert a == b == 100 + T.crossbar_latency
        assert noc.busy_until() == 0
        assert noc.stats.contention_cycles == 0

    def test_traffic_counters(self):
        noc = IdealNoC(T)
        noc.to_vault(0, flits=3)
        noc.to_vault(5, flits=4)
        noc.to_link(9, flits=17)
        st = noc.stats
        assert (st.forwarded, st.returned) == (2, 1)
        assert (st.request_flits, st.response_flits) == (7, 17)


class TestXbarContention:
    def test_isolated_packet_matches_ideal(self):
        """An uncontended xbar packet pays exactly the ideal latency."""
        noc = XbarNoC(T, vaults=4, links=2)
        assert noc.to_vault(50, vault=1, link=0, flits=4) == 50 + T.crossbar_latency

    def test_same_vault_packets_serialize(self):
        """Two packets converging on one vault port: the second waits
        for the first's FLIT serialization time."""
        noc = XbarNoC(T, vaults=4, links=2)
        flits = 6
        first = noc.to_vault(100, vault=2, link=0, flits=flits)
        second = noc.to_vault(100, vault=2, link=1, flits=flits)
        service = max(1, flits * T.cycles_per_flit)
        assert first == 100 + T.crossbar_latency
        assert second == first + service
        assert noc.stats.contention_cycles == service

    def test_different_vaults_do_not_contend(self):
        noc = XbarNoC(T, vaults=4, links=2)
        a = noc.to_vault(100, vault=0, link=0, flits=8)
        b = noc.to_vault(100, vault=1, link=1, flits=8)
        assert a == b
        assert noc.stats.contention_cycles == 0

    def test_request_and_response_ports_are_independent(self):
        noc = XbarNoC(T, vaults=4, links=2)
        noc.to_vault(100, vault=0, link=0, flits=8)
        # Response through the same cycle window: separate port plane.
        assert noc.to_link(100, vault=0, link=0, flits=8) == 100 + T.crossbar_latency

    def test_contention_stall_attributed(self):
        from repro.obs.attribution import AttributionCollector, StallCause

        at = AttributionCollector()
        noc = XbarNoC(T, vaults=2, links=2, attrib=at)
        noc.to_vault(10, vault=0, link=0, flits=8)
        noc.to_vault(10, vault=0, link=1, flits=8)
        snap = at.snapshot()
        stalls = snap["stalls"]["noc"]
        assert stalls[StallCause.NOC_CONTENTION.value] > 0


class TestXbarBackpressure:
    def test_full_buffer_delays_admission(self):
        """With a 1-entry buffer, a third packet cannot even be admitted
        until the first grant's release frees the slot — the stall is
        charged to buffer backpressure, not port contention."""
        flits = 8
        service = max(1, flits * T.cycles_per_flit)
        deep = XbarNoC(T, vaults=2, links=4, buffers=4)
        shallow = XbarNoC(T, vaults=2, links=4, buffers=1)
        for noc in (deep, shallow):
            for link in range(3):
                noc.to_vault(0, vault=0, link=link, flits=flits)
        # Arrival times (and hence total delay) are identical — the
        # bounded buffer only moves waiting upstream into the link.
        assert deep.busy_until() == shallow.busy_until() == 3 * service
        assert deep.stats.buffer_stall_cycles == 0
        assert deep.stats.contention_cycles == 3 * service
        assert shallow.stats.buffer_stall_cycles > 0
        assert (
            shallow.stats.buffer_stall_cycles + shallow.stats.contention_cycles
            == 3 * service
        )

    def test_buffers_must_be_positive(self):
        with pytest.raises(ValueError):
            XbarNoC(T, vaults=2, links=2, buffers=0)

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ValueError):
            XbarNoC(T, vaults=2, links=2, arbitration="lottery")


class TestArbitration:
    def _burst(self, noc, n=6, flits=4):
        return [noc.to_vault(0, vault=0, link=i % noc.links, flits=flits) for i in range(n)]

    def test_round_robin_differs_from_fifo(self):
        fifo = XbarNoC(T, vaults=2, links=4, arbitration="fifo")
        rr = XbarNoC(T, vaults=2, links=4, arbitration="round_robin")
        assert self._burst(fifo) != self._burst(rr)

    def test_round_robin_grants_on_source_aligned_cycles(self):
        rr = XbarNoC(T, vaults=2, links=4, arbitration="round_robin")
        for i, arrival in enumerate(self._burst(rr)):
            grant = arrival - T.crossbar_latency
            assert grant % rr.links == i % rr.links

    def test_oldest_first_equals_fifo_under_in_order_submission(self):
        """The device submits in arrival order, so the waiting packets a
        port sees are already age-sorted and oldest_first == fifo (the
        module docstring's provable property, pinned here)."""
        fifo = XbarNoC(T, vaults=2, links=4, arbitration="fifo")
        oldest = XbarNoC(T, vaults=2, links=4, arbitration="oldest_first")
        arrivals = [0, 0, 3, 3, 10, 11, 11, 40]
        out_fifo = [
            fifo.to_vault(a, vault=0, link=i % 4, flits=5)
            for i, a in enumerate(arrivals)
        ]
        out_oldest = [
            oldest.to_vault(a, vault=0, link=i % 4, flits=5)
            for i, a in enumerate(arrivals)
        ]
        assert out_fifo == out_oldest


class TestHopRouting:
    def test_ring_distance_is_minimal_and_symmetric(self):
        noc = RingNoC(T, vaults=8, links=4)
        # Link 0 injects at stop 0: vault 1 is 1 hop, vault 7 is 1 hop
        # the other way, vault 4 is the 4-hop antipode.
        assert noc.hops(1, 0) == 1
        assert noc.hops(7, 0) == 1
        assert noc.hops(4, 0) == 4
        assert all(noc.hops(v, 0) <= noc.vaults // 2 for v in range(8))

    def test_ring_hop_latency_charged(self):
        noc = RingNoC(T, vaults=8, links=4)
        at_stop = noc.to_vault(0, vault=2, link=1, flits=1)  # stop 2: 0 hops
        noc2 = RingNoC(T, vaults=8, links=4)
        away = noc2.to_vault(0, vault=4, link=1, flits=1)  # 2 hops
        assert at_stop == T.crossbar_latency
        assert away == T.crossbar_latency + 2 * T.noc_hop_cycles
        assert noc2.stats.hop_cycles == 2 * T.noc_hop_cycles

    def test_mesh_manhattan_distance(self):
        noc = MeshNoC(T, vaults=16, links=4)  # 4x4 grid
        # Link 0 injects at vault 0 = (0,0); vault 15 = (3,3).
        assert noc.hops(0, 0) == 0
        assert noc.hops(15, 0) == 6
        assert noc.hops(5, 0) == 2  # (1,1)

    def test_mesh_never_exceeds_ring_worst_case(self):
        ring = RingNoC(T, vaults=16, links=4)
        mesh = MeshNoC(T, vaults=16, links=4)
        assert max(mesh.hops(v, 0) for v in range(16)) <= max(
            ring.hops(v, 0) for v in range(16)
        )


class TestStatsContract:
    def test_snapshot_merge_roundtrip(self):
        """NoCStats rides StatsMixin: PDES shard merges carry it."""
        a, b = NoCStats(), NoCStats()
        a.forwarded, a.contention_cycles = 3, 7
        b.forwarded, b.buffer_stall_cycles = 2, 5
        merged = NoCStats()
        merged.merge(a)
        merged.merge(b)
        assert merged.forwarded == 5
        assert merged.contention_cycles == 7
        assert merged.buffer_stall_cycles == 5
        merged.reset()
        assert merged.snapshot() == NoCStats().snapshot()

    def test_device_metrics_expose_noc_namespace(self):
        from repro.hmc.device import HMCDevice

        dev = HMCDevice(HMCConfig(noc_topology="xbar"))
        metrics = dev.metrics()
        assert "noc.forwarded" in metrics
        assert "noc.contention_cycles" in metrics


class TestBuildNoc:
    def test_topology_dispatch(self):
        for topology, cls in (
            ("ideal", IdealNoC),
            ("xbar", XbarNoC),
            ("ring", RingNoC),
            ("mesh", MeshNoC),
        ):
            assert isinstance(build_noc(HMCConfig(noc_topology=topology)), cls)

    def test_config_validates_knobs(self):
        with pytest.raises(ValueError):
            HMCConfig(noc_topology="torus")
        with pytest.raises(ValueError):
            HMCConfig(noc_arbitration="lottery")
        with pytest.raises(ValueError):
            HMCConfig(noc_buffers=0)
        with pytest.raises(ValueError):
            HMCConfig(page_policy="half-open")

    def test_constants_are_exhaustive(self):
        assert set(NOC_TOPOLOGIES) == {"ideal", "xbar", "ring", "mesh"}
        assert set(NOC_ARBITRATIONS) == {"fifo", "round_robin", "oldest_first"}
