"""Timing-model arithmetic tests."""

import pytest

from repro.hmc.timing import HMCTiming


class TestTiming:
    def test_defaults_positive(self):
        t = HMCTiming()
        assert t.t_activate > 0 and t.t_column > 0 and t.t_precharge > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HMCTiming(t_activate=-1)

    def test_burst_scaling(self):
        t = HMCTiming()
        assert t.burst_cycles(8) == 8 * t.cycles_per_column

    def test_bank_occupancy_composition(self):
        t = HMCTiming()
        assert t.bank_occupancy(2) == (
            t.t_activate + t.t_column + 2 * t.cycles_per_column + t.t_precharge
        )

    def test_unloaded_latency_composition(self):
        t = HMCTiming()
        lat = t.unloaded_read_latency(request_flits=1, response_flits=2, columns=1)
        expected = (
            1 * t.cycles_per_flit
            + t.link_latency
            + t.crossbar_latency
            + t.vault_processing
            + t.t_activate
            + t.t_column
            + t.cycles_per_column
            + t.crossbar_latency
            + t.link_latency
            + 2 * t.cycles_per_flit
        )
        assert lat == expected

    def test_custom_timing_frozen(self):
        t = HMCTiming()
        with pytest.raises(AttributeError):
            t.link_latency = 5
