"""Timing-model arithmetic and validation tests."""

import pytest

from repro.hmc.timing import TIMING_FIELDS, HMCTiming


class TestTiming:
    def test_defaults_positive(self):
        t = HMCTiming()
        assert t.t_activate > 0 and t.t_column > 0 and t.t_precharge > 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HMCTiming(t_activate=-1)

    @pytest.mark.parametrize("name", TIMING_FIELDS)
    def test_every_field_rejects_negative(self, name):
        with pytest.raises(ValueError, match=name):
            HMCTiming(**{name: -1})

    @pytest.mark.parametrize("name", TIMING_FIELDS)
    def test_every_field_rejects_non_integer(self, name):
        with pytest.raises(ValueError, match="integer cycle count"):
            HMCTiming(**{name: 1.5})

    @pytest.mark.parametrize("name", TIMING_FIELDS)
    def test_zero_is_legal(self, name):
        # Derived models (HBM channel reuse) null out stages they lack.
        assert getattr(HMCTiming(**{name: 0}), name) == 0

    def test_timing_fields_cover_every_dataclass_field(self):
        assert set(TIMING_FIELDS) == set(HMCTiming.__dataclass_fields__)

    def test_burst_scaling(self):
        t = HMCTiming()
        assert t.burst_cycles(8) == 8 * t.cycles_per_column

    def test_bank_occupancy_composition(self):
        t = HMCTiming()
        assert t.bank_occupancy(2) == (
            t.t_activate + t.t_column + 2 * t.cycles_per_column + t.t_precharge
        )

    def test_unloaded_latency_composition(self):
        t = HMCTiming()
        lat = t.unloaded_read_latency(request_flits=1, response_flits=2, columns=1)
        expected = (
            1 * t.cycles_per_flit
            + t.link_latency
            + t.crossbar_latency
            + t.vault_processing
            + t.t_activate
            + t.t_column
            + t.cycles_per_column
            + t.crossbar_latency
            + t.link_latency
            + 2 * t.cycles_per_flit
        )
        assert lat == expected

    def test_custom_timing_frozen(self):
        t = HMCTiming()
        with pytest.raises(AttributeError):
            t.link_latency = 5
