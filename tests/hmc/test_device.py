"""Device-level tests: Table 1 calibration, Fig. 2 scenario, routing."""

import pytest

from repro.core.packet import CoalescedRequest
from repro.core.request import RequestType
from repro.hmc.device import HMCDevice


def read(addr, size=16):
    return CoalescedRequest(addr=addr, size=size, rtype=RequestType.LOAD)


def write(addr, size=16):
    return CoalescedRequest(addr=addr, size=size, rtype=RequestType.STORE)


class TestCalibration:
    def test_table1_93ns_unloaded_read(self):
        """Table 1: average HMC access latency 93 ns at 3.3 GHz."""
        dev = HMCDevice()
        lat_cycles = dev.unloaded_read_latency(16)
        lat_ns = lat_cycles / 3.3
        assert abs(lat_ns - 93) < 5  # within ~5 ns of the paper's figure

    def test_measured_matches_analytic(self):
        dev = HMCDevice()
        resp = dev.submit(read(0x1000), 0)
        assert resp.complete_cycle == dev.unloaded_read_latency(16)

    def test_larger_reads_cost_more(self):
        d16, d256 = HMCDevice(), HMCDevice()
        r16 = d16.submit(read(0x1000, 16), 0)
        r256 = d256.submit(read(0x1000, 256), 0)
        assert r256.complete_cycle > r16.complete_cycle


class TestFig2Scenario:
    """The motivating example: 16 x 16 B same-row loads vs one 256 B."""

    def test_raw_dispatch_15_conflicts(self):
        dev = HMCDevice()
        for i in range(16):
            dev.submit(read(0x2000 + 16 * i), 0)
        assert dev.bank_conflicts == 15
        assert dev.activations == 16

    def test_coalesced_no_conflicts(self):
        dev = HMCDevice()
        dev.submit(read(0x2000, 256), 0)
        assert dev.bank_conflicts == 0
        assert dev.activations == 1

    def test_coalesced_makespan_wins_by_factors(self):
        raw, mac = HMCDevice(), HMCDevice()
        for i in range(16):
            raw.submit(read(0x2000 + 16 * i), 0)
        mac.submit(read(0x2000, 256), 0)
        assert raw.stats.makespan > 4 * mac.stats.makespan

    def test_wire_bytes_match_section_222(self):
        """16 raw accesses: 768 B total; one 256 B access: 288 B."""
        raw, mac = HMCDevice(), HMCDevice()
        for i in range(16):
            raw.submit(read(0x2000 + 16 * i), 0)
        mac.submit(read(0x2000, 256), 0)
        assert raw.stats.wire_bytes == 768
        assert mac.stats.wire_bytes == 288


class TestProtocolValidation:
    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            HMCDevice().submit(read(0x0, 512), 0)

    def test_row_crossing_rejected(self):
        with pytest.raises(ValueError):
            HMCDevice().submit(read(0x80, 256), 0)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            HMCDevice().submit(read(0x8, 16), 0)

    def test_out_of_order_arrival_rejected(self):
        dev = HMCDevice()
        dev.submit(read(0x100), 100)
        with pytest.raises(ValueError):
            dev.submit(read(0x200), 50)


class TestRouting:
    def test_links_share_load(self):
        dev = HMCDevice()
        for i in range(64):
            dev.submit(read((i * 37 % 512) << 8), i)
        used = [link for link in dev.links if link.request.packets > 0]
        assert len(used) == len(dev.links)

    def test_reads_and_writes_counted(self):
        dev = HMCDevice()
        dev.submit(read(0x100), 0)
        dev.submit(write(0x200), 1)
        assert dev.stats.reads == 1
        assert dev.stats.writes == 1

    def test_atomic_counted(self):
        dev = HMCDevice()
        dev.submit(
            CoalescedRequest(addr=0x100, size=16, rtype=RequestType.ATOMIC), 0
        )
        assert dev.stats.atomics == 1

    def test_write_moves_payload_on_request_side(self):
        """A 256 B write's response is one FLIT; the read's is 17 — the
        payload swaps sides but the total wire traffic is identical."""
        r, w = HMCDevice(), HMCDevice()
        r.submit(read(0x1000, 256), 0)
        w.submit(write(0x1000, 256), 0)
        assert sum(link.response.flits for link in r.links) == 17
        assert sum(link.response.flits for link in w.links) == 1
        assert sum(link.request.flits for link in w.links) == 17
        assert r.stats.wire_bytes == w.stats.wire_bytes == 288


class TestStreamSubmission:
    def test_submit_stream_orders_by_issue_cycle(self):
        dev = HMCDevice()
        pkts = [read(0x100), read(0x200)]
        pkts[0].issue_cycle = 50
        pkts[1].issue_cycle = 10
        resps = dev.submit_stream(pkts)
        assert len(resps) == 2

    def test_mean_latency_and_makespan(self):
        dev = HMCDevice()
        dev.submit(read(0x100), 10)
        dev.submit(read(0x10000), 20)
        st = dev.stats
        assert st.requests == 2
        assert st.mean_latency > 0
        assert st.makespan == st.last_completion - 10
