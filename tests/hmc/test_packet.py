"""Wire-level packet encoding tests."""

import pytest

from repro.core.packet import CoalescedRequest
from repro.core.request import RequestType
from repro.hmc.config import HMCConfig
from repro.hmc.packet import HMCCommand, encode, packet_crc, verify_crc

CFG = HMCConfig()


def pkt(addr=0x1000, size=64, rtype=RequestType.LOAD):
    return CoalescedRequest(addr=addr, size=size, rtype=rtype)


class TestEncode:
    def test_read_flit_counts(self):
        w = encode(pkt(size=64), CFG)
        assert w.command is HMCCommand.RD
        assert w.request_flits == 1
        assert w.response_flits == 5
        assert w.payload_bytes == 64
        assert w.control_bytes == 32

    def test_write_flit_counts(self):
        w = encode(pkt(size=64, rtype=RequestType.STORE), CFG)
        assert w.command is HMCCommand.WR
        assert w.request_flits == 5
        assert w.response_flits == 1

    def test_atomic(self):
        w = encode(pkt(size=16, rtype=RequestType.ATOMIC), CFG)
        assert w.command is HMCCommand.ATOMIC

    def test_vault_bank_row_extracted(self):
        w = encode(pkt(addr=0xABCD00), CFG)
        assert w.vault == CFG.vault_of(0xABCD00)
        assert w.bank == CFG.bank_of(0xABCD00)
        assert w.dram_row == CFG.dram_row_of(0xABCD00)

    def test_wire_bytes(self):
        w = encode(pkt(size=256), CFG)
        assert w.wire_bytes == 288  # section 2.2.2 example

    def test_validation(self):
        with pytest.raises(ValueError):
            encode(pkt(size=512), CFG)
        with pytest.raises(ValueError):
            encode(pkt(addr=0x4, size=16), CFG)
        with pytest.raises(ValueError):
            encode(pkt(addr=0x1080, size=256), CFG)  # crosses row


class TestCRC:
    def test_roundtrip(self):
        p = pkt()
        assert verify_crc(p, packet_crc(p))

    def test_detects_corruption(self):
        a, b = pkt(addr=0x1000), pkt(addr=0x1010)
        assert packet_crc(a) != packet_crc(b)
        assert not verify_crc(b, packet_crc(a))

    def test_type_matters(self):
        a = pkt(rtype=RequestType.LOAD)
        b = pkt(rtype=RequestType.STORE)
        assert packet_crc(a) != packet_crc(b)
