"""Shared test-suite options.

``--jobs N`` sets the worker count used by the parallel-path smoke tests
(marked ``parallel``); CI runs that subset with ``--jobs 2`` on every
supported Python version so the process-pool code is exercised beyond
the in-process fallback.
"""

import pytest


def pytest_addoption(parser) -> None:
    # Shared knob with benchmarks/conftest.py; tolerate double
    # registration when both conftests load in one invocation.
    try:
        parser.addoption(
            "--jobs",
            type=int,
            default=2,
            help="worker processes for parallel-path smoke tests",
        )
    except ValueError:
        pass


@pytest.fixture
def smoke_jobs(request) -> int:
    """Worker count for the parallel smoke tests (--jobs, default 2)."""
    return int(request.config.getoption("--jobs"))
