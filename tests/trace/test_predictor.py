"""Predictor-vs-engine equivalence tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MACConfig
from repro.core.mac import coalesce_trace_fast
from repro.core.request import RequestType
from repro.core.stats import MACStats
from repro.trace.predictor import predict_efficiency
from repro.trace.record import TraceRecord, to_requests
from repro.workloads.registry import make


def random_trace(seed, n=500, rows=40, fence_frac=0.01):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        if rng.random() < fence_frac:
            out.append(TraceRecord(RequestType.FENCE, 0))
            continue
        op = RequestType.STORE if rng.random() < 0.3 else RequestType.LOAD
        addr = (rng.randrange(rows) << 8) | (rng.randrange(16) << 4)
        out.append(TraceRecord(op, addr, 8, i % 8, i % 8, i))
    return out


def engine_efficiency(trace, cfg):
    st_ = MACStats()
    coalesce_trace_fast(list(to_requests(trace)), cfg, stats=st_)
    return st_.coalescing_efficiency


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 5000), entries=st.sampled_from([4, 16, 32, 64]))
    def test_matches_window_engine_exactly(self, seed, entries):
        cfg = MACConfig(arq_entries=entries)
        trace = random_trace(seed)
        pred = predict_efficiency(trace, cfg)
        assert pred.predicted_efficiency == pytest.approx(
            engine_efficiency(trace, cfg), abs=1e-12
        )

    @pytest.mark.parametrize("name", ["SG", "MG", "IS", "GRAPPOLO"])
    def test_matches_on_real_workloads(self, name):
        trace = make(name).generate(threads=4, ops_per_thread=600)
        cfg = MACConfig()
        pred = predict_efficiency(trace, cfg)
        assert pred.predicted_efficiency == pytest.approx(
            engine_efficiency(trace, cfg), abs=1e-12
        )


class TestPredictionFields:
    def test_packet_count(self):
        trace = random_trace(1, fence_frac=0)
        pred = predict_efficiency(trace)
        assert pred.predicted_packets == pred.accesses - pred.predicted_merges

    def test_empty(self):
        pred = predict_efficiency([])
        assert pred.predicted_efficiency == 0.0

    def test_capacity_evictions_counted(self):
        # 13 same-row requests overflow one 12-target entry.
        trace = [
            TraceRecord(RequestType.LOAD, 0xA00 | ((i % 16) << 4)) for i in range(13)
        ]
        pred = predict_efficiency(trace)
        assert pred.capacity_evictions == 1

    def test_atomics_counted_but_never_merge(self):
        trace = [TraceRecord(RequestType.ATOMIC, 0xA00) for _ in range(5)]
        pred = predict_efficiency(trace)
        assert pred.accesses == 5
        assert pred.predicted_merges == 0
