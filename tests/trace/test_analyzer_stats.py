"""Analyzer and execution-statistics tests."""

import pytest

from repro.core.config import MACConfig
from repro.core.request import RequestType
from repro.trace.analyzer import annotate, flit_footprints, row_locality
from repro.trace.record import TraceRecord
from repro.trace.stats import ExecutionProfile, summarize


def rec(addr, op=RequestType.LOAD, tid=0, cycle=0):
    return TraceRecord(op, addr, 8, tid, 0, cycle)


class TestAnnotate:
    def test_row_and_flit_recovered(self):
        out = list(annotate([rec(0xA65)]))
        assert out[0].row == 0xA and out[0].flit == 6

    def test_fences_skipped(self):
        out = list(annotate([rec(0, RequestType.FENCE), rec(0x100)]))
        assert len(out) == 1


class TestRowLocality:
    def test_hits_within_window(self):
        trace = [rec(0xA00), rec(0xA10), rec(0xB00), rec(0xA20)]
        stats = row_locality(trace, window=32)
        assert stats.accesses == 4
        assert stats.window_hits == 2
        assert stats.distinct_rows == 2

    def test_window_eviction(self):
        trace = [rec(0xA00), rec(0xB00), rec(0xC00), rec(0xA10)]
        stats = row_locality(trace, window=2)
        assert stats.window_hits == 0

    def test_type_mismatch_is_miss(self):
        trace = [rec(0xA00), rec(0xA10, RequestType.STORE)]
        assert row_locality(trace).window_hits == 0

    def test_fence_clears_window(self):
        trace = [rec(0xA00), rec(0, RequestType.FENCE), rec(0xA10)]
        assert row_locality(trace).window_hits == 0

    def test_hit_rate_bounds_mac_efficiency(self):
        """Window hit rate upper-bounds the ARQ's coalescing efficiency."""
        import random

        from repro.core.mac import coalesce_trace_fast
        from repro.core.stats import MACStats
        from repro.trace.record import to_requests

        rng = random.Random(11)
        trace = [
            rec((rng.randrange(48) << 8) | (rng.randrange(16) << 4))
            for _ in range(3000)
        ]
        loc = row_locality(trace, window=32)
        st = MACStats()
        coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st)
        assert st.coalescing_efficiency <= loc.hit_rate + 1e-9

    def test_popularity_tracking(self):
        trace = [rec(0xA00), rec(0xA10), rec(0xB00)]
        stats = row_locality(trace, track_popularity=True)
        assert stats.row_popularity[0xA] == 2
        assert stats.mean_accesses_per_row == 1.5


class TestFlitFootprints:
    def test_group_sizes(self):
        trace = [rec(0xA00), rec(0xA10), rec(0xA10), rec(0xB00)]
        sizes = flit_footprints(trace, window=32)
        assert sorted(sizes) == [1, 2]  # row A: flits {0,1}; row B: {0}


class TestExecutionProfile:
    def test_rpc_formula(self):
        p = ExecutionProfile("X", ipc=2.0, rpi=0.5, mem_access_rate=0.5)
        assert p.rpc(cores=8) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionProfile("X", ipc=0, rpi=0.5, mem_access_rate=0.5)
        with pytest.raises(ValueError):
            ExecutionProfile("X", ipc=1, rpi=1.5, mem_access_rate=0.5)
        with pytest.raises(ValueError):
            ExecutionProfile("X", ipc=1, rpi=0.5, mem_access_rate=0)
        with pytest.raises(ValueError):
            ExecutionProfile("X", ipc=1, rpi=0.5, mem_access_rate=0.5).rpc(0)


class TestSummarize:
    def test_counts(self):
        trace = [
            rec(0x100, RequestType.LOAD, tid=0, cycle=0),
            rec(0x200, RequestType.STORE, tid=1, cycle=5),
            rec(0, RequestType.FENCE, tid=0, cycle=6),
            rec(0x300, RequestType.ATOMIC, tid=0, cycle=9),
        ]
        s = summarize(trace)
        assert s.loads == 1 and s.stores == 1 and s.fences == 1 and s.atomics == 1
        assert s.memory_operations == 3
        assert s.distinct_threads == 2
        assert s.span_cycles == 10
        assert s.load_fraction == pytest.approx(1 / 3)
        assert s.requests_per_cycle == pytest.approx(0.3)

    def test_empty(self):
        s = summarize([])
        assert s.operations == 0
        assert s.requests_per_cycle == 0.0
