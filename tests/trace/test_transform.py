"""Trace transformation utility tests."""

import pytest

from repro.core.request import RequestType
from repro.trace.record import TraceRecord
from repro.trace.transform import (
    downsample,
    filter_ops,
    merge_by_cycle,
    remap_addresses,
    split_by_core,
    split_by_thread,
    time_window,
)


def rec(addr, tid=0, core=0, cycle=0, op=RequestType.LOAD):
    return TraceRecord(op, addr, 8, tid, core, cycle)


class TestSplitting:
    def test_by_thread(self):
        trace = [rec(0x100, tid=0), rec(0x200, tid=1), rec(0x300, tid=0)]
        parts = split_by_thread(trace)
        assert [r.addr for r in parts[0]] == [0x100, 0x300]
        assert [r.addr for r in parts[1]] == [0x200]

    def test_by_core(self):
        trace = [rec(0x100, core=2), rec(0x200, core=2), rec(0x300, core=5)]
        parts = split_by_core(trace)
        assert set(parts) == {2, 5}


class TestTimeWindow:
    def test_half_open_interval(self):
        trace = [rec(0x100, cycle=c) for c in (0, 5, 10, 15)]
        got = list(time_window(trace, 5, 15))
        assert [r.cycle for r in got] == [5, 10]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            list(time_window([], 10, 5))


class TestMerge:
    def test_ordered_by_cycle(self):
        a = [rec(0x100, cycle=1), rec(0x200, cycle=5)]
        b = [rec(0x300, cycle=3)]
        merged = merge_by_cycle(a, b)
        assert [r.cycle for r in merged] == [1, 3, 5]

    def test_stable_for_ties(self):
        a = [rec(0x100, cycle=2)]
        b = [rec(0x200, cycle=2)]
        merged = merge_by_cycle(a, b)
        assert [r.addr for r in merged] == [0x100, 0x200]


class TestRemap:
    def test_relocation(self):
        got = list(remap_addresses([rec(0x100)], lambda a: a + 0x1000))
        assert got[0].addr == 0x1100

    def test_fences_untouched(self):
        fence = rec(0, op=RequestType.FENCE)
        got = list(remap_addresses([fence], lambda a: a + 0x1000))
        assert got[0].addr == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            list(remap_addresses([rec(0x100)], lambda a: -1))

    def test_remap_by_row_shift_preserves_coalescing(self):
        """Shifting by whole rows must not change packetization — the
        metamorphic property, exercised through the remap helper."""
        from repro.core.config import MACConfig
        from repro.core.mac import coalesce_trace_fast
        from repro.core.stats import MACStats
        from repro.trace.record import to_requests
        import random

        rng = random.Random(4)
        trace = [
            rec((rng.randrange(30) << 8) | (rng.randrange(16) << 4), tid=i % 4)
            for i in range(300)
        ]
        moved = list(remap_addresses(trace, lambda a: a + (1 << 20)))
        st_a, st_b = MACStats(), MACStats()
        coalesce_trace_fast(list(to_requests(trace)), MACConfig(), stats=st_a)
        coalesce_trace_fast(list(to_requests(moved)), MACConfig(), stats=st_b)
        assert st_a.coalescing_efficiency == st_b.coalescing_efficiency


class TestFilterAndSample:
    def test_filter_ops(self):
        trace = [rec(0x100), rec(0x200, op=RequestType.STORE)]
        got = list(filter_ops(trace, [RequestType.STORE]))
        assert len(got) == 1 and got[0].op is RequestType.STORE

    def test_downsample_keeps_fences(self):
        trace = [rec(0x100 * i) for i in range(10)]
        trace.insert(5, rec(0, op=RequestType.FENCE))
        got = downsample(trace, keep_one_in=5)
        assert any(r.op is RequestType.FENCE for r in got)
        assert len(got) < len(trace)

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            downsample([], 0)
