"""Trace record and file-format tests (incl. roundtrip property)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.request import RequestType
from repro.trace.record import TraceRecord, to_requests
from repro.trace.tracefile import (
    dump,
    dump_binary,
    dump_text,
    load,
    load_binary,
    load_text,
)

record_strategy = st.builds(
    TraceRecord,
    op=st.sampled_from(list(RequestType)),
    addr=st.integers(0, (1 << 52) - 1),
    size=st.integers(1, 256),
    tid=st.integers(0, 0xFFFF),
    core=st.integers(0, 7),
    cycle=st.integers(0, 1 << 40),
)


class TestRecord:
    def test_to_request(self):
        rec = TraceRecord(RequestType.STORE, addr=0xABC, size=8, tid=3, core=2, cycle=99)
        r = rec.to_request(tag=7, node=1)
        assert r.addr == 0xABC and r.rtype is RequestType.STORE
        assert r.tid == 3 and r.tag == 7 and r.node == 1
        assert r.issue_cycle == 99

    def test_to_requests_assigns_per_thread_tags(self):
        recs = [
            TraceRecord(RequestType.LOAD, 0x100, tid=1),
            TraceRecord(RequestType.LOAD, 0x200, tid=2),
            TraceRecord(RequestType.LOAD, 0x300, tid=1),
        ]
        out = list(to_requests(recs))
        assert [r.tag for r in out] == [0, 0, 1]

    def test_tag_wraps_at_16_bits(self):
        recs = [TraceRecord(RequestType.LOAD, 0x100, tid=0) for _ in range(3)]
        gen = to_requests(recs)
        first = next(gen)
        assert first.tag == 0


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        recs = [
            TraceRecord(RequestType.LOAD, 0x1000, 8, 1, 0, 5),
            TraceRecord(RequestType.FENCE, 0, 8, 1, 0, 6),
            TraceRecord(RequestType.ATOMIC, 0x2000, 8, 2, 1, 7),
        ]
        p = tmp_path / "t.txt"
        assert dump_text(recs, p) == 3
        assert list(load_text(p)) == recs

    def test_comments_and_blanks_skipped(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("# header\n\nLD 0x10 8 0 0 0\n")
        assert len(list(load_text(p))) == 1

    def test_malformed_line_raises(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("LD 0x10 8\n")
        with pytest.raises(ValueError):
            list(load_text(p))

    def test_unknown_op_raises(self, tmp_path):
        p = tmp_path / "t.txt"
        p.write_text("XX 0x10 8 0 0 0\n")
        with pytest.raises(ValueError):
            list(load_text(p))


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        recs = [TraceRecord(RequestType.STORE, 0xDEADBEEF, 16, 42, 3, 1 << 33)]
        p = tmp_path / "t.trc"
        dump_binary(recs, p)
        assert list(load_binary(p)) == recs

    def test_bad_magic_raises(self, tmp_path):
        p = tmp_path / "bad.trc"
        p.write_bytes(b"NOPE")
        with pytest.raises(ValueError):
            list(load_binary(p))

    def test_truncated_raises(self, tmp_path):
        recs = [TraceRecord(RequestType.LOAD, 0x10)]
        p = tmp_path / "t.trc"
        dump_binary(recs, p)
        data = p.read_bytes()
        p.write_bytes(data[:-3])
        with pytest.raises(ValueError):
            list(load_binary(p))

    @settings(max_examples=20, deadline=None)
    @given(recs=st.lists(record_strategy, max_size=50))
    def test_roundtrip_property(self, recs, tmp_path_factory):
        p = tmp_path_factory.mktemp("trc") / "t.trc"
        dump_binary(recs, p)
        assert list(load_binary(p)) == recs


class TestDispatchingIO:
    def test_dump_load_sniffing(self, tmp_path):
        recs = [TraceRecord(RequestType.LOAD, 0x40)]
        tp, bp = tmp_path / "t.txt", tmp_path / "t.trc"
        dump(recs, tp)
        dump(recs, bp)
        assert list(load(tp)) == recs
        assert list(load(bp)) == recs
