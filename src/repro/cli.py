"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``trace``    — generate a benchmark trace file;
* ``coalesce`` — run a trace through the MAC and print statistics;
* ``replay``   — replay a trace on a device (hmc / hbm / ddr), with or
  without coalescing, and print the timing outcome;
* ``run``      — run one benchmark through the cycle engine + device
  replay with observability: ``--trace-out`` writes a cycle-stamped
  event trace (Chrome/Perfetto JSON, or JSONL for ``.jsonl`` paths),
  ``--metrics-out`` the flat namespaced metrics dict,
  ``--attribution`` adds per-stage latency + stall-cause accounting to
  the metrics, ``--timeline-out`` a cycle-windowed time-series document
  (shard-aware under ``REPRO_SIM_SHARDS``), and ``--profile`` the
  simulator's own ``sim.*`` self-profile (tick/skip ratios,
  vector-kernel hits, PDES window utilization);
* ``analyze``  — bottleneck report: run a benchmark closed-loop with
  attribution (or load a ``--metrics`` / ``--report-out`` artifact) and
  print the per-stage latency table + top stall sites; ``--diff A B``
  compares two saved reports; ``--timeline FILE`` segments a timeline
  into warm-up/steady/drain phases and names each epoch's critical
  stage (``--timeline --diff A B`` ranks the most regressed epochs);
* ``figures``  — regenerate the paper's figures (fast or full scale);
* ``info``     — print the Table 1 configuration and area report.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from typing import List, Optional

from repro.baselines.direct import dispatch_raw
from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import coalesce_trace_fast
from repro.core.stats import MACStats
from repro.eval.report import format_table, human_bytes, pct
from repro.seeding import DEFAULT_SEED, derive_seed
from repro.sim import ENGINE_ENV_VAR, engine_names
from repro.trace.record import to_requests
from repro.trace.tracefile import dump, load
from repro.workloads.registry import AUXILIARY, BENCHMARKS, make


def _add_mac_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--arq", type=int, default=32, help="ARQ entries (default 32)")
    p.add_argument(
        "--row-bytes", type=int, default=256, help="DRAM row size (default 256)"
    )
    p.add_argument(
        "--policy",
        choices=[x.value for x in FlitTablePolicy],
        default="span",
        help="FLIT-table policy (default span)",
    )


def _add_device_args(p: argparse.ArgumentParser) -> None:
    """HMC device knobs: intra-cube NoC topology and bank page policy."""
    from repro.hmc.bank import PAGE_POLICIES
    from repro.hmc.noc import NOC_ARBITRATIONS, NOC_TOPOLOGIES

    dev = p.add_argument_group("HMC device (logic-layer NoC, DRAM page policy)")
    dev.add_argument(
        "--noc-topology",
        choices=NOC_TOPOLOGIES,
        default="ideal",
        help="intra-cube link<->vault interconnect: ideal is the fixed-"
        "latency crossbar, xbar adds per-port arbitration and bounded "
        "buffers, ring/mesh add hop latency (default ideal)",
    )
    dev.add_argument(
        "--noc-buffers",
        type=int,
        default=8,
        help="input-buffer depth per NoC port, in packets; a full buffer "
        "backpressures into the link (default 8; ignored by ideal)",
    )
    dev.add_argument(
        "--noc-arbitration",
        choices=NOC_ARBITRATIONS,
        default="fifo",
        help="NoC port arbiter (default fifo; ignored by ideal)",
    )
    dev.add_argument(
        "--page-policy",
        choices=PAGE_POLICIES,
        default="closed",
        help="DRAM bank page policy: closed precharges every access "
        "(HMC spec behaviour), open keeps the row latched, adaptive "
        "hedges on a per-bank hit-confidence counter (default closed)",
    )


def _hmc_config(args, faults=None):
    """HMCConfig from device flags, or None when everything is stock.

    ``None`` keeps the callee on its default-config fast path and — more
    importantly — keeps default CLI runs bit-identical to builds that
    predate the device flags.
    """
    topology = getattr(args, "noc_topology", "ideal")
    buffers = getattr(args, "noc_buffers", 8)
    arbitration = getattr(args, "noc_arbitration", "fifo")
    policy = getattr(args, "page_policy", "closed")
    stock = (
        topology == "ideal"
        and buffers == 8
        and arbitration == "fifo"
        and policy == "closed"
    )
    if stock and faults is None:
        return None
    from repro.hmc.config import HMCConfig

    return HMCConfig(
        noc_topology=topology,
        noc_buffers=buffers,
        noc_arbitration=arbitration,
        page_policy=policy,
        faults=faults,
    )


def _add_engine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine",
        choices=engine_names(),
        default=None,
        help="simulation engine: lockstep clocks every cycle, skip "
        "fast-forwards over quiescent spans with identical results "
        f"(default: ${ENGINE_ENV_VAR} or lockstep)",
    )


def _mac_config(args) -> MACConfig:
    return MACConfig(
        arq_entries=args.arq,
        row_bytes=args.row_bytes,
        max_request_bytes=min(args.row_bytes, 1024),
    )


def _effective_seed(args, fallback: int = DEFAULT_SEED) -> int:
    """Per-command seed, overridden by the global ``--seed`` knob."""
    if getattr(args, "global_seed", None) is not None:
        return args.global_seed
    seed = getattr(args, "seed", None)
    return fallback if seed is None else seed


def _fault_config(args):
    """Build a FaultConfig from replay's fault flags (None = all off)."""
    dead = tuple(args.dead_links or ())
    if not (args.flit_ber or args.ack_ber or args.drop_rate or dead):
        return None
    from repro.faults import FaultConfig

    fault_seed = (
        args.fault_seed
        if args.fault_seed is not None
        else derive_seed(_effective_seed(args), "faults")
    )
    return FaultConfig.simple(
        flit_ber=args.flit_ber,
        ack_ber=args.ack_ber,
        drop_rate=args.drop_rate,
        dead_links=dead,
        seed=fault_seed,
        retry_limit=args.retry_limit,
    )


def cmd_trace(args) -> int:
    wl = make(args.benchmark, seed=_effective_seed(args))
    records = wl.generate(threads=args.threads, ops_per_thread=args.ops)
    n = dump(records, args.output)
    print(f"wrote {n} records of {wl.name} to {args.output}")
    return 0


def cmd_coalesce(args) -> int:
    records = list(load(args.trace))
    requests = list(to_requests(records))
    cfg = _mac_config(args)
    stats = MACStats()
    coalesce_trace_fast(requests, cfg, FlitTablePolicy(args.policy), stats)
    print(
        format_table(
            ["metric", "value"],
            [
                ["raw requests", stats.memory_raw_requests],
                ["packets", stats.coalesced_packets],
                ["coalescing efficiency", pct(stats.coalescing_efficiency)],
                ["avg targets/packet", round(stats.avg_targets_per_packet, 2)],
                ["bandwidth efficiency", pct(stats.coalesced_bandwidth_efficiency)],
                ["control saved", human_bytes(stats.bandwidth_saved_bytes())],
                [
                    "packet sizes",
                    ", ".join(
                        f"{s}B x {n}" for s, n in sorted(stats.packet_sizes.items())
                    ),
                ],
            ],
            title=f"MAC over {args.trace} (ARQ={args.arq}, {args.policy})",
        )
    )
    return 0


def cmd_replay(args) -> int:
    records = list(load(args.trace))
    requests = list(to_requests(records))
    cfg = _mac_config(args)
    stats = MACStats()
    if args.no_mac:
        packets = dispatch_raw(requests, cfg, stats)
        cadence = 1.0
    else:
        packets = coalesce_trace_fast(
            requests, cfg, FlitTablePolicy(args.policy), stats
        )
        cadence = 2.0

    rows: List[List[object]] = [
        ["packets", len(packets)],
        ["coalescing efficiency", pct(stats.coalescing_efficiency)],
    ]
    if args.device == "hmc":
        from repro.hmc.device import HMCDevice

        dev = HMCDevice(_hmc_config(args, faults=_fault_config(args)))
        t = 0.0
        for p in packets:
            dev.submit(p, int(t))
            t += cadence
        rows += [
            ["bank conflicts", dev.bank_conflicts],
            ["mean latency (cycles)", round(dev.stats.mean_latency, 1)],
            ["makespan (cycles)", dev.stats.makespan],
            ["wire traffic", human_bytes(dev.stats.wire_bytes)],
        ]
        if dev.fault_stats is not None:
            rows += [
                ["crc errors", dev.fault_stats.total("crc_error")],
                ["link retries", dev.fault_stats.total("retry")],
                ["failed links", len(dev.failed_links)],
                ["link bandwidth loss", pct(dev.link_bandwidth_loss)],
            ]
    elif args.device == "hbm":
        from repro.hbm.device import HBMDevice

        dev = HBMDevice()
        t = 0.0
        for p in packets:
            dev.submit(p, int(t))
            t += cadence
        rows += [
            ["bank conflicts", dev.bank_conflicts],
            ["mean latency (cycles)", round(dev.stats.mean_latency, 1)],
            ["data-bus traffic", human_bytes(dev.stats.data_bus_bytes)],
        ]
    else:  # ddr
        from repro.ddr.device import DDRDevice

        dev = DDRDevice()
        t = 0.0
        for p in packets:
            dev.submit(p, int(t))
            t += cadence
        dev.run()
        rows += [
            ["row-hit rate", pct(dev.row_hit_rate)],
            ["bank conflicts", dev.bank_conflicts],
            ["mean latency (cycles)", round(dev.stats.mean_latency, 1)],
        ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"replay of {args.trace} on {args.device} "
            f"({'raw' if args.no_mac else 'MAC'})",
        )
    )
    return 0


def _write_metrics_out(metrics: dict, path) -> None:
    import json
    import math

    from repro.ioutil import atomic_write_text

    # Undefined ratios (nan) become null: the file stays strict JSON.
    clean = {
        k: (None if isinstance(v, float) and math.isnan(v) else v)
        for k, v in metrics.items()
    }
    atomic_write_text(
        path,
        json.dumps(clean, indent=2, sort_keys=True, allow_nan=False, default=str),
    )
    print(f"wrote {len(clean)} metrics to {path}")


def _cmd_run_numa(args) -> int:
    """`repro run --nodes N`: closed-loop NUMA mesh, optionally sharded."""
    from repro.eval.runner import numa_closed_loop

    if getattr(args, "attribution", False):
        print(
            "note: --attribution pins the run to one process and is not "
            "supported with --nodes; ignoring it (--timeline-out is the "
            "shard-aware, time-resolved alternative)"
        )
    tracer, timeline, profiler = _obs_from_args(args)
    system = numa_closed_loop(
        args.benchmark,
        nodes=args.nodes,
        threads=args.threads,
        ops_per_thread=args.ops,
        seed=_effective_seed(args),
        interconnect_latency=args.interconnect_latency,
        interleave_bytes=args.interleave_bytes,
        config=_mac_config(args),
        shards=args.shards,
        engine=args.engine,
        tracer=tracer,
        timeline=timeline,
        profiler=profiler,
        hmc=_hmc_config(args),
    )
    st = system.stats
    report = system.shard_report
    backend = (
        f"PDES x{report.shards} ({report.windows} windows"
        + (f", {report.restarts} restarts" if report.restarts else "")
        + ")"
        if report
        else "serial"
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes", args.nodes],
                ["backend", backend],
                ["cycles", st.cycles],
                ["local requests", st.local_requests],
                ["remote requests", st.remote_requests],
                ["remote responses", st.responses],
                ["fabric messages", st.fabric_messages],
                ["fabric credit stalls", st.fabric_credit_stalls],
            ],
            title=f"{args.benchmark} on a {args.nodes}-node mesh",
        )
    )
    _finish_obs(
        args,
        tracer,
        timeline,
        profiler,
        system.metrics(),
        meta={
            "benchmark": args.benchmark,
            "threads": args.threads,
            "ops_per_thread": args.ops,
            "mode": "numa-closed-loop",
            "nodes": args.nodes,
            "backend": backend,
        },
    )
    return 0


def _obs_from_args(args):
    """(tracer, timeline, profiler) per the run command's obs flags."""
    from repro.obs import (
        NULL_PROFILER,
        NULL_TIMELINE,
        NULL_TRACER,
        EventTracer,
        SimProfiler,
        Timeline,
    )

    tracer = (
        EventTracer(capacity=args.trace_capacity) if args.trace_out else NULL_TRACER
    )
    timeline = (
        Timeline(epoch=args.timeline_epoch) if args.timeline_out else NULL_TIMELINE
    )
    profiler = SimProfiler() if args.profile else NULL_PROFILER
    return tracer, timeline, profiler


def _write_trace_out(tracer, profiler, path) -> None:
    """Write the Chrome/JSONL trace, merging the profiler's host lane."""
    import json

    from repro.ioutil import atomic_write_text

    if str(path).endswith(".jsonl"):
        n = tracer.write_jsonl(path)
    elif profiler.enabled:
        doc = tracer.to_chrome_trace()
        doc["traceEvents"].extend(profiler.chrome_events())
        atomic_write_text(path, json.dumps(doc))
        n = len(doc["traceEvents"])
    else:
        n = tracer.write_chrome_trace(path)
    dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
    print(f"wrote {n} trace events to {path}{dropped}")


def _finish_obs(args, tracer, timeline, profiler, metrics, meta) -> None:
    """Shared artifact writing for the open-loop and NUMA run paths."""
    if args.trace_out:
        _write_trace_out(tracer, profiler, args.trace_out)
    if args.timeline_out:
        n = timeline.write_json(args.timeline_out, meta=meta)
        print(
            f"wrote {n} timeline series to {args.timeline_out} "
            f"(epoch {timeline.epoch} cy; see `repro analyze --timeline`)"
        )
    if profiler.enabled:
        prof_metrics = profiler.metrics()
        # sim.* lands in --metrics-out only under --profile, so
        # wall-clock noise never pollutes determinism diffs.
        metrics.update(prof_metrics)
        print(
            format_table(
                ["metric", "value"],
                [[k, v if isinstance(v, (int, str)) else round(v, 4)]
                 for k, v in sorted(prof_metrics.items())],
                title="simulator self-profile (sim.*)",
            )
        )
    if args.metrics_out:
        _write_metrics_out(metrics, args.metrics_out)


def cmd_run(args) -> int:
    from repro.eval.runner import dispatch, replay_on_device
    from repro.obs import NULL_ATTRIBUTION
    from repro.obs.attribution import AttributionCollector
    from repro.obs.metrics import flatten

    if args.nodes > 1:
        return _cmd_run_numa(args)
    tracer, timeline, profiler = _obs_from_args(args)
    attrib = (
        AttributionCollector()
        if getattr(args, "attribution", False)
        else NULL_ATTRIBUTION
    )
    disp = dispatch(
        args.benchmark,
        "mac-cycle",
        threads=args.threads,
        ops_per_thread=args.ops,
        config=_mac_config(args),
        seed=_effective_seed(args),
        flit_policy=FlitTablePolicy(args.policy),
        tracer=tracer,
        attrib=attrib,
        engine=args.engine,
        timeline=timeline,
        profiler=profiler,
    )
    replay = replay_on_device(
        disp.packets,
        tracer=tracer,
        attrib=attrib,
        # Attribution needs the device clock aligned with the MAC clock
        # that stamped the dispatch marks (stages stay non-negative).
        use_issue_cycles=attrib.enabled,
        hmc=_hmc_config(args),
    )
    metrics = {**disp.metrics(), **replay.metrics()}
    if attrib.enabled:
        metrics.update(flatten(attrib.snapshot(), "attribution."))
    print(
        format_table(
            ["metric", "value"],
            [
                ["raw requests", disp.stats.memory_raw_requests],
                ["packets", disp.stats.coalesced_packets],
                ["coalescing efficiency", pct(disp.stats.coalescing_efficiency)],
                ["bank conflicts", replay.bank_conflicts],
                ["mean latency (cycles)", round(replay.mean_latency, 1)],
                ["makespan (cycles)", replay.makespan],
                ["wire traffic", human_bytes(replay.wire_bytes)],
            ],
            title=f"{args.benchmark} via cycle engine (ARQ={args.arq})",
        )
    )
    _finish_obs(
        args,
        tracer,
        timeline,
        profiler,
        metrics,
        meta={
            "benchmark": args.benchmark,
            "threads": args.threads,
            "ops_per_thread": args.ops,
            "mode": "open-loop",
        },
    )
    return 0


def cmd_analyze(args) -> int:
    import json

    from repro.obs.analyze import (
        build_report,
        diff_metrics,
        diff_reports,
        format_diff,
        format_metrics_diff,
        format_report,
        is_flat_metrics,
        load_json,
        load_report,
        report_from_metrics,
    )

    if args.timeline is not None:
        return _cmd_analyze_timeline(args)

    if args.diff:
        raw_a, raw_b = (load_json(p) for p in args.diff)
        def attribution_free(d):
            return is_flat_metrics(d) and not any(
                k.startswith("attribution.") for k in d
            )

        if attribution_free(raw_a) and attribution_free(raw_b):
            # Two plain --metrics-out files: key-by-key determinism diff
            # (the sharded-vs-serial smoke); attribution-bearing files
            # still get the bottleneck-stage report diff below.
            diff = diff_metrics(raw_a, raw_b)
            if args.json:
                print(json.dumps(diff, indent=2, sort_keys=True, default=str))
            else:
                print(format_metrics_diff(diff))
            return 0 if diff["identical"] else 3
        a = raw_a if not is_flat_metrics(raw_a) else report_from_metrics(raw_a)
        b = raw_b if not is_flat_metrics(raw_b) else report_from_metrics(raw_b)
        diff = diff_reports(a, b)
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True, default=str))
        else:
            print(format_diff(diff))
        return 0

    if args.metrics:
        report = load_report(args.metrics)
        title = f"bottleneck report ({args.metrics})"
    elif args.benchmark:
        from repro.eval.runner import attributed_node_run

        seed = _effective_seed(args)
        attrib, node = attributed_node_run(
            args.benchmark,
            threads=args.threads,
            ops_per_thread=args.ops,
            seed=seed,
            coalescing=not args.no_mac,
            config=_mac_config(args),
            engine=args.engine,
        )
        report = build_report(
            attrib,
            meta={
                "benchmark": args.benchmark,
                "threads": args.threads,
                "ops_per_thread": args.ops,
                "seed": seed,
                "coalescing": not args.no_mac,
                "cycles": node.cycle,
            },
        )
        title = f"bottleneck report ({args.benchmark})"
    else:
        print(
            "analyze needs a benchmark name, --metrics FILE, or --diff A B",
            file=sys.stderr,
        )
        return 2

    if args.report_out:
        from repro.ioutil import atomic_write_text

        atomic_write_text(
            args.report_out, json.dumps(report, indent=2, sort_keys=True, default=str)
        )
        print(f"wrote report to {args.report_out}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(format_report(report, title))
    return 0


def _cmd_analyze_timeline(args) -> int:
    """`repro analyze --timeline`: phase/critical-stage report or epoch diff."""
    import json

    from repro.obs.analyze import (
        diff_timelines,
        format_timeline_diff,
        format_timeline_report,
        load_timeline,
        timeline_report,
    )

    if args.diff:
        a, b = (load_timeline(p) for p in args.diff)
        try:
            diff = diff_timelines(a, b)
        except ValueError as exc:
            print(f"analyze --timeline --diff: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(diff, indent=2, sort_keys=True, default=str))
        else:
            print(format_timeline_diff(diff))
        return 0
    if not args.timeline:
        print(
            "analyze --timeline needs a FILE (or --diff A B with two "
            "timeline files)",
            file=sys.stderr,
        )
        return 2
    doc = load_timeline(args.timeline)
    report = timeline_report(doc)
    if args.report_out:
        from repro.ioutil import atomic_write_text

        atomic_write_text(
            args.report_out, json.dumps(report, indent=2, sort_keys=True, default=str)
        )
        print(f"wrote report to {args.report_out}")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(format_timeline_report(report, title=f"timeline ({args.timeline})"))
    return 0


#: Default checkpoint journal of ``repro figures`` supervised runs.
DEFAULT_FIGURES_CHECKPOINT = "repro-figures.ckpt.jsonl"


def cmd_figures(args) -> int:
    from repro.eval import experiments as E
    from repro.eval.parallel import print_progress, resolve_jobs
    from repro.eval.supervisor import (
        CheckpointJournal,
        SupervisorConfig,
        SweepInterrupted,
        SweepReport,
    )

    jobs = resolve_jobs(args.jobs)
    kw = dict(threads=2, ops_per_thread=500) if args.fast else {}
    kw["jobs"] = jobs
    wanted = set(args.only or [])

    def want(tag: str) -> bool:
        return not wanted or tag in wanted

    def progress(tag: str):
        # Log every few cells so long figure fan-outs show liveness.
        return print_progress(prefix=f"{tag}: ") if jobs > 1 else None

    # Any resilience flag engages the supervisor; one checkpoint journal
    # spans all three figure drivers (cells are content-keyed, so records
    # never collide across figures).
    supervised = bool(
        args.supervised
        or args.resume
        or args.checkpoint
        or args.cell_timeout is not None
        or args.max_retries is not None
    )
    journal = None
    supervise = None
    report = None
    if supervised:
        journal = CheckpointJournal(args.checkpoint or DEFAULT_FIGURES_CHECKPOINT)
        journal.open(fresh=not args.resume)
        report = SweepReport()
        supervise = SupervisorConfig(
            cell_timeout=args.cell_timeout,
            max_retries=2 if args.max_retries is None else args.max_retries,
            journal=journal,
            resume=args.resume,
            report=report,
        )

    try:
        if want("fig10"):
            table = E.fig10_coalescing_efficiency(
                total_ops=4000 if args.fast else 24000,
                jobs=jobs,
                progress=progress("fig10"),
                log_every=4,
                supervise=supervise,
            )
            vals = table.get(8, {})
            if vals:
                avg = statistics.mean(vals.values())
                print(f"fig10: avg efficiency @8 threads {pct(avg)} (paper 52.86%)")
            else:
                print("fig10: no surviving cells @8 threads")
        if want("fig11"):
            sweep = E.fig11_arq_sweep(
                progress=progress("fig11"), log_every=4, supervise=supervise, **kw
            )
            print(f"fig11: {[pct(v) for v in sweep.values()]}")
        if want("fig17"):
            f17 = E.fig17_speedup(
                progress=progress("fig17"), log_every=4, supervise=supervise, **kw
            )
            if f17:
                mk = statistics.mean(v["makespan_speedup"] for v in f17.values())
                print(f"fig17: avg makespan speedup {pct(mk)} (paper 60.73%)")
            else:
                print("fig17: no surviving cells")
    except SweepInterrupted as exc:
        print(f"figures: {exc}", file=sys.stderr)
        ckpt = args.checkpoint or DEFAULT_FIGURES_CHECKPOINT
        print(
            f"figures: partial results saved; rerun with "
            f"`repro figures --resume --checkpoint {ckpt}` to continue",
            file=sys.stderr,
        )
        return 130
    finally:
        if journal is not None:
            journal.close()

    if report is not None:
        done = report.completed + report.resumed
        resumed = f" ({report.resumed} resumed from checkpoint)" if report.resumed else ""
        print(f"supervised: {done}/{report.total} cells{resumed}")
        for f in report.failures:
            print(
                f"  quarantined cell {f.index} ({f.kind} after "
                f"{f.attempts} attempts): {f.message}",
                file=sys.stderr,
            )
    print("done; see `pytest benchmarks/ --benchmark-only -s` for every figure")
    return 0


def cmd_info(args) -> int:
    from repro.eval.area import mac_area
    from repro.eval.experiments import table1_config

    print(
        format_table(
            ["parameter", "value"],
            [[k, v] for k, v in table1_config().items()],
            title="Table 1 configuration",
        )
    )
    report = mac_area()
    print(
        f"MAC area: {report.total_bytes} B "
        f"({report.comparators} comparators, {report.or_gates} OR gates)"
    )
    names = ", ".join(list(BENCHMARKS) + list(AUXILIARY))
    print(f"workloads: {names}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAC (Memory Access Coalescer) reproduction toolkit",
    )
    parser.add_argument(
        "--seed",
        dest="global_seed",
        type=int,
        default=None,
        help="root seed for workloads AND fault injection "
        f"(default {DEFAULT_SEED}; overrides per-command seeds)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("trace", help="generate a benchmark trace file")
    p.add_argument("benchmark", help="benchmark name (see `repro info`)")
    p.add_argument("-o", "--output", required=True, help=".trc = binary, else text")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--ops", type=int, default=3000, help="ops per thread")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("coalesce", help="run a trace through the MAC")
    p.add_argument("trace")
    _add_mac_args(p)
    p.set_defaults(func=cmd_coalesce)

    p = sub.add_parser("replay", help="replay a trace on a memory device")
    p.add_argument("trace")
    p.add_argument("--device", choices=("hmc", "hbm", "ddr"), default="hmc")
    p.add_argument("--no-mac", action="store_true", help="raw 16 B dispatch")
    _add_mac_args(p)
    _add_device_args(p)
    fault = p.add_argument_group("fault injection (hmc only)")
    fault.add_argument(
        "--flit-ber", type=float, default=0.0, help="per-FLIT error rate on links"
    )
    fault.add_argument(
        "--ack-ber", type=float, default=0.0, help="ACK/NAK corruption rate"
    )
    fault.add_argument(
        "--drop-rate", type=float, default=0.0, help="response drop rate"
    )
    fault.add_argument(
        "--dead-links",
        type=int,
        nargs="*",
        help="link indices dead from cycle 0 (degraded mode)",
    )
    fault.add_argument(
        "--retry-limit", type=int, default=8, help="replays before a link dies"
    )
    fault.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="injector seed (default: derived from --seed)",
    )
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "run", help="run one benchmark with observability (trace/metrics export)"
    )
    p.add_argument("benchmark", help="benchmark name (see `repro info`)")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--ops", type=int, default=3000, help="ops per thread")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    _add_mac_args(p)
    _add_device_args(p)
    _add_engine_arg(p)
    numa = p.add_argument_group("NUMA mesh (closed loop)")
    numa.add_argument(
        "--nodes",
        type=int,
        default=1,
        help="simulate an N-node NUMA mesh instead of the single-node "
        "open loop (each node runs its own copy of the benchmark)",
    )
    numa.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker processes for the conservative-PDES backend "
        "(0 = one per CPU; default $REPRO_SIM_SHARDS or serial); "
        "results are bit-identical to serial",
    )
    numa.add_argument(
        "--interconnect-latency",
        type=int,
        default=120,
        help="node-to-node hop latency in cycles (the PDES lookahead)",
    )
    numa.add_argument(
        "--interleave-bytes",
        type=int,
        default=1 << 12,
        help="address-interleaving granularity across nodes",
    )
    obs = p.add_argument_group("observability")
    obs.add_argument(
        "--trace-out",
        default=None,
        help="write cycle-stamped events here (.jsonl = JSONL, else "
        "Chrome-trace JSON loadable in Perfetto)",
    )
    obs.add_argument(
        "--metrics-out",
        default=None,
        help="write the flat namespaced metrics dict as JSON",
    )
    obs.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        help="event ring-buffer size (oldest events drop beyond it)",
    )
    obs.add_argument(
        "--attribution",
        action="store_true",
        help="collect per-stage latency + stall causes; the breakdown "
        "lands under attribution.* in --metrics-out (readable by "
        "`repro analyze --metrics`); pins --nodes runs to one process — "
        "use --timeline-out for a shard-aware view",
    )
    obs.add_argument(
        "--timeline-out",
        default=None,
        help="write a cycle-windowed time-series JSON (bandwidth, queue "
        "depths, stall rates per epoch; read with `repro analyze "
        "--timeline`); shard-aware under REPRO_SIM_SHARDS",
    )
    obs.add_argument(
        "--timeline-epoch",
        type=int,
        default=1024,
        help="timeline epoch length in cycles (default 1024)",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="self-profile the simulator: tick/skip ratios, vector-kernel "
        "hits, PDES window utilization; printed as a table, merged into "
        "--metrics-out under sim.*, and added as a process lane to a "
        "Chrome --trace-out",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "analyze",
        help="bottleneck report: per-stage latency breakdown + stall causes",
    )
    p.add_argument(
        "benchmark",
        nargs="?",
        default=None,
        help="benchmark to run closed-loop with attribution "
        "(omit when using --metrics or --diff)",
    )
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--ops", type=int, default=2000, help="ops per thread")
    p.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p.add_argument(
        "--no-mac",
        action="store_true",
        help="analyze the uncoalesced baseline (1-entry ARQ) instead",
    )
    _add_mac_args(p)
    _add_engine_arg(p)
    p.add_argument(
        "--metrics",
        default=None,
        help="read attribution.* from a `repro run --attribution "
        "--metrics-out` file instead of running",
    )
    p.add_argument(
        "--diff",
        nargs=2,
        metavar=("A", "B"),
        default=None,
        help="compare two saved reports/metrics files (A = before); with "
        "--timeline, A and B are timeline files and the diff reports the "
        "top regressed epochs",
    )
    p.add_argument(
        "--timeline",
        nargs="?",
        const="",
        default=None,
        metavar="FILE",
        help="report on a `repro run --timeline-out` file: phase "
        "segmentation (warm-up/steady/drain) + per-epoch critical stage; "
        "bare --timeline with --diff A B compares two timeline files",
    )
    p.add_argument("--json", action="store_true", help="emit JSON, not tables")
    p.add_argument(
        "--report-out", default=None, help="also write the report JSON here"
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("figures", help="regenerate paper figures (summary)")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--only", nargs="*", help="e.g. fig10 fig11 fig17")
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for figure fan-out (1 = serial, 0 = all "
        "cores); results are bit-identical for any value",
    )
    res = p.add_argument_group(
        "resilience (any of these engages the supervised pool)"
    )
    res.add_argument(
        "--supervised",
        action="store_true",
        help="run cells under the crash-resilient supervisor: dead "
        "workers respawn, failing cells retry then quarantine, and "
        "completed cells checkpoint to a journal",
    )
    res.add_argument(
        "--resume",
        action="store_true",
        help="replay completed cells from the checkpoint journal and "
        "re-run only the missing ones (after a crash or SIGKILL)",
    )
    res.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=f"checkpoint journal path (default {DEFAULT_FIGURES_CHECKPOINT})",
    )
    res.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any cell running longer than this",
    )
    res.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="attempts per cell before quarantine (default 2)",
    )
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("info", help="print configuration and workload list")
    p.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
