"""Comparator dispatch policies (paper sections 2.3 and 5.3)."""

from .direct import dispatch_raw
from .fixed import dispatch_fixed, useful_data_fraction
from .mshr_coalescer import dispatch_mshr

__all__ = ["dispatch_fixed", "dispatch_mshr", "dispatch_raw", "useful_data_fraction"]
