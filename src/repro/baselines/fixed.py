"""Fixed-256 B coalescer — the "just enlarge the cache line" strawman.

Section 2.3.2 argues that forcing every transaction to the HMC's maximum
size wastes up to 94.44 % of the data bandwidth for single-word irregular
accesses.  This baseline quantifies that: it aggregates with the same
row-window semantics as the MAC but always emits full-row (256 B)
packets, so its bandwidth efficiency *metric* looks ideal while its
useful-data fraction collapses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional

from repro.core.address import AddressCodec
from repro.core.config import MACConfig
from repro.core.packet import CoalescedRequest
from repro.core.request import MemoryRequest, Target
from repro.core.stats import MACStats


def dispatch_fixed(
    requests: Iterable[MemoryRequest],
    config: Optional[MACConfig] = None,
    stats: Optional[MACStats] = None,
) -> List[CoalescedRequest]:
    """Row-window aggregation that always emits max-size packets."""
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    st = stats if stats is not None else MACStats()
    window: "OrderedDict[int, CoalescedRequest]" = OrderedDict()
    out: List[CoalescedRequest] = []
    cap = cfg.target_capacity

    def emit(pkt: CoalescedRequest) -> None:
        st.record_packet(pkt)
        out.append(pkt)

    for req in requests:
        st.record_raw(req.rtype)
        if req.is_fence:
            while window:
                _, pkt = window.popitem(last=False)
                emit(pkt)
            continue
        key = codec.arq_key(req) if req.rtype.coalescable else -1
        flit = codec.flit_id(req.addr)
        pkt = window.get(key) if key >= 0 else None
        if pkt is not None and len(pkt.targets) < cap:
            pkt.targets.append(Target(req.tid, req.tag, flit))
            pkt.requests.append(req)
            continue
        if pkt is not None:
            window.pop(key)
            emit(pkt)
        elif len(window) >= cfg.arq_entries:
            _, oldest = window.popitem(last=False)
            emit(oldest)
        fresh = CoalescedRequest(
            addr=codec.row_base(req.addr),
            size=cfg.row_bytes,  # always the full row
            rtype=req.rtype,
            targets=[Target(req.tid, req.tag, flit)],
            requests=[req],
        )
        if key >= 0:
            window[key] = fresh
        else:
            emit(fresh)
    while window:
        _, pkt = window.popitem(last=False)
        emit(pkt)
    return out


def useful_data_fraction(packets: List[CoalescedRequest], flit_bytes: int = 16) -> float:
    """Demanded FLIT bytes / transferred payload bytes.

    1.0 means no overfetch; the section-2.3.2 worst case (one 64-bit word
    per 256 B packet) approaches 16/256 = 6.25 % at FLIT granularity.
    """
    payload = sum(p.size for p in packets)
    if payload == 0:
        return 0.0
    useful = 0
    for p in packets:
        distinct = {t.flit_id for t in p.targets}
        useful += len(distinct) * flit_bytes
    return useful / payload
