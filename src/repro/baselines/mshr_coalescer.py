"""MSHR-style fixed-line coalescer (paper section 2.3 baseline).

Coalesces like a conventional miss-handling architecture: the first
request to a 64 B line dispatches a 64 B transaction immediately; later
requests to the same line merge while the fill is outstanding (one
memory-latency window), regardless of how little of the line they use.
The emitted transaction size is always exactly one line — the
inflexibility the MAC removes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.address import AddressCodec
from repro.core.config import MACConfig
from repro.core.packet import CoalescedRequest
from repro.core.request import MemoryRequest, RequestType, Target
from repro.core.stats import MACStats


def dispatch_mshr(
    requests: Iterable[MemoryRequest],
    config: Optional[MACConfig] = None,
    stats: Optional[MACStats] = None,
    line_bytes: int = 64,
    mshr_entries: int = 16,
    fill_latency: int = 307,
    requests_per_cycle: float = 1.0,
) -> List[CoalescedRequest]:
    """Coalesce a trace through an MSHR file; returns 64 B line packets.

    Requests are assumed to arrive at ``requests_per_cycle``; each line
    transaction dispatches at its first miss and merges subsequent
    same-line requests for ``fill_latency`` cycles.
    """
    if line_bytes & (line_bytes - 1):
        raise ValueError("line size must be a power of two")
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    st = stats if stats is not None else MACStats()
    shift = line_bytes.bit_length() - 1
    out: List[CoalescedRequest] = []
    # line -> (packet, fill_cycle); packets are finalized lazily.
    pending: Dict[int, tuple] = {}

    def retire_due(cycle: float) -> None:
        done = [line for line, (_, fill) in pending.items() if fill <= cycle]
        for line in done:
            pkt, _ = pending.pop(line)
            st.record_packet(pkt)
            out.append(pkt)

    k = 0
    for req in requests:
        cycle = k / requests_per_cycle
        k += 1
        st.record_raw(req.rtype)
        if req.is_fence:
            retire_due(float("inf"))
            continue
        retire_due(cycle)
        line = req.addr >> shift
        flit = codec.flit_id(req.addr)
        hit = pending.get(line)
        if hit is not None:
            if req.rtype is hit[0].rtype:
                hit[0].targets.append(Target(req.tid, req.tag, flit))
                hit[0].requests.append(req)
                continue
            # Same line, different type: the write forces the pending
            # read (or vice versa) to memory before a fresh allocation.
            pkt, _ = pending.pop(line)
            st.record_packet(pkt)
            out.append(pkt)
        if len(pending) >= mshr_entries:
            # File full: oldest entry's fill completes first; retire it.
            oldest = min(pending, key=lambda line: pending[line][1])
            pkt, _ = pending.pop(oldest)
            st.record_packet(pkt)
            out.append(pkt)
        rtype = (
            req.rtype
            if req.rtype in (RequestType.LOAD, RequestType.STORE)
            else RequestType.LOAD
        )
        pkt = CoalescedRequest(
            addr=(line << shift),
            size=line_bytes,
            rtype=rtype,
            targets=[Target(req.tid, req.tag, flit)],
            requests=[req],
            issue_cycle=int(cycle),
        )
        pending[line] = (pkt, cycle + fill_latency)
    retire_due(float("inf"))
    return out
