"""Direct dispatch — the paper's "without MAC" comparator.

Every raw load/store ships to the device as an individual 16 B (one
FLIT) packet in arrival order; fences are local barriers with no memory
packet; atomics ship as 16 B atomic packets.  This is the traffic the
MAC's coalescing efficiency (Eq. 3) and speedup (Fig. 17) are measured
against.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.address import AddressCodec
from repro.core.config import MACConfig
from repro.core.packet import CoalescedRequest
from repro.core.request import MemoryRequest, Target
from repro.core.stats import MACStats


def dispatch_raw(
    requests: Iterable[MemoryRequest],
    config: Optional[MACConfig] = None,
    stats: Optional[MACStats] = None,
) -> List[CoalescedRequest]:
    """One FLIT-sized packet per raw request, no aggregation."""
    cfg = config or MACConfig()
    codec = AddressCodec(cfg)
    st = stats if stats is not None else MACStats()
    out: List[CoalescedRequest] = []
    for req in requests:
        st.record_raw(req.rtype)
        if req.is_fence:
            continue
        flit = codec.flit_id(req.addr)
        pkt = CoalescedRequest(
            addr=codec.row_base(req.addr) + flit * cfg.flit_bytes,
            size=cfg.flit_bytes,
            rtype=req.rtype,
            targets=[Target(req.tid, req.tag, flit)],
            requests=[req],
            bypassed=True,
        )
        st.record_packet(pkt)
        out.append(pkt)
    return out
