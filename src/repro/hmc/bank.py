"""DRAM bank model with selectable page policies (paper section 2.2.1).

The paper's HMC operates **closed-page**: every access activates its
row, bursts the columns, and precharges — the bank is busy for the
whole sequence and any request arriving meanwhile suffers a *bank
conflict* and waits.  That remains the default and is bit-identical to
the original closed-page-only model.

Two live alternatives quantify the paper's justification for it on the
real device model (not just the offline DDR replica the evaluation used
to use):

* ``open``     — the row stays latched in the sense amplifiers.  A
  *row hit* (same row) skips activation; a *row miss* (different row
  open) pays ``t_precharge`` before the new activation.
* ``adaptive`` — open-page with a per-bank 2-bit hit-confidence
  counter: rows stay open while hits keep coming, and the bank falls
  back to precharging immediately (closed-page behaviour) while the
  stream looks random.  Deterministic, no wall-clock or RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim import register_wake_protocol

from .timing import HMCTiming

#: Selectable bank page policies (``HMCConfig.page_policy``).
PAGE_POLICIES = ("closed", "open", "adaptive")

#: Adaptive policy: 2-bit saturating hit-confidence counter bounds.
_ADAPTIVE_MAX = 3
_ADAPTIVE_START = 1


def open_page_map(addr: int, row_bytes: int, banks: int) -> Tuple[int, int]:
    """Row-interleaved address mapping: ``addr`` -> ``(bank, row)``.

    The single source of truth for how an open-page controller maps
    physical addresses onto its banks: consecutive ``row_bytes`` rows
    interleave across ``banks``, and the in-bank row index is what the
    row buffer latches.  Shared by the live :class:`Bank` studies and
    :func:`repro.eval.page_policy.open_page_hit_rate` (which used to
    duplicate this shift arithmetic).
    """
    if row_bytes & (row_bytes - 1):
        raise ValueError("row size must be a power of two")
    if banks & (banks - 1):
        raise ValueError("bank count must be a power of two")
    row = addr >> (row_bytes - 1).bit_length()
    return row & (banks - 1), row >> (banks - 1).bit_length()


@register_wake_protocol
@dataclass(slots=True)
class Bank:
    """Busy-time + row-buffer bookkeeping for one DRAM bank."""

    timing: HMCTiming
    #: Page policy (see :data:`PAGE_POLICIES`); ``closed`` reproduces
    #: the original model cycle for cycle.
    policy: str = "closed"
    #: Cycle at which the bank can accept its next activation.
    ready_cycle: int = 0
    accesses: int = 0
    activations: int = 0
    conflicts: int = 0
    busy_cycles: int = 0
    #: Last row activated — under closed-page it never stays open, so
    #: tracking it lets tests assert that row-buffer hits are impossible;
    #: under open-page it is the row the sense amplifiers hold.
    last_row: int = -1
    #: Whether ``last_row`` is latched open (always False when closed).
    row_open: bool = False
    #: Open/adaptive row-buffer outcome counters.
    row_hits: int = 0
    row_misses: int = 0
    #: What the most recent access was ("closed", "hit", "miss", "cold")
    #: — the vault reads it to charge the ROW_MISS stall span.
    last_kind: str = ""
    #: Cycle the most recent access started service (after any conflict
    #: wait); the vault reads it to anchor stall spans.
    last_start: int = 0
    #: Adaptive policy's saturating hit-confidence counter.
    _confidence: int = _ADAPTIVE_START

    def __post_init__(self) -> None:
        if self.policy not in PAGE_POLICIES:
            raise ValueError(f"unknown page policy {self.policy!r}")

    def access(self, arrival: int, dram_row: int, columns: int) -> int:
        """Serve one access arriving at ``arrival``.

        Returns the cycle at which the burst data is available.  Under
        closed-page the precharge completes afterwards but is off the
        critical path of the requester — it only delays the *next*
        access; under open-page a row miss pays the precharge up front.
        """
        if arrival < 0:
            raise ValueError("arrival cycle must be non-negative")
        if arrival < self.ready_cycle:
            # Bank busy: conflict, wait for the in-flight access to clear.
            self.conflicts += 1
            start = self.ready_cycle
        else:
            start = arrival
        self.last_start = start
        t = self.timing
        if self.policy == "closed":
            data_ready = start + t.t_activate + t.t_column + t.burst_cycles(columns)
            occupancy = t.bank_occupancy(columns)
            self.activations += 1  # closed page: every access activates
            self.last_kind = "closed"
        else:
            data_ready, occupancy = self._open_access(dram_row, start, columns)
        self.ready_cycle = start + occupancy
        self.busy_cycles += occupancy
        self.accesses += 1
        self.last_row = dram_row
        return data_ready

    def _open_access(self, dram_row: int, start: int, columns: int):
        """Open/adaptive service: returns ``(data_ready, occupancy)``."""
        t = self.timing
        if self.row_open and self.last_row == dram_row:
            self.row_hits += 1
            self.last_kind = "hit"
            service = t.open_hit_cycles(columns)
        elif self.row_open:
            self.row_misses += 1
            self.last_kind = "miss"
            self.activations += 1
            service = t.open_miss_cycles(columns)
        else:
            # Cold bank (or adaptively precharged): plain activation.
            self.row_misses += 1
            self.last_kind = "cold"
            self.activations += 1
            service = t.t_activate + t.t_column + t.burst_cycles(columns)
        occupancy = service
        self.row_open = True
        if self.policy == "adaptive":
            # A cold access that re-touches the previously latched row
            # *would* have hit had the row stayed open — count it as
            # evidence for openness, or the counter could never recover
            # from a closed phase.
            would_hit = self.last_kind == "hit" or (
                self.last_kind == "cold" and self.last_row == dram_row
            )
            if would_hit:
                self._confidence = min(_ADAPTIVE_MAX, self._confidence + 1)
            else:
                self._confidence = max(0, self._confidence - 1)
            if self._confidence == 0:
                # No hit locality: precharge immediately, like closed page.
                occupancy += t.t_precharge
                self.row_open = False
        return start + service, occupancy

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-timed: the bank never acts on its own clock edge.

        ``ready_cycle`` is an absolute stamp consumed by the *next*
        access; nothing observable happens at it unless a new request
        arrives, so the bank schedules no wake (a busy bank's completion
        is already folded into the response's ``complete_cycle``).  The
        row-buffer state is likewise only read at the next access.
        """
        return None

    def skip_to(self, target: int) -> None:
        """All state is absolute timestamps: skipping costs nothing."""

    def busy_at(self, now: int) -> bool:
        """Whether the bank is still occupied at cycle ``now``."""
        return self.ready_cycle > now
