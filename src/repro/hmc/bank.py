"""Closed-page DRAM bank model (paper section 2.2.1).

Under the HMC's closed-page policy every access activates its row, bursts
the columns, and precharges — the bank is busy for the whole sequence and
any request arriving meanwhile suffers a *bank conflict* and waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import register_wake_protocol

from .timing import HMCTiming


@register_wake_protocol
@dataclass(slots=True)
class Bank:
    """Busy-time bookkeeping for one DRAM bank."""

    timing: HMCTiming
    #: Cycle at which the bank can accept its next activation.
    ready_cycle: int = 0
    accesses: int = 0
    activations: int = 0
    conflicts: int = 0
    busy_cycles: int = 0
    #: Last row activated — closed-page means it never stays open, but
    #: tracking it lets tests assert that row-buffer hits are impossible.
    last_row: int = -1

    def access(self, arrival: int, dram_row: int, columns: int) -> int:
        """Serve one closed-page access arriving at ``arrival``.

        Returns the cycle at which the burst data is available (the
        precharge completes afterwards but is off the critical path of
        the requester — it only delays the *next* access).
        """
        if arrival < 0:
            raise ValueError("arrival cycle must be non-negative")
        if arrival < self.ready_cycle:
            # Bank busy: conflict, wait for the in-flight access + precharge.
            self.conflicts += 1
            start = self.ready_cycle
        else:
            start = arrival
        t = self.timing
        data_ready = start + t.t_activate + t.t_column + t.burst_cycles(columns)
        occupancy = t.bank_occupancy(columns)
        self.ready_cycle = start + occupancy
        self.busy_cycles += occupancy
        self.accesses += 1
        self.activations += 1  # closed page: every access activates
        self.last_row = dram_row
        return data_ready

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.accesses if self.accesses else 0.0

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-timed: the bank never acts on its own clock edge.

        ``ready_cycle`` is an absolute stamp consumed by the *next*
        access; nothing observable happens at it unless a new request
        arrives, so the bank schedules no wake (a busy bank's completion
        is already folded into the response's ``complete_cycle``).
        """
        return None

    def skip_to(self, target: int) -> None:
        """All state is absolute timestamps: skipping costs nothing."""

    def busy_at(self, now: int) -> bool:
        """Whether the bank is still occupied at cycle ``now``."""
        return self.ready_cycle > now
