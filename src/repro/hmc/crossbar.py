"""Legacy link-to-vault crossbar of the HMC logic layer.

Modelled as a fixed-latency switch with per-vault output contention folded
into the vault front-end (which is single-issue).  Superseded by the
configurable NoC subsystem (:mod:`repro.hmc.noc`), whose ``ideal``
topology reproduces these semantics bit for bit; the class is kept as
the executable reference for the equivalence property in
``tests/sim/test_noc_equivalence.py`` (its raw ``forwarded``/``returned``
ints never participated in the StatsMixin merge contract — the NoC's
:class:`repro.hmc.noc.NoCStats` does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim import register_wake_protocol

from .timing import HMCTiming


@register_wake_protocol
@dataclass(slots=True)
class Crossbar:
    """Fixed-latency link<->vault switch."""

    timing: HMCTiming
    forwarded: int = 0
    returned: int = 0

    def to_vault(self, cycle: int) -> int:
        """Deliver a request from a link to its vault."""
        self.forwarded += 1
        return cycle + self.timing.crossbar_latency

    def to_link(self, cycle: int) -> int:
        """Deliver a response from a vault to its link."""
        self.returned += 1
        return cycle + self.timing.crossbar_latency

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Stateless fixed-latency switch: never self-schedules a wake."""
        return None

    def skip_to(self, target: int) -> None:
        """No per-cycle state: skipping costs nothing."""
