"""DRAM and interconnect timing of the HMC model.

All values are in *CPU cycles* at the node clock (3.3 GHz in Table 1),
so the MAC and the device share one time base.  The defaults are
calibrated so an unloaded 16 B read completes in ~93 ns (Table 1's
average HMC access latency); see ``tests/hmc/test_device.py``.

The DRAM stack operates closed-page (section 2.2.1): every access pays
activate + column + burst, and the row is precharged immediately after,
so the bank stays busy for ACT + COL + burst + PRE.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Every timing field, validated uniformly in ``__post_init__``.  All
#: are cycle counts and must be non-negative; zeros are legal because
#: derived models (e.g. the HBM channel reuse in :mod:`repro.hbm`)
#: null out the link/crossbar stages they do not have.
TIMING_FIELDS = (
    "link_latency",
    "cycles_per_flit",
    "crossbar_latency",
    "vault_processing",
    "t_activate",
    "t_column",
    "t_precharge",
    "cycles_per_column",
    "noc_hop_cycles",
)


@dataclass(frozen=True, slots=True)
class HMCTiming:
    """Cycle counts of each stage of an HMC access at 3.3 GHz.

    ~13.6 ns DRAM core timings (45 cycles) match published HMC/DDR-class
    tRCD/tCL/tRP estimates; the 90-cycle link traversal (~27 ns each way)
    folds SerDes, retimer and flight latency.
    """

    #: One-way link traversal (SerDes + propagation), per direction.
    link_latency: int = 92
    #: Cycles to serialize one 16 B FLIT onto a link (30 Gbps x 16 lanes
    #: = 60 GB/s per direction ~ one FLIT per 3.3 GHz cycle).
    cycles_per_flit: int = 1
    #: Crossbar (link <-> vault) traversal, per direction.
    crossbar_latency: int = 8
    #: Vault-controller front-end processing per request.
    vault_processing: int = 8
    #: Row activation (tRCD).
    t_activate: int = 45
    #: Column access (tCL / tCAS).
    t_column: int = 45
    #: Precharge (tRP) — the closed-page tax on the *next* access.
    t_precharge: int = 45
    #: TSV burst cycles per 32 B column.
    cycles_per_column: int = 4
    #: Per-hop traversal cycles of the ring/mesh NoC topologies
    #: (:mod:`repro.hmc.noc`); the flat ideal/xbar switches have no hops.
    noc_hop_cycles: int = 2

    def __post_init__(self) -> None:
        for name in TIMING_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, int):
                raise ValueError(f"{name} must be an integer cycle count")
            if value < 0:
                raise ValueError(f"{name} must be non-negative")

    def burst_cycles(self, columns: int) -> int:
        """Data-burst cycles for ``columns`` 32 B column accesses."""
        return columns * self.cycles_per_column

    def bank_occupancy(self, columns: int) -> int:
        """Cycles the bank is unavailable per closed-page access."""
        return (
            self.t_activate + self.t_column + self.burst_cycles(columns) + self.t_precharge
        )

    def open_hit_cycles(self, columns: int) -> int:
        """Open-page row hit: the open row serves straight from the
        sense amplifiers — column access + burst, no activation."""
        return self.t_column + self.burst_cycles(columns)

    def open_miss_cycles(self, columns: int) -> int:
        """Open-page row miss with another row open: precharge it,
        activate the new row, then column access + burst."""
        return (
            self.t_precharge + self.t_activate + self.t_column
            + self.burst_cycles(columns)
        )

    def unloaded_read_latency(self, request_flits: int, response_flits: int, columns: int) -> int:
        """End-to-end latency of one isolated read (no queueing)."""
        return (
            request_flits * self.cycles_per_flit
            + self.link_latency
            + self.crossbar_latency
            + self.vault_processing
            + self.t_activate
            + self.t_column
            + self.burst_cycles(columns)
            + self.crossbar_latency
            + self.link_latency
            + response_flits * self.cycles_per_flit
        )
