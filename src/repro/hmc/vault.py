"""Vault controller model.

Each vault hosts a memory controller in the HMC logic layer managing its
own banks.  The controller front-end is a single-issue queue: requests
are admitted in arrival order, pay a fixed processing latency, and then
occupy their target bank per the closed-page timing in
:mod:`repro.hmc.bank`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs.attribution import NULL_ATTRIBUTION, StallCause
from ..obs.protocol import StatsMixin
from ..obs.tracer import NULL_TRACER
from ..sim import register_wake_protocol
from ..sim import vector as _vector
from .bank import Bank
from .config import HMCConfig
from .timing import HMCTiming


@dataclass(slots=True)
class VaultStats(StatsMixin):
    requests: int = 0
    reads: int = 0
    writes: int = 0
    queue_wait_cycles: int = 0
    service_cycles: int = 0


@register_wake_protocol
class Vault:
    """One vault: front-end queue + banks."""

    def __init__(
        self, index: int, config: HMCConfig, tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
    ) -> None:
        self.index = index
        self.config = config
        self.timing: HMCTiming = config.timing
        self.tracer = tracer
        self.attrib = attrib
        self.banks: List[Bank] = [
            Bank(self.timing, policy=config.page_policy)
            for _ in range(config.banks_per_vault)
        ]
        #: Cycle at which the controller front-end frees up.
        self.frontend_ready = 0
        #: Bank-dispatch cycle of the most recent :meth:`access` (the
        #: device reads it to stamp the ``bank_dispatch`` mark).
        self.last_dispatched = 0
        self.stats = VaultStats()

    def access(
        self, arrival: int, bank_idx: int, dram_row: int, columns: int, is_write: bool
    ) -> int:
        """Serve one request; returns the cycle its data leaves the vault.

        The front-end admits one request per ``vault_processing`` window
        (in-order), then the bank timing applies.  Writes complete (for
        acknowledgement purposes) when the burst has been absorbed.
        """
        if not 0 <= bank_idx < len(self.banks):
            raise ValueError(f"bank {bank_idx} out of range")
        st = self.stats
        st.requests += 1
        if is_write:
            st.writes += 1
        else:
            st.reads += 1

        start = max(arrival, self.frontend_ready)
        st.queue_wait_cycles += start - arrival
        self.frontend_ready = start + self.timing.vault_processing
        dispatched = start + self.timing.vault_processing
        self.last_dispatched = dispatched

        bank = self.banks[bank_idx]
        conflicts_before = bank.conflicts
        at = self.attrib
        if at.enabled:
            if start > arrival:
                at.stall_span(
                    "vault", StallCause.VAULT_QUEUE_FULL, arrival, start
                )
            if bank.ready_cycle > dispatched:
                at.stall_span(
                    "bank", StallCause.BANK_CONFLICT, dispatched, bank.ready_cycle
                )
            at.sample_depth(
                "vault_backlog", arrival, max(0, self.frontend_ready - arrival)
            )
        done = bank.access(dispatched, dram_row, columns)
        if at.enabled and bank.last_kind == "miss":
            # Open-page row miss: the precharge of the previously open
            # row is on the requester's critical path — charge it where
            # it was paid, at the start of the bank's service window.
            at.stall_span(
                "bank", StallCause.ROW_MISS,
                bank.last_start, bank.last_start + self.timing.t_precharge,
            )
        st.service_cycles += done - arrival
        if self.tracer.enabled:
            self.tracer.emit(
                "vault", "activate", dispatched,
                vault=self.index, bank=bank_idx, row=dram_row,
                write=is_write,
            )
            if bank.conflicts > conflicts_before:
                self.tracer.emit(
                    "vault", "conflict", dispatched,
                    vault=self.index, bank=bank_idx, row=dram_row,
                )
        return done

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-timed: the controller acts only when a request arrives.

        ``frontend_ready`` and every bank's ``ready_cycle`` are absolute
        stamps folded into response completion times at :meth:`access`;
        no per-cycle state advances, so the vault schedules no wake.
        """
        return None

    def skip_to(self, target: int) -> None:
        """All state is absolute timestamps: skipping costs nothing."""

    def busy_banks(self, now: int) -> int:
        """Banks still occupied at ``now`` (strided timing query).

        Batched over the vault's bank array by the vectorized kernels
        (:func:`repro.sim.vector.busy_count`) — the introspection form
        of "all vaults busy every cycle" used by hang snapshots and the
        busy-phase bench.
        """
        return _vector.busy_count([b.ready_cycle for b in self.banks], now)

    def busy_until(self) -> int:
        """Latest cycle at which any of this vault's banks is occupied."""
        return max(
            self.frontend_ready,
            _vector.max_ready([b.ready_cycle for b in self.banks]),
        )

    # -- aggregates -----------------------------------------------------------

    @property
    def bank_conflicts(self) -> int:
        return sum(b.conflicts for b in self.banks)

    @property
    def bank_accesses(self) -> int:
        return sum(b.accesses for b in self.banks)

    @property
    def activations(self) -> int:
        return sum(b.activations for b in self.banks)

    @property
    def row_hits(self) -> int:
        return sum(b.row_hits for b in self.banks)

    @property
    def row_misses(self) -> int:
        return sum(b.row_misses for b in self.banks)
