"""Device-level statistics of the HMC model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..obs.metrics import Histogram
from ..obs.protocol import StatsMixin


@dataclass(slots=True)
class HMCStats(StatsMixin):
    """Aggregate counters of one simulated device.

    ``bank_conflicts`` feeds Fig. 12; latency sums feed Fig. 17; wire
    FLIT counts cross-check the bandwidth metrics of Figs. 13/14.

    Per-request latencies live in a bounded :class:`Histogram` (exact up
    to its sample limit, bucketed beyond), so a long replay no longer
    grows an unbounded Python list; :attr:`latencies` remains as a
    compatibility view over the exact sample prefix.
    """

    MERGE_MAX = frozenset({"last_completion"})
    MERGE_MIN_SENTINEL = frozenset({"first_arrival"})
    SNAPSHOT_DERIVED = ("mean_latency", "makespan")

    requests: int = 0
    reads: int = 0
    writes: int = 0
    atomics: int = 0
    payload_bytes: int = 0
    wire_flits: int = 0
    bank_conflicts: int = 0
    activations: int = 0
    #: Row-buffer outcomes under the open/adaptive page policies
    #: (:mod:`repro.hmc.bank`); both stay zero under closed page.
    row_hits: int = 0
    row_misses: int = 0
    total_latency_cycles: int = 0
    #: Completion cycle of the last request (stream makespan anchor).
    last_completion: int = 0
    #: Arrival cycle of the first request.
    first_arrival: int = -1
    #: Bounded per-request latency distribution.
    latency_hist: Histogram = field(default_factory=Histogram)
    size_histogram: Dict[int, int] = field(default_factory=dict)
    #: Per-site fault/recovery counters (``site -> event -> count``).
    #: Shares the injector's live FaultStats dict; empty when fault
    #: injection is disabled.
    fault_events: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(
        self, arrival: int, completion: int, size: int, conflicts_delta: int
    ) -> None:
        self.requests += 1
        self.payload_bytes += size
        lat = completion - arrival
        self.total_latency_cycles += lat
        self.latency_hist.add(lat)
        self.size_histogram[size] = self.size_histogram.get(size, 0) + 1
        self.bank_conflicts += conflicts_delta
        self.last_completion = max(self.last_completion, completion)
        if self.first_arrival < 0 or arrival < self.first_arrival:
            self.first_arrival = arrival

    @property
    def latencies(self) -> List[int]:
        """Exact per-request latencies (compatibility view).

        Faithful while the run is shorter than the histogram's sample
        limit; truncated to the exact prefix beyond it.
        """
        return [int(v) for v in self.latency_hist.samples]

    @property
    def mean_latency(self) -> float:
        return self.total_latency_cycles / self.requests if self.requests else 0.0

    @property
    def makespan(self) -> int:
        """Cycles from first arrival to last completion."""
        if self.first_arrival < 0:
            return 0
        return self.last_completion - self.first_arrival

    @property
    def wire_bytes(self) -> int:
        return self.wire_flits * 16

    def latency_percentile(self, q: float) -> float:
        """q-quantile (0..1) of per-request latency, linear-interpolated."""
        return self.latency_hist.quantile(q)

    @property
    def p50_latency(self) -> float:
        return self.latency_percentile(0.5)

    @property
    def p99_latency(self) -> float:
        return self.latency_percentile(0.99)
