"""Top-level HMC device model (the HMCSim-3.0 stand-in).

An event-timed queueing model: each resource on the path of a request —
link request channel, crossbar, vault front-end, DRAM bank, crossbar,
link response channel — keeps a next-free cycle; a request submitted at
its arrival cycle threads through them in order and the device returns a
:class:`repro.core.packet.CoalescedResponse` stamped with the completion
cycle.  Requests must be submitted in non-decreasing arrival order (the
MAC emits them that way); this keeps the model simple and fast while
preserving queueing, serialization and bank-conflict behaviour.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.packet import CoalescedRequest, CoalescedResponse

from .config import HMCConfig
from .crossbar import Crossbar
from .link import Link
from .packet import HMCCommand, WirePacket, encode
from .stats import HMCStats
from .vault import Vault


class HMCDevice:
    """One simulated HMC cube.

    Example::

        dev = HMCDevice()
        resp = dev.submit(packet, arrival_cycle=100)
        assert resp.complete_cycle > 100
    """

    def __init__(self, config: Optional[HMCConfig] = None) -> None:
        self.config = config or HMCConfig()
        self.links: List[Link] = [
            Link(i, self.config.timing) for i in range(self.config.links)
        ]
        self.crossbar = Crossbar(self.config.timing)
        self.vaults: List[Vault] = [
            Vault(i, self.config) for i in range(self.config.vaults)
        ]
        self.stats = HMCStats()
        self._last_arrival = 0
        self._rr_next = 0

    # -- submission ------------------------------------------------------------

    def submit(self, request: CoalescedRequest, arrival: int) -> CoalescedResponse:
        """Serve one coalesced request arriving at cycle ``arrival``.

        Returns the completed response; all resource bookkeeping (link
        occupancy, bank busy windows, conflicts) is updated as a side
        effect.
        """
        if arrival < self._last_arrival:
            raise ValueError("requests must be submitted in arrival order")
        self._last_arrival = arrival

        wire = encode(request, self.config)
        link = self._pick_link(arrival)

        # Host -> device: serialize the request packet, cross the fabric.
        at_device = link.request.transmit(arrival, wire.request_flits)
        at_vault = self.crossbar.to_vault(at_device)

        # Vault + bank service (closed-page).
        vault = self.vaults[wire.vault]
        conflicts_before = vault.banks[wire.bank].conflicts
        data_ready = vault.access(
            at_vault, wire.bank, wire.dram_row, wire.columns, request.is_write
        )
        conflicts_delta = vault.banks[wire.bank].conflicts - conflicts_before

        # Device -> host: response packet back through crossbar + link.
        at_link = self.crossbar.to_link(data_ready)
        complete = link.response.transmit(at_link, wire.response_flits)

        self._record(request, wire, arrival, complete, conflicts_delta)
        return CoalescedResponse(
            request=request,
            complete_cycle=complete,
            service_cycles=complete - arrival,
        )

    def submit_stream(
        self, requests: List[CoalescedRequest]
    ) -> List[CoalescedResponse]:
        """Serve a list of requests at their ``issue_cycle`` stamps."""
        ordered = sorted(requests, key=lambda r: r.issue_cycle)
        return [self.submit(r, r.issue_cycle) for r in ordered]

    # -- internals ---------------------------------------------------------------

    def _pick_link(self, arrival: int) -> Link:
        """Round-robin across links, skipping ahead to a less-loaded one.

        The host interleaves packets over all lanes; pure min-ready
        selection would pile every packet onto link 0 whenever all links
        are instantaneously free, starving the other three of responses.
        Round-robin spreads request *and* response serialization load.
        """
        n = len(self.links)
        start = self._rr_next
        self._rr_next = (start + 1) % n
        best = self.links[start]
        best_load = best.request.ready_cycle + best.response.ready_cycle
        for i in range(1, n):
            cand = self.links[(start + i) % n]
            load = cand.request.ready_cycle + cand.response.ready_cycle
            if load + 64 < best_load:  # switch only on clear imbalance
                best, best_load = cand, load
        return best

    def _record(
        self,
        request: CoalescedRequest,
        wire: WirePacket,
        arrival: int,
        complete: int,
        conflicts_delta: int,
    ) -> None:
        st = self.stats
        st.record(arrival, complete, request.size, conflicts_delta)
        st.wire_flits += wire.total_flits
        st.activations += 1
        if wire.command is HMCCommand.RD:
            st.reads += 1
        elif wire.command is HMCCommand.WR:
            st.writes += 1
        else:
            st.atomics += 1

    # -- aggregates ----------------------------------------------------------------

    @property
    def bank_conflicts(self) -> int:
        return sum(v.bank_conflicts for v in self.vaults)

    @property
    def activations(self) -> int:
        return sum(v.activations for v in self.vaults)

    def unloaded_read_latency(self, size: int = 16) -> int:
        """Analytic latency of one isolated read (Table 1 calibration)."""
        cfg = self.config
        return cfg.timing.unloaded_read_latency(
            cfg.request_flits(size, False),
            cfg.response_flits(size, False),
            cfg.columns(size),
        )
