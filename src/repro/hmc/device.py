"""Top-level HMC device model (the HMCSim-3.0 stand-in).

An event-timed queueing model: each resource on the path of a request —
link request channel, crossbar, vault front-end, DRAM bank, crossbar,
link response channel — keeps a next-free cycle; a request submitted at
its arrival cycle threads through them in order and the device returns a
:class:`repro.core.packet.CoalescedResponse` stamped with the completion
cycle.  Requests must be submitted in non-decreasing arrival order (the
MAC emits them that way); this keeps the model simple and fast while
preserving queueing, serialization and bank-conflict behaviour.

With a :class:`repro.faults.FaultConfig` attached to the
:class:`HMCConfig`, the device additionally survives injected faults:

* link channels run the CRC/NAK/replay retry protocol
  (:mod:`repro.hmc.link`); a link that exhausts its retry budget is
  declared dead and traffic is steered across the remaining links
  (degraded mode, with the bandwidth loss reported);
* transient vault errors trigger ECC-style re-reads, and accesses that
  stay corrupted beyond the configured limit return *poisoned*
  responses instead of hanging;
* whole responses may be poisoned, dropped (``submit`` returns ``None``
  so the node-side timeout recovery re-issues the packet) or delayed.

Without a fault config every code path below is the original fault-free
model, cycle for cycle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.packet import CoalescedRequest, CoalescedResponse
from repro.faults.injector import FaultInjector
from repro.faults.stats import FaultStats
from repro.obs.attribution import NULL_ATTRIBUTION
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.sim import register_wake_protocol
from repro.sim import vector as _vector

from .config import HMCConfig
from .link import Link, LinkFailedError
from .noc import build_noc
from .packet import HMCCommand, WirePacket, encode
from .stats import HMCStats
from .vault import Vault


@register_wake_protocol
class HMCDevice:
    """One simulated HMC cube.

    Example::

        dev = HMCDevice()
        resp = dev.submit(packet, arrival_cycle=100)
        assert resp.complete_cycle > 100
    """

    def __init__(
        self, config: Optional[HMCConfig] = None, tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
    ) -> None:
        self.config = config or HMCConfig()
        self.tracer = tracer
        self.attrib = attrib
        self.links: List[Link] = [
            Link(i, self.config.timing, tracer=tracer, attrib=attrib)
            for i in range(self.config.links)
        ]
        self.noc = build_noc(self.config, attrib=attrib)
        self.vaults: List[Vault] = [
            Vault(i, self.config, tracer=tracer, attrib=attrib)
            for i in range(self.config.vaults)
        ]
        self.stats = HMCStats()
        self._last_arrival = 0
        self._rr_next = 0
        self.injector: Optional[FaultInjector] = None
        self.fault_stats: Optional[FaultStats] = None
        if self.config.faults is not None:
            self.fault_stats = FaultStats()
            self.injector = FaultInjector(self.config.faults, self.fault_stats)
            for link in self.links:
                link.attach_faults(self.injector, self.config.faults)
            # Expose the live per-site counters through the stats layer.
            self.stats.fault_events = self.fault_stats.counters

    # -- submission ------------------------------------------------------------

    def submit(
        self, request: CoalescedRequest, arrival: int
    ) -> Optional[CoalescedResponse]:
        """Serve one coalesced request arriving at cycle ``arrival``.

        Returns the completed response; all resource bookkeeping (link
        occupancy, bank busy windows, conflicts) is updated as a side
        effect.  With fault injection enabled the response may be marked
        poisoned, or the call may return ``None`` when the response was
        lost in flight (the node-side timeout recovery re-issues it).
        """
        if arrival < self._last_arrival:
            raise ValueError("requests must be submitted in arrival order")
        self._last_arrival = arrival

        wire = encode(request, self.config)

        # Host -> device: serialize the request packet.  A link that dies
        # mid-transmission is recorded and the packet re-routed across the
        # surviving links from the failure-detection cycle onward.
        link, at_device = self._transmit_request(wire, arrival)
        at_vault = self.noc.to_vault(
            at_device, wire.vault, link.index, wire.request_flits
        )

        # Vault + bank service, with transient-error re-reads.
        vault = self.vaults[wire.vault]
        bank = vault.banks[wire.bank]
        conflicts_before = bank.conflicts
        hits_before = bank.row_hits
        misses_before = bank.row_misses
        activations_before = bank.activations
        data_ready = vault.access(
            at_vault, wire.bank, wire.dram_row, wire.columns, request.is_write
        )
        poisoned = False
        if self.injector is not None:
            rereads = 0
            while self.injector.vault_error(wire.vault, data_ready):
                rereads += 1
                if rereads > self.config.faults.vault_error_limit:
                    # Uncorrectable: deliver poison rather than hang.
                    poisoned = True
                    self.fault_stats.record(f"vault{wire.vault}", "poisoned")
                    break
                self.fault_stats.record(f"vault{wire.vault}", "reread")
                data_ready = vault.access(
                    data_ready, wire.bank, wire.dram_row, wire.columns, request.is_write
                )
        conflicts_delta = bank.conflicts - conflicts_before

        # Device -> host: response packet back through the NoC + link.
        at_link = self.noc.to_link(
            data_ready, wire.vault, link.index, wire.response_flits
        )
        complete = self._transmit_response(link, wire, at_link)

        delay = 0
        dropped = False
        if self.injector is not None:
            fate, fate_delay = self.injector.response_fate(complete)
            if fate == "poison":
                poisoned = True
            elif fate == "drop":
                dropped = True
            elif fate == "delay":
                delay = fate_delay
        complete += delay

        self._record(
            request, wire, arrival, complete, conflicts_delta,
            bank.row_hits - hits_before,
            bank.row_misses - misses_before,
            bank.activations - activations_before,
        )
        at = self.attrib
        if at.enabled:
            # Inlined AttributionCollector.mark: five stamps per raw
            # request make this the hottest attribution site.
            dispatched = vault.last_dispatched
            for raw in request.requests:
                m = raw.marks
                if m is None:
                    m = raw.marks = {}
                m["xbar_arrive"] = at_device
                m["vault_arrive"] = at_vault
                m["bank_dispatch"] = dispatched
                m["data_ready"] = data_ready
                m["complete"] = complete
        if dropped:
            return None
        return CoalescedResponse(
            request=request,
            complete_cycle=complete,
            service_cycles=complete - arrival,
            poisoned=poisoned,
        )

    def submit_stream(
        self, requests: List[CoalescedRequest]
    ) -> List[CoalescedResponse]:
        """Serve a list of requests at their ``issue_cycle`` stamps.

        Dropped responses (fault injection) are omitted from the result.
        """
        ordered = sorted(requests, key=lambda r: r.issue_cycle)
        out = []
        for r in ordered:
            resp = self.submit(r, r.issue_cycle)
            if resp is not None:
                out.append(resp)
        return out

    # -- internals ---------------------------------------------------------------

    def _transmit_request(self, wire: WirePacket, arrival: int):
        """Send the request packet, steering around dead links."""
        link = self._pick_link(arrival)
        if self.injector is None:
            return link, link.request.transmit(arrival, wire.request_flits)
        while True:
            try:
                return link, link.request.transmit(arrival, wire.request_flits)
            except LinkFailedError as err:
                self._note_failure(link)
                arrival = max(arrival, err.cycle)
                link = self._pick_link(arrival)

    def _transmit_response(self, link: Link, wire: WirePacket, at_link: int) -> int:
        """Send the response packet, steering around dead links."""
        if self.injector is None:
            return link.response.transmit(at_link, wire.response_flits)
        # Prefer the request's own link; the crossbar can hand the
        # response to any surviving link's response channel.
        candidates = [link] + [other for other in self.links if other is not link]
        for cand in candidates:
            if cand.failed:
                continue
            try:
                return cand.response.transmit(at_link, wire.response_flits)
            except LinkFailedError as err:
                self._note_failure(cand)
                at_link = max(at_link, err.cycle)
        raise RuntimeError("all HMC links failed; device unreachable")

    def _note_failure(self, link: Link) -> None:
        """Record a newly dead link and check the device is still reachable."""
        self.fault_stats.record(f"link{link.index}", "rerouted_after_failure")
        if not self.live_links:
            raise RuntimeError("all HMC links failed; device unreachable")

    def _pick_link(self, arrival: int) -> Link:
        """Round-robin across links, skipping ahead to a less-loaded one.

        The host interleaves packets over all lanes; pure min-ready
        selection would pile every packet onto link 0 whenever all links
        are instantaneously free, starving the other three of responses.
        Round-robin spreads request *and* response serialization load.
        In degraded mode (fault injection) dead links are skipped.
        """
        n = len(self.links)
        if self.injector is not None and any(link.failed for link in self.links):
            live = self.live_links
            if not live:
                raise RuntimeError("all HMC links failed; device unreachable")
            start = self._rr_next % len(live)
            self._rr_next = (self._rr_next + 1) % len(live)
            best = live[start]
            best_load = best.request.ready_cycle + best.response.ready_cycle
            for i in range(1, len(live)):
                cand = live[(start + i) % len(live)]
                load = cand.request.ready_cycle + cand.response.ready_cycle
                if load + 64 < best_load:
                    best, best_load = cand, load
            return best
        start = self._rr_next
        self._rr_next = (start + 1) % n
        best = self.links[start]
        best_load = best.request.ready_cycle + best.response.ready_cycle
        for i in range(1, n):
            cand = self.links[(start + i) % n]
            load = cand.request.ready_cycle + cand.response.ready_cycle
            if load + 64 < best_load:  # switch only on clear imbalance
                best, best_load = cand, load
        return best

    def _record(
        self,
        request: CoalescedRequest,
        wire: WirePacket,
        arrival: int,
        complete: int,
        conflicts_delta: int,
        row_hits_delta: int = 0,
        row_misses_delta: int = 0,
        activations_delta: int = 1,
    ) -> None:
        st = self.stats
        st.record(arrival, complete, request.size, conflicts_delta)
        st.wire_flits += wire.total_flits
        if self.config.page_policy == "closed":
            # Legacy accounting: one activation command per packet
            # (fault re-reads re-activate the bank but are not re-sent
            # by the host) — kept bit-identical to the pre-NoC model.
            st.activations += 1
        else:
            st.activations += activations_delta
        st.row_hits += row_hits_delta
        st.row_misses += row_misses_delta
        if wire.command is HMCCommand.RD:
            st.reads += 1
        elif wire.command is HMCCommand.WR:
            st.writes += 1
        else:
            st.atomics += 1

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-timed: responses materialize inside :meth:`submit`.

        The whole device advances by absolute next-free stamps (links,
        crossbar, vault front-ends, banks); completion cycles are
        returned to the node, which holds them in its in-flight heap —
        the heap head, not the device, is the wake source.
        """
        return None

    def skip_to(self, target: int) -> None:
        """All state is absolute timestamps: skipping costs nothing."""

    def busy_until(self) -> int:
        """Latest cycle any device resource is still occupied.

        A strided sweep over every vault's bank-timing array and both
        channels of every link (vectorized, see :mod:`repro.sim.vector`)
        — the memory-side horizon the busy-phase bench reports.
        """
        horizon = _vector.max_ready([v.busy_until() for v in self.vaults])
        horizon = max(horizon, self.noc.busy_until())
        return max(horizon, _vector.max_ready([l.busy_until() for l in self.links]))

    def busy_vaults(self, now: int) -> int:
        """Vaults with at least one occupied bank at cycle ``now``."""
        return sum(1 for v in self.vaults if v.busy_banks(now))

    # -- aggregates ----------------------------------------------------------------

    @property
    def bank_conflicts(self) -> int:
        return sum(v.bank_conflicts for v in self.vaults)

    @property
    def activations(self) -> int:
        return sum(v.activations for v in self.vaults)

    @property
    def row_hits(self) -> int:
        return sum(v.row_hits for v in self.vaults)

    @property
    def row_misses(self) -> int:
        return sum(v.row_misses for v in self.vaults)

    @property
    def live_links(self) -> List[Link]:
        """Links still carrying traffic (all of them when faults are off)."""
        return [link for link in self.links if not link.failed]

    @property
    def failed_links(self) -> List[int]:
        """Indices of links declared dead by the retry protocol."""
        return [link.index for link in self.links if link.failed]

    @property
    def link_bandwidth_loss(self) -> float:
        """Fraction of aggregate link bandwidth lost to dead links."""
        if not self.links:
            return 0.0
        return len(self.failed_links) / len(self.links)

    def timeline_probes(self):
        """Probes for :class:`repro.obs.timeline.Timeline` (DESIGN 13).

        All rates: the device is event-timed (no instantaneous queue to
        read at a boundary), so the time-resolved signals are the deltas
        of its monotonic counters — wire traffic, bank conflicts, vault
        queue wait, and link retry pressure.
        """
        stats = self.stats
        noc_stats = self.noc.stats
        return [
            ("device.requests", "rate", lambda: stats.requests),
            ("device.wire_flits", "rate", lambda: stats.wire_flits),
            ("device.bank_conflicts", "rate", lambda: self.bank_conflicts),
            (
                "vaults.queue_wait_cycles",
                "rate",
                lambda: sum(v.stats.queue_wait_cycles for v in self.vaults),
            ),
            (
                "links.retries",
                "rate",
                lambda: sum(l.retry_events["retries"] for l in self.links),
            ),
            (
                "noc.contention_cycles",
                "rate",
                lambda: noc_stats.contention_cycles + noc_stats.buffer_stall_cycles,
            ),
            ("bank.row_hits", "rate", lambda: self.row_hits),
            ("bank.row_misses", "rate", lambda: self.row_misses),
        ]

    def metrics(self) -> dict:
        """Flat namespaced metrics over the device's stats sources."""
        reg = MetricsRegistry()
        reg.register("device", self.stats)
        # The NoC's StatsMixin dataclass rides the same snapshot/merge
        # contract as every other source (the legacy crossbar's raw
        # ints were silently dropped by PDES shard merges).
        reg.register("noc", self.noc.stats)

        def vault_totals() -> dict:
            return {
                "requests": sum(v.stats.requests for v in self.vaults),
                "queue_wait_cycles": sum(
                    v.stats.queue_wait_cycles for v in self.vaults
                ),
                "service_cycles": sum(v.stats.service_cycles for v in self.vaults),
                "bank_conflicts": self.bank_conflicts,
                "activations": self.activations,
            }

        def link_totals() -> dict:
            return {
                "wire_flits": sum(link.wire_flits for link in self.links),
                "packets": sum(
                    link.request.packets + link.response.packets
                    for link in self.links
                ),
                "busy_cycles": sum(
                    link.request.busy_cycles + link.response.busy_cycles
                    for link in self.links
                ),
                "failed": len(self.failed_links),
            }

        reg.register("vaults", vault_totals)
        reg.register("links", link_totals)
        if self.fault_stats is not None:
            reg.register("faults", self.fault_stats)
        return reg.collect()

    def unloaded_read_latency(self, size: int = 16) -> int:
        """Analytic latency of one isolated read (Table 1 calibration)."""
        cfg = self.config
        return cfg.timing.unloaded_read_latency(
            cfg.request_flits(size, False),
            cfg.response_flits(size, False),
            cfg.columns(size),
        )
