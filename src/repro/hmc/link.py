"""Serialized full-duplex HMC link model, with optional retry protocol.

Each link is modelled as two independent serialization channels (request
and response directions) with a fixed flight latency.  Serializing one
16 B FLIT costs ``cycles_per_flit``; a packet occupies the channel for
its full FLIT count, so link bandwidth is an explicit bottleneck under
heavy small-packet traffic — the effect the MAC exists to mitigate.

When a :class:`repro.faults.FaultInjector` is attached (see
:meth:`Link.attach_faults`), each channel additionally models the
HMC-spec link-level robustness machinery:

* every packet carries a sequence number and a tail CRC; the receiver
  checks the CRC on arrival and NAKs corrupted packets;
* the sender holds unacked packets in a bounded *retry buffer* and
  replays on NAK (or on a lost ACK) with exponential backoff, up to a
  configurable retry limit — beyond it the link is declared dead and
  :class:`LinkFailedError` is raised so the device can steer traffic to
  the remaining links;
* token-based flow control bounds the FLITs in flight towards the
  receiver's input buffer, so replays cannot livelock the channel;
* the receiver delivers packets exactly once, in sequence order, and
  silently re-acks duplicates created by lost ACKs.

Without an injector the original single-attempt fast path runs and the
channel is cycle-identical to the fault-free model.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs.attribution import NULL_ATTRIBUTION, StallCause
from ..obs.tracer import NULL_TRACER
from ..sim import register_wake_protocol
from .timing import HMCTiming

#: Cap on the exponential-backoff shift so huge retry limits cannot
#: overflow into absurd waits (8 << 16 ~ half a million cycles).
_MAX_BACKOFF_SHIFT = 16


class LinkFailedError(RuntimeError):
    """A link channel exhausted its retry budget or was scheduled dead."""

    def __init__(self, link_index: int, direction: str, cycle: int, reason: str):
        self.link_index = link_index
        self.direction = direction
        self.cycle = cycle
        self.reason = reason
        super().__init__(
            f"link {link_index} {direction} channel failed at cycle {cycle}: {reason}"
        )


class CreditPool:
    """Bounded credit pool with timed returns.

    Used twice per channel: as the receiver's token pool (flow control)
    and as the sender's retry-buffer space.  ``acquire`` advances the
    requested start cycle until enough credits have returned, which is
    how buffer backpressure turns into link stall cycles in the
    event-timed model.
    """

    __slots__ = ("capacity", "available", "_returns")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("credit pool capacity must be positive")
        self.capacity = capacity
        self.available = capacity
        self._returns: List[Tuple[int, int]] = []

    def _reclaim(self, cycle: int) -> None:
        while self._returns and self._returns[0][0] <= cycle:
            self.available += self._returns.pop(0)[1]

    @property
    def queued_returns(self) -> int:
        """Credits scheduled to return but not yet reclaimed.

        ``available + queued_returns == capacity`` at all times — the
        token-conservation invariant the simulation sanitizer checks.
        """
        return sum(n for _, n in self._returns)

    def acquire(self, start: int, amount: int) -> int:
        """Earliest cycle >= ``start`` at which ``amount`` credits are held."""
        if amount > self.capacity:
            raise ValueError(
                f"packet needs {amount} credits but pool holds only {self.capacity}"
            )
        self._reclaim(start)
        while self.available < amount:
            at, n = self._returns.pop(0)
            start = max(start, at)
            self.available += n
        self.available -= amount
        return start

    def release(self, cycle: int, amount: int) -> None:
        """Return ``amount`` credits at ``cycle``."""
        insort(self._returns, (cycle, amount))


class RetryState:
    """Sender + receiver state of the retry protocol for one channel."""

    __slots__ = (
        "injector",
        "cfg",
        "link_index",
        "direction",
        "site",
        "tokens",
        "retry_buffer",
        "next_seq",
        "expected_seq",
        "delivered",
        "crc_errors",
        "naks",
        "retries",
        "duplicates",
        "stall_cycles",
        "failed",
        "failed_cycle",
    )

    def __init__(self, injector, cfg, link_index: int, direction: str) -> None:
        self.injector = injector
        self.cfg = cfg
        self.link_index = link_index
        self.direction = direction
        self.site = f"link{link_index}.{direction}"
        self.tokens = CreditPool(cfg.link_tokens)
        self.retry_buffer = CreditPool(cfg.retry_buffer_flits)
        #: Sender-side sequence counter stamped on each packet.
        self.next_seq = 0
        #: Receiver-side next in-order sequence number.
        self.expected_seq = 0
        #: Receiver delivery log: (seq, arrival cycle), exactly once each.
        self.delivered: List[Tuple[int, int]] = []
        self.crc_errors = 0
        self.naks = 0
        self.retries = 0
        self.duplicates = 0
        self.stall_cycles = 0
        self.failed = False
        self.failed_cycle = -1

    def fail(self, cycle: int, reason: str) -> LinkFailedError:
        self.failed = True
        self.failed_cycle = cycle
        self.injector.stats.record(self.site, "link_failed")
        return LinkFailedError(self.link_index, self.direction, cycle, reason)

    def record(self, event: str, n: int = 1) -> None:
        self.injector.stats.record(self.site, event, n)


@dataclass(slots=True)
class LinkChannel:
    """One direction of one link."""

    timing: HMCTiming
    ready_cycle: int = 0
    flits: int = 0
    packets: int = 0
    busy_cycles: int = 0
    #: Retry-protocol state; None = fault-free fast path.
    retry: Optional[RetryState] = None
    #: Event tracer (the no-op singleton unless a run attaches one).
    tracer: object = NULL_TRACER
    #: Attribution collector (no-op singleton unless a run attaches one).
    attrib: object = NULL_ATTRIBUTION
    #: Stall-site label, e.g. ``link0.req`` (set by :class:`Link`).
    site: str = "link"

    def transmit(self, arrival: int, nflits: int) -> int:
        """Serialize ``nflits`` starting no earlier than ``arrival``.

        Returns the cycle the last FLIT lands on the far side (ser time +
        flight latency).  With a retry state attached the landing cycle
        is that of the first *intact* arrival, and the channel stays busy
        through any replays.
        """
        if nflits < 1:
            raise ValueError("packets carry at least one FLIT")
        if self.retry is not None:
            return self._transmit_reliable(arrival, nflits)
        start = max(arrival, self.ready_cycle)
        ser = nflits * self.timing.cycles_per_flit
        self.ready_cycle = start + ser
        self.flits += nflits
        self.packets += 1
        self.busy_cycles += ser
        if self.attrib.enabled and start > arrival:
            self.attrib.stall_span(self.site, StallCause.LINK_BUSY, arrival, start)
        return start + ser + self.timing.link_latency

    def _transmit_reliable(self, arrival: int, nflits: int) -> int:
        """CRC-checked, sequence-numbered, token-governed transmission."""
        rs = self.retry
        inj = rs.injector
        cfg = rs.cfg
        lat = self.timing.link_latency
        if rs.failed:
            raise LinkFailedError(
                rs.link_index, rs.direction, rs.failed_cycle, "link previously failed"
            )
        start0 = max(arrival, self.ready_cycle)
        if inj.link_failed(rs.link_index, start0):
            raise rs.fail(start0, "scheduled hard failure")
        factor = inj.degrade_factor(rs.link_index, start0)
        cpf = int(math.ceil(self.timing.cycles_per_flit * factor))

        # Flow control: receiver tokens + sender retry-buffer space.
        start = rs.tokens.acquire(start0, nflits)
        start = rs.retry_buffer.acquire(start, nflits)
        rs.stall_cycles += start - start0
        at = self.attrib
        if at.enabled:
            if start0 > arrival:
                at.stall_span(self.site, StallCause.LINK_BUSY, arrival, start0)
            if start > start0:
                at.stall_span(
                    self.site, StallCause.LINK_TOKENS_EXHAUSTED, start0, start
                )
            at.sample_depth(f"{self.site}_tokens", start, rs.tokens.available)

        seq = rs.next_seq
        rs.next_seq += 1
        self.packets += 1

        t = start
        delivered_at: Optional[int] = None
        failures = 0
        while True:
            ser_end = t + nflits * cpf
            self.flits += nflits  # replays are real wire traffic
            self.busy_cycles += ser_end - t
            arrive = ser_end + lat
            if inj.flit_corrupted(rs.link_index, t, nflits, rs.site):
                # Receiver CRC check fails; NAK travels back; sender
                # replays from the retry buffer after exponential backoff.
                rs.crc_errors += 1
                rs.naks += 1
                rs.record("crc_error")
                rs.record("nak")
                if self.tracer.enabled:
                    self.tracer.emit(
                        "link", "nak", arrive, site=rs.site, seq=seq,
                        failures=failures + 1,
                    )
                failures += 1
                if failures > cfg.retry_limit:
                    self.ready_cycle = max(self.ready_cycle, ser_end)
                    if self.tracer.enabled:
                        self.tracer.emit(
                            "link", "link_failed", arrive, site=rs.site, seq=seq
                        )
                    raise rs.fail(arrive, "retry limit exceeded")
                rs.retries += 1
                rs.record("retry")
                if self.tracer.enabled:
                    self.tracer.emit(
                        "link", "retry", t, site=rs.site, seq=seq,
                        backoff=_backoff(cfg.backoff_base, failures),
                    )
                t = arrive + lat + _backoff(cfg.backoff_base, failures)
                continue
            if delivered_at is None:
                # First intact arrival: deliver exactly once, in order.
                delivered_at = arrive
                assert seq == rs.expected_seq, "retry protocol reordered packets"
                rs.expected_seq = seq + 1
                rs.delivered.append((seq, arrive))
            else:
                # Replay of an already-delivered packet (its ACK was
                # lost): the receiver discards the duplicate and re-acks.
                rs.duplicates += 1
                rs.record("duplicate_suppressed")
            if not inj.ack_corrupted(rs.link_index, arrive, rs.site):
                ack_at = arrive + lat
                break
            failures += 1
            if failures > cfg.retry_limit:
                self.ready_cycle = max(self.ready_cycle, ser_end)
                if self.tracer.enabled:
                    self.tracer.emit(
                        "link", "link_failed", arrive, site=rs.site, seq=seq
                    )
                raise rs.fail(arrive, "retry limit exceeded (lost acks)")
            rs.retries += 1
            rs.record("retry")
            if self.tracer.enabled:
                self.tracer.emit(
                    "link", "retry", arrive, site=rs.site, seq=seq, lost_ack=True
                )
            t = arrive + lat + _backoff(cfg.backoff_base, failures)

        self.ready_cycle = max(self.ready_cycle, ser_end)
        if at.enabled:
            # Extra wire time past the fault-free first landing is replay.
            first_arrive = start + nflits * cpf + lat
            if delivered_at > first_arrive:
                at.stall_span(
                    self.site, StallCause.RETRY_REPLAY, first_arrive, delivered_at
                )
        # Receiver frees its input tokens once the packet is consumed;
        # the sender frees retry-buffer space when the ACK lands.
        rs.tokens.release(delivered_at, nflits)
        rs.retry_buffer.release(ack_at, nflits)
        return delivered_at


def _backoff(base: int, failures: int) -> int:
    """Exponential backoff before the ``failures``-th replay."""
    return base << min(failures - 1, _MAX_BACKOFF_SHIFT)


@register_wake_protocol
class Link:
    """Full-duplex link: independent request/response channels."""

    def __init__(
        self, index: int, timing: HMCTiming, tracer=NULL_TRACER,
        attrib=NULL_ATTRIBUTION,
    ) -> None:
        self.index = index
        # Underscore site names: stall sites become metrics keys under
        # ``attribution.stalls.<site>.<cause>`` and must stay one dotted
        # path segment.
        self.request = LinkChannel(
            timing, tracer=tracer, attrib=attrib, site=f"link{index}_req"
        )
        self.response = LinkChannel(
            timing, tracer=tracer, attrib=attrib, site=f"link{index}_rsp"
        )

    @property
    def wire_flits(self) -> int:
        return self.request.flits + self.response.flits

    def earliest_request_slot(self, arrival: int) -> int:
        """When a request arriving at ``arrival`` could start serializing."""
        return max(arrival, self.request.ready_cycle)

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-timed: serialization happens inside ``transmit`` calls.

        Channel ``ready_cycle`` stamps are absolute and only consulted
        by the next transmission, so the link never self-schedules a
        wake — busy wire time is already folded into response
        completion cycles.
        """
        return None

    def skip_to(self, target: int) -> None:
        """All state is absolute timestamps: skipping costs nothing."""

    def busy_until(self) -> int:
        """Latest cycle either direction of the link is serializing."""
        return max(self.request.ready_cycle, self.response.ready_cycle)

    # -- fault wiring -------------------------------------------------------

    def attach_faults(self, injector, fault_config) -> None:
        """Arm the retry protocol on both channels of this link."""
        self.request.retry = RetryState(injector, fault_config, self.index, "req")
        self.response.retry = RetryState(injector, fault_config, self.index, "rsp")

    @property
    def failed(self) -> bool:
        """True once either direction has been declared dead."""
        return any(
            ch.retry is not None and ch.retry.failed
            for ch in (self.request, self.response)
        )

    @property
    def failed_cycle(self) -> int:
        """Cycle the first direction died (-1 while healthy)."""
        cycles = [
            ch.retry.failed_cycle
            for ch in (self.request, self.response)
            if ch.retry is not None and ch.retry.failed
        ]
        return min(cycles) if cycles else -1

    @property
    def retry_events(self) -> Dict[str, int]:
        """Aggregate retry-protocol counters of both channels."""
        out = {
            "crc_errors": 0,
            "naks": 0,
            "retries": 0,
            "duplicates": 0,
            "stall_cycles": 0,
        }
        for ch in (self.request, self.response):
            if ch.retry is None:
                continue
            out["crc_errors"] += ch.retry.crc_errors
            out["naks"] += ch.retry.naks
            out["retries"] += ch.retry.retries
            out["duplicates"] += ch.retry.duplicates
            out["stall_cycles"] += ch.retry.stall_cycles
        return out
