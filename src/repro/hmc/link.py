"""Serialized full-duplex HMC link model.

Each link is modelled as two independent serialization channels (request
and response directions) with a fixed flight latency.  Serializing one
16 B FLIT costs ``cycles_per_flit``; a packet occupies the channel for
its full FLIT count, so link bandwidth is an explicit bottleneck under
heavy small-packet traffic — the effect the MAC exists to mitigate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import HMCTiming


@dataclass(slots=True)
class LinkChannel:
    """One direction of one link."""

    timing: HMCTiming
    ready_cycle: int = 0
    flits: int = 0
    packets: int = 0
    busy_cycles: int = 0

    def transmit(self, arrival: int, nflits: int) -> int:
        """Serialize ``nflits`` starting no earlier than ``arrival``.

        Returns the cycle the last FLIT lands on the far side (ser time +
        flight latency).
        """
        if nflits < 1:
            raise ValueError("packets carry at least one FLIT")
        start = max(arrival, self.ready_cycle)
        ser = nflits * self.timing.cycles_per_flit
        self.ready_cycle = start + ser
        self.flits += nflits
        self.packets += 1
        self.busy_cycles += ser
        return start + ser + self.timing.link_latency


class Link:
    """Full-duplex link: independent request/response channels."""

    def __init__(self, index: int, timing: HMCTiming) -> None:
        self.index = index
        self.request = LinkChannel(timing)
        self.response = LinkChannel(timing)

    @property
    def wire_flits(self) -> int:
        return self.request.flits + self.response.flits

    def earliest_request_slot(self, arrival: int) -> int:
        """When a request arriving at ``arrival`` could start serializing."""
        return max(arrival, self.request.ready_cycle)
