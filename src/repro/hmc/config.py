"""HMC device geometry and protocol configuration.

Defaults model the paper's device (Table 1): an 8 GB HMC 2.1 cube with
4 links, 32 vaults of 16 banks each (512 banks total, section 2.2.1),
256 B closed-page DRAM rows and a packetized protocol of 16 B FLITs with
one control FLIT per packet (32 B of control per access, section 2.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.faults.config import FaultConfig

from .bank import PAGE_POLICIES
from .noc import NOC_ARBITRATIONS, NOC_TOPOLOGIES
from .timing import HMCTiming


@dataclass(frozen=True, slots=True)
class HMCConfig:
    """Geometry + protocol parameters of one HMC cube."""

    capacity_bytes: int = 8 << 30
    links: int = 4
    vaults: int = 32
    banks_per_vault: int = 16
    row_bytes: int = 256
    flit_bytes: int = 16
    #: Column (TSV burst) granularity inside a vault.
    column_bytes: int = 32
    #: Smallest/largest request payload the protocol accepts (HMC 2.1).
    min_request_bytes: int = 16
    max_request_bytes: int = 256
    #: Control FLITs per packet (header + tail = 1 FLIT = 16 B).
    control_flits_per_packet: int = 1
    #: Intra-cube interconnect topology (:mod:`repro.hmc.noc`).  The
    #: default ``ideal`` is bit-identical to the legacy fixed-latency
    #: crossbar; ``xbar``/``ring``/``mesh`` add port contention,
    #: bounded buffering and hop latency.
    noc_topology: str = "ideal"
    #: Per-output-port input-buffer depth (packets) of the non-ideal
    #: topologies; a full buffer backpressures into the link.
    noc_buffers: int = 8
    #: Port arbitration policy: ``fifo``, ``round_robin`` or
    #: ``oldest_first`` (see :mod:`repro.hmc.noc`).
    noc_arbitration: str = "fifo"
    #: DRAM bank page policy: ``closed`` (the paper's HMC, default),
    #: ``open`` or ``adaptive`` (see :mod:`repro.hmc.bank`).
    page_policy: str = "closed"
    timing: HMCTiming = field(default_factory=HMCTiming)
    #: Fault-injection + retry-protocol configuration; ``None`` (default)
    #: disables every fault path and keeps the model cycle-identical to
    #: the fault-free device.
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.links < 1 or self.vaults < 1 or self.banks_per_vault < 1:
            raise ValueError("links/vaults/banks must be positive")
        if self.noc_topology not in NOC_TOPOLOGIES:
            raise ValueError(
                f"unknown NoC topology {self.noc_topology!r} "
                f"(choose from {NOC_TOPOLOGIES})"
            )
        if self.noc_arbitration not in NOC_ARBITRATIONS:
            raise ValueError(
                f"unknown NoC arbitration {self.noc_arbitration!r} "
                f"(choose from {NOC_ARBITRATIONS})"
            )
        if self.noc_buffers < 1:
            raise ValueError("noc_buffers must be positive")
        if self.page_policy not in PAGE_POLICIES:
            raise ValueError(
                f"unknown page policy {self.page_policy!r} "
                f"(choose from {PAGE_POLICIES})"
            )
        if self.faults is not None:
            # The largest packet (max payload + control FLITs) must fit
            # in both link-level buffers or flow control deadlocks.
            worst = (
                self.max_request_bytes // self.flit_bytes
                + self.control_flits_per_packet
            )
            if self.faults.link_tokens < worst:
                raise ValueError(
                    f"link token pool ({self.faults.link_tokens} FLITs) cannot "
                    f"hold a maximum-size packet ({worst} FLITs)"
                )
            if self.faults.retry_buffer_flits < worst:
                raise ValueError(
                    f"retry buffer ({self.faults.retry_buffer_flits} FLITs) "
                    f"cannot hold a maximum-size packet ({worst} FLITs)"
                )
        if self.vaults & (self.vaults - 1):
            raise ValueError("vault count must be a power of two")
        if self.banks_per_vault & (self.banks_per_vault - 1):
            raise ValueError("bank count must be a power of two")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row size must be a power of two")
        if self.max_request_bytes > self.row_bytes:
            raise ValueError("requests may not exceed one row")

    @property
    def total_banks(self) -> int:
        """512 for the paper's 8 GB cube."""
        return self.vaults * self.banks_per_vault

    @property
    def row_offset_bits(self) -> int:
        return (self.row_bytes - 1).bit_length()

    @property
    def vault_bits(self) -> int:
        return (self.vaults - 1).bit_length()

    @property
    def bank_bits(self) -> int:
        return (self.banks_per_vault - 1).bit_length()

    # -- address mapping -----------------------------------------------------
    # HMC default mapping interleaves consecutive rows across vaults first,
    # then banks (low-order interleaving maximises vault-level parallelism
    # for streaming traffic).  Higher row bits are XOR-folded into the
    # vault/bank indices — the standard controller address hash that keeps
    # power-of-two strides (tiled matrices, histogram tables) from
    # aliasing onto a single vault.

    def vault_of(self, addr: int) -> int:
        row = addr >> self.row_offset_bits
        folded = row ^ (row >> self.vault_bits) ^ (row >> (2 * self.vault_bits))
        return folded & (self.vaults - 1)

    def bank_of(self, addr: int) -> int:
        upper = addr >> (self.row_offset_bits + self.vault_bits)
        folded = upper ^ (upper >> self.bank_bits)
        return folded & (self.banks_per_vault - 1)

    def dram_row_of(self, addr: int) -> int:
        """In-bank row index (above vault+bank bits)."""
        return addr >> (self.row_offset_bits + self.vault_bits + self.bank_bits)

    def global_row_of(self, addr: int) -> int:
        """Device-wide row number (the MAC's coalescing unit)."""
        return addr >> self.row_offset_bits

    def data_flits(self, size: int) -> int:
        """Payload FLITs for a request of ``size`` bytes."""
        if size < 1:
            raise ValueError("size must be positive")
        return -(-size // self.flit_bytes)

    def request_flits(self, size: int, is_write: bool) -> int:
        """FLITs on the request packet (writes carry the payload)."""
        data = self.data_flits(size) if is_write else 0
        return data + self.control_flits_per_packet

    def response_flits(self, size: int, is_write: bool) -> int:
        """FLITs on the response packet (reads carry the payload)."""
        data = 0 if is_write else self.data_flits(size)
        return data + self.control_flits_per_packet

    def columns(self, size: int) -> int:
        """TSV column bursts needed for ``size`` bytes."""
        return -(-size // self.column_bytes)


#: Device configuration used throughout the paper's evaluation.
PAPER_HMC = HMCConfig()
