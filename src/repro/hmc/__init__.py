"""Cycle-level model of a Hybrid Memory Cube device (HMCSim stand-in).

Models the paper's 8 GB, 4-link HMC (Table 1): 32 vaults x 16 banks with
256 B closed-page rows, a packetized FLIT protocol with 32 B of control
per access, serialized full-duplex links and a logic-layer crossbar.
"""

from .bank import Bank
from .config import HMCConfig, PAPER_HMC
from .crossbar import Crossbar
from .device import HMCDevice
from .link import Link, LinkChannel
from .packet import HMCCommand, WirePacket, encode, packet_crc, verify_crc
from .stats import HMCStats
from .timing import HMCTiming
from .vault import Vault, VaultStats

__all__ = [
    "Bank",
    "Crossbar",
    "HMCCommand",
    "HMCConfig",
    "HMCDevice",
    "HMCStats",
    "HMCTiming",
    "Link",
    "LinkChannel",
    "PAPER_HMC",
    "Vault",
    "VaultStats",
    "WirePacket",
    "encode",
    "packet_crc",
    "verify_crc",
]
