"""Cycle-level model of a Hybrid Memory Cube device (HMCSim stand-in).

Models the paper's 8 GB, 4-link HMC (Table 1): 32 vaults x 16 banks with
256 B rows (closed-page by default, live open/adaptive page policies
selectable), a packetized FLIT protocol with 32 B of control per access,
serialized full-duplex links and a configurable logic-layer NoC
(ideal crossbar, arbitrated xbar, ring or mesh — :mod:`repro.hmc.noc`).
"""

from .bank import PAGE_POLICIES, Bank, open_page_map
from .config import HMCConfig, PAPER_HMC
from .crossbar import Crossbar
from .device import HMCDevice
from .link import Link, LinkChannel
from .noc import (
    NOC_ARBITRATIONS,
    NOC_TOPOLOGIES,
    IdealNoC,
    MeshNoC,
    NoCStats,
    RingNoC,
    XbarNoC,
    build_noc,
)
from .packet import HMCCommand, WirePacket, encode, packet_crc, verify_crc
from .stats import HMCStats
from .timing import HMCTiming
from .vault import Vault, VaultStats

__all__ = [
    "Bank",
    "Crossbar",
    "HMCCommand",
    "HMCConfig",
    "HMCDevice",
    "HMCStats",
    "HMCTiming",
    "IdealNoC",
    "Link",
    "LinkChannel",
    "MeshNoC",
    "NOC_ARBITRATIONS",
    "NOC_TOPOLOGIES",
    "NoCStats",
    "PAGE_POLICIES",
    "PAPER_HMC",
    "RingNoC",
    "Vault",
    "VaultStats",
    "WirePacket",
    "XbarNoC",
    "build_noc",
    "encode",
    "open_page_map",
    "packet_crc",
    "verify_crc",
]
