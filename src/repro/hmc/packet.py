"""Wire-level view of HMC packets (paper section 2.2.2).

The device model consumes :class:`repro.core.packet.CoalescedRequest`
objects; this module computes their wire representation — FLIT counts,
header/tail control overhead, CRC-carrying tail — and defines the
response record returned by the device.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

from repro.core.packet import CoalescedRequest
from repro.core.request import RequestType

from .config import HMCConfig


class HMCCommand(enum.Enum):
    """Subset of HMC 2.1 request commands the model distinguishes."""

    RD = "read"
    WR = "write"
    ATOMIC = "atomic"

    @classmethod
    def for_request(cls, req: CoalescedRequest) -> "HMCCommand":
        if req.rtype is RequestType.STORE:
            return cls.WR
        if req.rtype is RequestType.ATOMIC:
            return cls.ATOMIC
        return cls.RD


@dataclass(frozen=True, slots=True)
class WirePacket:
    """FLIT-level accounting of one request/response exchange."""

    command: HMCCommand
    payload_bytes: int
    request_flits: int
    response_flits: int
    vault: int
    bank: int
    dram_row: int
    columns: int

    @property
    def total_flits(self) -> int:
        return self.request_flits + self.response_flits

    @property
    def wire_bytes(self) -> int:
        return self.total_flits * 16

    @property
    def control_bytes(self) -> int:
        return self.wire_bytes - self.payload_bytes


def encode(req: CoalescedRequest, config: HMCConfig) -> WirePacket:
    """Compute the wire footprint of one coalesced request."""
    if req.size < config.min_request_bytes and req.rtype is not RequestType.ATOMIC:
        # HMC accepts 16 B as its smallest transaction; the MAC's bypass
        # packets are exactly that.
        if req.size != config.flit_bytes:
            raise ValueError(f"unsupported request size {req.size}")
    if req.size > config.max_request_bytes:
        raise ValueError(
            f"request of {req.size} B exceeds protocol max {config.max_request_bytes} B"
        )
    if req.addr % config.flit_bytes:
        raise ValueError("requests must be FLIT aligned")
    row_base = req.addr & ~(config.row_bytes - 1)
    if req.addr + req.size > row_base + config.row_bytes:
        raise ValueError("request crosses a DRAM row boundary")
    cmd = HMCCommand.for_request(req)
    is_write = cmd is HMCCommand.WR
    return WirePacket(
        command=cmd,
        payload_bytes=req.size,
        request_flits=config.request_flits(req.size, is_write),
        response_flits=config.response_flits(req.size, is_write),
        vault=config.vault_of(req.addr),
        bank=config.bank_of(req.addr),
        dram_row=config.dram_row_of(req.addr),
        columns=config.columns(req.size),
    )


def packet_crc(req: CoalescedRequest, seq: int = 0) -> int:
    """32-bit CRC over the packet's addressing fields and sequence number.

    Stands in for the tail CRC of the HMC protocol; used by the retry
    protocol and by tests to exercise the integrity path end to end.
    The sequence number is folded in so a replayed frame cannot be
    mistaken for its neighbour.
    """
    blob = f"{req.addr:x}:{req.size}:{req.rtype.value}:{seq}".encode()
    return zlib.crc32(blob) & 0xFFFFFFFF


def verify_crc(req: CoalescedRequest, crc: int, seq: int = 0) -> bool:
    return packet_crc(req, seq) == crc


@dataclass(frozen=True, slots=True)
class SequencedFrame:
    """One link-level frame of the retry protocol.

    Frames pair a wire packet with the sender's sequence number and the
    tail CRC; the receiver recomputes the CRC on arrival, NAKs on
    mismatch, and uses ``seq`` for exactly-once in-order delivery and
    duplicate suppression (see :mod:`repro.hmc.link`).
    """

    seq: int
    flits: int
    crc: int

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("sequence numbers are non-negative")
        if self.flits < 1:
            raise ValueError("frames carry at least one FLIT")


def frame_request(req: CoalescedRequest, config: HMCConfig, seq: int) -> SequencedFrame:
    """Frame the request-direction packet of one exchange for the link."""
    wire = encode(req, config)
    return SequencedFrame(seq=seq, flits=wire.request_flits, crc=packet_crc(req, seq))


def frame_response(req: CoalescedRequest, config: HMCConfig, seq: int) -> SequencedFrame:
    """Frame the response-direction packet of one exchange for the link."""
    wire = encode(req, config)
    return SequencedFrame(seq=seq, flits=wire.response_flits, crc=packet_crc(req, seq))


def check_frame(req: CoalescedRequest, frame: SequencedFrame) -> bool:
    """Receiver-side CRC check of an arrived frame."""
    return verify_crc(req, frame.crc, frame.seq)
