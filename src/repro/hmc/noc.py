"""Configurable intra-cube NoC of the HMC logic layer (DESIGN.md §14).

Replaces the fixed-latency :class:`repro.hmc.crossbar.Crossbar` with a
pluggable link<->vault interconnect.  Hadidi et al. ("Performance
Implications of NoCs on 3D-Stacked Memories") show the logic-layer
switch is a first-order bottleneck that interacts with packet size; this
module makes that axis explorable while keeping the default (``ideal``)
topology bit-identical to the legacy crossbar, cycle for cycle.

Topologies (``HMCConfig.noc_topology``):

* ``ideal`` — the legacy semantics: a fixed ``crossbar_latency`` per
  direction, no contention, no buffering.  Used by default so every
  pre-refactor golden, engine-equivalence property and PDES run is
  unchanged.
* ``xbar``  — per-destination output ports (one per vault on the
  request path, one per link on the response path).  Each port grants
  one packet at a time and stays busy for the packet's FLIT
  serialization time, so same-vault bursts contend; each port has a
  bounded input buffer of ``noc_buffers`` packets and a full buffer
  backpressures the packet at the link side (its admission — and hence
  everything downstream — is delayed until a slot frees).
* ``ring``  — ``xbar`` port semantics plus hop latency around a
  unidirectionally indexed vault ring; links inject at evenly spaced
  stops and a packet pays ``noc_hop_cycles`` per hop of minimal ring
  distance.
* ``mesh``  — ``xbar`` port semantics plus Manhattan-distance hop
  latency over a near-square vault grid.

Arbitration (``HMCConfig.noc_arbitration``) decides when a port grants
a waiting packet:

* ``fifo``         — grant as soon as the port frees, in arrival order.
* ``round_robin``  — the grant rotates across source links cycle by
  cycle; a packet from link *l* starts only on a cycle ``c`` with
  ``c % links == l`` (0..links-1 extra cycles of alignment).
* ``oldest_first`` — grant the longest-waiting packet first.  The
  device submits requests in non-decreasing arrival order, so waiting
  packets are already age-ordered and this policy is provably identical
  to ``fifo`` here; it is kept as a distinct name (and pinned equal by
  a unit test) so reordering front-ends added later inherit a real
  policy hook.

Every topology keeps *only absolute cycle stamps* (port ready cycles,
buffer release cycles) that are consumed by the next :meth:`to_vault` /
:meth:`to_link` call — exactly the contract of the bank and link
models.  Nothing observable happens on the NoC's own clock edge, so
``next_event_cycle`` returns ``None`` and ``skip_to`` is free, and the
SkipEngine / sharded-PDES bit-identity guarantees hold for *all*
topologies, not just ``ideal``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.attribution import NULL_ATTRIBUTION, StallCause
from repro.obs.protocol import StatsMixin
from repro.sim import register_wake_protocol

from .timing import HMCTiming

__all__ = [
    "NOC_TOPOLOGIES",
    "NOC_ARBITRATIONS",
    "NoCStats",
    "IdealNoC",
    "XbarNoC",
    "RingNoC",
    "MeshNoC",
    "build_noc",
]

#: Selectable interconnect topologies (``HMCConfig.noc_topology``).
NOC_TOPOLOGIES = ("ideal", "xbar", "ring", "mesh")

#: Selectable port-arbitration policies (``HMCConfig.noc_arbitration``).
NOC_ARBITRATIONS = ("fifo", "round_robin", "oldest_first")


@dataclass(slots=True)
class NoCStats(StatsMixin):
    """Traffic + contention counters of the intra-cube interconnect.

    Unlike the legacy crossbar's raw ``forwarded``/``returned`` ints,
    these participate in the :class:`~repro.obs.protocol.StatsMixin`
    snapshot/merge contract, so PDES shard merges and
    ``HMCDevice.metrics()`` (the ``noc.*`` namespace) carry them.
    """

    #: Request packets delivered link -> vault.
    forwarded: int = 0
    #: Response packets delivered vault -> link.
    returned: int = 0
    #: FLITs carried in each direction.
    request_flits: int = 0
    response_flits: int = 0
    #: Cycles packets waited for a busy output port (arbitration loss).
    contention_cycles: int = 0
    #: Cycles packets were held at the link because the target port's
    #: input buffer was full (backpressure).
    buffer_stall_cycles: int = 0
    #: Total hop-traversal cycles charged by ring/mesh routing.
    hop_cycles: int = 0


@register_wake_protocol
class IdealNoC:
    """Bit-identical stand-in for the legacy fixed-latency crossbar."""

    def __init__(self, timing: HMCTiming, attrib=NULL_ATTRIBUTION) -> None:
        self.timing = timing
        self.attrib = attrib
        self.stats = NoCStats()

    def to_vault(self, cycle: int, vault: int = 0, link: int = 0, flits: int = 1) -> int:
        """Deliver a request from a link to its vault."""
        st = self.stats
        st.forwarded += 1
        st.request_flits += flits
        return cycle + self.timing.crossbar_latency

    def to_link(self, cycle: int, vault: int = 0, link: int = 0, flits: int = 1) -> int:
        """Deliver a response from a vault to its link."""
        st = self.stats
        st.returned += 1
        st.response_flits += flits
        return cycle + self.timing.crossbar_latency

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Stateless fixed-latency switch: never self-schedules a wake."""
        return None

    def skip_to(self, target: int) -> None:
        """No per-cycle state: skipping costs nothing."""

    def busy_until(self) -> int:
        """No occupancy state: the ideal switch is never busy."""
        return 0


class _Port:
    """One output port: grant serialization + a bounded input buffer.

    All state is absolute cycle stamps.  ``ready`` is when the port can
    grant its next packet; ``slots`` holds the release cycles of the
    packets currently occupying buffer entries (non-decreasing, because
    the port serializes grants).
    """

    __slots__ = ("ready", "slots", "capacity")

    def __init__(self, capacity: int) -> None:
        self.ready = 0
        self.capacity = capacity
        self.slots: List[int] = []

    def admit(self, arrival: int) -> int:
        """Earliest cycle a buffer entry is free for a packet at ``arrival``."""
        slots = self.slots
        while slots and slots[0] <= arrival:
            slots.pop(0)
        if len(slots) < self.capacity:
            return arrival
        admit = slots.pop(0)
        return admit

    def occupy(self, release: int) -> None:
        self.slots.append(release)
        self.ready = release

    def busy_until(self) -> int:
        return self.ready


@register_wake_protocol
class XbarNoC:
    """Per-destination-port switch with bounded buffers + backpressure.

    Request packets contend for their vault's output port, responses
    for their link's.  A port grants one packet at a time and stays
    busy for the packet's FLIT serialization time (cut-through: the
    head FLIT reaches the destination after ``crossbar_latency`` plus
    any hop cycles, the port frees when the tail has passed).
    """

    #: Extra per-hop traversal cycles; the flat crossbar has no hops.
    topology = "xbar"

    def __init__(
        self,
        timing: HMCTiming,
        vaults: int,
        links: int,
        buffers: int = 8,
        arbitration: str = "fifo",
        attrib=NULL_ATTRIBUTION,
    ) -> None:
        if buffers < 1:
            raise ValueError("noc_buffers must be positive")
        if arbitration not in NOC_ARBITRATIONS:
            raise ValueError(f"unknown arbitration {arbitration!r}")
        self.timing = timing
        self.vaults = vaults
        self.links = links
        self.buffers = buffers
        self.arbitration = arbitration
        self.attrib = attrib
        self.stats = NoCStats()
        self._vault_ports = [_Port(buffers) for _ in range(vaults)]
        self._link_ports = [_Port(buffers) for _ in range(links)]

    # -- routing --------------------------------------------------------------

    def hops(self, vault: int, link: int) -> int:
        """Hop count between injection stop of ``link`` and ``vault``."""
        return 0

    def _service(self, flits: int) -> int:
        """Port occupancy per packet: its FLIT serialization time."""
        return max(1, flits * self.timing.cycles_per_flit)

    def _traverse(
        self, port: _Port, arrival: int, source: int, sources: int,
        flits: int, hops: int,
    ) -> int:
        admit = port.admit(arrival)
        grant = max(admit, port.ready)
        if self.arbitration == "round_robin":
            # The rotating grant points at `source` once every `sources`
            # cycles; align the start to the source's turn.
            grant += (source - grant) % sources
        # "oldest_first" == "fifo" under in-order submission (module doc).
        st = self.stats
        st.buffer_stall_cycles += admit - arrival
        st.contention_cycles += grant - admit
        at = self.attrib
        if at.enabled and grant > arrival:
            at.stall_span("noc", StallCause.NOC_CONTENTION, arrival, grant)
        port.occupy(grant + self._service(flits))
        hop_cycles = hops * self.timing.noc_hop_cycles
        st.hop_cycles += hop_cycles
        return grant + self.timing.crossbar_latency + hop_cycles

    def to_vault(self, cycle: int, vault: int = 0, link: int = 0, flits: int = 1) -> int:
        """Deliver a request from a link to its vault's port."""
        st = self.stats
        st.forwarded += 1
        st.request_flits += flits
        return self._traverse(
            self._vault_ports[vault], cycle, link, self.links, flits,
            self.hops(vault, link),
        )

    def to_link(self, cycle: int, vault: int = 0, link: int = 0, flits: int = 1) -> int:
        """Deliver a response from a vault to its link's port."""
        st = self.stats
        st.returned += 1
        st.response_flits += flits
        return self._traverse(
            self._link_ports[link], cycle, vault, self.vaults, flits,
            self.hops(vault, link),
        )

    # -- quiescence skipping --------------------------------------------------

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-timed: ports hold absolute stamps consumed on arrival.

        Like the banks and links, nothing observable happens at a port's
        ``ready`` cycle unless a new packet shows up, so the NoC never
        self-schedules a wake — SkipEngine and the PDES shards stay
        bit-identical for every topology.
        """
        return None

    def skip_to(self, target: int) -> None:
        """All state is absolute timestamps: skipping costs nothing."""

    def busy_until(self) -> int:
        """Latest cycle any port is still serializing a packet."""
        busy = 0
        for port in self._vault_ports:
            busy = max(busy, port.ready)
        for port in self._link_ports:
            busy = max(busy, port.ready)
        return busy


@register_wake_protocol
class RingNoC(XbarNoC):
    """Vault ring: links inject at evenly spaced stops."""

    topology = "ring"

    def hops(self, vault: int, link: int) -> int:
        stop = link * self.vaults // max(1, self.links)
        fwd = (vault - stop) % self.vaults
        return min(fwd, self.vaults - fwd)


@register_wake_protocol
class MeshNoC(XbarNoC):
    """Near-square vault grid: Manhattan-distance hop routing."""

    topology = "mesh"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        bits = (self.vaults - 1).bit_length()
        self._cols = 1 << ((bits + 1) // 2)

    def _coord(self, position: int):
        return position % self._cols, position // self._cols

    def hops(self, vault: int, link: int) -> int:
        stop = link * self.vaults // max(1, self.links)
        vx, vy = self._coord(vault)
        sx, sy = self._coord(stop)
        return abs(vx - sx) + abs(vy - sy)


def build_noc(config, attrib=NULL_ATTRIBUTION):
    """Instantiate the NoC selected by ``config.noc_topology``.

    ``config`` is an :class:`repro.hmc.config.HMCConfig` (duck-typed to
    avoid a circular import: config validates its knobs against this
    module's topology/arbitration tuples).
    """
    topology = config.noc_topology
    if topology == "ideal":
        return IdealNoC(config.timing, attrib=attrib)
    cls: Dict[str, type] = {"xbar": XbarNoC, "ring": RingNoC, "mesh": MeshNoC}
    if topology not in cls:
        raise ValueError(f"unknown NoC topology {topology!r}")
    return cls[topology](
        config.timing,
        vaults=config.vaults,
        links=config.links,
        buffers=config.noc_buffers,
        arbitration=config.noc_arbitration,
        attrib=attrib,
    )
