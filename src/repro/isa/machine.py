"""Functional multi-hart executor with memory tracing (the Spike stand-in).

Executes assembled programs on one or more *harts* (hardware threads),
interleaved round-robin one instruction per turn, against a shared
sparse 64-bit memory.  Every ``ld``/``sd``/``amoadd``/``fence`` and
every SPM block transfer is captured as a
:class:`repro.trace.record.TraceRecord` — exactly what the paper's
modified-Spike tracer produced (section 5.1).  The SPM extension
instructions (``spm.pf``/``spm.wb``) move whole blocks as FLIT-sized
transfers and map the range into the hart's SPM, so subsequent word
accesses to it are SPM hits and generate *no* off-chip trace records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.request import RequestType
from repro.node.spm import ScratchpadMemory
from repro.trace.record import TraceRecord

from .assembler import assemble
from .instructions import Instruction

_MASK64 = (1 << 64) - 1


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


class ExecutionError(RuntimeError):
    """Raised for runaway or faulting programs."""


@dataclass
class Hart:
    """One hardware thread: registers, pc, private SPM."""

    hart_id: int
    program: List[Instruction]
    spm: ScratchpadMemory = field(default_factory=lambda: ScratchpadMemory(1 << 20))
    regs: List[int] = field(default_factory=lambda: [0] * 32)
    pc: int = 0
    halted: bool = False
    retired: int = 0

    def read(self, reg: int) -> int:
        return 0 if reg == 0 else self.regs[reg] & _MASK64

    def write(self, reg: int, value: int) -> None:
        if reg != 0:
            self.regs[reg] = value & _MASK64


class Machine:
    """Shared memory + N harts + tracer."""

    def __init__(
        self,
        source: str,
        harts: int = 1,
        trace: bool = True,
        spm_bytes: int = 1 << 20,
    ) -> None:
        if harts < 1:
            raise ValueError("need at least one hart")
        program = assemble(source)
        if not program:
            raise ValueError("empty program")
        self.memory: Dict[int, int] = {}
        self.harts = [
            Hart(h, program, spm=ScratchpadMemory(spm_bytes)) for h in range(harts)
        ]
        self.tracing = trace
        self.trace: List[TraceRecord] = []
        self._cycle = 0

    # -- memory ------------------------------------------------------------

    def poke(self, addr: int, value: int) -> None:
        """Host write of one 64-bit word (test/data setup)."""
        if addr % 8:
            raise ValueError("word accesses must be 8-byte aligned")
        self.memory[addr] = value & _MASK64

    def peek(self, addr: int) -> int:
        if addr % 8:
            raise ValueError("word accesses must be 8-byte aligned")
        return self.memory.get(addr, 0)

    def load_words(self, base: int, values: Sequence[int]) -> None:
        for i, v in enumerate(values):
            self.poke(base + 8 * i, v)

    # -- execution ------------------------------------------------------------

    def _record(self, hart: Hart, op: RequestType, addr: int, size: int = 8) -> None:
        if self.tracing:
            self.trace.append(
                TraceRecord(
                    op=op,
                    addr=addr,
                    size=size,
                    tid=hart.hart_id,
                    core=hart.hart_id % 8,
                    cycle=self._cycle,
                )
            )

    def _mem_load(self, hart: Hart, addr: int) -> int:
        if addr % 8:
            raise ExecutionError(f"misaligned load at {addr:#x}")
        if hart.spm.access(addr) is None:
            self._record(hart, RequestType.LOAD, addr)
        return self.memory.get(addr, 0)

    def _mem_store(self, hart: Hart, addr: int, value: int) -> None:
        if addr % 8:
            raise ExecutionError(f"misaligned store at {addr:#x}")
        if hart.spm.access(addr) is None:
            self._record(hart, RequestType.STORE, addr)
        self.memory[addr] = value & _MASK64

    def _spm_transfer(self, hart: Hart, base: int, nbytes: int, write: bool) -> None:
        if nbytes <= 0:
            raise ExecutionError("SPM transfer size must be positive")
        flit = 16
        start = base - (base % flit)
        end = base + nbytes
        op = RequestType.STORE if write else RequestType.LOAD
        addr = start
        while addr < end:
            self._record(hart, op, addr, size=flit)
            addr += flit
        if not write:
            self._spm_map(hart, start, end - start)

    def _spm_map(self, hart: Hart, base: int, nbytes: int) -> None:
        """Map a range into the SPM (evicting oldest mappings on
        pressure, as runtime-managed SPM allocators do)."""
        flit = 16
        start = base - (base % flit)
        size = (base + nbytes) - start
        try:
            hart.spm.map(start, size)
        except MemoryError:
            regions = hart.spm.mapped_regions()
            while regions and hart.spm.free_bytes < size:
                hart.spm.unmap(regions.pop(0)[0])
            hart.spm.map(start, size)
        except ValueError:
            pass  # overlapping re-map: already resident

    def _spm_unmap(self, hart: Hart, base: int, nbytes: int) -> None:
        """Release the mapping covering ``base`` after write-back."""
        flit = 16
        start = base - (base % flit)
        for rbase, rsize in hart.spm.mapped_regions():
            if rbase <= start < rbase + rsize:
                hart.spm.unmap(rbase)
                return

    def step_hart(self, hart: Hart) -> None:
        """Retire one instruction on one hart."""
        if hart.halted:
            return
        if not 0 <= hart.pc < len(hart.program):
            raise ExecutionError(f"hart {hart.hart_id}: pc {hart.pc} out of range")
        ins = hart.program[hart.pc]
        next_pc = hart.pc + 1
        op = ins.op

        if op == "addi":
            hart.write(ins.rd, hart.read(ins.rs1) + ins.imm)
        elif op == "add":
            hart.write(ins.rd, hart.read(ins.rs1) + hart.read(ins.rs2))
        elif op == "sub":
            hart.write(ins.rd, hart.read(ins.rs1) - hart.read(ins.rs2))
        elif op == "mul":
            hart.write(ins.rd, hart.read(ins.rs1) * hart.read(ins.rs2))
        elif op == "and":
            hart.write(ins.rd, hart.read(ins.rs1) & hart.read(ins.rs2))
        elif op == "or":
            hart.write(ins.rd, hart.read(ins.rs1) | hart.read(ins.rs2))
        elif op == "xor":
            hart.write(ins.rd, hart.read(ins.rs1) ^ hart.read(ins.rs2))
        elif op == "slli":
            hart.write(ins.rd, hart.read(ins.rs1) << (ins.imm & 63))
        elif op == "srli":
            hart.write(ins.rd, hart.read(ins.rs1) >> (ins.imm & 63))
        elif op == "li":
            hart.write(ins.rd, ins.imm)
        elif op == "mv":
            hart.write(ins.rd, hart.read(ins.rs1))
        elif op == "ld":
            hart.write(ins.rd, self._mem_load(hart, hart.read(ins.rs1) + ins.imm))
        elif op == "sd":
            self._mem_store(hart, hart.read(ins.rs1) + ins.imm, hart.read(ins.rs2))
        elif op == "amoadd":
            addr = hart.read(ins.rs1)
            if addr % 8:
                raise ExecutionError(f"misaligned amo at {addr:#x}")
            old = self.memory.get(addr, 0)
            self.memory[addr] = (old + hart.read(ins.rs2)) & _MASK64
            hart.write(ins.rd, old)
            self._record(hart, RequestType.ATOMIC, addr)
        elif op == "fence":
            self._record(hart, RequestType.FENCE, 0)
        elif op == "spm.pf":
            self._spm_transfer(hart, hart.read(ins.rs1), ins.imm, write=False)
        elif op == "spm.wb":
            self._spm_transfer(hart, hart.read(ins.rs1), ins.imm, write=True)
            self._spm_unmap(hart, hart.read(ins.rs1), ins.imm)
        elif op == "spm.alloc":
            self._spm_map(hart, hart.read(ins.rs1), ins.imm)
        elif op == "beq":
            if hart.read(ins.rs1) == hart.read(ins.rs2):
                next_pc = ins.target
        elif op == "bne":
            if hart.read(ins.rs1) != hart.read(ins.rs2):
                next_pc = ins.target
        elif op == "blt":
            if _signed(hart.read(ins.rs1)) < _signed(hart.read(ins.rs2)):
                next_pc = ins.target
        elif op == "bge":
            if _signed(hart.read(ins.rs1)) >= _signed(hart.read(ins.rs2)):
                next_pc = ins.target
        elif op == "j":
            next_pc = ins.target
        elif op == "halt":
            hart.halted = True
            return
        elif op == "nop":
            pass
        else:  # pragma: no cover
            raise ExecutionError(f"unimplemented opcode {op}")

        hart.pc = next_pc
        hart.retired += 1

    def run(self, max_steps: int = 5_000_000) -> List[TraceRecord]:
        """Round-robin execute all harts to completion; returns the trace."""
        steps = 0
        while not all(h.halted for h in self.harts):
            for hart in self.harts:
                if not hart.halted:
                    self.step_hart(hart)
                    steps += 1
                    if steps > max_steps:
                        raise ExecutionError("program exceeded max_steps")
            self._cycle += 1
        return self.trace

    @property
    def retired(self) -> int:
        return sum(h.retired for h in self.harts)


def run_program(
    source: str,
    harts: int = 1,
    data: Optional[Dict[int, Sequence[int]]] = None,
    init_regs: Optional[Dict[int, Dict[int, int]]] = None,
    max_steps: int = 5_000_000,
) -> Machine:
    """Assemble, initialize and execute a program; returns the Machine.

    ``data`` maps base addresses to word sequences; ``init_regs`` maps
    hart ids to {register index: value} for passing per-hart arguments.
    """
    machine = Machine(source, harts=harts)
    for base, values in (data or {}).items():
        machine.load_words(base, values)
    for hart_id, regs in (init_regs or {}).items():
        for reg, value in regs.items():
            machine.harts[hart_id].write(reg, value)
    machine.run(max_steps=max_steps)
    return machine
