"""Mini RISC-V-flavoured instruction set (the Spike stand-in's ISA).

The paper traces RV64IMAFDC programs on a modified Spike whose ISA was
extended with software-managed-SPM operations (prefetch, write-back;
section 5.1).  This module defines a compact subset sufficient to write
the memory kernels the evaluation needs, plus those SPM extensions:

========= =====================================================
mnemonic  semantics
========= =====================================================
``addi``  rd = rs1 + imm
``add``   rd = rs1 + rs2            (likewise ``sub mul and or xor``)
``slli``  rd = rs1 << imm           (``srli`` right shift)
``li``    rd = imm                  (pseudo-instruction)
``mv``    rd = rs1                  (pseudo-instruction)
``ld``    rd = mem[rs1 + imm]       (8 B load, traced)
``sd``    mem[rs1 + imm] = rs2      (8 B store, traced)
``beq``   branch to label if rs1 == rs2   (``bne blt bge``)
``j``     unconditional branch      (``jal`` without linkage)
``fence`` memory fence              (traced)
``amoadd`` rd = mem[rs1]; mem[rs1] += rs2  (atomic, traced)
``spm.pf`` prefetch [rs1, rs1+imm) into the SPM (block transfer)
``spm.wb`` write back [rs1, rs1+imm) from the SPM
``spm.alloc`` map [rs1, rs1+imm) into the SPM without fetching
          (no-write-allocate for produce-only buffers)
``halt``  stop the hart
========= =====================================================

Registers are ``x0``..``x31`` with the RISC-V convention that ``x0``
reads as zero and ignores writes; the ABI aliases (``a0``-``a7``,
``t0``-``t6``, ``s0``-``s11``, ``zero``, ``ra``, ``sp``) are accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Register count of the integer file.
NUM_REGS = 32

#: ABI register aliases -> indices.
ABI_NAMES = {
    "zero": 0,
    "ra": 1,
    "sp": 2,
    "gp": 3,
    "tp": 4,
    **{f"t{i}": n for i, n in zip(range(3), (5, 6, 7))},
    **{f"t{i}": n for i, n in zip(range(3, 7), (28, 29, 30, 31))},
    "s0": 8,
    "fp": 8,
    "s1": 9,
    **{f"a{i}": 10 + i for i in range(8)},
    **{f"s{i}": 16 + i for i in range(2, 12)},
}

#: Opcodes grouped by operand shape.
R_TYPE = {"add", "sub", "mul", "and", "or", "xor"}
I_TYPE = {"addi", "slli", "srli"}
LOADS = {"ld"}
STORES = {"sd"}
BRANCHES = {"beq", "bne", "blt", "bge"}
JUMPS = {"j", "jal"}
SPM_OPS = {"spm.pf", "spm.wb", "spm.alloc"}
MISC = {"li", "mv", "fence", "amoadd", "halt", "nop"}

ALL_OPCODES = R_TYPE | I_TYPE | LOADS | STORES | BRANCHES | JUMPS | SPM_OPS | MISC


def parse_register(token: str) -> int:
    """Register token -> index (accepts x-names and ABI aliases)."""
    token = token.strip().lower()
    if token in ABI_NAMES:
        return ABI_NAMES[token]
    if token.startswith("x"):
        try:
            idx = int(token[1:])
        except ValueError as exc:
            raise ValueError(f"bad register {token!r}") from exc
        if 0 <= idx < NUM_REGS:
            return idx
    raise ValueError(f"bad register {token!r}")


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    Operand meaning depends on ``op``: ``rd``/``rs1``/``rs2`` are
    register indices, ``imm`` an immediate, ``target`` a resolved
    instruction index for control flow.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = -1
    #: Source line for diagnostics.
    line: int = 0

    def __post_init__(self) -> None:
        if self.op not in ALL_OPCODES:
            raise ValueError(f"unknown opcode {self.op!r}")
