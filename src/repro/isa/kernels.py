"""Reference kernels written in the mini ISA.

Executable versions of the access patterns the evaluation revolves
around, each a plain assembly string plus a convenience runner.  These
are functionally checked (the gather really gathers) and produce real
memory traces through the Spike-stand-in tracer — the strongest form of
the DESIGN.md substitution: pattern generators validated against an
actual executed program.

Register conventions: ``a0``.. hold arguments, results land in memory.
"""

from __future__ import annotations

from typing import Dict

from .machine import Machine, run_program

#: Vector copy through the SPM: dst[i] = src[i], blocked 256 B at a time.
#: a0=src, a1=dst, a2=element count (multiple of 32).
VECTOR_COPY = """
    li    t0, 0              # element index
loop:
    bge   t0, a2, done
    slli  t1, t0, 3          # byte offset
    add   t2, a0, t1         # &src[i]
    add   t3, a1, t1         # &dst[i]
    spm.pf t2, 256           # fetch one block of src
    spm.alloc t3, 256        # produce-only dst block: map, no fetch
    li    t4, 0              # in-block index
inner:
    li    t5, 32
    bge   t4, t5, flush
    slli  t6, t4, 3
    add   s2, t2, t6
    ld    s3, 0(s2)          # SPM hit: no off-chip trace
    add   s4, t3, t6
    sd    s3, 0(s4)          # SPM hit: buffered until write-back
    addi  t4, t4, 1
    j     inner
flush:
    spm.wb t3, 256           # ...then the block writes back
    addi  t0, t0, 32
    j     loop
done:
    halt
"""

#: Gather: dst[i] = table[idx[i]]; a0=idx, a1=table, a2=dst, a3=count.
GATHER = """
    li    t0, 0
loop:
    bge   t0, a3, done
    slli  t1, t0, 3
    add   t2, a0, t1
    ld    t3, 0(t2)          # index (off-chip: data-dependent)
    slli  t3, t3, 3
    add   t4, a1, t3
    ld    t5, 0(t4)          # the gather itself
    add   t6, a2, t1
    sd    t5, 0(t6)
    addi  t0, t0, 1
    j     loop
done:
    halt
"""

#: Parallel sum reduction with an atomic accumulator.
#: a0=array, a1=start, a2=end (exclusive), a3=&accumulator.
REDUCE_ATOMIC = """
    mv    t0, a1
    li    s1, 0              # local partial sum
loop:
    bge   t0, a2, flush
    slli  t1, t0, 3
    add   t2, a0, t1
    ld    t3, 0(t2)
    add   s1, s1, t3
    addi  t0, t0, 1
    j     loop
flush:
    fence                    # order the partial sum publication
    amoadd t4, a3, s1
    halt
"""


#: 1D 3-point stencil through the SPM: out[i] = in[i-1]+in[i]+in[i+1].
#: a0=in, a1=out, a2=count (multiple of 32, interior only).
STENCIL_1D = """
    li    t0, 32             # first interior block start
loop:
    bge   t0, a2, done
    slli  t1, t0, 3
    add   t2, a0, t1         # &in[i]
    add   t3, a1, t1         # &out[i]
    addi  t4, t2, -256       # previous block (halo)
    spm.pf t4, 768           # halo + centre + next block in one shot
    spm.alloc t3, 256
    li    t5, 0
inner:
    li    t6, 32
    bge   t5, t6, flush
    slli  s2, t5, 3
    add   s3, t2, s2         # &in[i+k]
    ld    s4, -8(s3)
    ld    s5, 0(s3)
    add   s4, s4, s5
    ld    s5, 8(s3)
    add   s4, s4, s5
    add   s6, t3, s2
    sd    s4, 0(s6)
    addi  t5, t5, 1
    j     inner
flush:
    spm.wb t3, 256
    addi  t0, t0, 32
    j     loop
done:
    halt
"""

#: GUPS / RandomAccess: table[r % size] ^= r over a pseudo-random
#: sequence r' = r*LCG_A + LCG_C.  a0=table, a1=table words (power of
#: two), a2=updates, a3=seed.
GUPS = """
    mv    t0, a3             # r
    li    t1, 0              # update counter
    addi  t2, a1, -1         # index mask
loop:
    bge   t1, a2, done
    li    t3, 6364136223846793005
    mul   t0, t0, t3
    li    t3, 1442695040888963407
    add   t0, t0, t3
    and   t4, t0, t2         # index = r & (size-1)
    slli  t4, t4, 3
    add   t4, a0, t4
    ld    t5, 0(t4)
    xor   t5, t5, t0
    sd    t5, 0(t4)
    addi  t1, t1, 1
    j     loop
done:
    halt
"""


#: CSR SpMV: y[i] = sum_j val[j] * x[col[j]] for j in [ptr[i], ptr[i+1]).
#: a0=row_ptr, a1=val, a2=col, a3=x, a4=y, a5=row start, a6=row end.
SPMV_CSR = """
    mv    s0, a5             # row i
rows:
    bge   s0, a6, done
    slli  t0, s0, 3
    add   t1, a0, t0
    ld    t2, 0(t1)          # ptr[i]
    ld    t3, 8(t1)          # ptr[i+1]
    li    s1, 0              # accumulator
nnz:
    bge   t2, t3, store
    slli  t4, t2, 3
    add   t5, a1, t4
    ld    t6, 0(t5)          # val[j]
    add   t5, a2, t4
    ld    s2, 0(t5)          # col[j]
    slli  s2, s2, 3
    add   s2, a3, s2
    ld    s3, 0(s2)          # x[col[j]]  (the gather)
    mul   s4, t6, s3
    add   s1, s1, s4
    addi  t2, t2, 1
    j     nnz
store:
    slli  t0, s0, 3
    add   t1, a4, t0
    sd    s1, 0(t1)          # y[i]
    addi  s0, s0, 1
    j     rows
done:
    halt
"""


def run_vector_copy(elements: int = 128, src: int = 0x10000, dst: int = 0x40000) -> Machine:
    """Execute VECTOR_COPY over ``elements`` words; returns the machine."""
    if elements % 32:
        raise ValueError("element count must be a multiple of 32")
    data = {src: list(range(1, elements + 1))}
    return run_program(
        VECTOR_COPY,
        data=data,
        init_regs={0: {10: src, 11: dst, 12: elements}},
    )


def run_gather(
    count: int = 64,
    idx_base: int = 0x10000,
    table_base: int = 0x80000,
    dst_base: int = 0xC0000,
    table_size: int = 1 << 15,
    seed: int = 7,
) -> Machine:
    """Execute GATHER with a seeded random index vector.

    The default table (32 K entries = 256 KB = 1024 rows) far exceeds
    the 32-row ARQ window, so the gathers behave irregularly; shrink
    ``table_size`` below ~512 entries to make the table window-resident.
    """
    import random

    rng = random.Random(seed)
    indices = [rng.randrange(table_size) for _ in range(count)]
    table = [3 * i + 1 for i in range(table_size)]
    return run_program(
        GATHER,
        data={idx_base: indices, table_base: table},
        init_regs={0: {10: idx_base, 11: table_base, 12: dst_base, 13: count}},
    )


def run_spmv(
    rows: int = 32,
    nnz_per_row: int = 8,
    n_cols: int = 1 << 12,
    harts: int = 1,
    seed: int = 5,
    row_ptr: int = 0x10000,
    val: int = 0x40000,
    col: int = 0x80000,
    x: int = 0x200000,
    y: int = 0x300000,
) -> Machine:
    """Execute SPMV_CSR on a random sparse matrix; returns the machine.

    The reference result is stored on the machine as ``expected_y`` for
    functional checking.
    """
    import random

    rng = random.Random(seed)
    ptr = [i * nnz_per_row for i in range(rows + 1)]
    cols = [rng.randrange(n_cols) for _ in range(rows * nnz_per_row)]
    vals = [rng.randrange(1, 9) for _ in range(rows * nnz_per_row)]
    xs = [rng.randrange(1, 9) for _ in range(n_cols)]
    chunk = rows // harts
    if chunk * harts != rows:
        raise ValueError("rows must divide evenly among harts")
    machine = run_program(
        SPMV_CSR,
        harts=harts,
        data={row_ptr: ptr, val: vals, col: cols, x: xs},
        init_regs={
            h: {
                10: row_ptr,
                11: val,
                12: col,
                13: x,
                14: y,
                15: h * chunk,
                16: (h + 1) * chunk,
            }
            for h in range(harts)
        },
    )
    machine.expected_y = [
        sum(vals[j] * xs[cols[j]] for j in range(ptr[i], ptr[i + 1]))
        for i in range(rows)
    ]
    machine.y_base = y
    return machine


def run_stencil(elements: int = 128, src: int = 0x10000, dst: int = 0x40000) -> Machine:
    """Execute STENCIL_1D over ``elements`` interior words."""
    if elements % 32:
        raise ValueError("element count must be a multiple of 32")
    data = {src: [i * i % 97 for i in range(elements + 64)]}
    return run_program(
        STENCIL_1D,
        data=data,
        init_regs={0: {10: src + 256, 11: dst, 12: elements}},
    )


def run_gups(
    updates: int = 256,
    table: int = 0x100000,
    table_words: int = 1 << 14,
    seed: int = 12345,
    harts: int = 1,
) -> Machine:
    """Execute GUPS random updates (optionally on several harts)."""
    if table_words & (table_words - 1):
        raise ValueError("table size must be a power of two")
    init = {
        h: {10: table, 11: table_words, 12: updates, 13: seed + 977 * h}
        for h in range(harts)
    }
    return run_program(GUPS, harts=harts, init_regs=init)


def run_parallel_reduce(
    harts: int = 4,
    elements: int = 256,
    array: int = 0x20000,
    accumulator: int = 0x900000,
) -> Machine:
    """Execute REDUCE_ATOMIC on ``harts`` threads over disjoint chunks."""
    if elements % harts:
        raise ValueError("elements must divide evenly among harts")
    chunk = elements // harts
    init: Dict[int, Dict[int, int]] = {
        h: {10: array, 11: h * chunk, 12: (h + 1) * chunk, 13: accumulator}
        for h in range(harts)
    }
    return run_program(
        REDUCE_ATOMIC,
        harts=harts,
        data={array: list(range(elements))},
        init_regs=init,
    )
