"""Two-pass assembler for the mini ISA.

Accepts the usual free-form assembly text: one instruction per line,
``label:`` definitions, ``#`` comments, commas or spaces between
operands, decimal or ``0x`` immediates, and ``offset(reg)`` memory
operands for ``ld``/``sd``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .instructions import (
    BRANCHES,
    I_TYPE,
    Instruction,
    JUMPS,
    LOADS,
    R_TYPE,
    SPM_OPS,
    STORES,
    parse_register,
)

_MEM_OPERAND = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))?\((\w+)\)$")


class AssemblyError(ValueError):
    """Malformed assembly source."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _imm(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(line_no, f"bad immediate {token!r}") from exc


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [t for t in re.split(r"[,\s]+", rest) if t]


def assemble(source: str) -> List[Instruction]:
    """Assemble source text into an instruction list."""
    # Pass 1: strip comments, collect labels against instruction indices.
    lines: List[Tuple[int, str]] = []
    labels: Dict[str, int] = {}
    index = 0
    for line_no, raw in enumerate(source.splitlines(), 1):
        text = raw.split("#", 1)[0].strip()
        while text:
            m = re.match(r"^(\w+):\s*", text)
            if not m:
                break
            label = m.group(1)
            if label in labels:
                raise AssemblyError(line_no, f"duplicate label {label!r}")
            labels[label] = index
            text = text[m.end():]
        if text:
            lines.append((line_no, text))
            index += 1

    # Pass 2: decode.
    program: List[Instruction] = []
    for pos, (line_no, text) in enumerate(lines):
        parts = text.split(None, 1)
        op = parts[0].lower()
        ops = _split_operands(parts[1] if len(parts) > 1 else "")

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblyError(line_no, f"{op} expects {n} operands, got {len(ops)}")

        try:
            if op in R_TYPE:
                need(3)
                program.append(
                    Instruction(
                        op,
                        rd=parse_register(ops[0]),
                        rs1=parse_register(ops[1]),
                        rs2=parse_register(ops[2]),
                        line=line_no,
                    )
                )
            elif op in I_TYPE:
                need(3)
                program.append(
                    Instruction(
                        op,
                        rd=parse_register(ops[0]),
                        rs1=parse_register(ops[1]),
                        imm=_imm(ops[2], line_no),
                        line=line_no,
                    )
                )
            elif op in LOADS or op in STORES:
                need(2)
                m = _MEM_OPERAND.match(ops[1])
                if not m:
                    raise AssemblyError(line_no, f"bad memory operand {ops[1]!r}")
                offset = _imm(m.group(1), line_no) if m.group(1) else 0
                base = parse_register(m.group(2))
                reg = parse_register(ops[0])
                if op in LOADS:
                    program.append(
                        Instruction(op, rd=reg, rs1=base, imm=offset, line=line_no)
                    )
                else:
                    program.append(
                        Instruction(op, rs2=reg, rs1=base, imm=offset, line=line_no)
                    )
            elif op in BRANCHES:
                need(3)
                if ops[2] not in labels:
                    raise AssemblyError(line_no, f"unknown label {ops[2]!r}")
                program.append(
                    Instruction(
                        op,
                        rs1=parse_register(ops[0]),
                        rs2=parse_register(ops[1]),
                        target=labels[ops[2]],
                        line=line_no,
                    )
                )
            elif op in JUMPS:
                need(1)
                if ops[0] not in labels:
                    raise AssemblyError(line_no, f"unknown label {ops[0]!r}")
                program.append(Instruction("j", target=labels[ops[0]], line=line_no))
            elif op in SPM_OPS:
                need(2)
                program.append(
                    Instruction(
                        op,
                        rs1=parse_register(ops[0]),
                        imm=_imm(ops[1], line_no),
                        line=line_no,
                    )
                )
            elif op == "li":
                need(2)
                program.append(
                    Instruction(
                        "li", rd=parse_register(ops[0]), imm=_imm(ops[1], line_no),
                        line=line_no,
                    )
                )
            elif op == "mv":
                need(2)
                program.append(
                    Instruction(
                        "mv",
                        rd=parse_register(ops[0]),
                        rs1=parse_register(ops[1]),
                        line=line_no,
                    )
                )
            elif op == "amoadd":
                need(3)
                m = _MEM_OPERAND.match(ops[1])
                if m:
                    raise AssemblyError(line_no, "amoadd takes plain registers")
                program.append(
                    Instruction(
                        "amoadd",
                        rd=parse_register(ops[0]),
                        rs1=parse_register(ops[1]),
                        rs2=parse_register(ops[2]),
                        line=line_no,
                    )
                )
            elif op in ("fence", "halt", "nop"):
                need(0)
                program.append(Instruction(op, line=line_no))
            else:  # pragma: no cover - ALL_OPCODES guards this
                raise AssemblyError(line_no, f"unknown opcode {op!r}")
        except ValueError as exc:
            if isinstance(exc, AssemblyError):
                raise
            raise AssemblyError(line_no, str(exc)) from exc

    return program
