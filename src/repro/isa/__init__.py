"""Mini-ISA executor — the Spike-tracer stand-in (paper section 5.1).

A functional RISC-V-flavoured interpreter with the paper's SPM
prefetch/write-back ISA extensions and built-in memory tracing:
programs actually compute, and their memory behaviour falls out as
:class:`repro.trace.record.TraceRecord` streams ready for the MAC.
"""

from .assembler import AssemblyError, assemble
from .instructions import ALL_OPCODES, Instruction, parse_register
from .kernels import (
    GATHER,
    GUPS,
    REDUCE_ATOMIC,
    SPMV_CSR,
    STENCIL_1D,
    VECTOR_COPY,
    run_gather,
    run_gups,
    run_parallel_reduce,
    run_spmv,
    run_stencil,
    run_vector_copy,
)
from .machine import ExecutionError, Hart, Machine, run_program

__all__ = [
    "ALL_OPCODES",
    "AssemblyError",
    "ExecutionError",
    "GATHER",
    "GUPS",
    "Hart",
    "Instruction",
    "Machine",
    "REDUCE_ATOMIC",
    "SPMV_CSR",
    "STENCIL_1D",
    "VECTOR_COPY",
    "assemble",
    "parse_register",
    "run_gather",
    "run_gups",
    "run_parallel_reduce",
    "run_spmv",
    "run_stencil",
    "run_program",
    "run_vector_copy",
]
