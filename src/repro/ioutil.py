"""Crash-safe artifact writes (write-temp + ``os.replace``).

Every artifact the toolkit persists — ``BENCH_<name>.json`` bench
records, ``repro run --metrics-out``/``--trace-out`` exports, ``repro
analyze --report-out`` reports, serialized configs and trace-cache
spills — goes through these helpers, so a crash (or SIGKILL) mid-write
can never leave a corrupt or truncated file behind: readers either see
the complete previous version or the complete new one, never a torn
intermediate.

The recipe is the standard POSIX one: write the full payload to a
temporary file *in the destination directory* (``os.replace`` is only
atomic within one filesystem), fsync it, then rename over the target.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Union

PathLike = Union[str, Path]


@contextmanager
def atomic_open(
    path: PathLike, mode: str = "w", encoding: str = "utf-8"
) -> Iterator[Any]:
    """Open a temp file for writing; atomically rename onto ``path`` on success.

    On any exception the temp file is removed and the destination is left
    untouched.  ``mode`` must be a write mode (``"w"`` or ``"wb"``).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open only supports write modes, got {mode!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(
            fd, mode, encoding=None if "b" in mode else encoding
        ) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    with atomic_open(path, "w", encoding=encoding) as fh:
        fh.write(text)


def atomic_write_bytes(path: PathLike, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (temp file + ``os.replace``)."""
    with atomic_open(path, "wb") as fh:
        fh.write(payload)


def atomic_write_json(path: PathLike, obj: Any, **dumps_kwargs: Any) -> None:
    """Serialize ``obj`` as JSON and write it atomically."""
    atomic_write_text(path, json.dumps(obj, **dumps_kwargs))
