"""HBM2-class timing at the 3.3 GHz node clock."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class HBMTiming:
    """Cycle counts for one pseudo-channel.

    HBM2 runs ~2 Gbps/pin; a 64-bit pseudo-channel moves a 32 B burst
    in ~16 ns *bus* time but pipelined bursts stream back to back at
    ~2 ns each at the node clock granularity used here.  DRAM core
    timings match the HMC stack (same DRAM technology).
    """

    t_activate: int = 45
    t_column: int = 45
    t_precharge: int = 45
    #: Data-bus occupancy per 32 B burst.
    cycles_per_burst: int = 7
    #: Command-bus occupancy per command (separate CA bus: commands do
    #: not consume data-bus bandwidth — the protocol-level difference
    #: from the HMC's in-band 32 B control overhead).
    t_cmd: int = 2
    #: Interposer + PHY latency each way.
    io_latency: int = 40

    def __post_init__(self) -> None:
        for name in (
            "t_activate",
            "t_column",
            "t_precharge",
            "cycles_per_burst",
            "t_cmd",
            "io_latency",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def bank_occupancy(self, bursts: int) -> int:
        """Closed-page access occupancy (ACT + column + data + PRE)."""
        return (
            self.t_activate
            + self.t_column
            + bursts * self.cycles_per_burst
            + self.t_precharge
        )
