"""HBM stack configuration (paper section 4.3).

HBM differs from HMC in protocol, not in concept: it is a 3D stack with
a wide parallel interface running a DDR-style burst protocol — BL4 on a
per-pseudo-channel 64-bit bus gives a 32 B access granularity (two
FLITs' worth), rows are 1 KB, and commands travel on a separate
command/address bus rather than as in-band packet headers.  Section 4.3
argues the MAC applies unchanged: only the FLIT map/table widen (64
FLITs per 1 KB row) and the emitted transactions become burst trains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import HBMTiming


@dataclass(frozen=True, slots=True)
class HBMConfig:
    """Geometry of one HBM stack as seen by a single host port."""

    capacity_bytes: int = 8 << 30
    #: Pseudo-channels: HBM2 exposes 8 channels x 2 pseudo-channels.
    pseudo_channels: int = 16
    banks_per_channel: int = 16
    row_bytes: int = 1 << 10  # 1 KB (section 2.2.1 / 4.3)
    #: Access granularity: BL4 x 64-bit bus = 32 B.
    burst_bytes: int = 32
    timing: HBMTiming = field(default_factory=HBMTiming)

    def __post_init__(self) -> None:
        if self.pseudo_channels & (self.pseudo_channels - 1):
            raise ValueError("pseudo-channel count must be a power of two")
        if self.banks_per_channel & (self.banks_per_channel - 1):
            raise ValueError("bank count must be a power of two")
        if self.row_bytes & (self.row_bytes - 1):
            raise ValueError("row size must be a power of two")
        if self.row_bytes % self.burst_bytes:
            raise ValueError("rows must hold whole bursts")

    @property
    def row_offset_bits(self) -> int:
        return (self.row_bytes - 1).bit_length()

    @property
    def channel_bits(self) -> int:
        return (self.pseudo_channels - 1).bit_length()

    @property
    def bank_bits(self) -> int:
        return (self.banks_per_channel - 1).bit_length()

    def channel_of(self, addr: int) -> int:
        row = addr >> self.row_offset_bits
        folded = row ^ (row >> self.channel_bits)
        return folded & (self.pseudo_channels - 1)

    def bank_of(self, addr: int) -> int:
        upper = addr >> (self.row_offset_bits + self.channel_bits)
        folded = upper ^ (upper >> self.bank_bits)
        return folded & (self.banks_per_channel - 1)

    def dram_row_of(self, addr: int) -> int:
        return addr >> (self.row_offset_bits + self.channel_bits + self.bank_bits)

    def bursts(self, size: int) -> int:
        """Data-bus bursts needed for ``size`` bytes (2-32 for the MAC's
        64 B - 1 KB coalesced requests, matching section 4.3)."""
        if size < 1:
            raise ValueError("size must be positive")
        return -(-size // self.burst_bytes)
