"""HBM substrate — the section-4.3 applicability target of the MAC.

Same closed-page 3D stack concept as the HMC, different interface:
burst-train transfers on per-pseudo-channel DDR-style buses with a
separate command/address path instead of packetized FLITs.
"""

from .config import HBMConfig
from .device import HBMDevice, HBMStats
from .timing import HBMTiming

__all__ = ["HBMConfig", "HBMDevice", "HBMStats", "HBMTiming"]
