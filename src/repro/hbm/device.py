"""HBM device model: pseudo-channels of closed-page banks, burst data bus.

Mirrors :class:`repro.hmc.device.HMCDevice`'s submit interface so the
MAC (and the figure drivers) can target either stack.  Differences that
matter to the MAC (section 4.3):

* requests are trains of 32 B bursts rather than FLIT packets — a
  coalesced 64 B - 1 KB transaction needs 2-32 bursts;
* control travels on the separate command/address bus, so there is no
  in-band 32 B-per-access overhead — the coalescing win on HBM is purely
  fewer bank activations and fewer command slots;
* the stack runs closed-page like the HMC (short 1 KB rows, many banks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.packet import CoalescedRequest, CoalescedResponse
from repro.hmc.bank import Bank  # closed-page bank model is shared
from repro.hmc.timing import HMCTiming
from repro.obs.protocol import StatsMixin

from .config import HBMConfig


@dataclass(slots=True)
class _Channel:
    """One pseudo-channel: its banks plus command/data-bus bookkeeping."""

    banks: List[Bank]
    cmd_ready: int = 0
    data_ready: int = 0
    cmd_slots: int = 0
    bursts: int = 0


@dataclass
class HBMStats(StatsMixin):
    MERGE_MAX = frozenset({"last_completion"})
    MERGE_MIN_SENTINEL = frozenset({"first_arrival"})
    SNAPSHOT_DERIVED = ("mean_latency", "makespan")

    requests: int = 0
    bursts: int = 0
    activations: int = 0
    bank_conflicts: int = 0
    total_latency: int = 0
    last_completion: int = 0
    first_arrival: int = -1

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0

    @property
    def makespan(self) -> int:
        if self.first_arrival < 0:
            return 0
        return self.last_completion - self.first_arrival

    @property
    def data_bus_bytes(self) -> int:
        return self.bursts * 32


class HBMDevice:
    """One HBM stack behind a MAC (section 4.3 applicability target)."""

    def __init__(self, config: Optional[HBMConfig] = None) -> None:
        self.config = config or HBMConfig()
        t = self.config.timing
        # Reuse the HMC closed-page bank with HBM burst granularity.
        bank_timing = HMCTiming(
            link_latency=0,
            cycles_per_flit=0,
            crossbar_latency=0,
            vault_processing=0,
            t_activate=t.t_activate,
            t_column=t.t_column,
            t_precharge=t.t_precharge,
            cycles_per_column=t.cycles_per_burst,
        )
        self.channels: List[_Channel] = [
            _Channel(banks=[Bank(bank_timing) for _ in range(self.config.banks_per_channel)])
            for _ in range(self.config.pseudo_channels)
        ]
        self.stats = HBMStats()
        self._last_arrival = 0

    def submit(self, request: CoalescedRequest, arrival: int) -> CoalescedResponse:
        """Serve one coalesced transaction as a train of 32 B bursts."""
        if arrival < self._last_arrival:
            raise ValueError("requests must be submitted in arrival order")
        self._last_arrival = arrival
        cfg = self.config
        t = cfg.timing
        # Quantize to the 32 B access granularity: a 16 B (one-FLIT)
        # bypass packet still moves a whole burst on HBM (section 4.3:
        # the HBM granularity equals a 2-FLIT HMC transaction).
        addr = request.addr & ~(cfg.burst_bytes - 1)
        end = request.addr + request.size
        size = max(end - addr, cfg.burst_bytes)
        row_base = addr & ~(cfg.row_bytes - 1)
        if end > row_base + cfg.row_bytes:
            raise ValueError("request crosses a DRAM row boundary")

        chan = self.channels[cfg.channel_of(addr)]
        bank_idx = cfg.bank_of(addr)
        bank = chan.banks[bank_idx]
        bursts = cfg.bursts(size)

        # Command bus: one ACT + one RD/WR command per access.
        cmd_start = max(arrival + t.io_latency, chan.cmd_ready)
        chan.cmd_ready = cmd_start + 2 * t.t_cmd
        chan.cmd_slots += 2

        conflicts_before = bank.conflicts
        data_ready = bank.access(cmd_start, cfg.dram_row_of(addr), bursts)
        conflicts_delta = bank.conflicts - conflicts_before

        # Data bus: the burst train serializes on the channel bus.
        bus_start = max(data_ready, chan.data_ready)
        bus_done = bus_start + bursts * t.cycles_per_burst
        chan.data_ready = bus_done
        chan.bursts += bursts

        complete = bus_done + t.io_latency
        st = self.stats
        st.requests += 1
        st.bursts += bursts
        st.activations += 1
        st.bank_conflicts += conflicts_delta
        st.total_latency += complete - arrival
        st.last_completion = max(st.last_completion, complete)
        if st.first_arrival < 0 or arrival < st.first_arrival:
            st.first_arrival = arrival
        return CoalescedResponse(
            request=request, complete_cycle=complete, service_cycles=complete - arrival
        )

    @property
    def bank_conflicts(self) -> int:
        return self.stats.bank_conflicts

    def unloaded_read_latency(self, size: int = 32) -> int:
        t = self.config.timing
        return (
            2 * t.io_latency
            + 2 * t.t_cmd
            + t.t_activate
            + t.t_column
            + self.config.bursts(size) * t.cycles_per_burst
        )
