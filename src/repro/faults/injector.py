"""Seeded, deterministic fault injector.

The injector answers point queries from the recovery layers ("is this
packet corrupted?", "is this link dead at cycle N?") by evaluating its
fault models.  All randomness comes from one private
``random.Random(seed)`` stream, so a run is exactly reproducible from
``(workload seed, fault seed)``; scheduled faults (``LinkFailure``,
``Window``-gated models) consume no randomness at all.

Models can be supplied up front via :class:`FaultConfig` or injected at
runtime with :meth:`FaultInjector.schedule` /
:meth:`~FaultInjector.schedule_at` — the programmatic half of the
injection-schedule API.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .config import FaultConfig
from .models import (
    AckError,
    FlitBitError,
    LinkDegradation,
    LinkFailure,
    ResponseFault,
    TransientVaultError,
    Window,
)
from .stats import FaultStats


class FaultInjector:
    """Evaluates fault models against point queries from the sim."""

    def __init__(
        self, config: Optional[FaultConfig] = None, stats: Optional[FaultStats] = None
    ) -> None:
        self.config = config or FaultConfig()
        self.stats = stats if stats is not None else FaultStats()
        self._rng = random.Random(self.config.seed)
        self._flit: List[FlitBitError] = []
        self._ack: List[AckError] = []
        self._vault: List[TransientVaultError] = []
        self._response: List[ResponseFault] = []
        self._degrade: List[LinkDegradation] = []
        self._failures: List[LinkFailure] = []
        for model in self.config.models:
            self.schedule(model)

    # -- schedule API --------------------------------------------------------

    def schedule(self, model) -> "FaultInjector":
        """Arm one fault model (chainable); accepts any model type."""
        if isinstance(model, FlitBitError):
            self._flit.append(model)
        elif isinstance(model, AckError):
            self._ack.append(model)
        elif isinstance(model, TransientVaultError):
            self._vault.append(model)
        elif isinstance(model, ResponseFault):
            self._response.append(model)
        elif isinstance(model, LinkDegradation):
            self._degrade.append(model)
        elif isinstance(model, LinkFailure):
            self._failures.append(model)
        else:
            raise TypeError(f"unknown fault model {model!r}")
        return self

    def schedule_at(self, cycle: int, model) -> "FaultInjector":
        """Arm ``model`` for exactly one cycle (inject-at-cycle-N)."""
        return self.schedule(_rewindow(model, Window.at(cycle)))

    def schedule_window(self, start: int, end: int, model) -> "FaultInjector":
        """Arm ``model`` over the cycle window ``[start, end)``."""
        return self.schedule(_rewindow(model, Window(start, end)))

    # -- link data path ------------------------------------------------------

    def flit_corrupted(self, link: int, cycle: int, nflits: int, site: str) -> bool:
        """Whether a packet of ``nflits`` FLITs is corrupted in flight."""
        survive = 1.0
        for m in self._flit:
            if m.window.contains(cycle) and (m.links is None or link in m.links):
                survive *= (1.0 - m.rate) ** nflits
        if survive >= 1.0:
            return False
        hit = self._rng.random() >= survive
        if hit:
            self.stats.record(site, "injected_flit_error")
        return hit

    def ack_corrupted(self, link: int, cycle: int, site: str) -> bool:
        """Whether the one-FLIT ACK of a delivered packet is lost."""
        survive = 1.0
        for m in self._ack:
            if m.window.contains(cycle) and (m.links is None or link in m.links):
                survive *= 1.0 - m.rate
        if survive >= 1.0:
            return False
        hit = self._rng.random() >= survive
        if hit:
            self.stats.record(site, "injected_ack_error")
        return hit

    def link_failed(self, link: int, cycle: int) -> bool:
        """Whether a scheduled hard failure has hit ``link`` by ``cycle``."""
        return any(f.link == link and cycle >= f.at_cycle for f in self._failures)

    def degrade_factor(self, link: int, cycle: int) -> float:
        """Serialization slow-down of ``link`` (1.0 = healthy)."""
        factor = 1.0
        for m in self._degrade:
            if m.link == link and m.window.contains(cycle):
                factor = max(factor, m.factor)
        return factor

    # -- vault / response path -----------------------------------------------

    def vault_error(self, vault: int, cycle: int) -> bool:
        """Whether one bank access suffers a transient error."""
        survive = 1.0
        for m in self._vault:
            if m.window.contains(cycle) and (m.vaults is None or vault in m.vaults):
                survive *= 1.0 - m.rate
        if survive >= 1.0:
            return False
        hit = self._rng.random() >= survive
        if hit:
            self.stats.record(f"vault{vault}", "injected_vault_error")
        return hit

    def response_fate(self, cycle: int) -> Tuple[str, int]:
        """Fate of one completed response: (kind, delay_cycles).

        Models are evaluated in schedule order; the first one that fires
        wins.  Returns ``("ok", 0)`` when none fire.
        """
        for m in self._response:
            if not m.window.contains(cycle) or m.rate <= 0.0:
                continue
            if self._rng.random() < m.rate:
                self.stats.record("response", f"injected_{m.kind}")
                return m.kind, m.delay_cycles
        return "ok", 0


def _rewindow(model, window: Window):
    """Copy a windowed model with a new schedule window."""
    if isinstance(model, LinkFailure):
        return LinkFailure(link=model.link, at_cycle=window.start)
    try:
        cls = type(model)
        kwargs = {
            name: getattr(model, name)
            for name in cls.__dataclass_fields__  # type: ignore[attr-defined]
            if name != "window"
        }
        return cls(window=window, **kwargs)
    except (AttributeError, TypeError) as exc:  # pragma: no cover
        raise TypeError(f"cannot re-window {model!r}") from exc
