"""Pluggable fault models consumed by the :class:`FaultInjector`.

Each model is a frozen dataclass describing one fault source bound to a
set of sites (links, vaults, the response path) and an injection
schedule.  A :class:`Window` expresses *when* the model is armed —
always, at a single cycle, or over a cycle range — and the model's
``rate`` expresses *how often* it fires inside that window, so the three
schedule styles of the API (at cycle N, over a window, probabilistic)
are all spellings of the same pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True, slots=True)
class Window:
    """Cycle window ``[start, end)`` during which a fault model is armed.

    ``end=None`` leaves the window open to the right.  ``Window.at(n)``
    arms the model for exactly one cycle.
    """

    start: int = 0
    end: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("window start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("window end must be after start")

    @classmethod
    def at(cls, cycle: int) -> "Window":
        """Single-cycle window: inject at cycle ``cycle`` only."""
        return cls(start=cycle, end=cycle + 1)

    def contains(self, cycle: int) -> bool:
        return cycle >= self.start and (self.end is None or cycle < self.end)


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"fault rate {rate} outside [0, 1)")


@dataclass(frozen=True, slots=True)
class FlitBitError:
    """Per-FLIT corruption probability on link data packets.

    A packet of *n* FLITs survives an attempt with probability
    ``(1 - rate) ** n`` — larger (coalesced) packets present a bigger
    cross-section, the effect ``bench_fault_sweep`` quantifies.
    ``links=None`` applies to every link.
    """

    rate: float
    links: Optional[Tuple[int, ...]] = None
    window: Window = field(default_factory=Window)

    def __post_init__(self) -> None:
        _check_rate(self.rate)


@dataclass(frozen=True, slots=True)
class AckError:
    """Corruption probability of the single-FLIT ACK/NAK control packet.

    A lost ACK makes the sender replay a packet the receiver already
    holds — the duplicate-suppression path of the retry protocol.
    """

    rate: float
    links: Optional[Tuple[int, ...]] = None
    window: Window = field(default_factory=Window)

    def __post_init__(self) -> None:
        _check_rate(self.rate)


@dataclass(frozen=True, slots=True)
class TransientVaultError:
    """Per-access transient (soft) error inside a vault's DRAM banks.

    The vault controller re-reads on error (ECC-style); after
    ``FaultConfig.vault_error_limit`` consecutive failures the response
    is delivered poisoned rather than retried forever.
    """

    rate: float
    vaults: Optional[Tuple[int, ...]] = None
    window: Window = field(default_factory=Window)

    def __post_init__(self) -> None:
        _check_rate(self.rate)


@dataclass(frozen=True, slots=True)
class ResponseFault:
    """Whole-response fault on the device's return path.

    ``kind`` is one of:

    * ``"poison"`` — the response arrives but its data is marked invalid;
    * ``"drop"``   — the response never arrives (exercises the node's
      timeout + re-issue recovery);
    * ``"delay"``  — the response arrives ``delay_cycles`` late
      (exercises duplicate suppression when the delay crosses the
      timeout and the packet is re-issued).
    """

    kind: str
    rate: float
    delay_cycles: int = 0
    window: Window = field(default_factory=Window)

    KINDS = ("poison", "drop", "delay")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown response fault kind {self.kind!r}")
        _check_rate(self.rate)
        if self.kind == "delay" and self.delay_cycles < 1:
            raise ValueError("delay faults need delay_cycles >= 1")


@dataclass(frozen=True, slots=True)
class LinkDegradation:
    """Stuck-at lane failure: one link serializes ``factor`` x slower.

    Models a SerDes lane dropping out of the 16-lane bundle — the link
    stays up but its effective FLIT bandwidth shrinks.
    """

    link: int
    factor: float
    window: Window = field(default_factory=Window)

    def __post_init__(self) -> None:
        if self.link < 0:
            raise ValueError("link index must be non-negative")
        if self.factor < 1.0:
            raise ValueError("degradation factor must be >= 1.0")


@dataclass(frozen=True, slots=True)
class LinkFailure:
    """Whole-link hard failure from cycle ``at_cycle`` onward.

    The device detects the failure on the next transmission attempt and
    steers all traffic across the remaining links (degraded mode).
    """

    link: int
    at_cycle: int = 0

    def __post_init__(self) -> None:
        if self.link < 0:
            raise ValueError("link index must be non-negative")
        if self.at_cycle < 0:
            raise ValueError("failure cycle must be non-negative")
