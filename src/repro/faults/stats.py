"""Per-site fault and recovery counters.

One :class:`FaultStats` instance is shared by the injector (which
records *injected* events) and the recovery layers (which record
*protocol* events: CRC failures, retries, NAKs, timeouts, re-issues,
suppressed duplicates).  Counters are keyed ``site -> event -> count``
where a site is a string like ``link0.req``, ``vault3`` or ``response``,
so reports can show exactly where errors landed and what it cost to
recover from them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class FaultStats:
    """Nested ``site -> event -> count`` counters."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: Dict[str, Dict[str, int]] = {}

    def record(self, site: str, event: str, n: int = 1) -> None:
        """Add ``n`` occurrences of ``event`` at ``site``."""
        bucket = self.counters.setdefault(site, {})
        bucket[event] = bucket.get(event, 0) + n

    def site(self, site: str) -> Dict[str, int]:
        """Counters of one site (empty dict if nothing recorded)."""
        return dict(self.counters.get(site, {}))

    def total(self, event: str) -> int:
        """Sum of ``event`` across every site."""
        return sum(bucket.get(event, 0) for bucket in self.counters.values())

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Deep copy suitable for serialization."""
        return {site: dict(bucket) for site, bucket in self.counters.items()}

    def rows(self) -> List[Tuple[str, str, int]]:
        """Sorted ``(site, event, count)`` rows for report tables."""
        out = [
            (site, event, count)
            for site, bucket in self.counters.items()
            for event, count in bucket.items()
        ]
        out.sort()
        return out

    @property
    def empty(self) -> bool:
        return not self.counters

    # -- StatsProtocol (hand-written: not a dataclass) ---------------------

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        return self.as_dict()

    def merge(self, other: "FaultStats") -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into FaultStats"
            )
        for site, bucket in other.counters.items():
            for event, count in bucket.items():
                self.record(site, event, count)

    def reset(self) -> None:
        # Clear in place: the device stats layer aliases this dict.
        self.counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        events = sum(len(b) for b in self.counters.values())
        return f"FaultStats(sites={len(self.counters)}, events={events})"
