"""Cross-layer fault injection and recovery (ROADMAP: robustness).

The paper evaluates the MAC on an ideal, error-free HMC; the real HMC
protocol carries per-packet CRC, token-based flow control and a link
retry buffer, and Hadidi et al.'s characterization shows those
mechanisms materially shape observed bandwidth.  This package provides
the *injection* half of that story: a seeded, deterministic
:class:`FaultInjector` driven by pluggable fault models and an
injection-schedule API, with per-site error counters.

The *recovery* half lives with the components it protects:
:mod:`repro.hmc.link` implements the CRC/NAK/replay retry protocol,
:mod:`repro.hmc.device` steers traffic off failed links, and
:mod:`repro.core.router` re-issues timed-out packets and suppresses
duplicate responses.

Everything is off by default: with no :class:`FaultConfig` attached to
an :class:`repro.hmc.config.HMCConfig`, every simulation is
cycle-identical to the fault-free model.
"""

from .config import FaultConfig
from .injector import FaultInjector
from .models import (
    AckError,
    FlitBitError,
    LinkDegradation,
    LinkFailure,
    ResponseFault,
    TransientVaultError,
    Window,
)
from .stats import FaultStats

__all__ = [
    "AckError",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FlitBitError",
    "LinkDegradation",
    "LinkFailure",
    "ResponseFault",
    "TransientVaultError",
    "Window",
]
