"""Configuration of fault injection and the link retry protocol.

A :class:`FaultConfig` bundles the fault models to inject with the
parameters of the recovery machinery (retry limit, retry-buffer and
token-pool sizes, backoff, node-side response timeout).  Attach one to
:class:`repro.hmc.config.HMCConfig` via its ``faults`` field; leaving it
``None`` (the default everywhere) keeps every simulation cycle-identical
to the fault-free model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .models import (
    AckError,
    FlitBitError,
    LinkDegradation,
    LinkFailure,
    ResponseFault,
    TransientVaultError,
)

#: Every model type a FaultConfig may carry.
FaultModel = Union[
    AckError,
    FlitBitError,
    LinkDegradation,
    LinkFailure,
    ResponseFault,
    TransientVaultError,
]

#: Default seed of the injector's RNG; matches the workload default so a
#: single --seed knob reproduces a whole run end to end.
DEFAULT_FAULT_SEED = 2019


@dataclass(frozen=True, slots=True)
class FaultConfig:
    """Fault models + retry-protocol parameters for one device."""

    #: Fault models evaluated by the injector (order is irrelevant).
    models: Tuple[FaultModel, ...] = ()
    #: Seed of the injector's private RNG (deterministic replay).
    seed: int = DEFAULT_FAULT_SEED
    #: Replays of one packet before the link is declared dead.
    retry_limit: int = 8
    #: Sender-side retry (replay) buffer, in FLITs of unacked data.
    retry_buffer_flits: int = 256
    #: Receiver-side input-buffer credit pool, in FLIT tokens.
    link_tokens: int = 256
    #: Base of the exponential NAK backoff, in cycles (doubles per retry).
    backoff_base: int = 8
    #: Node-side cycles before an outstanding packet is presumed lost
    #: and re-issued.
    timeout_cycles: int = 4096
    #: Consecutive vault re-reads before a response is poisoned.
    vault_error_limit: int = 3

    def __post_init__(self) -> None:
        if self.retry_limit < 1:
            raise ValueError("retry limit must be positive")
        if self.retry_buffer_flits < 1:
            raise ValueError("retry buffer must hold at least one FLIT")
        if self.link_tokens < 1:
            raise ValueError("token pool must hold at least one FLIT")
        if self.backoff_base < 1:
            raise ValueError("backoff base must be positive")
        if self.timeout_cycles < 1:
            raise ValueError("response timeout must be positive")
        if self.vault_error_limit < 1:
            raise ValueError("vault error limit must be positive")

    @classmethod
    def simple(
        cls,
        flit_ber: float = 0.0,
        ack_ber: float = 0.0,
        vault_error_rate: float = 0.0,
        poison_rate: float = 0.0,
        drop_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay_cycles: int = 2000,
        dead_links: Tuple[int, ...] = (),
        degraded_links: Tuple[Tuple[int, float], ...] = (),
        **kwargs,
    ) -> "FaultConfig":
        """Build a config from flat rates (the CLI's spelling).

        Only non-zero rates generate fault models.  Note that merely
        *arming* a FaultConfig (even with every rate at zero) switches
        the links onto the retry protocol, whose sequence numbering and
        token-credit loop are themselves modelled overheads — only
        ``faults=None`` is guaranteed cycle-identical to the fault-free
        device.
        """
        models: list = []
        if flit_ber > 0:
            models.append(FlitBitError(rate=flit_ber))
        if ack_ber > 0:
            models.append(AckError(rate=ack_ber))
        if vault_error_rate > 0:
            models.append(TransientVaultError(rate=vault_error_rate))
        if poison_rate > 0:
            models.append(ResponseFault(kind="poison", rate=poison_rate))
        if drop_rate > 0:
            models.append(ResponseFault(kind="drop", rate=drop_rate))
        if delay_rate > 0:
            models.append(
                ResponseFault(
                    kind="delay", rate=delay_rate, delay_cycles=delay_cycles
                )
            )
        for link in dead_links:
            models.append(LinkFailure(link=link))
        for link, factor in degraded_links:
            models.append(LinkDegradation(link=link, factor=factor))
        return cls(models=tuple(models), **kwargs)
