"""The snapshot/merge/reset contract shared by every ``*Stats`` type.

Before this module each stats dataclass grew ad-hoc ``record_*`` methods
and (at most) a hand-written ``merge`` — ``HMCStats`` had none at all, so
aggregating per-worker results from :mod:`repro.eval.parallel` silently
dropped ``size_histogram``/``fault_events`` and mis-combined the
``first_arrival`` sentinel.  :class:`StatsMixin` derives all three
operations from the dataclass fields once, with per-class policy knobs
for the non-additive fields:

* ``MERGE_MAX`` — combined with ``max`` (makespan anchors, high-water
  marks, ratios where the pessimistic value is the honest aggregate);
* ``MERGE_MIN_SENTINEL`` — combined with ``min`` treating ``-1`` as
  "never recorded" (arrival anchors);
* ``MERGE_CONFIG`` — structural parameters that must match and are kept
  (e.g. a sliding-window size).

Everything else merges by type: numbers add, dicts add recursively
(preserving :class:`collections.Counter`), lists concatenate, and metric
primitives (:class:`repro.obs.metrics.Histogram` etc.) delegate to their
own ``merge``.  All policies are associative, a property the parallel
engine's chunked aggregation depends on and the hypothesis suite pins.
"""

from __future__ import annotations

import dataclasses
from collections import Counter as _CollCounter
from typing import Any, ClassVar, Dict, FrozenSet, Iterable, Optional, Protocol, Tuple, TypeVar, runtime_checkable

from .metrics import Counter, Gauge, Histogram

__all__ = ["StatsProtocol", "StatsMixin", "merge_all"]

_METRIC_TYPES = (Counter, Gauge, Histogram)

S = TypeVar("S", bound="StatsMixin")


@runtime_checkable
class StatsProtocol(Protocol):
    """What the registry and the parallel aggregator require."""

    def snapshot(self) -> Dict[str, Any]: ...

    def merge(self, other: Any) -> None: ...

    def reset(self) -> None: ...


def _add_dicts(into: dict, other: dict) -> None:
    """Recursively add ``other`` into ``into`` (numbers add, dicts recurse)."""
    for key, value in other.items():
        if isinstance(value, dict):
            _add_dicts(into.setdefault(key, {}), value)
        else:
            into[key] = into.get(key, 0) + value


def _copy_value(value: Any) -> Any:
    if isinstance(value, _METRIC_TYPES):
        return value.snapshot()
    if isinstance(value, dict):
        return {k: _copy_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return list(value)
    return value


class StatsMixin:
    """Field-driven snapshot/merge/reset for stats dataclasses."""

    __slots__ = ()

    #: Fields combined with ``max`` on merge.
    MERGE_MAX: ClassVar[FrozenSet[str]] = frozenset()
    #: Fields combined with ``min``, where ``-1`` means "unset".
    MERGE_MIN_SENTINEL: ClassVar[FrozenSet[str]] = frozenset()
    #: Structural fields that must match between merged instances.
    MERGE_CONFIG: ClassVar[FrozenSet[str]] = frozenset()
    #: Derived property names included in :meth:`snapshot`.
    SNAPSHOT_DERIVED: ClassVar[Tuple[str, ...]] = ()

    # -- protocol ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict copy of every field (+ declared derived metrics)."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            out[f.name] = _copy_value(getattr(self, f.name))
        for name in self.SNAPSHOT_DERIVED:
            out[name] = getattr(self, name)
        return out

    def merge(self: S, other: S) -> None:
        """Accumulate ``other`` into ``self`` (associative per policy)."""
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        for f in dataclasses.fields(self):
            name = f.name
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if name in self.MERGE_CONFIG:
                if mine != theirs:
                    raise ValueError(
                        f"cannot merge {type(self).__name__}: "
                        f"config field {name!r} differs ({mine!r} != {theirs!r})"
                    )
            elif name in self.MERGE_MAX:
                setattr(self, name, max(mine, theirs))
            elif name in self.MERGE_MIN_SENTINEL:
                if mine < 0:
                    setattr(self, name, theirs)
                elif theirs >= 0:
                    setattr(self, name, min(mine, theirs))
            elif isinstance(mine, _METRIC_TYPES):
                mine.merge(theirs)
            elif isinstance(mine, _CollCounter):
                mine.update(theirs)
            elif isinstance(mine, dict):
                _add_dicts(mine, theirs)
            elif isinstance(mine, list):
                mine.extend(theirs)
            elif isinstance(mine, (int, float)):
                setattr(self, name, mine + theirs)
            else:
                raise TypeError(
                    f"no merge rule for field {name!r} of {type(self).__name__}"
                )
        self._post_merge(other)

    def reset(self) -> None:
        """Restore every field to its declared default."""
        for f in dataclasses.fields(self):
            if f.name in self.MERGE_CONFIG:
                continue  # structural parameters survive a reset
            if f.default is not dataclasses.MISSING:
                setattr(self, f.name, f.default)
            elif f.default_factory is not dataclasses.MISSING:
                setattr(self, f.name, f.default_factory())
            # fields with no default are structural; keep them

    # -- hooks -------------------------------------------------------------

    def _post_merge(self, other: Any) -> None:
        """Per-class fix-up after the generic field merge (optional)."""


def merge_all(stats: Iterable[S], into: Optional[S] = None) -> S:
    """Fold an iterable of stats objects into one (left to right).

    With ``into`` given the fold accumulates there; otherwise the first
    element is used as the accumulator (and mutated).  Raises on an
    empty iterable with no accumulator.
    """
    it = iter(stats)
    if into is None:
        try:
            into = next(it)
        except StopIteration:
            raise ValueError("merge_all needs at least one stats object") from None
    for item in it:
        into.merge(item)
    return into
