"""Metric primitives and the registry behind ``system.metrics()``.

Three primitives cover every counter the evaluation layer consumes:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — last-written value with an explicit merge policy;
* :class:`Histogram` — bounded distribution sketch: fixed (geometric by
  default) buckets plus an exact sample prefix, so latency distributions
  (Figs. 12-17 style analyses, Hadidi et al.'s characterization metrics)
  stay available without the unbounded Python lists the stats layer used
  to accumulate.

All three share the snapshot/merge/reset contract of
:class:`repro.obs.protocol.StatsProtocol`, so they compose with the
``*Stats`` dataclasses inside one :class:`MetricsRegistry`, which
flattens every registered source into a single namespaced dict —
``{"mac.raw_requests": 71, "device.latency.p99": 431.0, ...}``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flatten",
]

#: Geometric default bucket edges: 1, 2, 4, ... 2**30 cycles.
DEFAULT_BOUNDS: Tuple[int, ...] = tuple(1 << i for i in range(31))

#: Exact samples kept per histogram before falling back to buckets.
DEFAULT_SAMPLE_LIMIT = 8192


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge")
        self.value += n

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def reset(self) -> None:
        self.value = 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Counter) and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """Last-written value with an explicit merge policy.

    ``policy`` decides how parallel-worker copies combine: ``"last"``
    (other wins), ``"max"``, ``"min"`` or ``"sum"``.  ``max``/``min``/
    ``sum`` are associative; ``last`` is merge-order defined.
    """

    __slots__ = ("value", "policy")

    _POLICIES = ("last", "max", "min", "sum")

    def __init__(self, value: float = 0.0, policy: str = "last") -> None:
        if policy not in self._POLICIES:
            raise ValueError(f"unknown gauge policy {policy!r}")
        self.value = value
        self.policy = policy

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def merge(self, other: "Gauge") -> None:
        if self.policy == "last":
            self.value = other.value
        elif self.policy == "max":
            self.value = max(self.value, other.value)
        elif self.policy == "min":
            self.value = min(self.value, other.value)
        else:
            self.value += other.value

    def reset(self) -> None:
        self.value = 0.0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Gauge)
            and self.value == other.value
            and self.policy == other.policy
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value}, policy={self.policy!r})"


class Histogram:
    """Bounded distribution sketch: fixed buckets + exact sample prefix.

    Values land in geometric buckets (``bounds`` are inclusive upper
    edges; one overflow bucket catches the rest).  The first
    ``sample_limit`` values are additionally kept verbatim, in arrival
    order, so short runs (tests, single figures) get *exact* quantiles
    and a faithful ``samples`` list, while million-request sweeps stay
    O(buckets) in memory and fall back to interpolated bucket quantiles.

    Merging keeps the first ``sample_limit`` samples in concatenation
    order — a policy chosen because it is associative, which the
    parallel evaluation engine's chunked aggregation relies on.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max",
                 "sample_limit", "_samples")

    def __init__(
        self,
        bounds: Optional[Iterable[int]] = None,
        sample_limit: int = DEFAULT_SAMPLE_LIMIT,
    ) -> None:
        self.bounds: Tuple[int, ...] = (
            tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        )
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        if sample_limit < 0:
            raise ValueError("sample_limit must be non-negative")
        self.sample_limit = sample_limit
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []

    # -- recording ---------------------------------------------------------

    def add(self, value: float, n: int = 1) -> None:
        # Hot path (one call per request per stage when attribution is
        # on): plain comparisons beat min()/max() calls here.
        if n < 1:
            raise ValueError("need a positive occurrence count")
        self.counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n
        mn = self.min
        if mn is None or value < mn:
            self.min = value
        mx = self.max
        if mx is None or value > mx:
            self.max = value
        samples = self._samples
        if len(samples) < self.sample_limit:
            if n == 1:
                samples.append(value)
            else:
                samples.extend([value] * min(n, self.sample_limit - len(samples)))

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self.count

    @property
    def exact(self) -> bool:
        """Whether every recorded value is still held verbatim."""
        return len(self._samples) == self.count

    @property
    def samples(self) -> List[float]:
        """The exact sample prefix — NOT the full value set after capacity.

        The histogram keeps the first ``sample_limit`` values verbatim
        (an arrival-order prefix, not a random reservoir) and drops the
        rest into buckets: check :attr:`dropped` (or :attr:`exact`)
        before treating this list as the full distribution.
        """
        return list(self._samples)

    @property
    def dropped(self) -> int:
        """How many recorded values are *not* in :attr:`samples`.

        Zero while under ``sample_limit`` (``exact`` is True); beyond
        it, every further value is counted here and only bucket-level
        information (counts, total, min/max, interpolated quantiles)
        remains for the dropped tail.
        """
        return self.count - len(self._samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """q-quantile (0..1); exact while under the sample limit,
        linearly interpolated over buckets afterwards.

        The switch is all-or-nothing: once any value has been dropped
        from the sample prefix (``dropped > 0``) the estimate comes
        entirely from the geometric buckets — the retained prefix is
        arrival-ordered, not a uniform reservoir, so mixing it into the
        estimate would bias quantiles towards early-run behaviour.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        if self.exact:
            data = sorted(self._samples)
            pos = q * (len(data) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(data) - 1)
            frac = pos - lo
            return data[lo] * (1 - frac) + data[hi] * frac
        return self._bucket_quantile(q)

    def _bucket_quantile(self, q: float) -> float:
        rank = q * (self.count - 1)
        seen = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n > rank:
                lo = self.bounds[i - 1] if i > 0 else (self.min or 0)
                hi = self.bounds[i] if i < len(self.bounds) else (self.max or lo)
                lo = max(lo, self.min if self.min is not None else lo)
                hi = min(hi, self.max if self.max is not None else hi)
                if n == 1:
                    return float(hi)
                frac = (rank - seen) / (n - 1)
                return lo + (hi - lo) * frac
            seen += n
        return float(self.max or 0)

    # -- protocol ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "dropped": self.dropped,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {
                str(self.bounds[i]) if i < len(self.bounds) else "inf": n
                for i, n in enumerate(self.counts)
                if n
            },
        }

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        room = self.sample_limit - len(self._samples)
        if room > 0:
            self._samples.extend(other._samples[:room])

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._samples = []

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.bounds == other.bounds
            and self.counts == other.counts
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self._samples == other._samples
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.1f})"

    # Pickling support for slotted class (fork-less pool workers, tests).
    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


#: Anything the registry can read: a StatsProtocol object, a metric
#: primitive, a plain dict, or a zero-arg callable returning a dict.
MetricSource = Union[Any, Callable[[], Mapping[str, Any]]]


def flatten(data: Mapping[str, Any], prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts into dotted keys; leaves stay as-is."""
    out: Dict[str, Any] = {}
    for key, value in data.items():
        name = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten(value, f"{name}."))
        else:
            out[name] = value
    return out


class MetricsRegistry:
    """Namespaced view over every stats source of a simulation.

    Sources register under a namespace; :meth:`collect` snapshots each
    one and flattens the result into a single dict keyed
    ``namespace.field[.subfield]``.  Registering is cheap (no copies);
    collection walks live objects, so one registry built at setup time
    stays valid for the whole run.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, MetricSource] = {}

    def register(self, namespace: str, source: MetricSource) -> None:
        if not namespace or "." in namespace:
            raise ValueError("namespace must be a non-empty dot-free string")
        if namespace in self._sources:
            raise ValueError(f"namespace {namespace!r} already registered")
        self._sources[namespace] = source

    def unregister(self, namespace: str) -> None:
        self._sources.pop(namespace, None)

    def namespaces(self) -> List[str]:
        return sorted(self._sources)

    @staticmethod
    def _read(source: MetricSource) -> Mapping[str, Any]:
        if callable(source) and not hasattr(source, "snapshot"):
            data = source()
        elif hasattr(source, "snapshot"):
            data = source.snapshot()
        elif isinstance(source, Mapping):
            data = source
        else:
            raise TypeError(
                f"metric source {source!r} has no snapshot()/dict interface"
            )
        if not isinstance(data, Mapping):
            raise TypeError(f"metric source produced {type(data).__name__}, not dict")
        return data

    def collect(self) -> Dict[str, Any]:
        """One flat namespaced dict over every registered source."""
        out: Dict[str, Any] = {}
        for namespace in sorted(self._sources):
            out.update(flatten(self._read(self._sources[namespace]), f"{namespace}."))
        return out
