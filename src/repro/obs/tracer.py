"""Cycle-stamped structured event tracing.

A tracer answers the question the flat counters cannot: *when* did
things happen inside a run — which cycle an ARQ entry allocated, merged
or popped, how full the builder pipeline was, when a link NAKed and
replayed, when a bank conflicted.  Events are (cycle, channel, name,
args) tuples in a bounded ring buffer (oldest events drop first, with a
drop counter), so tracing a million-request run costs O(capacity).

Tracing is **off by default**: every instrumented component holds the
module singleton :data:`NULL_TRACER`, whose ``enabled`` flag gates each
emit site, so the fault-free hot path does no argument packing and no
calls.  A run with tracing disabled is bit-identical to one with no
tracer compiled in at all — pinned by the regression suite — because the
tracer only ever *reads* simulation state.

Export targets:

* :meth:`EventTracer.to_chrome_trace` — Chrome ``traceEvents`` JSON
  (instant events, one virtual thread per channel) that loads directly
  in Perfetto / ``chrome://tracing``;
* :meth:`EventTracer.write_jsonl` — one JSON object per line for ad-hoc
  ``jq``/pandas processing.

Standard channels (components may add their own):

=========  ====================================================
``arq``    entry alloc / merge / fence_blocked / pop / fence
``builder`` stage occupancy at each pop
``link``   CRC error / NAK / retry / link_failed
``vault``  bank activate / conflict
=========  ====================================================
"""

from __future__ import annotations

import json
import warnings
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "NullTracer",
    "EventTracer",
    "NULL_TRACER",
    "TraceEvent",
    "canonical_key",
    "merge_shard_traces",
]

#: (cycle, channel, name, args-or-None)
TraceEvent = Tuple[int, str, str, Optional[Dict[str, Any]]]

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65536


class NullTracer:
    """The no-op tracer every component holds by default.

    ``enabled`` is ``False`` so instrumented hot paths skip argument
    packing entirely; ``emit`` exists (and does nothing) so cold paths
    may call it unconditionally.
    """

    __slots__ = ()
    enabled = False

    def emit(self, channel: str, name: str, cycle: int, **args: Any) -> None:
        """Discard the event."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTracer()"


#: Shared no-op instance; components default their ``tracer`` to this.
NULL_TRACER = NullTracer()


def canonical_key(event: TraceEvent):
    """Total order on trace events, independent of emit interleaving.

    ``(cycle, channel, name, serialized-args)``: within one cycle the
    serial engines emit in component order, but that order is not
    meaningful — the canonical key is what the PDES merge sorts by and
    what the equivalence suite compares on, so serial and sharded runs
    agree event for event.
    """
    cycle, channel, name, args = event
    return (
        cycle,
        channel,
        name,
        json.dumps(args, sort_keys=True) if args else "",
    )


class EventTracer:
    """Bounded ring buffer of cycle-stamped events."""

    __slots__ = ("enabled", "capacity", "dropped", "shard_counts", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.enabled = True
        self.capacity = capacity
        self.dropped = 0
        #: ``{shard: events collected}`` after a PDES merge, else None.
        self.shard_counts: Optional[Dict[int, int]] = None
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    # -- recording ---------------------------------------------------------

    def emit(self, channel: str, name: str, cycle: int, **args: Any) -> None:
        """Record one event (oldest events drop when the ring is full)."""
        if not self.enabled:
            return
        if len(self._events) == self.capacity:
            if not self.dropped:
                warnings.warn(
                    f"trace ring buffer wrapped at {self.capacity} events; "
                    "oldest events are being dropped (raise --trace-capacity "
                    "to keep more)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            self.dropped += 1
        self._events.append((cycle, channel, name, args or None))

    def pause(self) -> None:
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self, channel: Optional[str] = None) -> List[TraceEvent]:
        """Buffered events in emit order, optionally one channel's."""
        if channel is None:
            return list(self._events)
        return [e for e in self._events if e[1] == channel]

    def channels(self) -> List[str]:
        return sorted({e[1] for e in self._events})

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.shard_counts = None

    # -- export ------------------------------------------------------------

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome/Perfetto ``traceEvents`` document.

        Cycles map to the microsecond timestamps the format expects; one
        virtual thread per channel, named via ``thread_name`` metadata.
        """
        channels = self.channels()
        tids = {ch: i + 1 for i, ch in enumerate(channels)}
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[ch],
                "args": {"name": ch},
            }
            for ch in channels
        ]
        for cycle, channel, name, args in self._events:
            ev: Dict[str, Any] = {
                "name": name,
                "cat": channel,
                "ph": "i",
                "ts": cycle,
                "pid": 0,
                "tid": tids[channel],
                "s": "t",
            }
            if args:
                ev["args"] = args
            events.append(ev)
        other: Dict[str, Any] = {
            "source": "repro.obs.tracer",
            "clock": "simulation cycles (as us)",
            "dropped_events": self.dropped,
        }
        if self.shard_counts is not None:
            other["shard_events"] = {
                str(s): n for s, n in sorted(self.shard_counts.items())
            }
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def write_chrome_trace(self, path: Union[str, Path]) -> int:
        """Write the Chrome-trace JSON atomically; returns the event count."""
        from repro.ioutil import atomic_write_text

        doc = self.to_chrome_trace()
        atomic_write_text(path, json.dumps(doc))
        return len(doc["traceEvents"])

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """One ``{"cycle","channel","name",...args}`` object per line.

        Written atomically (temp file + rename), so a crash mid-write
        never leaves a truncated trace at ``path``.
        """
        from repro.ioutil import atomic_open

        with atomic_open(path) as fh:
            for cycle, channel, name, args in self._events:
                row = {"cycle": cycle, "channel": channel, "name": name}
                if args:
                    row.update(args)
                fh.write(json.dumps(row) + "\n")
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventTracer(events={len(self._events)}/{self.capacity}, "
            f"dropped={self.dropped})"
        )


def merge_shard_traces(
    tracer: EventTracer,
    shard_traces: Sequence[Tuple[List[TraceEvent], int]],
) -> None:
    """Fold per-shard ``(events, dropped)`` pairs into ``tracer``.

    Events sort by :func:`canonical_key` — a pure function of event
    identity, so the merge is deterministic regardless of worker timing
    — and the newest ``tracer.capacity`` survive, mirroring the serial
    ring's keep-newest policy.  Shard drop counts carry over, and the
    per-shard event counts land in ``tracer.shard_counts`` for the
    Chrome-trace metadata.
    """
    merged = tracer.events()
    counts: Dict[int, int] = {}
    for shard, (events, dropped) in enumerate(shard_traces):
        counts[shard] = len(events)
        tracer.dropped += dropped
        merged.extend(events)
    merged.sort(key=canonical_key)
    overflow = len(merged) - tracer.capacity
    if overflow > 0:
        tracer.dropped += overflow
        merged = merged[overflow:]
    tracer._events.clear()
    tracer._events.extend(merged)
    tracer.shard_counts = counts
