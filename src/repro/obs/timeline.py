"""Cycle-windowed time-series telemetry (DESIGN.md section 13).

Every other observability surface — ``metrics()``, stall attribution,
``repro analyze`` — is an end-of-run aggregate; this module answers the
question they cannot: *when inside the run* did bandwidth ramp, banks
conflict, queues back up.  The measured-HMC literature the reproduction
validates against (Hadidi et al.) is fundamentally time-resolved, so the
timeline is the artifact their plots come from.

A :class:`Timeline` samples named *probes* at fixed cycle-epoch
boundaries.  A probe is a zero-argument callable reading a live counter
or container; its *kind* decides what is recorded per epoch:

* ``"rate"``  — the per-epoch **delta** of a monotonic counter
  (requests issued, packets built, wire bytes, bank conflicts, credit
  stalls).  Zero deltas are never stored, so quiet stretches cost
  nothing — the series is O(events), not O(cycles).
* ``"level"`` — the **instantaneous** value at the epoch boundary
  (ARQ occupancy, LSQ depth, in-flight responses).  Zero levels are
  likewise elided.

Sampling is *pumped by the engines*, not by the models: after each tick
(and after each ``skip_to``) the engine calls ``pump(sim.cycle)``, which
samples every boundary newly crossed.  The skip-bit-identity argument is
the same one the aggregator's strided depth replay makes: a skip is
taken only over a proven-quiescent span, during which every probed
counter is constant, so the bulk post-skip ``pump`` records exactly the
samples the lockstep per-boundary pumps would have — including a
boundary landing *exactly on* the skip target, which both engines sample
once, after the jump and before the next tick (the half-open boundary
pin of DESIGN.md section 10).

Probes register via the model's ``timeline_probes()`` hook, composed
layer by layer (MAC -> Node -> NUMASystem), and are **bound lazily** at
the start of the driving loop (:meth:`bind`).  Under the sharded-PDES
backend that matters: a forked worker binds *after*
``restrict_to_shard``, so only its local nodes' probes register and no
frozen remote counter ever records.  System-wide probes are rate-only —
shard-local counters partition the serial counters disjointly, so
summing per-epoch deltas across shards at the window barrier
reconstructs the serial series exactly (level probes are per-node and
land on exactly one shard).  ``serial == merged`` is pinned by the
hypothesis suite in ``tests/sim/test_timeline_equivalence.py``.

Like the tracer and the attribution collector, the timeline is off by
default: components hold :data:`NULL_TIMELINE`, every engine hook is
gated on one ``enabled`` attribute, and the timeline only ever *reads*
simulation state — a run with it enabled is bit-identical to one
without (pinned in ``tests/obs/test_timeline.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = [
    "NullTimeline",
    "Timeline",
    "NULL_TIMELINE",
    "DEFAULT_EPOCH",
    "DEFAULT_CAPACITY",
]

#: Default epoch width in cycles (one sample row per epoch).
DEFAULT_EPOCH = 1024

#: Default per-series epoch capacity (oldest epochs drop beyond it).
DEFAULT_CAPACITY = 4096

#: Probe kinds: per-epoch counter delta vs instantaneous boundary value.
KINDS = ("rate", "level")


class NullTimeline:
    """The no-op timeline every component and engine holds by default.

    ``enabled`` is ``False`` so the engine hooks skip all work; the
    methods exist (and do nothing) so cold paths may call them
    unconditionally.
    """

    __slots__ = ()
    enabled = False

    def bind(self, model: Any) -> None:
        """Ignore the model."""

    def pump(self, cycle: int) -> None:
        """Discard the boundary crossing."""

    def finish(self, cycle: int) -> None:
        """Discard the run end."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTimeline()"


#: Shared no-op instance; components default their ``timeline`` to this.
NULL_TIMELINE = NullTimeline()


class _Series:
    """One named series: sparse ``{epoch_index: value}`` with a cap."""

    __slots__ = ("kind", "epochs", "dropped")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        #: Insertion-ordered (epochs are sampled in increasing order),
        #: so the first key is always the oldest — O(1) eviction.
        self.epochs: Dict[int, float] = {}
        self.dropped = 0

    def record(self, epoch: int, value, capacity: int) -> None:
        if not value:
            return
        if epoch in self.epochs:  # merge path may revisit an epoch
            self.epochs[epoch] += value
            if not self.epochs[epoch]:
                del self.epochs[epoch]
            return
        if len(self.epochs) >= capacity:
            oldest = next(iter(self.epochs))
            del self.epochs[oldest]
            self.dropped += 1
        self.epochs[epoch] = value


class Timeline:
    """Fixed-epoch sampler over live probes, pumped by the engines."""

    __slots__ = (
        "enabled",
        "epoch",
        "capacity",
        "meta",
        "_series",
        "_probes",
        "_last",
        "_next_due",
        "_bound",
        "_cycles",
        "_finished",
    )

    def __init__(
        self, epoch: int = DEFAULT_EPOCH, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if epoch < 1:
            raise ValueError("timeline epoch must be positive")
        if capacity < 1:
            raise ValueError("timeline capacity must be positive")
        self.enabled = True
        self.epoch = epoch
        self.capacity = capacity
        #: Free-form annotations carried into :meth:`export`.
        self.meta: Dict[str, Any] = {}
        self._series: Dict[str, _Series] = {}
        #: (name, kind, fn) probe triples, installed by :meth:`bind`.
        self._probes: List[Tuple[str, str, Callable[[], float]]] = []
        #: Per-rate-probe counter value at the last sampled boundary.
        self._last: Dict[str, float] = {}
        self._next_due = epoch
        self._bound: Optional[int] = None
        self._cycles = 0
        self._finished = False

    # -- probe registration --------------------------------------------------

    def add_probe(self, name: str, kind: str, fn: Callable[[], float]) -> None:
        """Register one probe; rate probes baseline at the current value."""
        if kind not in KINDS:
            raise ValueError(f"unknown probe kind {kind!r} (use rate/level)")
        self._probes.append((name, kind, fn))
        if kind == "rate":
            self._last[name] = fn()

    def bind(self, model: Any) -> None:
        """Install ``model.timeline_probes()``; idempotent per model.

        Called by the engines at the start of each driving loop, which
        is what makes shard-aware collection work: a PDES worker binds
        *after* ``restrict_to_shard``, so a restricted system registers
        only its local nodes' probes.  Re-binding the same model (e.g.
        ``MAC.process``'s feed loop followed by its drain ``run``) is a
        no-op, preserving rate baselines mid-run.
        """
        key = id(model)
        if self._bound == key:
            return
        self._bound = key
        self._probes.clear()
        self._last.clear()
        hook = getattr(model, "timeline_probes", None)
        if hook is None:
            return
        for name, kind, fn in hook():
            self.add_probe(name, kind, fn)

    # -- sampling ------------------------------------------------------------

    def pump(self, cycle: int) -> None:
        """Sample every epoch boundary crossed up to ``cycle``.

        Engines call this after each tick and after each ``skip_to``;
        each boundary is sampled exactly once (the ``_next_due`` cursor
        advances monotonically), whether it was reached one tick at a
        time or jumped over in one skip.
        """
        while self._next_due <= cycle:
            self._sample(self._next_due)
            self._next_due += self.epoch

    def _sample(self, boundary: int) -> None:
        epoch_len = self.epoch
        cap = self.capacity
        series = self._series
        last = self._last
        for name, kind, fn in self._probes:
            value = fn()
            s = series.get(name)
            if s is None:
                s = series[name] = _Series(kind)
            if kind == "rate":
                delta = value - last[name]
                last[name] = value
                # The delta accrued over [boundary - epoch, boundary).
                s.record(boundary // epoch_len - 1, delta, cap)
            else:
                # The level *at* the boundary opens the next epoch.
                s.record(boundary // epoch_len, value, cap)

    def finish(self, cycle: int) -> None:
        """Settle the trailing partial epoch at the end of a run."""
        if self._finished:
            return
        self._finished = True
        self.pump(cycle)
        self._cycles = max(self._cycles, cycle)
        if cycle % self.epoch == 0:
            return
        # Rates accrued since the last boundary land in the final,
        # partial epoch; levels are end-of-run state, same epoch.
        final_epoch = cycle // self.epoch
        cap = self.capacity
        for name, kind, fn in self._probes:
            value = fn()
            s = self._series.get(name)
            if s is None:
                s = self._series[name] = _Series(kind)
            if kind == "rate":
                s.record(final_epoch, value - self._last[name], cap)
                self._last[name] = value
            else:
                s.record(final_epoch, value, cap)

    # -- introspection -------------------------------------------------------

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def series(self, name: str) -> Dict[int, float]:
        """Sparse ``{epoch_index: value}`` view of one series."""
        s = self._series.get(name)
        return dict(s.epochs) if s is not None else {}

    def dropped(self) -> int:
        """Total epochs evicted across every series."""
        return sum(s.dropped for s in self._series.values())

    def __len__(self) -> int:
        return len(self._series)

    # -- export / merge ------------------------------------------------------

    def export(self) -> Dict[str, Any]:
        """JSON-serializable document of everything recorded.

        The same structure ``repro analyze --timeline`` reads and the
        PDES worker ships to the parent at collect time (epoch keys are
        ints in memory; :meth:`write_json` stringifies them).
        """
        return {
            "version": 1,
            "epoch": self.epoch,
            "cycles": self._cycles,
            "meta": dict(self.meta),
            "series": {
                name: {
                    "kind": s.kind,
                    "dropped": s.dropped,
                    "epochs": dict(s.epochs),
                }
                for name, s in sorted(self._series.items())
            },
        }

    def merge_export(self, doc: Dict[str, Any]) -> None:
        """Fold one shard's :meth:`export` into this timeline.

        Rate epochs sum (shard-local counters partition the serial
        counters disjointly, so per-epoch sums reconstruct the serial
        deltas); level series are node-scoped and therefore live on
        exactly one shard — a collision would mean a probe-naming bug,
        so colliding level epochs sum too, loudly wrong rather than
        silently lossy.  Deterministic as long as the caller merges
        shards in a fixed order (the PDES parent merges in shard order).
        """
        if doc.get("epoch") != self.epoch:
            raise ValueError(
                f"cannot merge timeline with epoch {doc.get('epoch')} "
                f"into one with epoch {self.epoch}"
            )
        self._cycles = max(self._cycles, int(doc.get("cycles", 0)))
        for name, payload in doc.get("series", {}).items():
            s = self._series.get(name)
            if s is None:
                s = self._series[name] = _Series(payload["kind"])
            s.dropped += payload.get("dropped", 0)
            for epoch, value in payload["epochs"].items():
                s.record(int(epoch), value, self.capacity)

    def write_json(
        self, path: Union[str, Path], meta: Optional[Dict[str, Any]] = None
    ) -> int:
        """Atomically write the export document; returns the series count.

        Epoch keys become strings (JSON objects require it); readers use
        ``int(key)`` — see ``repro.obs.analyze.load_timeline``.
        """
        from repro.ioutil import atomic_write_text

        doc = self.export()
        if meta:
            doc["meta"].update(meta)
        doc["series"] = {
            name: {**payload, "epochs": {
                str(k): v for k, v in payload["epochs"].items()
            }}
            for name, payload in doc["series"].items()
        }
        atomic_write_text(path, json.dumps(doc, sort_keys=True))
        return len(doc["series"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Timeline(epoch={self.epoch}, series={len(self._series)}, "
            f"cycles={self._cycles})"
        )
