"""Wall-clock self-profiling of the simulator itself.

The timeline (:mod:`repro.obs.timeline`) resolves *simulated* time; this
module resolves *host* time: where do the wall seconds of a run go, and
how hard are the accelerating subsystems actually working?  The profiler
collects, per driving loop:

* tick and skip counts, executed vs skipped cycles (the skip-engine's
  effectiveness as a ratio, not an anecdote);
* vector-kernel hit counts (:mod:`repro.sim.vector` counts table/array
  dispatches only while a profiler has switched profiling on — the hot
  kernels stay increment-free otherwise);
* under the sharded-PDES backend, per-shard busy wall-seconds and window
  counts reported at each barrier, from which the parent derives barrier
  wait (window wall time minus the busiest shard).

Results export two ways: :meth:`SimProfiler.metrics` — a flat ``sim.*``
namespace printed by ``repro run --profile`` and merged into
``--metrics-out`` (only under ``--profile``, so wall-clock noise never
pollutes determinism diffs) — and :meth:`SimProfiler.chrome_events`, a
separate Chrome-trace *process lane* (pid 1000, named ``sim``) merged
into ``--trace-out`` documents so simulated-time events and host-time
windows line up in one Perfetto view.

Off by default via the usual NULL-object pattern: engines read
``getattr(sim, "profiler", NULL_PROFILER)`` and gate every hook on
``enabled``, so the unprofiled hot path pays one attribute check per
loop, not per tick.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

__all__ = ["NullProfiler", "SimProfiler", "NULL_PROFILER"]


class NullProfiler:
    """The no-op profiler every engine sees by default."""

    __slots__ = ()
    enabled = False

    def run_started(self, engine: str = "") -> None:
        """Ignore the run start."""

    def note_tick(self) -> None:
        """Ignore the tick."""

    def note_skip(self, cycles: int) -> None:
        """Ignore the skip."""

    def run_finished(self, cycle: int) -> None:
        """Ignore the run end."""

    def note_window(self, wall_s: float, busy_s: List[float]) -> None:
        """Ignore the PDES window."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullProfiler()"


#: Shared no-op instance.
NULL_PROFILER = NullProfiler()


class SimProfiler:
    """Mutable accumulator for one (or several chained) driving loops."""

    __slots__ = (
        "enabled",
        "engine",
        "ticks",
        "skips",
        "skipped_cycles",
        "final_cycle",
        "wall_s",
        "windows",
        "barrier_wait_s",
        "shard_busy_s",
        "_window_spans",
        "_t0",
        "_vector_base",
    )

    def __init__(self) -> None:
        self.enabled = True
        self.engine = ""
        self.ticks = 0
        self.skips = 0
        self.skipped_cycles = 0
        self.final_cycle = 0
        self.wall_s = 0.0
        #: PDES barrier accounting (zero when the run was serial).
        self.windows = 0
        self.barrier_wait_s = 0.0
        self.shard_busy_s: Dict[int, float] = {}
        #: (start_s, end_s) wall spans of each PDES window, for the
        #: Chrome lane (relative to run start).
        self._window_spans: List[tuple] = []
        self._t0 = 0.0
        self._vector_base: Dict[str, int] = {}

    # -- engine hooks --------------------------------------------------------

    def run_started(self, engine: str = "") -> None:
        from repro.sim import vector

        if engine:
            self.engine = engine
        if not self._t0:
            self._t0 = time.perf_counter()
            vector.set_profiling(True)
            self._vector_base = vector.kernel_counters()

    def note_tick(self) -> None:
        self.ticks += 1

    def note_skip(self, cycles: int) -> None:
        if cycles > 0:
            self.skips += 1
            self.skipped_cycles += cycles

    def run_finished(self, cycle: int) -> None:
        if self._t0:
            self.wall_s += time.perf_counter() - self._t0
            self._t0 = 0.0
        self.final_cycle = max(self.final_cycle, cycle)

    # -- PDES hooks (parent side) --------------------------------------------

    def note_window(self, wall_s: float, busy_s: List[float]) -> None:
        """Record one window barrier: parent wall time vs shard busy time.

        ``busy_s`` is each shard's *cumulative* busy seconds; barrier
        wait for this window is its wall time minus the busiest shard's
        increment (the conservative window cannot close faster than its
        slowest worker).
        """
        self.windows += 1
        prev = dict(self.shard_busy_s)
        for s, total in enumerate(busy_s):
            self.shard_busy_s[s] = total
        incr = [
            self.shard_busy_s[s] - prev.get(s, 0.0)
            for s in range(len(busy_s))
        ]
        self.barrier_wait_s += max(0.0, wall_s - max(incr, default=0.0))
        now = time.perf_counter()
        start = (now - self._t0 - wall_s) if self._t0 else 0.0
        self._window_spans.append((max(0.0, start), wall_s))

    # -- export --------------------------------------------------------------

    @property
    def executed_cycles(self) -> int:
        return self.ticks

    @property
    def skip_ratio(self) -> float:
        """Fraction of simulated cycles the engine never ticked."""
        total = self.ticks + self.skipped_cycles
        return self.skipped_cycles / total if total else 0.0

    def metrics(self) -> Dict[str, Any]:
        """Flat ``sim.*`` metrics namespace for ``--profile`` output."""
        from repro.sim import vector

        out: Dict[str, Any] = {
            "sim.engine": self.engine,
            "sim.ticks": self.ticks,
            "sim.skips": self.skips,
            "sim.executed_cycles": self.executed_cycles,
            "sim.skipped_cycles": self.skipped_cycles,
            "sim.skip_ratio": self.skip_ratio,
            "sim.final_cycle": self.final_cycle,
            "sim.wall_s": self.wall_s,
        }
        counts = vector.kernel_counters()
        for name in sorted(counts):
            out[f"sim.vector.{name}"] = counts[name] - self._vector_base.get(
                name, 0
            )
        if self.windows:
            out["sim.pdes.windows"] = self.windows
            out["sim.pdes.barrier_wait_s"] = self.barrier_wait_s
            busy_total = sum(self.shard_busy_s.values())
            for s in sorted(self.shard_busy_s):
                out[f"sim.pdes.shard{s}.busy_s"] = self.shard_busy_s[s]
            # Utilization: busy seconds over the wall-clock each shard
            # had available (shards run concurrently, so the budget is
            # wall_s per shard, not wall_s total).
            if self.wall_s and self.shard_busy_s:
                out["sim.pdes.utilization"] = busy_total / (
                    self.wall_s * len(self.shard_busy_s)
                )
        return out

    def chrome_events(self, pid: int = 1000) -> List[Dict[str, Any]]:
        """Chrome-trace events for the ``sim`` process lane.

        Host-time spans (microseconds): one ``X`` for the whole run,
        one per PDES window, plus a summary instant carrying
        :meth:`metrics` as args.  Merged into the tracer's document by
        ``repro run --trace-out --profile``.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "sim (self-profile, host time)"},
            },
            {
                "name": f"run ({self.engine or 'serial'})",
                "cat": "sim",
                "ph": "X",
                "ts": 0,
                "dur": int(self.wall_s * 1e6),
                "pid": pid,
                "tid": 1,
            },
        ]
        for i, (start, dur) in enumerate(self._window_spans):
            events.append(
                {
                    "name": f"window {i}",
                    "cat": "sim.pdes",
                    "ph": "X",
                    "ts": int(start * 1e6),
                    "dur": max(1, int(dur * 1e6)),
                    "pid": pid,
                    "tid": 2,
                }
            )
        events.append(
            {
                "name": "profile",
                "cat": "sim",
                "ph": "i",
                "ts": int(self.wall_s * 1e6),
                "pid": pid,
                "tid": 1,
                "s": "p",
                "args": {
                    k: v for k, v in self.metrics().items()
                    if isinstance(v, (int, float, str))
                },
            }
        )
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimProfiler(ticks={self.ticks}, skips={self.skips}, "
            f"skip_ratio={self.skip_ratio:.2f}, wall={self.wall_s:.3f}s)"
        )
