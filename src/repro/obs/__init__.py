"""Observability layer: metrics registry, stats protocol, event tracing.

``repro.obs`` gives the simulator the substrate its evaluation depends
on (DESIGN.md section 9):

* :class:`MetricsRegistry` + :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` — one flat, namespaced ``metrics()`` view over
  every stats source;
* :class:`StatsMixin` / :class:`StatsProtocol` — the shared
  snapshot/merge/reset contract every ``*Stats`` dataclass adopts,
  making parallel-eval workers mergeable by construction;
* :class:`EventTracer` / :data:`NULL_TRACER` — cycle-stamped structured
  event traces with Chrome-trace (Perfetto) and JSONL export, off by
  default with a bit-identical no-op path;
* :class:`AttributionCollector` / :data:`NULL_ATTRIBUTION` — per-request
  latency breakdown (stage stamps whose deltas sum exactly to
  end-to-end latency), the :class:`StallCause` taxonomy of
  ``stall_cycles{site,cause}`` counters, and strided queue-depth
  sampling; consumed by ``repro analyze`` bottleneck reports;
* :class:`Timeline` / :data:`NULL_TIMELINE` — cycle-windowed time
  series (per-epoch rates and levels) pumped by the engines, shard-
  aware under PDES, consumed by ``repro analyze --timeline``;
* :class:`SimProfiler` / :data:`NULL_PROFILER` — wall-clock
  self-profiling of the simulator (tick/skip ratios, vector-kernel
  hits, PDES window utilization), the ``sim.*`` metrics namespace.
"""

from .attribution import (
    NULL_ATTRIBUTION,
    STAGES,
    AttributionCollector,
    DepthSampler,
    NullAttribution,
    StallCause,
    request_breakdown,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten,
)
from .profiler import NULL_PROFILER, NullProfiler, SimProfiler
from .protocol import StatsMixin, StatsProtocol, merge_all
from .timeline import NULL_TIMELINE, NullTimeline, Timeline
from .tracer import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    canonical_key,
    merge_shard_traces,
)

__all__ = [
    "AttributionCollector",
    "DepthSampler",
    "NullAttribution",
    "NULL_ATTRIBUTION",
    "STAGES",
    "StallCause",
    "request_breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flatten",
    "StatsMixin",
    "StatsProtocol",
    "merge_all",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
    "canonical_key",
    "merge_shard_traces",
    "Timeline",
    "NullTimeline",
    "NULL_TIMELINE",
    "SimProfiler",
    "NullProfiler",
    "NULL_PROFILER",
]
