"""Observability layer: metrics registry, stats protocol, event tracing.

``repro.obs`` gives the simulator the substrate its evaluation depends
on (DESIGN.md section 9):

* :class:`MetricsRegistry` + :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` — one flat, namespaced ``metrics()`` view over
  every stats source;
* :class:`StatsMixin` / :class:`StatsProtocol` — the shared
  snapshot/merge/reset contract every ``*Stats`` dataclass adopts,
  making parallel-eval workers mergeable by construction;
* :class:`EventTracer` / :data:`NULL_TRACER` — cycle-stamped structured
  event traces with Chrome-trace (Perfetto) and JSONL export, off by
  default with a bit-identical no-op path;
* :class:`AttributionCollector` / :data:`NULL_ATTRIBUTION` — per-request
  latency breakdown (stage stamps whose deltas sum exactly to
  end-to-end latency), the :class:`StallCause` taxonomy of
  ``stall_cycles{site,cause}`` counters, and strided queue-depth
  sampling; consumed by ``repro analyze`` bottleneck reports.
"""

from .attribution import (
    NULL_ATTRIBUTION,
    STAGES,
    AttributionCollector,
    DepthSampler,
    NullAttribution,
    StallCause,
    request_breakdown,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten,
)
from .protocol import StatsMixin, StatsProtocol, merge_all
from .tracer import NULL_TRACER, EventTracer, NullTracer

__all__ = [
    "AttributionCollector",
    "DepthSampler",
    "NullAttribution",
    "NULL_ATTRIBUTION",
    "STAGES",
    "StallCause",
    "request_breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flatten",
    "StatsMixin",
    "StatsProtocol",
    "merge_all",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
]
