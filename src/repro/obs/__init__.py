"""Observability layer: metrics registry, stats protocol, event tracing.

``repro.obs`` gives the simulator the substrate its evaluation depends
on (DESIGN.md section 9):

* :class:`MetricsRegistry` + :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` — one flat, namespaced ``metrics()`` view over
  every stats source;
* :class:`StatsMixin` / :class:`StatsProtocol` — the shared
  snapshot/merge/reset contract every ``*Stats`` dataclass adopts,
  making parallel-eval workers mergeable by construction;
* :class:`EventTracer` / :data:`NULL_TRACER` — cycle-stamped structured
  event traces with Chrome-trace (Perfetto) and JSONL export, off by
  default with a bit-identical no-op path.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten,
)
from .protocol import StatsMixin, StatsProtocol, merge_all
from .tracer import NULL_TRACER, EventTracer, NullTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "flatten",
    "StatsMixin",
    "StatsProtocol",
    "merge_all",
    "EventTracer",
    "NullTracer",
    "NULL_TRACER",
]
