"""Per-request latency attribution and stall-cause accounting (DESIGN.md §9).

The metrics layer says *what* happened and the tracer says *when*; this
module says *where the cycles went*.  Two complementary views:

* **Latency breakdown** — every raw request carries a compact record of
  absolute cycle stamps at the pipeline boundaries it crosses (router
  submit, ARQ admit, ARQ pop, packet dispatch, NoC ingress, vault
  arrival, bank dispatch, data ready, completion, delivery).  The deltas between
  consecutive stamps are the per-stage latencies; because they telescope,
  the stage sums equal the end-to-end latency *exactly*, cycle for cycle
  — pinned by ``tests/integration/test_latency_breakdown.py``.  Stages
  aggregate into bounded :class:`~repro.obs.metrics.Histogram` sketches
  with p50/p95/p99.

* **Stall taxonomy** — whenever a component fails to make progress it
  charges one cause from the closed :class:`StallCause` enum against its
  site, Top-down style (Yasin, ISPASS '14).  Cycle-ticked components
  (MAC front-end, builder) charge one cycle at a time; event-timed
  components (links, vaults) charge wall-clock *spans* that are clipped
  against a per-``(site, cause)`` watermark, so overlapping per-request
  waits collapse into their union and no counter can exceed the elapsed
  cycles of the run — pinned by a hypothesis property.

A strided :class:`DepthSampler` additionally records bounded queue-depth
/ occupancy time series (ARQ entries, link tokens, vault backlog): when
its per-site buffer fills it halves the series and doubles the stride,
so memory stays O(capacity) over arbitrarily long runs.

Everything is **off by default**: components hold the
:data:`NULL_ATTRIBUTION` singleton whose ``enabled`` flag gates every
hook, mirroring :data:`repro.obs.tracer.NULL_TRACER`.  A run with
attribution disabled is bit-identical to one without the hooks compiled
in at all, because the collector only ever *reads* simulation state.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple

from .metrics import Histogram

__all__ = [
    "STAGES",
    "MARKS",
    "STAGE_OF_MARK",
    "StallCause",
    "DepthSampler",
    "NullAttribution",
    "AttributionCollector",
    "NULL_ATTRIBUTION",
    "request_breakdown",
]

#: Pipeline boundary marks, in path order.  Each raw request stores the
#: absolute cycle at which it crossed each boundary it reached.
MARKS: Tuple[str, ...] = (
    "submit",         # accepted by the request router
    "arq_admit",      # accepted into the ARQ
    "arq_pop",        # entry (with every merged request) left the ARQ
    "dispatch",       # coalesced packet left the MAC towards the device
    "xbar_arrive",    # request link serialization done, at the NoC ingress
    "vault_arrive",   # NoC (crossbar/ring/mesh) traversal done
    "bank_dispatch",  # vault front-end queue cleared, bank engaged
    "data_ready",     # DRAM burst data available at the vault
    "complete",       # response crossbar + link serialization done
    "deliver",        # response routed back to the issuing core
)

#: Stage names: the delta *ending* at each mark (skipping the first).
STAGE_OF_MARK: Dict[str, str] = {
    "arq_admit": "router_queue",
    "arq_pop": "coalesce_wait",
    "dispatch": "builder",
    "xbar_arrive": "link_request",
    "vault_arrive": "noc_traverse",
    "bank_dispatch": "vault_queue",
    "data_ready": "dram_service",
    "complete": "link_response",
    "deliver": "response_route",
}

#: Per-stage latency components, in path order; sums to end-to-end.
STAGES: Tuple[str, ...] = tuple(STAGE_OF_MARK[m] for m in MARKS[1:])


class StallCause(str, enum.Enum):
    """Closed taxonomy of reasons a component fails to make progress.

    The string values are the keys used in snapshots, metrics and the
    ``repro analyze`` report; new causes extend the enum, never ad-hoc
    strings.
    """

    #: MAC front-end cannot accept: every ARQ entry is occupied.
    ARQ_FULL = "arq_full"
    #: ARQ occupied/waiting because a pending fence must drain first.
    FENCE_DRAIN = "fence_drain"
    #: ARQ pop due but the builder's stage 1 latch is still busy.
    BUILDER_BUSY = "builder_busy"
    #: A core's request bounced off a full router input FIFO.
    INPUT_QUEUE_FULL = "input_queue_full"
    #: Link channel busy serializing earlier packets (fault-free wait).
    LINK_BUSY = "link_busy"
    #: Flow-control tokens / retry-buffer credits exhausted.
    LINK_TOKENS_EXHAUSTED = "link_tokens_exhausted"
    #: Extra wire time spent replaying NAKed packets (CRC/ACK loss).
    RETRY_REPLAY = "retry_replay"
    #: Vault front-end queue full: request waited for admission.
    VAULT_QUEUE_FULL = "vault_queue_full"
    #: Target bank still busy with an earlier closed-page access.
    BANK_CONFLICT = "bank_conflict"
    #: NoC output port busy (arbitration loss) or its input buffer full
    #: (backpressure into the link) — charged at the arbiter.
    NOC_CONTENTION = "noc_contention"
    #: Open-page row miss: the previously open row's precharge sits on
    #: the requester's critical path — charged at the bank.
    ROW_MISS = "row_miss"
    #: Remote completion path pushed back: the NUMA fabric had to bounce
    #: a payload because the destination queue was full (NACK retry).
    RESPONSE_BACKPRESSURE = "response_backpressure"


class DepthSampler:
    """Strided, bounded queue-depth/occupancy time series per site.

    Every ``stride``-th offered sample is kept as ``(cycle, value)``.
    When a site's series reaches ``capacity`` it is decimated (every
    other point dropped) and the stride doubles, so memory is bounded
    while the series keeps covering the whole run.
    """

    __slots__ = ("base_stride", "capacity", "_series", "_stride", "_seen")

    def __init__(self, stride: int = 64, capacity: int = 2048) -> None:
        if stride < 1:
            raise ValueError("stride must be positive")
        if capacity < 8:
            raise ValueError("capacity must be at least 8")
        self.base_stride = stride
        self.capacity = capacity
        self._series: Dict[str, List[Tuple[int, float]]] = {}
        self._stride: Dict[str, int] = {}
        self._seen: Dict[str, int] = {}

    def sample(self, site: str, cycle: int, value: float) -> None:
        """Offer one observation; kept only on the site's stride."""
        seen = self._seen.get(site, 0)
        self._seen[site] = seen + 1
        stride = self._stride.get(site, self.base_stride)
        if seen % stride:
            return
        series = self._series.setdefault(site, [])
        series.append((cycle, value))
        if len(series) >= self.capacity:
            del series[1::2]
            self._stride[site] = stride * 2

    def sites(self) -> List[str]:
        return sorted(self._series)

    def series(self, site: str) -> List[Tuple[int, float]]:
        """The retained ``(cycle, value)`` points of one site, in order."""
        return list(self._series.get(site, ()))

    def snapshot(self) -> Dict[str, Any]:
        """Per-site summary (the full series stays query-only)."""
        out: Dict[str, Any] = {}
        for site, series in sorted(self._series.items()):
            values = [v for _, v in series]
            out[site] = {
                "points": len(series),
                "stride": self._stride.get(site, self.base_stride),
                "offered": self._seen.get(site, 0),
                "min": min(values),
                "max": max(values),
                "mean": sum(values) / len(values),
                "last": values[-1],
            }
        return out

    def reset(self) -> None:
        self._series.clear()
        self._stride.clear()
        self._seen.clear()


class NullAttribution:
    """No-op collector every instrumented component holds by default.

    ``enabled`` is ``False`` so hot paths skip all bookkeeping behind a
    single attribute check; the methods exist so cold paths may call
    them unconditionally.
    """

    __slots__ = ()
    enabled = False

    def mark(self, request, mark: str, cycle: int) -> None:
        """Discard the boundary stamp."""

    def finalize(self, request) -> None:
        """Discard the completed request."""

    def stall(self, site: str, cause: "StallCause", n: int = 1) -> None:
        """Discard the stall charge."""

    def stall_span(self, site: str, cause: "StallCause", begin: int, end: int) -> None:
        """Discard the stall span."""

    def sample_depth(self, site: str, cycle: int, value: float) -> None:
        """Discard the occupancy sample."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullAttribution()"


#: Shared no-op instance; components default their ``attrib`` to this.
NULL_ATTRIBUTION = NullAttribution()


def request_breakdown(request) -> Optional[Dict[str, int]]:
    """Per-stage cycle breakdown of one stamped raw request.

    Returns ``{stage: cycles, ..., "end_to_end": cycles}`` over the
    stages the request actually crossed, or ``None`` when the request
    carries fewer than two marks (attribution off, or still in flight).
    The stage values telescope: they sum to ``end_to_end`` exactly.
    """
    marks = getattr(request, "marks", None)
    if not marks or len(marks) < 2:
        return None
    out: Dict[str, int] = {}
    first: Optional[int] = None
    prev: Optional[int] = None
    for name in MARKS:
        cycle = marks.get(name)
        if cycle is None:
            continue
        if prev is None:
            first = cycle
        else:
            out[STAGE_OF_MARK[name]] = cycle - prev
        prev = cycle
    assert first is not None and prev is not None
    out["end_to_end"] = prev - first
    return out


class AttributionCollector:
    """Aggregates stamps, stall charges and occupancy samples of one run.

    One collector is wired through a MAC + device (or node/system) the
    same way an :class:`~repro.obs.tracer.EventTracer` is; it is purely
    an observer.  ``snapshot()`` is registry-compatible, so the
    collector can be dropped into a :class:`MetricsRegistry` or merged
    across parallel workers.
    """

    __slots__ = (
        "enabled",
        "_stage_cycles",
        "stalls",
        "depth",
        "_finalized",
        "incomplete",
        "_stage_hists",
        "_end_hist",
        "_pending",
        "_pending_end",
        "_finalize_buf",
        "_watermarks",
    )

    #: Distinct delta values buffered per stage before folding into the
    #: histogram; bounds the pending-buffer memory.
    _PENDING_LIMIT = 4096

    #: Completed stamp records buffered before batch aggregation; bounds
    #: the finalize-buffer memory.
    _FINALIZE_BATCH = 8192

    def __init__(
        self,
        sample_limit: int = 8192,
        depth_stride: int = 1,
        depth_capacity: int = 2048,
    ) -> None:
        self.enabled = True
        self._stage_hists: Dict[str, Histogram] = {
            stage: Histogram(sample_limit=sample_limit) for stage in STAGES
        }
        #: Exact integer per-stage totals (the histograms' float totals
        #: mirror them; these are what the exactness contract pins).
        self._stage_cycles: Dict[str, int] = {stage: 0 for stage in STAGES}
        self._end_hist = Histogram(sample_limit=sample_limit)
        #: Stage deltas buffered as ``{delta: occurrences}`` and folded
        #: into the histograms lazily: stage latencies repeat heavily,
        #: so this turns ~9 Histogram.add calls per request into dict
        #: increments, keeping the attribution overhead inside budget
        #: (``benchmarks/bench_obs_overhead.py``).  Quantiles are
        #: unaffected — they depend on the value multiset, not arrival
        #: order.
        self._pending: Dict[str, Dict[int, int]] = {s: {} for s in STAGES}
        self._pending_end: Dict[int, int] = {}
        #: Stamp records awaiting batch aggregation (see finalize()).
        self._finalize_buf: List[Dict[str, int]] = []
        #: ``site -> cause-value -> stall cycles``.
        self.stalls: Dict[str, Dict[str, int]] = {}
        self.depth = DepthSampler(depth_stride, depth_capacity)
        self._finalized = 0
        self.incomplete = 0
        #: Per-(site, cause) charged-until cycle for span clipping.
        self._watermarks: Dict[Tuple[str, str], int] = {}

    # -- lazy histogram folding --------------------------------------------

    @staticmethod
    def _fold(hist: Histogram, bucket: Dict[int, int]) -> None:
        for value in sorted(bucket):
            hist.add(value, bucket[value])
        bucket.clear()

    def _flush(self) -> None:
        """Drain the finalize buffer, fold every pending delta bucket."""
        self._drain()
        for stage, bucket in self._pending.items():
            if bucket:
                self._fold(self._stage_hists[stage], bucket)
        if self._pending_end:
            self._fold(self._end_hist, self._pending_end)

    @property
    def stages(self) -> Dict[str, Histogram]:
        """Per-stage latency histograms (pending deltas folded in)."""
        self._flush()
        return self._stage_hists

    @property
    def end_to_end(self) -> Histogram:
        """End-to-end latency histogram (pending deltas folded in)."""
        self._flush()
        return self._end_hist

    @property
    def finalized(self) -> int:
        """Completed requests, including those awaiting batch drain."""
        return self._finalized + len(self._finalize_buf)

    @property
    def stage_cycles(self) -> Dict[str, int]:
        """Exact integer per-stage cycle totals (drained first)."""
        self._drain()
        return self._stage_cycles

    # -- latency breakdown -------------------------------------------------

    def mark(self, request, mark: str, cycle: int) -> None:
        """Stamp one boundary crossing on a raw request.

        Re-stamping a mark overwrites it, so a fault-injected re-issue
        replaces the doomed attempt's timeline with the successful one
        and the stamps stay monotone.
        """
        marks = request.marks
        if marks is None:
            marks = request.marks = {}
        marks[mark] = cycle

    def finalize(self, request) -> None:
        """Queue a completed request's stamps for aggregation.

        Hot path: one list append.  The stamp records aggregate in
        batches of :data:`_FINALIZE_BATCH` (bounded memory) via
        :meth:`_drain`, which runs off the simulation's critical path —
        on buffer overflow or on the next ``stages`` / ``end_to_end`` /
        ``snapshot`` access.
        """
        marks = request.marks
        if not marks or len(marks) < 2:
            self.incomplete += 1
            return
        buf = self._finalize_buf
        buf.append(marks)
        if len(buf) >= self._FINALIZE_BATCH:
            self._drain()

    def _drain(self) -> None:
        """Aggregate the buffered stamp records (batch finalize)."""
        buf = self._finalize_buf
        if not buf:
            return
        pending = self._pending
        stage_cycles = self._stage_cycles
        pend_end = self._pending_end
        for marks in buf:
            get = marks.get
            first: Optional[int] = None
            prev: Optional[int] = None
            for name in MARKS:
                cycle = get(name)
                if cycle is None:
                    continue
                if prev is None:
                    first = cycle
                else:
                    stage = STAGE_OF_MARK[name]
                    delta = cycle - prev
                    bucket = pending[stage]
                    bucket[delta] = bucket.get(delta, 0) + 1
                    stage_cycles[stage] += delta
                prev = cycle
            end = prev - first
            pend_end[end] = pend_end.get(end, 0) + 1
        self._finalized += len(buf)
        buf.clear()
        for stage, bucket in pending.items():
            if len(bucket) > self._PENDING_LIMIT:
                self._fold(self._stage_hists[stage], bucket)
        if len(pend_end) > self._PENDING_LIMIT:
            self._fold(self._end_hist, pend_end)

    # -- stall taxonomy ----------------------------------------------------

    def stall(self, site: str, cause: StallCause, n: int = 1) -> None:
        """Charge ``n`` stall cycles (cycle-ticked sites: once per cycle)."""
        per_site = self.stalls.setdefault(site, {})
        key = cause.value
        per_site[key] = per_site.get(key, 0) + n

    def stall_span(self, site: str, cause: StallCause, begin: int, end: int) -> None:
        """Charge the wall-clock span ``[begin, end)`` of a blocked wait.

        Spans are clipped against a per-``(site, cause)`` watermark so
        overlapping per-request waits collapse into their union: the
        counter measures *wall* cycles the resource was a bottleneck,
        and can never exceed the elapsed cycles of the run.
        """
        if end <= begin:
            return
        key = (site, cause.value)
        watermark = self._watermarks.get(key, 0)
        charged_from = max(begin, watermark)
        if end > charged_from:
            per_site = self.stalls.setdefault(site, {})
            per_site[cause.value] = per_site.get(cause.value, 0) + end - charged_from
        if end > watermark:
            self._watermarks[key] = end

    # -- occupancy ---------------------------------------------------------

    def sample_depth(self, site: str, cycle: int, value: float) -> None:
        self.depth.sample(site, cycle, value)

    # -- views -------------------------------------------------------------

    @staticmethod
    def _hist_summary(hist: Histogram) -> Dict[str, Any]:
        return {
            "count": hist.count,
            "total": hist.total,
            "mean": hist.mean,
            "p50": hist.quantile(0.5),
            "p95": hist.quantile(0.95),
            "p99": hist.quantile(0.99),
            "max": hist.max if hist.max is not None else 0,
        }

    def stage_table(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage summary keyed by stage name, path order."""
        stages = self.stages  # flushes pending deltas
        return {stage: self._hist_summary(stages[stage]) for stage in STAGES}

    def total_stall_cycles(self) -> Dict[str, int]:
        """Total stall cycles per site (all causes summed)."""
        return {site: sum(causes.values()) for site, causes in self.stalls.items()}

    def snapshot(self) -> Dict[str, Any]:
        self._flush()
        return {
            "requests_finalized": self.finalized,
            "requests_incomplete": self.incomplete,
            "end_to_end": self._hist_summary(self._end_hist),
            "stages": self.stage_table(),
            "stage_cycles": dict(self._stage_cycles),
            "stalls": {site: dict(causes) for site, causes in self.stalls.items()},
            "depth": self.depth.snapshot(),
        }

    def merge(self, other: "AttributionCollector") -> None:
        """Accumulate another collector (parallel-worker aggregation).

        Histograms and counters add; span watermarks take the max (the
        union clipping stays conservative across workers); depth series
        are summaries only, so the other's raw points are not imported.
        """
        self._flush()
        other._flush()
        for stage in STAGES:
            self._stage_hists[stage].merge(other._stage_hists[stage])
            self._stage_cycles[stage] += other._stage_cycles[stage]
        self._end_hist.merge(other._end_hist)
        for site, causes in other.stalls.items():
            per_site = self.stalls.setdefault(site, {})
            for cause, n in causes.items():
                per_site[cause] = per_site.get(cause, 0) + n
        for key, watermark in other._watermarks.items():
            if watermark > self._watermarks.get(key, 0):
                self._watermarks[key] = watermark
        self._finalized += other._finalized
        self.incomplete += other.incomplete

    def reset(self) -> None:
        for stage in STAGES:
            self._stage_hists[stage].reset()
            self._pending[stage].clear()
            self._stage_cycles[stage] = 0
        self._end_hist.reset()
        self._pending_end.clear()
        self._finalize_buf.clear()
        self.stalls.clear()
        self._watermarks.clear()
        self.depth.reset()
        self._finalized = 0
        self.incomplete = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AttributionCollector(finalized={self.finalized}, "
            f"sites={len(self.stalls)})"
        )
