"""Bottleneck reports over attribution data (the ``repro analyze`` core).

Turns an :class:`~repro.obs.attribution.AttributionCollector` (or a
previously exported metrics/report JSON file) into a *bottleneck
report*: the per-stage latency table, the top stall ``(site, cause)``
pairs, the critical stage, and the exactness check that the stage sums
reproduce end-to-end latency cycle for cycle.  A diff mode compares two
reports for A/B (before/after) analysis.

The report is a plain JSON-serializable dict — the CLI renders it as
text tables, scripts consume it as JSON, and ``diff_reports`` works on
any two of them regardless of origin (live run, ``--report-out`` file,
or a ``--metrics-out`` file whose flat ``attribution.*`` keys are
re-nested here).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .attribution import STAGES, AttributionCollector

__all__ = [
    "build_report",
    "report_from_metrics",
    "load_report",
    "load_json",
    "is_flat_metrics",
    "diff_reports",
    "diff_metrics",
    "format_report",
    "format_diff",
    "format_metrics_diff",
]

#: Stage-histogram fields carried through reports and diffs.
_STAGE_FIELDS = ("count", "total", "mean", "p50", "p95", "p99", "max")


def build_report(
    attrib: AttributionCollector, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Bottleneck report dict over one collector's aggregates."""
    stages = attrib.stage_table()
    stage_total = sum(attrib.stage_cycles.values())
    end_total = attrib.end_to_end.total
    shares = {
        stage: (row["total"] / stage_total if stage_total else 0.0)
        for stage, row in stages.items()
    }
    for stage, row in stages.items():
        row["share"] = shares[stage]
    critical = max(STAGES, key=lambda s: stages[s]["total"]) if stage_total else None
    top = sorted(
        (
            (site, cause, cycles)
            for site, causes in attrib.stalls.items()
            for cause, cycles in causes.items()
        ),
        key=lambda item: (-item[2], item[0], item[1]),
    )
    return {
        "meta": dict(meta or {}),
        "requests": attrib.finalized,
        "incomplete": attrib.incomplete,
        "end_to_end": attrib._hist_summary(attrib.end_to_end),
        "stages": stages,
        "stage_cycle_sum": stage_total,
        "exact": stage_total == end_total,
        "critical_stage": critical,
        "stalls": {site: dict(c) for site, c in attrib.stalls.items()},
        "top_stalls": [list(t) for t in top],
        "depth": attrib.depth.snapshot(),
    }


def report_from_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a report from a flat ``--metrics-out`` style dict.

    Accepts the dotted-key namespace written by ``repro run
    --attribution --metrics-out`` (``attribution.stages.<stage>.<field>``
    etc.); raises ``ValueError`` when the file carries no attribution
    keys (i.e. the run had attribution disabled).
    """
    prefix = "attribution."
    nested: Dict[str, Any] = {}
    for key, value in metrics.items():
        if not key.startswith(prefix):
            continue
        parts = key[len(prefix):].split(".")
        node = nested
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    if not nested:
        raise ValueError(
            "no attribution.* keys found — was the run made with "
            "attribution enabled (repro run --attribution / repro analyze)?"
        )
    stages: Dict[str, Dict[str, Any]] = {
        stage: dict(nested.get("stages", {}).get(stage, {})) for stage in STAGES
    }
    stage_cycles = nested.get("stage_cycles", {})
    stage_total = sum(stage_cycles.get(stage, 0) for stage in STAGES)
    for stage, row in stages.items():
        row.setdefault("total", stage_cycles.get(stage, 0))
        row["share"] = row["total"] / stage_total if stage_total else 0.0
    end = dict(nested.get("end_to_end", {}))
    critical = (
        max(STAGES, key=lambda s: stages[s].get("total", 0)) if stage_total else None
    )
    stalls: Dict[str, Dict[str, int]] = {
        site: dict(causes) for site, causes in nested.get("stalls", {}).items()
    }
    top = sorted(
        (
            (site, cause, cycles)
            for site, causes in stalls.items()
            for cause, cycles in causes.items()
        ),
        key=lambda item: (-item[2], item[0], item[1]),
    )
    return {
        "meta": {"source": "metrics"},
        "requests": nested.get("requests_finalized", 0),
        "incomplete": nested.get("requests_incomplete", 0),
        "end_to_end": end,
        "stages": stages,
        "stage_cycle_sum": stage_total,
        "exact": stage_total == end.get("total", -1),
        "critical_stage": critical,
        "stalls": stalls,
        "top_stalls": [list(t) for t in top],
        "depth": nested.get("depth", {}),
    }


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report or metrics JSON object without reshaping it."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def is_flat_metrics(data: Dict[str, Any]) -> bool:
    """A flat ``--metrics-out`` dict, as opposed to a bottleneck report."""
    return not ("stages" in data and "end_to_end" in data)


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report from a ``--report-out`` or ``--metrics-out`` file."""
    data = load_json(path)
    if not is_flat_metrics(data):
        return data
    return report_from_metrics(data)


def diff_metrics(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Key-by-key A→B comparison of two flat metrics dicts.

    The determinism check behind the sharded-NUMA smoke: two
    ``--metrics-out`` files from bit-identical runs (e.g. ``--shards 4``
    vs serial) must produce ``identical: True`` — every key present in
    both files with exactly equal values.
    """
    changed = {
        k: [a[k], b[k]] for k in sorted(set(a) & set(b)) if a[k] != b[k]
    }
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    return {
        "identical": not changed and not only_a and not only_b,
        "keys": len(set(a) | set(b)),
        "changed": changed,
        "only_in_a": only_a,
        "only_in_b": only_b,
    }


def format_metrics_diff(diff: Dict[str, Any]) -> str:
    lines: List[str] = []
    if diff["identical"]:
        lines.append(f"metrics identical: {diff['keys']} keys match exactly")
        return "\n".join(lines)
    lines.append(
        f"metrics differ: {len(diff['changed'])} changed, "
        f"{len(diff['only_in_a'])} only in A, "
        f"{len(diff['only_in_b'])} only in B (of {diff['keys']} keys)"
    )
    for key, (va, vb) in list(diff["changed"].items())[:50]:
        lines.append(f"  {key}: {va} -> {vb}")
    for key in diff["only_in_a"][:10]:
        lines.append(f"  only in A: {key}")
    for key in diff["only_in_b"][:10]:
        lines.append(f"  only in B: {key}")
    return "\n".join(lines)


# -- diff -------------------------------------------------------------------


def _rel(before: float, after: float) -> Optional[float]:
    if not before:
        return None
    return (after - before) / before


def diff_reports(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured A→B comparison of two bottleneck reports."""
    stages: Dict[str, Dict[str, Any]] = {}
    for stage in STAGES:
        row_a = a.get("stages", {}).get(stage, {})
        row_b = b.get("stages", {}).get(stage, {})
        row: Dict[str, Any] = {}
        for field in _STAGE_FIELDS:
            va, vb = row_a.get(field, 0) or 0, row_b.get(field, 0) or 0
            row[field] = {"a": va, "b": vb, "delta": vb - va, "rel": _rel(va, vb)}
        stages[stage] = row
    end_a = a.get("end_to_end", {})
    end_b = b.get("end_to_end", {})
    end = {
        field: {
            "a": end_a.get(field, 0) or 0,
            "b": end_b.get(field, 0) or 0,
            "delta": (end_b.get(field, 0) or 0) - (end_a.get(field, 0) or 0),
            "rel": _rel(end_a.get(field, 0) or 0, end_b.get(field, 0) or 0),
        }
        for field in ("count", "total", "mean", "p50", "p95", "p99")
    }
    sites = set(a.get("stalls", {})) | set(b.get("stalls", {}))
    stalls: Dict[str, Dict[str, Any]] = {}
    for site in sorted(sites):
        causes = set(a.get("stalls", {}).get(site, {})) | set(
            b.get("stalls", {}).get(site, {})
        )
        for cause in sorted(causes):
            va = a.get("stalls", {}).get(site, {}).get(cause, 0)
            vb = b.get("stalls", {}).get(site, {}).get(cause, 0)
            stalls.setdefault(site, {})[cause] = {
                "a": va, "b": vb, "delta": vb - va, "rel": _rel(va, vb)
            }
    return {
        "meta": {"a": a.get("meta", {}), "b": b.get("meta", {})},
        "end_to_end": end,
        "stages": stages,
        "stalls": stalls,
        "critical_stage": {
            "a": a.get("critical_stage"),
            "b": b.get("critical_stage"),
        },
    }


# -- text rendering ---------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _pct(ratio: Optional[float]) -> str:
    if ratio is None:
        return "n/a"
    return f"{ratio * 100:+.1f}%"


def format_report(report: Dict[str, Any], title: str = "bottleneck report") -> str:
    """Render a report as the aligned text tables the CLI prints."""
    from repro.eval.report import format_table

    lines: List[str] = []
    meta = report.get("meta", {})
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in meta.items())
        lines.append(f"{title} ({pairs})")
    else:
        lines.append(title)
    end = report.get("end_to_end", {})
    lines.append(
        f"requests: {report.get('requests', 0)}  |  end-to-end mean "
        f"{_fmt(end.get('mean', 0))} cy, p50 {_fmt(end.get('p50', 0))}, "
        f"p95 {_fmt(end.get('p95', 0))}, p99 {_fmt(end.get('p99', 0))}"
    )
    rows = []
    for stage in STAGES:
        row = report.get("stages", {}).get(stage, {})
        if not row.get("count"):
            continue
        rows.append(
            [
                stage,
                row.get("count", 0),
                _fmt(row.get("mean", 0)),
                _fmt(row.get("p50", 0)),
                _fmt(row.get("p95", 0)),
                _fmt(row.get("p99", 0)),
                f"{row.get('share', 0.0) * 100:.1f}%",
            ]
        )
    lines.append(
        format_table(
            ["stage", "count", "mean", "p50", "p95", "p99", "share"],
            rows,
            title="per-stage latency (cycles)",
        )
    )
    exact = "yes" if report.get("exact") else "NO"
    lines.append(
        f"stage sum {report.get('stage_cycle_sum', 0)} cy == end-to-end "
        f"{end.get('total', 0)} cy: {exact}"
    )
    if report.get("critical_stage"):
        lines.append(f"critical stage: {report['critical_stage']}")
    top = report.get("top_stalls", [])
    if top:
        lines.append(
            format_table(
                ["site", "cause", "stall cycles"],
                [[s, c, n] for s, c, n in top[:10]],
                title="top stall sites",
            )
        )
    else:
        lines.append("no stalls recorded")
    return "\n".join(lines)


def format_diff(diff: Dict[str, Any]) -> str:
    """Render a diff dict as aligned before/after text tables."""
    from repro.eval.report import format_table

    lines: List[str] = []
    end = diff.get("end_to_end", {})
    rows = [
        [field, _fmt(v["a"]), _fmt(v["b"]), _fmt(v["delta"]), _pct(v["rel"])]
        for field, v in end.items()
    ]
    lines.append(
        format_table(
            ["end-to-end", "A", "B", "delta", "rel"],
            rows,
            title="A/B bottleneck diff",
        )
    )
    stage_rows = []
    for stage in STAGES:
        row = diff.get("stages", {}).get(stage, {})
        total = row.get("total")
        if not total or (not total["a"] and not total["b"]):
            continue
        mean = row.get("mean", {"a": 0, "b": 0, "rel": None})
        stage_rows.append(
            [
                stage,
                _fmt(total["a"]),
                _fmt(total["b"]),
                _fmt(total["delta"]),
                _pct(total["rel"]),
                _pct(mean["rel"]),
            ]
        )
    if stage_rows:
        lines.append(
            format_table(
                ["stage", "total A", "total B", "delta", "rel", "mean rel"],
                stage_rows,
                title="per-stage totals (cycles)",
            )
        )
    stall_rows: List[List[Any]] = []
    for site, causes in diff.get("stalls", {}).items():
        for cause, v in causes.items():
            if not v["a"] and not v["b"]:
                continue
            stall_rows.append(
                [site, cause, v["a"], v["b"], v["delta"], _pct(v["rel"])]
            )
    stall_rows.sort(key=lambda r: -abs(r[4]))
    if stall_rows:
        lines.append(
            format_table(
                ["site", "cause", "A", "B", "delta", "rel"],
                stall_rows[:12],
                title="stall deltas (cycles)",
            )
        )
    crit = diff.get("critical_stage", {})
    if crit:
        lines.append(
            f"critical stage: {crit.get('a')} -> {crit.get('b')}"
        )
    return "\n".join(lines)
