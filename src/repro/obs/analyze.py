"""Bottleneck reports over attribution data (the ``repro analyze`` core).

Turns an :class:`~repro.obs.attribution.AttributionCollector` (or a
previously exported metrics/report JSON file) into a *bottleneck
report*: the per-stage latency table, the top stall ``(site, cause)``
pairs, the critical stage, and the exactness check that the stage sums
reproduce end-to-end latency cycle for cycle.  A diff mode compares two
reports for A/B (before/after) analysis.

The report is a plain JSON-serializable dict — the CLI renders it as
text tables, scripts consume it as JSON, and ``diff_reports`` works on
any two of them regardless of origin (live run, ``--report-out`` file,
or a ``--metrics-out`` file whose flat ``attribution.*`` keys are
re-nested here).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .attribution import STAGES, AttributionCollector

__all__ = [
    "build_report",
    "report_from_metrics",
    "load_report",
    "load_json",
    "is_flat_metrics",
    "diff_reports",
    "diff_metrics",
    "format_report",
    "format_diff",
    "format_metrics_diff",
    "load_timeline",
    "timeline_report",
    "diff_timelines",
    "format_timeline_report",
    "format_timeline_diff",
]

#: Stage-histogram fields carried through reports and diffs.
_STAGE_FIELDS = ("count", "total", "mean", "p50", "p95", "p99", "max")


def build_report(
    attrib: AttributionCollector, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Bottleneck report dict over one collector's aggregates."""
    stages = attrib.stage_table()
    stage_total = sum(attrib.stage_cycles.values())
    end_total = attrib.end_to_end.total
    shares = {
        stage: (row["total"] / stage_total if stage_total else 0.0)
        for stage, row in stages.items()
    }
    for stage, row in stages.items():
        row["share"] = shares[stage]
    critical = max(STAGES, key=lambda s: stages[s]["total"]) if stage_total else None
    top = sorted(
        (
            (site, cause, cycles)
            for site, causes in attrib.stalls.items()
            for cause, cycles in causes.items()
        ),
        key=lambda item: (-item[2], item[0], item[1]),
    )
    return {
        "meta": dict(meta or {}),
        "requests": attrib.finalized,
        "incomplete": attrib.incomplete,
        "end_to_end": attrib._hist_summary(attrib.end_to_end),
        "stages": stages,
        "stage_cycle_sum": stage_total,
        "exact": stage_total == end_total,
        "critical_stage": critical,
        "stalls": {site: dict(c) for site, c in attrib.stalls.items()},
        "top_stalls": [list(t) for t in top],
        "depth": attrib.depth.snapshot(),
    }


def report_from_metrics(metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Rebuild a report from a flat ``--metrics-out`` style dict.

    Accepts the dotted-key namespace written by ``repro run
    --attribution --metrics-out`` (``attribution.stages.<stage>.<field>``
    etc.); raises ``ValueError`` when the file carries no attribution
    keys (i.e. the run had attribution disabled).
    """
    prefix = "attribution."
    nested: Dict[str, Any] = {}
    for key, value in metrics.items():
        if not key.startswith(prefix):
            continue
        parts = key[len(prefix):].split(".")
        node = nested
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value
    if not nested:
        raise ValueError(
            "no attribution.* keys found — was the run made with "
            "attribution enabled (repro run --attribution / repro analyze)?"
        )
    stages: Dict[str, Dict[str, Any]] = {
        stage: dict(nested.get("stages", {}).get(stage, {})) for stage in STAGES
    }
    stage_cycles = nested.get("stage_cycles", {})
    stage_total = sum(stage_cycles.get(stage, 0) for stage in STAGES)
    for stage, row in stages.items():
        row.setdefault("total", stage_cycles.get(stage, 0))
        row["share"] = row["total"] / stage_total if stage_total else 0.0
    end = dict(nested.get("end_to_end", {}))
    critical = (
        max(STAGES, key=lambda s: stages[s].get("total", 0)) if stage_total else None
    )
    stalls: Dict[str, Dict[str, int]] = {
        site: dict(causes) for site, causes in nested.get("stalls", {}).items()
    }
    top = sorted(
        (
            (site, cause, cycles)
            for site, causes in stalls.items()
            for cause, cycles in causes.items()
        ),
        key=lambda item: (-item[2], item[0], item[1]),
    )
    return {
        "meta": {"source": "metrics"},
        "requests": nested.get("requests_finalized", 0),
        "incomplete": nested.get("requests_incomplete", 0),
        "end_to_end": end,
        "stages": stages,
        "stage_cycle_sum": stage_total,
        "exact": stage_total == end.get("total", -1),
        "critical_stage": critical,
        "stalls": stalls,
        "top_stalls": [list(t) for t in top],
        "depth": nested.get("depth", {}),
    }


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report or metrics JSON object without reshaping it."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def is_flat_metrics(data: Dict[str, Any]) -> bool:
    """A flat ``--metrics-out`` dict, as opposed to a bottleneck report."""
    return not ("stages" in data and "end_to_end" in data)


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a report from a ``--report-out`` or ``--metrics-out`` file."""
    data = load_json(path)
    if not is_flat_metrics(data):
        return data
    return report_from_metrics(data)


def diff_metrics(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Key-by-key A→B comparison of two flat metrics dicts.

    The determinism check behind the sharded-NUMA smoke: two
    ``--metrics-out`` files from bit-identical runs (e.g. ``--shards 4``
    vs serial) must produce ``identical: True`` — every key present in
    both files with exactly equal values.
    """
    changed = {
        k: [a[k], b[k]] for k in sorted(set(a) & set(b)) if a[k] != b[k]
    }
    only_a = sorted(set(a) - set(b))
    only_b = sorted(set(b) - set(a))
    return {
        "identical": not changed and not only_a and not only_b,
        "keys": len(set(a) | set(b)),
        "changed": changed,
        "only_in_a": only_a,
        "only_in_b": only_b,
    }


def format_metrics_diff(diff: Dict[str, Any]) -> str:
    lines: List[str] = []
    if diff["identical"]:
        lines.append(f"metrics identical: {diff['keys']} keys match exactly")
        return "\n".join(lines)
    lines.append(
        f"metrics differ: {len(diff['changed'])} changed, "
        f"{len(diff['only_in_a'])} only in A, "
        f"{len(diff['only_in_b'])} only in B (of {diff['keys']} keys)"
    )
    for key, (va, vb) in list(diff["changed"].items())[:50]:
        lines.append(f"  {key}: {va} -> {vb}")
    for key in diff["only_in_a"][:10]:
        lines.append(f"  only in A: {key}")
    for key in diff["only_in_b"][:10]:
        lines.append(f"  only in B: {key}")
    return "\n".join(lines)


# -- diff -------------------------------------------------------------------


def _rel(before: float, after: float) -> Optional[float]:
    if not before:
        return None
    return (after - before) / before


def diff_reports(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Structured A→B comparison of two bottleneck reports."""
    stages: Dict[str, Dict[str, Any]] = {}
    for stage in STAGES:
        row_a = a.get("stages", {}).get(stage, {})
        row_b = b.get("stages", {}).get(stage, {})
        row: Dict[str, Any] = {}
        for field in _STAGE_FIELDS:
            va, vb = row_a.get(field, 0) or 0, row_b.get(field, 0) or 0
            row[field] = {"a": va, "b": vb, "delta": vb - va, "rel": _rel(va, vb)}
        stages[stage] = row
    end_a = a.get("end_to_end", {})
    end_b = b.get("end_to_end", {})
    end = {
        field: {
            "a": end_a.get(field, 0) or 0,
            "b": end_b.get(field, 0) or 0,
            "delta": (end_b.get(field, 0) or 0) - (end_a.get(field, 0) or 0),
            "rel": _rel(end_a.get(field, 0) or 0, end_b.get(field, 0) or 0),
        }
        for field in ("count", "total", "mean", "p50", "p95", "p99")
    }
    sites = set(a.get("stalls", {})) | set(b.get("stalls", {}))
    stalls: Dict[str, Dict[str, Any]] = {}
    for site in sorted(sites):
        causes = set(a.get("stalls", {}).get(site, {})) | set(
            b.get("stalls", {}).get(site, {})
        )
        for cause in sorted(causes):
            va = a.get("stalls", {}).get(site, {}).get(cause, 0)
            vb = b.get("stalls", {}).get(site, {}).get(cause, 0)
            stalls.setdefault(site, {})[cause] = {
                "a": va, "b": vb, "delta": vb - va, "rel": _rel(va, vb)
            }
    return {
        "meta": {"a": a.get("meta", {}), "b": b.get("meta", {})},
        "end_to_end": end,
        "stages": stages,
        "stalls": stalls,
        "critical_stage": {
            "a": a.get("critical_stage"),
            "b": b.get("critical_stage"),
        },
    }


# -- text rendering ---------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _pct(ratio: Optional[float]) -> str:
    if ratio is None:
        return "n/a"
    return f"{ratio * 100:+.1f}%"


def format_report(report: Dict[str, Any], title: str = "bottleneck report") -> str:
    """Render a report as the aligned text tables the CLI prints."""
    from repro.eval.report import format_table

    lines: List[str] = []
    meta = report.get("meta", {})
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in meta.items())
        lines.append(f"{title} ({pairs})")
    else:
        lines.append(title)
    end = report.get("end_to_end", {})
    lines.append(
        f"requests: {report.get('requests', 0)}  |  end-to-end mean "
        f"{_fmt(end.get('mean', 0))} cy, p50 {_fmt(end.get('p50', 0))}, "
        f"p95 {_fmt(end.get('p95', 0))}, p99 {_fmt(end.get('p99', 0))}"
    )
    rows = []
    for stage in STAGES:
        row = report.get("stages", {}).get(stage, {})
        if not row.get("count"):
            continue
        rows.append(
            [
                stage,
                row.get("count", 0),
                _fmt(row.get("mean", 0)),
                _fmt(row.get("p50", 0)),
                _fmt(row.get("p95", 0)),
                _fmt(row.get("p99", 0)),
                f"{row.get('share', 0.0) * 100:.1f}%",
            ]
        )
    lines.append(
        format_table(
            ["stage", "count", "mean", "p50", "p95", "p99", "share"],
            rows,
            title="per-stage latency (cycles)",
        )
    )
    exact = "yes" if report.get("exact") else "NO"
    lines.append(
        f"stage sum {report.get('stage_cycle_sum', 0)} cy == end-to-end "
        f"{end.get('total', 0)} cy: {exact}"
    )
    if report.get("critical_stage"):
        lines.append(f"critical stage: {report['critical_stage']}")
    top = report.get("top_stalls", [])
    if top:
        lines.append(
            format_table(
                ["site", "cause", "stall cycles"],
                [[s, c, n] for s, c, n in top[:10]],
                title="top stall sites",
            )
        )
    else:
        lines.append("no stalls recorded")
    return "\n".join(lines)


def format_diff(diff: Dict[str, Any]) -> str:
    """Render a diff dict as aligned before/after text tables."""
    from repro.eval.report import format_table

    lines: List[str] = []
    end = diff.get("end_to_end", {})
    rows = [
        [field, _fmt(v["a"]), _fmt(v["b"]), _fmt(v["delta"]), _pct(v["rel"])]
        for field, v in end.items()
    ]
    lines.append(
        format_table(
            ["end-to-end", "A", "B", "delta", "rel"],
            rows,
            title="A/B bottleneck diff",
        )
    )
    stage_rows = []
    for stage in STAGES:
        row = diff.get("stages", {}).get(stage, {})
        total = row.get("total")
        if not total or (not total["a"] and not total["b"]):
            continue
        mean = row.get("mean", {"a": 0, "b": 0, "rel": None})
        stage_rows.append(
            [
                stage,
                _fmt(total["a"]),
                _fmt(total["b"]),
                _fmt(total["delta"]),
                _pct(total["rel"]),
                _pct(mean["rel"]),
            ]
        )
    if stage_rows:
        lines.append(
            format_table(
                ["stage", "total A", "total B", "delta", "rel", "mean rel"],
                stage_rows,
                title="per-stage totals (cycles)",
            )
        )
    stall_rows: List[List[Any]] = []
    for site, causes in diff.get("stalls", {}).items():
        for cause, v in causes.items():
            if not v["a"] and not v["b"]:
                continue
            stall_rows.append(
                [site, cause, v["a"], v["b"], v["delta"], _pct(v["rel"])]
            )
    stall_rows.sort(key=lambda r: -abs(r[4]))
    if stall_rows:
        lines.append(
            format_table(
                ["site", "cause", "A", "B", "delta", "rel"],
                stall_rows[:12],
                title="stall deltas (cycles)",
            )
        )
    crit = diff.get("critical_stage", {})
    if crit:
        lines.append(
            f"critical stage: {crit.get('a')} -> {crit.get('b')}"
        )
    return "\n".join(lines)


# -- timeline reports (repro analyze --timeline) ----------------------------

#: Throughput series candidates, most specific first; the first suffix
#: with any matching series becomes the activity signal (series are
#: ``node<id>.``-prefixed in mesh timelines, so match on suffix).
_ACTIVITY_SUFFIXES = ("mac.packets", "node.responses_delivered", "mac.raw_requests")

#: Stall families scanned for the per-epoch critical stage, with the
#: human label the table reports.  Values are normalized per family
#: (units differ: cycles vs counts) before the per-epoch argmax.
_STALL_FAMILIES = (
    ("device.bank_conflicts", "bank-conflicts"),
    ("vaults.queue_wait_cycles", "vault-queue"),
    ("fabric.credit_stalls", "fabric-credits"),
    ("system.backpressure_stalls", "backpressure"),
    ("links.retries", "link-retries"),
    ("arq.depth", "arq-pressure"),
    ("noc.contention_cycles", "noc-contention"),
    ("bank.row_misses", "row-misses"),
)

#: Activity below this fraction of the steady-state median marks an
#: epoch as warm-up (leading) or drain (trailing).
_PHASE_THRESHOLD = 0.5


def load_timeline(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a ``--timeline-out`` document, restoring int epoch keys."""
    doc = load_json(path)
    if "series" not in doc or "epoch" not in doc:
        raise ValueError(f"{path}: not a timeline document (no series/epoch)")
    for payload in doc["series"].values():
        payload["epochs"] = {
            int(k): v for k, v in payload.get("epochs", {}).items()
        }
    return doc


def _sum_suffix(doc: Dict[str, Any], suffix: str) -> Dict[int, float]:
    """Per-epoch sum over every series named ``suffix`` or ``*.<suffix>``."""
    out: Dict[int, float] = {}
    for name, payload in doc["series"].items():
        if name != suffix and not name.endswith("." + suffix):
            continue
        for epoch, value in payload["epochs"].items():
            out[epoch] = out.get(epoch, 0.0) + value
    return out


def _activity(doc: Dict[str, Any]) -> Tuple[str, Dict[int, float]]:
    for suffix in _ACTIVITY_SUFFIXES:
        series = _sum_suffix(doc, suffix)
        if series:
            return suffix, series
    return "", {}


def timeline_report(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Phase segmentation + per-epoch critical stage of one timeline.

    Phases: *warm-up* is the leading span whose activity (the first
    matching throughput series) stays below half the steady median,
    *drain* the trailing such span, *steady* everything between.  The
    critical-stage table groups consecutive epochs by which stall
    family dominates them (per-family max-normalized, so cycles and
    counts compare).
    """
    epoch_len = doc["epoch"]
    cycles = doc.get("cycles", 0)
    signal, activity = _activity(doc)
    last_epoch = max(
        [cycles // epoch_len if cycles else 0]
        + [e for p in doc["series"].values() for e in p["epochs"]]
        + [0]
    )
    phases: List[Dict[str, Any]] = []
    if activity:
        values = sorted(activity.values())
        median = values[len(values) // 2]
        threshold = _PHASE_THRESHOLD * median
        busy = sorted(e for e, v in activity.items() if v >= threshold)
        steady_lo, steady_hi = busy[0], busy[-1]
        total = sum(activity.values())
        spans = [
            ("warm-up", 0, steady_lo - 1),
            ("steady", steady_lo, steady_hi),
            ("drain", steady_hi + 1, last_epoch),
        ]
        for label, lo, hi in spans:
            if hi < lo:
                continue
            span_total = sum(
                v for e, v in activity.items() if lo <= e <= hi
            )
            phases.append(
                {
                    "phase": label,
                    "epochs": [lo, hi],
                    "cycles": [lo * epoch_len, (hi + 1) * epoch_len],
                    "activity": span_total,
                    "activity_share": span_total / total if total else 0.0,
                    "per_epoch": span_total / (hi - lo + 1),
                }
            )
    # Per-epoch critical stage: max-normalized stall families.
    families = {
        label: _sum_suffix(doc, suffix)
        for suffix, label in _STALL_FAMILIES
    }
    peaks = {
        label: max(series.values(), default=0.0)
        for label, series in families.items()
    }
    critical: Dict[int, Tuple[str, float]] = {}
    for label, series in families.items():
        peak = peaks[label]
        if not peak:
            continue
        for epoch, value in series.items():
            norm = value / peak
            cur = critical.get(epoch)
            if cur is None or norm > cur[1]:
                critical[epoch] = (label, norm)
    stage_rows: List[Dict[str, Any]] = []
    for epoch in sorted(critical):
        label, _ = critical[epoch]
        if stage_rows and stage_rows[-1]["stage"] == label and (
            stage_rows[-1]["epochs"][1] == epoch - 1
        ):
            stage_rows[-1]["epochs"][1] = epoch
            stage_rows[-1]["raw"] += families[label].get(epoch, 0.0)
        else:
            stage_rows.append(
                {
                    "stage": label,
                    "epochs": [epoch, epoch],
                    "raw": families[label].get(epoch, 0.0),
                }
            )
    dropped = {
        name: payload.get("dropped", 0)
        for name, payload in doc["series"].items()
        if payload.get("dropped", 0)
    }
    return {
        "epoch": epoch_len,
        "cycles": cycles,
        "series": len(doc["series"]),
        "meta": doc.get("meta", {}),
        "activity_signal": signal,
        "phases": phases,
        "critical_stages": stage_rows,
        "dropped": dropped,
    }


def diff_timelines(
    a: Dict[str, Any], b: Dict[str, Any], top: int = 10
) -> Dict[str, Any]:
    """A→B timeline comparison; ranks the most regressed epochs.

    Regression is throughput lost: epochs sorted by ``activity(A) -
    activity(B)`` descending, annotated with the stall-family deltas
    that explain them.  Requires matching epoch widths.
    """
    if a["epoch"] != b["epoch"]:
        raise ValueError(
            f"timeline epochs differ ({a['epoch']} vs {b['epoch']}); "
            "re-run with matching --timeline-epoch"
        )
    signal_a, act_a = _activity(a)
    signal_b, act_b = _activity(b)
    stall_a = {lbl: _sum_suffix(a, sfx) for sfx, lbl in _STALL_FAMILIES}
    stall_b = {lbl: _sum_suffix(b, sfx) for sfx, lbl in _STALL_FAMILIES}
    epochs = sorted(set(act_a) | set(act_b))
    rows = []
    for epoch in epochs:
        va, vb = act_a.get(epoch, 0.0), act_b.get(epoch, 0.0)
        stalls = {}
        for label in stall_a:
            d = stall_b[label].get(epoch, 0.0) - stall_a[label].get(epoch, 0.0)
            if d:
                stalls[label] = d
        rows.append(
            {"epoch": epoch, "a": va, "b": vb, "delta": vb - va,
             "stall_deltas": stalls}
        )
    rows.sort(key=lambda r: (r["delta"], r["epoch"]))
    return {
        "epoch": a["epoch"],
        "signal": {"a": signal_a, "b": signal_b},
        "activity_total": {
            "a": sum(act_a.values()),
            "b": sum(act_b.values()),
        },
        "top_regressed": rows[:top],
    }


def format_timeline_report(report: Dict[str, Any], title: str = "timeline") -> str:
    """Render a :func:`timeline_report` as the CLI's text tables."""
    from repro.eval.report import format_table

    lines: List[str] = []
    meta = report.get("meta", {})
    head = (
        f"{title}: {report['series']} series, epoch {report['epoch']} cy, "
        f"{report['cycles']} cycles"
    )
    if meta:
        head += " (" + ", ".join(f"{k}={v}" for k, v in meta.items()) + ")"
    lines.append(head)
    if report.get("activity_signal"):
        lines.append(f"activity signal: {report['activity_signal']}")
    rows = [
        [
            p["phase"],
            f"{p['epochs'][0]}..{p['epochs'][1]}",
            f"{p['cycles'][0]}..{p['cycles'][1]}",
            _fmt(p["activity"]),
            f"{p['activity_share'] * 100:.1f}%",
            _fmt(p["per_epoch"]),
        ]
        for p in report.get("phases", [])
    ]
    if rows:
        lines.append(
            format_table(
                ["phase", "epochs", "cycles", "activity", "share", "per-epoch"],
                rows,
                title="phase segmentation",
            )
        )
    else:
        lines.append("no activity series found; phases unavailable")
    crit = report.get("critical_stages", [])
    if crit:
        lines.append(
            format_table(
                ["epochs", "critical stage", "raw"],
                [
                    [f"{r['epochs'][0]}..{r['epochs'][1]}", r["stage"],
                     _fmt(r["raw"])]
                    for r in crit[:20]
                ],
                title="per-epoch critical stage",
            )
        )
    else:
        lines.append("no stall-family series recorded")
    dropped = report.get("dropped", {})
    if dropped:
        total = sum(dropped.values())
        lines.append(
            f"WARNING: {total} epochs evicted across {len(dropped)} series "
            "(raise the timeline capacity to keep them)"
        )
    return "\n".join(lines)


def format_timeline_diff(diff: Dict[str, Any]) -> str:
    """Render a :func:`diff_timelines` as the CLI's text tables."""
    from repro.eval.report import format_table

    lines: List[str] = []
    tot = diff["activity_total"]
    lines.append(
        f"timeline A/B ({diff['signal']['a'] or 'n/a'}): total activity "
        f"{_fmt(tot['a'])} -> {_fmt(tot['b'])} ({_pct(_rel(tot['a'], tot['b']))})"
    )
    rows = []
    for r in diff["top_regressed"]:
        stalls = ", ".join(
            f"{k} {v:+g}" for k, v in sorted(
                r["stall_deltas"].items(), key=lambda kv: -abs(kv[1])
            )[:3]
        )
        rows.append(
            [r["epoch"], _fmt(r["a"]), _fmt(r["b"]), _fmt(r["delta"]), stalls]
        )
    if rows:
        lines.append(
            format_table(
                ["epoch", "A", "B", "delta", "stall deltas"],
                rows,
                title="top regressed epochs (A -> B)",
            )
        )
    else:
        lines.append("no overlapping activity epochs to compare")
    return "\n".join(lines)
