"""JEDEC DDR4-class timing parameters (paper section 2.2).

The paper contrasts the HMC's closed-page packetized protocol with
conventional DDR devices: fixed 64 B access granularity (BL8 on a
64-bit bus), open-page row buffers, and a controller that harvests
row-buffer hits (section 2.2.1).  This module provides the timing for
that comparison substrate.

All values are CPU cycles at the node clock (3.3 GHz), derived from
DDR4-2400-class parts: tRCD = tCAS = tRP ~ 14.16 ns, tRAS ~ 32 ns,
burst of 8 transfers at 1200 MHz DDR ~ 3.3 ns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class DDRTiming:
    """Cycle counts of DDR4 operations at the 3.3 GHz node clock."""

    #: Row activate (tRCD): activation to column command.
    t_rcd: int = 47
    #: Column access strobe latency (tCAS/tCL).
    t_cas: int = 47
    #: Precharge (tRP).
    t_rp: int = 47
    #: Minimum activate-to-precharge interval (tRAS).
    t_ras: int = 106
    #: Burst transfer: 8 beats at the 2400 MT/s bus ~ 3.3 ns.
    t_burst: int = 11
    #: Command/address bus occupancy per command.
    t_cmd: int = 2
    #: On-die/PHY + controller pipeline each way.
    io_latency: int = 50

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_cas", "t_rp", "t_ras", "t_burst", "t_cmd", "io_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def row_hit_latency(self) -> int:
        """Column access into an already-open row."""
        return self.t_cas + self.t_burst

    @property
    def row_miss_latency(self) -> int:
        """Access to an idle (precharged) bank: activate first."""
        return self.t_rcd + self.t_cas + self.t_burst

    @property
    def row_conflict_latency(self) -> int:
        """Access needing to close another row first."""
        return self.t_rp + self.t_rcd + self.t_cas + self.t_burst
