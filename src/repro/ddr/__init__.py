"""Conventional DDR4 substrate (paper section 2.2's comparison point).

Open-page banks, an FR-FCFS row-hit-harvesting controller (section
2.2.1's conventional approach) and a 64 B-granularity channel device —
used to quantify why DDR-side aggregation cannot replace processor-side
coalescing for irregular traffic, and why it is unavailable on the
closed-page HMC at all.
"""

from .bank import AccessKind, DDRBank
from .controller import ControllerStats, FRFCFSController, QueuedRequest
from .device import DDRConfig, DDRDevice, DDRStats
from .timing import DDRTiming

__all__ = [
    "AccessKind",
    "ControllerStats",
    "DDRBank",
    "DDRConfig",
    "DDRDevice",
    "DDRStats",
    "DDRTiming",
    "FRFCFSController",
    "QueuedRequest",
]
