"""DDR4 channel device — the conventional-interface comparison point.

Wraps the FR-FCFS controller and open-page banks into the same
submit-style interface as :class:`repro.hmc.device.HMCDevice`, with the
JEDEC constraints of section 2.2: fixed 64 B access granularity (BL8 on
a 64-bit bus) and 8 KB rows.  Requests of other sizes are split/rounded
to 64 B lines, modelling the cache-line quantization of a conventional
memory path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.packet import CoalescedRequest
from repro.obs.protocol import StatsMixin

from .controller import FRFCFSController, QueuedRequest
from .timing import DDRTiming


@dataclass(frozen=True, slots=True)
class DDRConfig:
    """One DDR4 channel (section 2.2's conventional device)."""

    line_bytes: int = 64  # BL8 x 64-bit bus
    row_bytes: int = 8 << 10  # 8 KB rows (vs HMC's 256 B)
    banks: int = 16
    queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.row_bytes % self.line_bytes:
            raise ValueError("rows must hold whole lines")

    @property
    def line_shift(self) -> int:
        return self.line_bytes.bit_length() - 1

    def bank_of(self, addr: int) -> int:
        # Line-interleaved banks (standard XOR-free DDR mapping, with
        # the row bits folded to avoid row-stride aliasing).
        line = addr >> self.line_shift
        lines_per_row = self.row_bytes // self.line_bytes
        folded = line ^ (line // lines_per_row)
        return folded % self.banks

    def row_of(self, addr: int) -> int:
        return addr // self.row_bytes


@dataclass
class DDRStats(StatsMixin):
    MERGE_MAX = frozenset({"last_completion"})
    MERGE_MIN_SENTINEL = frozenset({"first_arrival"})
    SNAPSHOT_DERIVED = ("mean_latency", "makespan")

    requests: int = 0
    line_accesses: int = 0
    total_latency: int = 0
    last_completion: int = 0
    first_arrival: int = -1

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.line_accesses if self.line_accesses else 0.0

    @property
    def makespan(self) -> int:
        if self.first_arrival < 0:
            return 0
        return self.last_completion - self.first_arrival


class DDRDevice:
    """One DDR4 channel behind an FR-FCFS controller."""

    def __init__(
        self, config: Optional[DDRConfig] = None, timing: Optional[DDRTiming] = None
    ) -> None:
        self.config = config or DDRConfig()
        self.timing = timing or DDRTiming()
        self.controller = FRFCFSController(
            banks=self.config.banks,
            timing=self.timing,
            queue_depth=self.config.queue_depth,
        )
        self.stats = DDRStats()
        self._tag = 0

    def submit(self, request: CoalescedRequest, arrival: int) -> None:
        """Queue a request, quantized to 64 B line accesses."""
        cfg = self.config
        first = request.addr >> cfg.line_shift
        last = (request.addr + request.size - 1) >> cfg.line_shift
        self.stats.requests += 1
        if self.stats.first_arrival < 0 or arrival < self.stats.first_arrival:
            self.stats.first_arrival = arrival
        for line in range(first, last + 1):
            addr = line << cfg.line_shift
            self._tag += 1
            while not self.controller.enqueue(
                arrival, cfg.bank_of(addr), cfg.row_of(addr), self._tag
            ):
                # Queue full: serve one to free a slot (lock-step model).
                self._complete(self.controller.service_one(arrival))

    def run(self) -> None:
        """Drain the controller queue."""
        for req in self.controller.drain():
            self._complete(req)

    def _complete(self, req: Optional[QueuedRequest]) -> None:
        if req is None:
            return
        self.stats.line_accesses += 1
        self.stats.total_latency += req.complete_cycle - req.arrival
        self.stats.last_completion = max(self.stats.last_completion, req.complete_cycle)

    # -- aggregates -----------------------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        return self.controller.row_hit_rate

    @property
    def bank_conflicts(self) -> int:
        return self.controller.bank_conflicts

    def unloaded_read_latency(self) -> int:
        """One isolated row-miss read through the channel."""
        return self.timing.row_miss_latency + self.timing.io_latency
