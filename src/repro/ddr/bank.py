"""Open-page DDR bank with a row buffer.

Unlike the HMC bank (:mod:`repro.hmc.bank`), a DDR bank keeps its last
row open in the sense amplifiers: a subsequent access to the same row
(*row hit*) skips activation; an access to a different row (*row
conflict*) pays precharge + activate.  The open-page policy is what
makes the row-buffer-hit-harvesting controller of section 2.2.1
worthwhile on DDR — and what the HMC's closed-page operation removes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .timing import DDRTiming


class AccessKind(enum.Enum):
    HIT = "row_hit"
    MISS = "row_miss"  # bank idle, row must be activated
    CONFLICT = "row_conflict"  # another row open, precharge first


@dataclass(slots=True)
class DDRBank:
    """One open-page bank: row-buffer state + busy-time bookkeeping."""

    timing: DDRTiming
    open_row: int = -1
    ready_cycle: int = 0
    #: Earliest cycle a precharge may issue (tRAS from last activate).
    _ras_ready: int = 0
    hits: int = 0
    misses: int = 0
    conflicts: int = 0
    activations: int = 0

    def classify(self, row: int) -> AccessKind:
        """What kind of access ``row`` would be right now."""
        if self.open_row == row:
            return AccessKind.HIT
        if self.open_row == -1:
            return AccessKind.MISS
        return AccessKind.CONFLICT

    def access(self, arrival: int, row: int) -> int:
        """Serve one 64 B access; returns the data-ready cycle."""
        if arrival < 0:
            raise ValueError("arrival must be non-negative")
        t = self.timing
        start = max(arrival, self.ready_cycle)
        kind = self.classify(row)
        if kind is AccessKind.HIT:
            self.hits += 1
            done = start + t.row_hit_latency
        elif kind is AccessKind.MISS:
            self.misses += 1
            self.activations += 1
            done = start + t.row_miss_latency
            self._ras_ready = start + t.t_ras
        else:
            self.conflicts += 1
            self.activations += 1
            # Respect tRAS before the precharge may close the open row.
            start = max(start, self._ras_ready)
            done = start + t.row_conflict_latency
            self._ras_ready = start + t.t_rp + t.t_ras
        self.open_row = row
        self.ready_cycle = done
        return done

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.conflicts

    @property
    def row_hit_rate(self) -> float:
        n = self.accesses
        return self.hits / n if n else 0.0
