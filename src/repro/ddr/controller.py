"""FR-FCFS memory controller — the row-hit harvester of section 2.2.1.

First-Ready, First-Come-First-Served (Rixner et al., the paper's [37]):
among queued requests, those hitting an open row are served first
(oldest hit first); otherwise the oldest request is served.  On DDR
this recovers substantial locality from re-ordered streams; the paper's
point is that the HMC's closed-page policy removes the open rows this
scheduler feeds on, pushing aggregation to the processor side (the MAC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..obs.protocol import StatsMixin
from .bank import AccessKind, DDRBank
from .timing import DDRTiming


@dataclass(slots=True)
class QueuedRequest:
    """One 64 B request waiting in the controller."""

    arrival: int
    bank: int
    row: int
    tag: int
    complete_cycle: int = -1


@dataclass
class ControllerStats(StatsMixin):
    served: int = 0
    reordered: int = 0  # served ahead of an older request
    row_hits: int = 0
    total_wait: int = 0


class FRFCFSController:
    """Single-channel FR-FCFS scheduler over open-page banks."""

    def __init__(
        self,
        banks: int = 16,
        timing: Optional[DDRTiming] = None,
        queue_depth: int = 64,
    ) -> None:
        if banks < 1 or banks & (banks - 1):
            raise ValueError("bank count must be a positive power of two")
        self.timing = timing or DDRTiming()
        self.banks = [DDRBank(self.timing) for _ in range(banks)]
        self.queue_depth = queue_depth
        self._queue: List[QueuedRequest] = []
        self.stats = ControllerStats()
        self._now = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.queue_depth

    def enqueue(self, arrival: int, bank: int, row: int, tag: int) -> bool:
        """Admit one request; False when the queue is full."""
        if not 0 <= bank < len(self.banks):
            raise ValueError(f"bank {bank} out of range")
        if self.full:
            return False
        self._queue.append(QueuedRequest(arrival, bank, row, tag))
        return True

    def _pick(self, now: int) -> Optional[int]:
        """FR-FCFS selection among requests that have arrived by ``now``."""
        best_hit: Optional[int] = None
        oldest: Optional[int] = None
        for i, req in enumerate(self._queue):
            if req.arrival > now:
                continue
            if oldest is None or req.arrival < self._queue[oldest].arrival:
                oldest = i
            bank = self.banks[req.bank]
            if bank.ready_cycle <= now and bank.classify(req.row) is AccessKind.HIT:
                if best_hit is None or req.arrival < self._queue[best_hit].arrival:
                    best_hit = i
        return best_hit if best_hit is not None else oldest

    def service_one(self, now: int) -> Optional[QueuedRequest]:
        """Schedule and serve the next request; returns it, completed."""
        idx = self._pick(now)
        if idx is None:
            return None
        req = self._queue.pop(idx)
        bank = self.banks[req.bank]
        was_hit = bank.classify(req.row) is AccessKind.HIT
        done = bank.access(max(now, req.arrival), req.row)
        req.complete_cycle = done + self.timing.io_latency
        st = self.stats
        st.served += 1
        if was_hit:
            st.row_hits += 1
        if idx > 0:
            st.reordered += 1
        st.total_wait += max(now - req.arrival, 0)
        return req

    def drain(self, start: int = 0) -> List[QueuedRequest]:
        """Serve everything queued, advancing time bank-availability-wise."""
        out: List[QueuedRequest] = []
        now = start
        while self._queue:
            req = self.service_one(now)
            if req is None:
                # Nothing has arrived yet: jump to the next arrival.
                now = min(r.arrival for r in self._queue)
                continue
            out.append(req)
            now = max(now, min(b.ready_cycle for b in self.banks))
        return out

    # -- aggregates -----------------------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        n = self.stats.served
        return self.stats.row_hits / n if n else 0.0

    @property
    def bank_conflicts(self) -> int:
        return sum(b.conflicts for b in self.banks)
