"""NAS Parallel Benchmarks — MG, SP and IS access-pattern models.

* **MG** — multigrid V-cycle on a 3D grid: 27-point relaxation sweeps
  with unit-stride inner loops (high row locality) plus coarse-grid
  restriction/prolongation at power-of-two strides.
* **SP** — scalar pentadiagonal solver: forward/backward line sweeps in
  the three grid dimensions; the x-sweeps are unit-stride, the y/z
  sweeps stride by a plane, but each sweep touches five adjacent lines
  so neighbouring accesses still cluster in rows.
* **IS** — integer bucket sort: sequential key stream with random
  histogram increments (load+store pairs on the same bucket word) —
  the classic low-coalescibility histogram pattern.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload


class NASMG(Workload):
    """Multigrid relaxation sweeps (NAS `MG`)."""

    name = "MG"
    suite = "nas"
    profile = ExecutionProfile("MG", ipc=3.75, rpi=0.49, mem_access_rate=0.84)

    def __init__(self, scale: int = 1, seed: int = 2019, nx: int = 64) -> None:
        super().__init__(scale, seed)
        self.nx = nx * scale
        n = self.nx**3
        layout = MemoryLayout()
        self.u = layout.alloc("u", n * WORD)
        self.r = layout.alloc("r", n * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        nx = self.nx
        nxy = nx * nx
        n = nx**3
        # Threads partition outer planes, as the OpenMP loops do.  The
        # relaxation is pencil-tiled through the SPM: for each x-line the
        # SPM prefetches the centre line, its 4 neighbouring lines and the
        # residual line as block transfers, computes locally, and writes
        # the centre line back — one active row per transfer at a time.
        planes = max(nx // threads, 1)
        z0 = tid * planes
        emitted = 0
        z, y = max(z0, 1), 1
        line_bytes = nx * WORD
        line_no = 0
        while emitted < ops:
            # The V-cycle spends roughly a third of its memory traffic on
            # coarse levels and inter-level transfers, whose z-direction
            # strides cross a row on every access.
            coarse = line_no % 3 == 2
            line_no += 1
            stride = 8 if coarse else 1
            i = (z * nxy + y * nx) * WORD
            pencil_offsets = (0, nx * WORD, -nx * WORD, nxy * WORD, -nxy * WORD)
            for off in pencil_offsets:
                lo = i + off
                if 0 <= lo < n * WORD - line_bytes:
                    if not coarse:
                        for op in self.spm_prefetch(self.u, lo, line_bytes):
                            yield op
                            emitted += 1
                            if emitted >= ops:
                                return
                    else:
                        # Coarse-level sweep: strided word loads — each
                        # lands rows apart, the V-cycle's irregular tail.
                        for k in range(0, nx, 4):
                            j = lo + k * stride * WORD
                            yield self.u + j % (n * WORD), RequestType.LOAD, WORD
                            emitted += 1
                            if emitted >= ops:
                                return
            if not coarse:
                for op in self.spm_prefetch(self.r, i, line_bytes):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
                for op in self.spm_writeback(self.u, i, line_bytes):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            else:
                for k in range(0, nx, 4):
                    j = (i + k * stride * WORD) % (n * WORD)
                    yield self.r + j, RequestType.LOAD, WORD
                    yield self.u + j, RequestType.STORE, WORD
                    emitted += 2
                    if emitted >= ops:
                        return
            y += 1
            if y >= nx - 1:
                y = 1
                z += 1
                if z >= min(z0 + planes, nx - 1):
                    z = max(z0, 1)


class NASSP(Workload):
    """Scalar pentadiagonal line solver (NAS `SP`)."""

    name = "SP"
    suite = "nas"
    profile = ExecutionProfile("SP", ipc=3.45, rpi=0.51, mem_access_rate=0.83)

    def __init__(self, scale: int = 1, seed: int = 2019, nx: int = 64) -> None:
        super().__init__(scale, seed)
        self.nx = nx * scale
        n = self.nx**3
        layout = MemoryLayout()
        self.rhs = layout.alloc("rhs", n * WORD)
        self.lhs = layout.alloc("lhs", n * 5 * WORD)  # pentadiagonal coefficients
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        nx = self.nx
        nxy = nx * nx
        lines = max(nx // threads, 1)
        y0 = tid * lines
        emitted = 0
        y, z = y0, 0
        line_bytes = nx * WORD
        line_no = 0
        # ADI line pattern: x-sweeps dominate the traffic; one line in
        # three runs in the y or z direction (plane-strided accesses).
        sweep_cycle = (0, 0, 1, 0, 0, 2)
        while emitted < ops:
            sweep = sweep_cycle[line_no % len(sweep_cycle)]
            line_no += 1
            line_base = z * nxy + y * nx
            if sweep == 0:
                # x-direction Thomas sweep, SPM-pencil-tiled: the five
                # coefficient planes and the rhs line move as blocks.
                for c in range(5):
                    off = (line_base * 5 + c * nx) * WORD
                    for op in self.spm_prefetch(self.lhs, off, line_bytes):
                        yield op
                        emitted += 1
                        if emitted >= ops:
                            return
                for op in self.spm_prefetch(self.rhs, line_base * WORD, line_bytes):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
                for op in self.spm_writeback(self.rhs, line_base * WORD, line_bytes):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            else:
                # y/z sweeps walk across lines: each point is a plane
                # apart, so these accesses land on a new row every time —
                # the solver's irregular share.
                stride = nx if sweep == 1 else nxy
                for k in range(nx):
                    i = line_base + k * stride
                    i %= nx**3
                    yield self.rhs + i * WORD, RequestType.LOAD, WORD
                    yield self.rhs + i * WORD, RequestType.STORE, WORD
                    emitted += 2
                    if emitted >= ops:
                        return
            y += 1
            if y >= min(y0 + lines, nx):
                y = y0
                z = (z + 1) % nx


class NASIS(Workload):
    """Integer bucket sort (NAS `IS`)."""

    name = "IS"
    suite = "nas"
    profile = ExecutionProfile("IS", ipc=2.85, rpi=0.54, mem_access_rate=0.93)

    def __init__(
        self, scale: int = 1, seed: int = 2019, keys: int = 1 << 20, buckets: int = 1 << 16
    ) -> None:
        super().__init__(scale, seed)
        self.keys = keys * scale
        self.buckets = buckets
        layout = MemoryLayout()
        self.key_array = layout.alloc("keys", self.keys * WORD)
        self.histogram = layout.alloc("histogram", self.buckets * WORD)
        self.rank = layout.alloc("rank", self.keys * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        chunk = self.keys // threads
        start = tid * chunk
        emitted = 0
        j = 0
        # IS keys are uniform random over the bucket range.
        bucket_idx = rng.integers(0, self.buckets, size=max(ops // 3 + 1, 1))
        while emitted < ops:
            i = start + (j % max(chunk, 1))
            # Sequential key read...
            yield self.key_array + i * WORD, RequestType.LOAD, WORD
            # ... random histogram increment: load + store the bucket.
            b = int(bucket_idx[j % len(bucket_idx)])
            yield self.histogram + b * WORD, RequestType.LOAD, WORD
            yield self.histogram + b * WORD, RequestType.STORE, WORD
            emitted += 3
            j += 1
