"""Additional NAS kernels — CG and FT.

* **CG** — conjugate gradient on a random sparse matrix: the classic
  SpMV gather (random column pattern, unlike HPCG's stencil structure)
  plus streaming vector updates (AXPY/dot);
* **FT** — 3D FFT: unit-stride butterfly passes alternating with
  dimension transposes whose strides cross a row on every access.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload


class NASCG(Workload):
    """Conjugate gradient with a random-pattern sparse matrix (NAS `CG`)."""

    name = "CG"
    suite = "nas"
    profile = ExecutionProfile("CG", ipc=2.55, rpi=0.48, mem_access_rate=0.90)

    def __init__(
        self, scale: int = 1, seed: int = 2019, n: int = 1 << 14, nnz_per_row: int = 16
    ) -> None:
        super().__init__(scale, seed)
        self.n = n * scale
        self.nnz_per_row = nnz_per_row
        layout = MemoryLayout()
        nnz = self.n * nnz_per_row
        self.values = layout.alloc("values", nnz * WORD)
        self.colidx = layout.alloc("colidx", nnz * 4)
        self.x = layout.alloc("x", self.n * WORD)
        self.p = layout.alloc("p", self.n * WORD)
        self.q = layout.alloc("q", self.n * WORD)
        self.layout = layout
        rng = np.random.default_rng(seed)
        # NAS CG's makea(): random column positions, no stencil structure.
        self._cols = rng.integers(0, self.n, size=nnz)

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        chunk = self.n // threads
        start = tid * chunk
        emitted = 0
        row = 0
        phase_axpy = 0
        while emitted < ops:
            i = start + (row % max(chunk, 1))
            row += 1
            nz0 = i * self.nnz_per_row
            # SpMV row: stream values+colidx, gather p[col], store q[i].
            for op in self.spm_prefetch(self.values, nz0 * WORD, self.nnz_per_row * WORD):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_prefetch(self.colidx, nz0 * 4, self.nnz_per_row * 4):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for j in range(self.nnz_per_row):
                col = int(self._cols[(nz0 + j) % len(self._cols)])
                yield self.p + col * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            yield self.q + i * WORD, RequestType.STORE, WORD
            emitted += 1
            # Every 8 rows, an AXPY block over x/p (streams).
            phase_axpy += 1
            if phase_axpy % 8 == 0:
                off = (i % max(chunk - 32, 1)) * WORD
                for op in self.spm_prefetch(self.x, off, 256):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
                for op in self.spm_writeback(self.x, off, 256):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return


class NASFT(Workload):
    """3D FFT with transpose phases (NAS `FT`)."""

    name = "FT"
    suite = "nas"
    profile = ExecutionProfile("FT", ipc=3.15, rpi=0.50, mem_access_rate=0.86)

    def __init__(self, scale: int = 1, seed: int = 2019, nx: int = 64) -> None:
        super().__init__(scale, seed)
        self.nx = nx * scale
        n = self.nx**3
        layout = MemoryLayout()
        self.u = layout.alloc("u", n * 16)  # complex doubles
        self.scratch = layout.alloc("scratch", n * 16)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        nx = self.nx
        nxy = nx * nx
        lines = max(nx // threads, 1)
        y0 = tid * lines
        emitted = 0
        y, z = y0, 0
        line_no = 0
        while emitted < ops:
            base = (z * nxy + y * nx) * 16
            if line_no % 3 != 2:
                # Butterfly pass along x: unit-stride complex line.
                for op in self.spm_prefetch(self.u, base, nx * 16):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
                for op in self.spm_writeback(self.u, base, nx * 16):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            else:
                # Transpose gather: stride nxy elements -> new row each.
                for k in range(nx):
                    src = ((k * nxy + y * nx + z) % (nx**3)) * 16
                    yield self.u + src, RequestType.LOAD, 16
                    yield self.scratch + base + k * 16, RequestType.STORE, 16
                    emitted += 2
                    if emitted >= ops:
                        return
            line_no += 1
            y += 1
            if y >= min(y0 + lines, nx):
                y = y0
                z = (z + 1) % nx
