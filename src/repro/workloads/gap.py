"""GAP Benchmark Suite kernels — BFS and PageRank.

The GAP suite (Beamer et al.) provides reference implementations of six
graph kernels; the two with the most distinct memory behaviours are
modelled here:

* **BFS** — top-down level-synchronous traversal: frontier queue
  (sequential), CSR offsets/neighbours (sequential bursts per vertex),
  random ``parent[]`` probes and updates.
* **PR (PageRank)** — pull-direction iteration: per vertex, stream the
  in-neighbour list and gather ``scores[u]/out_degree[u]`` at random
  vertex positions, then store the new score sequentially.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload
from .graphs import CSRGraph, rmat_csr


class GAPBFS(Workload):
    """Top-down BFS over an R-MAT graph (GAP `bfs`)."""

    name = "BFS"
    suite = "gap"
    profile = ExecutionProfile("BFS", ipc=2.10, rpi=0.42, mem_access_rate=0.89)

    def __init__(self, scale: int = 1, seed: int = 2019, graph_scale: int = 14) -> None:
        super().__init__(scale, seed)
        self.graph: CSRGraph = rmat_csr(graph_scale + (scale - 1), seed=seed)
        n = self.graph.num_vertices
        layout = MemoryLayout()
        self.row_ptr = layout.alloc("row_ptr", (n + 1) * WORD)
        self.neighbors = layout.alloc("neighbors", self.graph.num_edges * WORD)
        self.parent = layout.alloc("parent", n * WORD)
        self.frontier = layout.alloc("frontier", n * WORD)
        self.next_frontier = layout.alloc("next_frontier", n * WORD)
        self.layout = layout
        # Precompute a BFS-like vertex visit order: hubs first (as a real
        # BFS frontier would discover them early).
        degrees = np.diff(self.graph.row_ptr)
        self._visit_order = np.argsort(-degrees, kind="stable")

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        g = self.graph
        n = g.num_vertices
        emitted = 0
        pos = tid
        nf_ptr = tid  # per-thread next-frontier append cursor
        while emitted < ops:
            v = int(self._visit_order[pos % n])
            pos += threads
            yield self.frontier + (pos % n) * WORD, RequestType.LOAD, WORD
            yield self.row_ptr + v * WORD, RequestType.LOAD, WORD
            emitted += 2
            nbrs = g.neighbors_of(v)
            start = int(g.row_ptr[v])
            deg = len(nbrs)
            if deg:
                # Contiguous neighbour run: SPM block prefetch.
                for op in self.spm_prefetch(self.neighbors, start * WORD, deg * WORD):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            for w in nbrs:
                yield self.parent + int(w) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
                # ~1/4 of probed vertices are newly discovered: CAS parent
                # and append to the next frontier.
                if rng.random() < 0.25:
                    yield self.parent + int(w) * WORD, RequestType.STORE, WORD
                    yield self.next_frontier + (nf_ptr % n) * WORD, RequestType.STORE, WORD
                    nf_ptr += 1
                    emitted += 2
                    if emitted >= ops:
                        return


class GAPPageRank(Workload):
    """Pull-based PageRank over an R-MAT graph (GAP `pr`)."""

    name = "PR"
    suite = "gap"
    profile = ExecutionProfile("PR", ipc=2.40, rpi=0.45, mem_access_rate=0.91)

    def __init__(self, scale: int = 1, seed: int = 2019, graph_scale: int = 14) -> None:
        super().__init__(scale, seed)
        self.graph: CSRGraph = rmat_csr(graph_scale + (scale - 1), seed=seed)
        n = self.graph.num_vertices
        layout = MemoryLayout()
        self.row_ptr = layout.alloc("row_ptr", (n + 1) * WORD)
        self.neighbors = layout.alloc("neighbors", self.graph.num_edges * WORD)
        self.scores = layout.alloc("scores", n * WORD)
        self.out_degree = layout.alloc("out_degree", n * WORD)
        self.next_scores = layout.alloc("next_scores", n * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        g = self.graph
        n = g.num_vertices
        chunk = n // threads
        start = tid * chunk
        emitted = 0
        i = 0
        while emitted < ops:
            v = start + (i % max(chunk, 1))
            i += 1
            yield self.row_ptr + v * WORD, RequestType.LOAD, WORD
            emitted += 1
            nbrs = g.neighbors_of(v)
            ptr = int(g.row_ptr[v])
            deg = len(nbrs)
            if deg:
                for op in self.spm_prefetch(self.neighbors, ptr * WORD, deg * WORD):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            for u in nbrs:
                # The defining PR gather: a random score lookup per edge.
                # (out_degree[] is SPM-resident: GAP precomputes it once
                # and it is read-shared, so the SPM keeps it on chip.)
                yield self.scores + int(u) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            yield self.next_scores + v * WORD, RequestType.STORE, WORD
            emitted += 1
