"""Scatter/Gather (SG) — the paper's running irregular microbenchmark.

The kernel of sections 2.1 and 5.2: ``A[i] = B[C[i]]`` — a sequential
index-stream read, a data-dependent random gather, and a sequential
store.  The two sequential streams carry high row locality (32
8-byte words per 256 B row); the gather is uniform-random over B and
essentially uncoalescable for large B, which is exactly the miss-rate
behaviour Fig. 1 (right) sweeps.

``SequentialSG`` is the ``A[i] = B[i]`` control used in the same figure.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload


class ScatterGather(Workload):
    """``A[i] = B[C[i]]`` with uniform-random C."""

    name = "SG"
    suite = "micro"
    # Tight gather loop: ~1 mem op per 2 instructions, nearly all of
    # which miss the SPM (the working set is the whole of B).
    profile = ExecutionProfile("SG", ipc=2.55, rpi=0.52, mem_access_rate=0.92)

    def __init__(
        self,
        scale: int = 1,
        seed: int = 2019,
        elements: int = 1 << 20,
        hot_frac: float = 0.58,
        block_elems: int = 32,
    ) -> None:
        super().__init__(scale, seed)
        self.elements = elements * scale
        #: Fraction of gather indices landing in a small hot region.
        #: hot_frac=0 gives the uniform-random gathers of Fig. 1 (right);
        #: the Fig. 10 evaluation configuration models hot/cold lookups.
        self.hot_frac = hot_frac
        #: Elements per SPM transfer block for the streaming arrays.
        self.block_elems = block_elems
        layout = MemoryLayout()
        self.a = layout.alloc("A", self.elements * WORD)
        self.b = layout.alloc("B", self.elements * WORD)
        self.c = layout.alloc("C", self.elements * 4)  # int32 indices
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        # Block-partitioned parallel loop: thread t owns a contiguous
        # chunk of the index space, as an OpenMP static schedule would.
        # The unit-stride C reads and A writes move through the SPM in
        # blocks; the data-dependent B gathers go out as raw words.
        chunk = self.elements // threads
        start = tid * chunk
        blk = self.block_elems
        emitted = 0
        j = 0
        while emitted < ops:
            i = start + (j * blk) % max(chunk - blk, 1)
            j += 1
            # Prefetch one block of int32 indices into the SPM.
            for op in self.spm_prefetch(self.c, i * 4, blk * 4):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            # Gather B[C[i]] for each index in the block.  Real lookup
            # tables are hot/cold: a fraction of indices (hot_frac) land in
            # a small frequently-referenced region, the rest are uniform.
            if self.hot_frac > 0:
                hot_rows = 8 * 32  # 8 rows' worth of words
                hot = rng.integers(0, hot_rows, size=blk)
                cold = rng.integers(0, self.elements, size=blk)
                pick_hot = rng.random(blk) < self.hot_frac
                idx = np.where(pick_hot, hot, cold)
            else:
                idx = rng.integers(0, self.elements, size=blk)
            for k in range(blk):
                yield self.b + int(idx[k]) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Write the result block back from the SPM.
            for op in self.spm_writeback(self.a, i * WORD, blk * WORD):
                yield op
                emitted += 1
                if emitted >= ops:
                    return


class SequentialSG(Workload):
    """``A[i] = B[i]`` — the sequential control of Fig. 1 (right)."""

    name = "SG-SEQ"
    suite = "micro"
    profile = ExecutionProfile("SG-SEQ", ipc=4.05, rpi=0.50, mem_access_rate=0.85)

    def __init__(
        self, scale: int = 1, seed: int = 2019, elements: int = 1 << 20
    ) -> None:
        super().__init__(scale, seed)
        self.elements = elements * scale
        layout = MemoryLayout()
        self.a = layout.alloc("A", self.elements * WORD)
        self.b = layout.alloc("B", self.elements * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        chunk = self.elements // threads
        start = tid * chunk
        blk = 32
        emitted = 0
        j = 0
        while emitted < ops:
            i = start + (j * blk) % max(chunk - blk, 1)
            j += 1
            for op in self.spm_prefetch(self.b, i * WORD, blk * WORD):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_writeback(self.a, i * WORD, blk * WORD):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
