"""Additional BOTS kernels — FIB and HEALTH.

* **FIB** — recursive Fibonacci: almost pure task-runtime traffic
  (descriptor allocation, deque pushes/pops, steals), the most
  cache/coalescer-hostile of the BOTS set;
* **HEALTH** — the Columbian health-care simulation: linked lists of
  patients migrating between hospital levels — classic pointer chasing
  with small per-node payloads.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload


class BotsFib(Workload):
    """Task-recursive Fibonacci (BOTS `fib`)."""

    name = "FIB"
    suite = "bots"
    profile = ExecutionProfile("FIB", ipc=3.60, rpi=0.35, mem_access_rate=0.70)

    def __init__(self, scale: int = 1, seed: int = 2019) -> None:
        super().__init__(scale, seed)
        layout = MemoryLayout()
        self.heap_bytes = (1 << 20) * scale
        self.task_heap = layout.alloc("task_heap", self.heap_bytes)
        self.deques = [layout.alloc(f"deque{t}", 4096) for t in range(64)]
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        heap_words = self.heap_bytes // WORD
        deque_base = self.deques[tid % len(self.deques)]
        top = 0
        emitted = 0
        while emitted < ops:
            # Allocate a task descriptor (bump allocator with reuse:
            # scattered over the heap as freed slots recycle).
            d = int(rng.integers(0, heap_words - 8))
            for k in range(4):  # 32 B descriptor
                yield self.task_heap + (d + k) * WORD, RequestType.STORE, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Push onto the own deque (hot, tiny).
            yield deque_base + (top % 512) * WORD, RequestType.STORE, WORD
            emitted += 1
            top += 1
            # Occasionally steal: probe a victim's deque head.
            if rng.random() < 0.15:
                victim = self.deques[int(rng.integers(0, len(self.deques)))]
                yield victim, RequestType.ATOMIC, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Join: read the descriptor back.
            yield self.task_heap + d * WORD, RequestType.LOAD, WORD
            emitted += 1


class BotsHealth(Workload):
    """Multilevel health-care simulation (BOTS `health`)."""

    name = "HEALTH"
    suite = "bots"
    profile = ExecutionProfile("HEALTH", ipc=2.40, rpi=0.46, mem_access_rate=0.88)

    def __init__(
        self, scale: int = 1, seed: int = 2019, patients: int = 1 << 16
    ) -> None:
        super().__init__(scale, seed)
        self.patients = patients * scale
        layout = MemoryLayout()
        #: Patient records are 64 B nodes linked in arrival order but
        #: allocated over time -> scattered in the heap.
        self.records = layout.alloc("records", self.patients * 64)
        self.villages = layout.alloc("villages", 4096 * 64)
        self.layout = layout
        rng = np.random.default_rng(seed)
        #: next-pointer targets: mostly random (heap churn).
        self._next = rng.integers(0, self.patients, size=self.patients)

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        emitted = 0
        node = int(rng.integers(0, self.patients))
        while emitted < ops:
            # Visit the village header (hot shared row per subtree).
            village = (tid * 37 + node) % 4096
            yield self.villages + village * 64, RequestType.LOAD, WORD
            emitted += 1
            # Walk a few list nodes: load the record (2 words) + next ptr.
            for _ in range(6):
                base = self.records + node * 64
                yield base, RequestType.LOAD, WORD
                yield base + WORD, RequestType.LOAD, WORD
                emitted += 2
                if emitted >= ops:
                    return
                if rng.random() < 0.3:  # treat the patient: update record
                    yield base + 2 * WORD, RequestType.STORE, WORD
                    emitted += 1
                    if emitted >= ops:
                        return
                node = int(self._next[node])
