"""Additional GAP kernels — CC, SSSP and TC.

Beyond BFS and PR (:mod:`repro.workloads.gap`), the GAP suite's other
kernels stress distinct mixes of streaming and gathering:

* **CC (connected components, Shiloach-Vishkin style)** — edge-list
  streaming with two random component-id lookups and an occasional
  hook (store) per edge;
* **SSSP (delta-stepping)** — bucketed frontier scans plus random
  distance relaxations;
* **TC (triangle counting)** — per vertex, stream its neighbour run and
  for each neighbour stream *that* vertex's run too, intersecting: very
  adjacency-bandwidth-heavy with hub-quadratic reuse.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload
from .graphs import CSRGraph, rmat_csr, rmat_edges


class GAPConnectedComponents(Workload):
    """Shiloach-Vishkin connected components (GAP `cc`)."""

    name = "CC"
    suite = "gap"
    profile = ExecutionProfile("CC", ipc=2.25, rpi=0.44, mem_access_rate=0.90)

    def __init__(self, scale: int = 1, seed: int = 2019, graph_scale: int = 14) -> None:
        super().__init__(scale, seed)
        self.edges = rmat_edges(graph_scale + (scale - 1), edge_factor=8, seed=seed)
        n = 1 << (graph_scale + (scale - 1))
        self.n = n
        layout = MemoryLayout()
        self.edge_array = layout.alloc("edges", len(self.edges) * 2 * WORD)
        self.comp = layout.alloc("comp", n * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        m = len(self.edges)
        chunk = m // threads
        start = tid * chunk
        emitted = 0
        e = 0
        while emitted < ops:
            i = start + (e % max(chunk, 1))
            e += 1
            # The edge list streams via SPM blocks (16 B = one (u,v) pair).
            for op in self.spm_prefetch(self.edge_array, i * 16, 16):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            u, v = self.edges[i % m]
            # Two random component lookups + a hook on ~30 % of edges.
            yield self.comp + int(u) * WORD, RequestType.LOAD, WORD
            yield self.comp + int(v) * WORD, RequestType.LOAD, WORD
            emitted += 2
            if emitted >= ops:
                return
            if rng.random() < 0.3:
                yield self.comp + int(min(u, v)) * WORD, RequestType.STORE, WORD
                emitted += 1


class GAPSSSP(Workload):
    """Delta-stepping single-source shortest paths (GAP `sssp`)."""

    name = "SSSP"
    suite = "gap"
    profile = ExecutionProfile("SSSP", ipc=2.10, rpi=0.43, mem_access_rate=0.90)

    def __init__(self, scale: int = 1, seed: int = 2019, graph_scale: int = 14) -> None:
        super().__init__(scale, seed)
        self.graph: CSRGraph = rmat_csr(graph_scale + (scale - 1), seed=seed)
        n = self.graph.num_vertices
        layout = MemoryLayout()
        self.row_ptr = layout.alloc("row_ptr", (n + 1) * WORD)
        self.neighbors = layout.alloc("neighbors", self.graph.num_edges * WORD)
        self.weights = layout.alloc("weights", self.graph.num_edges * WORD)
        self.dist = layout.alloc("dist", n * WORD)
        self.bucket = layout.alloc("bucket", n * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        g = self.graph
        n = g.num_vertices
        emitted = 0
        bpos = tid
        while emitted < ops:
            # Scan the current bucket (sequential shared queue).
            yield self.bucket + (bpos % n) * WORD, RequestType.LOAD, WORD
            emitted += 1
            bpos += threads
            v = int(rng.integers(0, n))
            ptr = int(g.row_ptr[v])
            deg = g.degree(v)
            if deg:
                # Adjacency + weights stream together.
                for op in self.spm_prefetch(self.neighbors, ptr * WORD, deg * WORD):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
                for op in self.spm_prefetch(self.weights, ptr * WORD, deg * WORD):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            for w in g.neighbors_of(v):
                # Relaxation: random dist check, conditional update.
                yield self.dist + int(w) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
                if rng.random() < 0.2:
                    yield self.dist + int(w) * WORD, RequestType.STORE, WORD
                    yield self.bucket + (bpos % n) * WORD, RequestType.STORE, WORD
                    emitted += 2
                    if emitted >= ops:
                        return


class GAPTriangleCounting(Workload):
    """Set-intersection triangle counting (GAP `tc`)."""

    name = "TC"
    suite = "gap"
    profile = ExecutionProfile("TC", ipc=2.70, rpi=0.47, mem_access_rate=0.85)

    def __init__(self, scale: int = 1, seed: int = 2019, graph_scale: int = 13) -> None:
        super().__init__(scale, seed)
        self.graph: CSRGraph = rmat_csr(graph_scale + (scale - 1), seed=seed)
        n = self.graph.num_vertices
        layout = MemoryLayout()
        self.row_ptr = layout.alloc("row_ptr", (n + 1) * WORD)
        self.neighbors = layout.alloc("neighbors", self.graph.num_edges * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        g = self.graph
        n = g.num_vertices
        chunk = n // threads
        start = tid * chunk
        emitted = 0
        i = 0
        while emitted < ops:
            u = start + (i % max(chunk, 1))
            i += 1
            ptr_u = int(g.row_ptr[u])
            deg_u = g.degree(u)
            if not deg_u:
                continue
            yield self.row_ptr + u * WORD, RequestType.LOAD, WORD
            emitted += 1
            # Stream u's adjacency once...
            for op in self.spm_prefetch(self.neighbors, ptr_u * WORD, deg_u * WORD):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            # ... then each neighbour's run for the intersection.
            for w in g.neighbors_of(u)[:8]:  # truncated like GAP's ordering
                ptr_w = int(g.row_ptr[int(w)])
                deg_w = min(g.degree(int(w)), 16)
                if deg_w:
                    for op in self.spm_prefetch(
                        self.neighbors, ptr_w * WORD, deg_w * WORD
                    ):
                        yield op
                        emitted += 1
                        if emitted >= ops:
                            return
