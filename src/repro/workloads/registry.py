"""Benchmark registry — the paper's 12-workload evaluation set.

Maps benchmark names (as they appear on the x-axes of Figs. 9-17) to
workload classes.  The ExecutionProfile values (IPC, RPI, SPM-miss rate)
attached to each class are modelled per workload family from published
characterisations — irregular graph codes run at low IPC with almost
every request missing the SPM; dense/stencil codes run faster with
slightly better SPM capture — and are tuned so every benchmark offers
more than 2 raw requests/cycle to the MAC, averaging ~9 RPC with the
IPC x RPI x 8 cores x mem-rate model of Eq. 2 (Fig. 9).
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.seeding import DEFAULT_SEED

from .base import Workload
from .bots import BotsSort, NQueens, SparseLU
from .bots_extra import BotsFib, BotsHealth
from .gap import GAPBFS, GAPPageRank
from .gap_extra import GAPConnectedComponents, GAPSSSP, GAPTriangleCounting
from .grappolo import Grappolo
from .hpcg import HPCG
from .nas import NASIS, NASMG, NASSP
from .nas_extra import NASCG, NASFT
from .sg import ScatterGather, SequentialSG
from .ssca2 import SSCA2

#: The 12 benchmarks of the paper's evaluation (section 5.2), in the
#: order used by the figures.
BENCHMARKS: Dict[str, Type[Workload]] = {
    "SG": ScatterGather,
    "HPCG": HPCG,
    "SSCA2": SSCA2,
    "GRAPPOLO": Grappolo,
    "BFS": GAPBFS,
    "PR": GAPPageRank,
    "NQUEENS": NQueens,
    "SPARSELU": SparseLU,
    "SORT": BotsSort,
    "MG": NASMG,
    "SP": NASSP,
    "IS": NASIS,
}

#: Extra workloads not in the headline figures: the remaining GAP,
#: BOTS and NAS kernels, for coverage beyond the paper's 12-benchmark
#: selection, plus the sequential SG control of Fig. 1 (right).
AUXILIARY: Dict[str, Type[Workload]] = {
    # The paper's scatter/gather kernel IS the GUPS access pattern
    # (random word-granularity updates over a huge table); accept the
    # conventional name as an alias.
    "GUPS": ScatterGather,
    "SG-SEQ": SequentialSG,
    "CC": GAPConnectedComponents,
    "SSSP": GAPSSSP,
    "TC": GAPTriangleCounting,
    "FIB": BotsFib,
    "HEALTH": BotsHealth,
    "CG": NASCG,
    "FT": NASFT,
}


def benchmark_names() -> List[str]:
    """Names of the 12 evaluation benchmarks, figure order."""
    return list(BENCHMARKS)


def make(name: str, scale: int = 1, seed: int = DEFAULT_SEED, **kwargs) -> Workload:
    """Instantiate a benchmark by name (case-insensitive)."""
    key = name.upper()
    cls = BENCHMARKS.get(key) or AUXILIARY.get(key)
    if cls is None:
        known = ", ".join(sorted({**BENCHMARKS, **AUXILIARY}))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return cls(scale=scale, seed=seed, **kwargs)


def all_benchmarks(scale: int = 1, seed: int = DEFAULT_SEED) -> Dict[str, Workload]:
    """Instantiate the full evaluation set."""
    return {name: cls(scale=scale, seed=seed) for name, cls in BENCHMARKS.items()}
