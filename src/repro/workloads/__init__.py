"""Synthetic benchmark generators — the paper's 12-workload suite.

Each workload reproduces the memory access pattern of one benchmark of
section 5.2 (SG, HPCG, SSCA2, GRAPPOLO, GAP, BOTS, NAS-PB); see
DESIGN.md section 4 for the substitution rationale.
"""

from .base import MemoryLayout, Op, ROW_BYTES, WORD, Workload, interleave_round_robin
from .bots import BotsSort, NQueens, SparseLU
from .bots_extra import BotsFib, BotsHealth
from .gap import GAPBFS, GAPPageRank
from .gap_extra import GAPConnectedComponents, GAPSSSP, GAPTriangleCounting
from .graphs import CSRGraph, edges_to_csr, rmat_csr, rmat_edges, uniform_csr, uniform_edges
from .grappolo import Grappolo
from .hpcg import HPCG
from .nas import NASIS, NASMG, NASSP
from .nas_extra import NASCG, NASFT
from .registry import AUXILIARY, BENCHMARKS, all_benchmarks, benchmark_names, make
from .sg import ScatterGather, SequentialSG
from .ssca2 import SSCA2

__all__ = [
    "AUXILIARY",
    "BENCHMARKS",
    "BotsFib",
    "BotsHealth",
    "BotsSort",
    "CSRGraph",
    "GAPBFS",
    "GAPConnectedComponents",
    "GAPPageRank",
    "GAPSSSP",
    "GAPTriangleCounting",
    "Grappolo",
    "HPCG",
    "MemoryLayout",
    "NASCG",
    "NASFT",
    "NASIS",
    "NASMG",
    "NASSP",
    "NQueens",
    "Op",
    "ROW_BYTES",
    "ScatterGather",
    "SequentialSG",
    "SparseLU",
    "SSCA2",
    "WORD",
    "Workload",
    "all_benchmarks",
    "benchmark_names",
    "edges_to_csr",
    "interleave_round_robin",
    "make",
    "rmat_csr",
    "rmat_edges",
    "uniform_csr",
    "uniform_edges",
]
