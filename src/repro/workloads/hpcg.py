"""HPCG — High Performance Conjugate Gradient (sparse SpMV pattern).

HPCG's dominant kernel is a symmetric Gauss-Seidel / SpMV over a sparse
matrix with a 27-point 3D stencil structure: per matrix row, sequential
streams over the value and column-index arrays, a gather of ``x[col]``
for each of the 27 neighbours (clustered around the diagonal by the
stencil geometry, but spanning ±nx·ny elements in the outer planes),
and a sequential store of ``y[i]``.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload


class HPCG(Workload):
    """27-point-stencil SpMV: ``y[i] = sum_j A[i,j] * x[col[i,j]]``."""

    name = "HPCG"
    suite = "hpcg"
    profile = ExecutionProfile("HPCG", ipc=2.85, rpi=0.48, mem_access_rate=0.88)

    def __init__(self, scale: int = 1, seed: int = 2019, nx: int = 48) -> None:
        super().__init__(scale, seed)
        self.nx = nx * scale
        self.n = self.nx**3
        layout = MemoryLayout()
        nnz = self.n * 27
        self.values = layout.alloc("values", nnz * WORD)
        self.colidx = layout.alloc("colidx", nnz * WORD)
        self.x = layout.alloc("x", self.n * WORD)
        self.y = layout.alloc("y", self.n * WORD)
        self.layout = layout
        # Stencil neighbour offsets in row-index space.
        nxy = self.nx * self.nx
        self._offsets: List[int] = [
            dz * nxy + dy * self.nx + dx
            for dz in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
        ]

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        chunk = self.n // threads
        start = tid * chunk
        emitted = 0
        nnz_per_row = 27
        row = 0
        # HPCG's SYMGS uses multicoloured ordering for parallelism: rows
        # of one colour class are visited with a stride, so consecutive
        # iterations do not share stencil pencils.
        colors = 8
        rows_per_color = max(chunk // colors, 1)
        while emitted < ops:
            color = row // rows_per_color % colors
            i = start + (color + (row % rows_per_color) * colors) % max(chunk, 1)
            row += 1
            base_nz = i * nnz_per_row
            # The matrix row's values and column indices are unit-stride:
            # the SPM prefetches them as one block (27 x 8 B values plus
            # 27 x 4 B indices ~ 324 B).
            for op in self.spm_prefetch(self.values, base_nz * WORD, nnz_per_row * WORD):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_prefetch(self.colidx, base_nz * 4, nnz_per_row * 4):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            # x[col] gathers hop across the three stencil planes and stay
            # word-granularity (data-dependent on colidx).  A third of the
            # stencil legs cross the local subdomain boundary, where the
            # halo exchange scatters them across the receive buffer.
            for k, off in enumerate(self._offsets):
                col = i + off
                if col < 0 or col >= self.n:
                    continue
                if k % 3 == 1:
                    col = int(rng.integers(0, self.n))
                yield self.x + col * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            yield self.y + i * WORD, RequestType.STORE, WORD
            emitted += 1
