"""Shared graph substrate for the graph-analytics workloads.

SSCA2, Grappolo and the GAP kernels all traverse compressed-sparse-row
(CSR) graphs.  This module builds deterministic R-MAT (power-law) and
uniform random graphs as CSR arrays — real adjacency structure, so the
generators below issue the genuine gather/scatter address streams of
graph analytics rather than unstructured noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seeding import DEFAULT_SEED


@dataclass(frozen=True)
class CSRGraph:
    """CSR adjacency: ``neighbors[row_ptr[v]:row_ptr[v+1]]`` for vertex v."""

    row_ptr: np.ndarray
    neighbors: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.neighbors)

    def degree(self, v: int) -> int:
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def neighbors_of(self, v: int) -> np.ndarray:
        return self.neighbors[self.row_ptr[v] : self.row_ptr[v + 1]]


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = DEFAULT_SEED,
) -> np.ndarray:
    """Kronecker (R-MAT) edge list with the Graph500/SSCA2 parameters.

    Returns an (m, 2) int64 array of directed edges over 2**scale
    vertices.  Power-law degree structure is what concentrates graph
    traffic on hub rows — the locality the MAC exploits.
    """
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    for bit in range(scale):
        r = rng.random(m)
        r2 = rng.random(m)
        # Within top half: bit of src set for quadrants b? Standard RMAT:
        # a=00, b=01, c=10, d=11 over (src_bit, dst_bit).
        src_bit = (r >= ab).astype(np.int64)
        dst_bit = np.where(
            src_bit == 0, (r >= a).astype(np.int64), (r2 >= c / (1 - ab)).astype(np.int64)
        )
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    edges = np.stack([src, dst], axis=1)
    # Permute vertex labels to avoid degree-locality artifacts of the
    # Kronecker construction (Graph500 does the same).
    perm = rng.permutation(n)
    return perm[edges]


def uniform_edges(n: int, m: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Erdos-Renyi-style random edge list: m directed edges over n vertices."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, n, size=(m, 2), dtype=np.int64)


def edges_to_csr(edges: np.ndarray, n: int) -> CSRGraph:
    """Build a CSR adjacency from a directed edge list (self-loops kept)."""
    src = edges[:, 0]
    dst = edges[:, 1]
    order = np.argsort(src, kind="stable")
    sorted_dst = dst[order].astype(np.int64)
    counts = np.bincount(src, minlength=n)
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return CSRGraph(row_ptr=row_ptr, neighbors=sorted_dst)


def rmat_csr(scale: int, edge_factor: int = 16, seed: int = DEFAULT_SEED) -> CSRGraph:
    """R-MAT graph in CSR form (2**scale vertices)."""
    edges = rmat_edges(scale, edge_factor, seed=seed)
    return edges_to_csr(edges, 1 << scale)


def uniform_csr(n: int, degree: int = 16, seed: int = DEFAULT_SEED) -> CSRGraph:
    """Uniform random graph in CSR form."""
    edges = uniform_edges(n, n * degree, seed)
    return edges_to_csr(edges, n)
