"""SSCA#2 — Scalable Synthetic Compact Applications graph analysis.

Kernel 4 of SSCA#2 (betweenness-centrality style traversal) dominates the
benchmark's memory behaviour: a level-synchronous BFS over an R-MAT
graph (frontier queue reads, CSR neighbour streams, random visited /
distance / sigma updates) followed by the dependency back-propagation
which re-walks the same structure with random delta[] updates.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload
from .graphs import CSRGraph, rmat_csr


class SSCA2(Workload):
    """Betweenness-style R-MAT traversal (SSCA#2 kernel 4)."""

    name = "SSCA2"
    suite = "graph"
    profile = ExecutionProfile("SSCA2", ipc=2.25, rpi=0.46, mem_access_rate=0.90)

    def __init__(self, scale: int = 1, seed: int = 2019, graph_scale: int = 14) -> None:
        super().__init__(scale, seed)
        self.graph: CSRGraph = rmat_csr(graph_scale + (scale - 1), seed=seed)
        n = self.graph.num_vertices
        layout = MemoryLayout()
        self.row_ptr = layout.alloc("row_ptr", (n + 1) * WORD)
        self.neighbors = layout.alloc("neighbors", self.graph.num_edges * WORD)
        self.dist = layout.alloc("dist", n * WORD)
        self.sigma = layout.alloc("sigma", n * WORD)
        self.delta = layout.alloc("delta", n * WORD)
        self.frontier = layout.alloc("frontier", n * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        g = self.graph
        n = g.num_vertices
        emitted = 0
        fpos = tid  # frontier scan position (threads stride the queue)
        while emitted < ops:
            # Pop a vertex from the shared frontier (sequential queue read).
            yield self.frontier + (fpos % n) * WORD, RequestType.LOAD, WORD
            emitted += 1
            # Edge-centric vertex selection: traversal reaches vertices in
            # proportion to their in-degree, so R-MAT hubs (with their long
            # contiguous adjacency runs) dominate the stream.
            e = int(rng.integers(0, g.num_edges))
            v = int(g.neighbors[e])
            # CSR bounds: two adjacent row_ptr words.
            yield self.row_ptr + v * WORD, RequestType.LOAD, WORD
            emitted += 1
            nbrs = g.neighbors_of(v)
            start = int(g.row_ptr[v])
            deg = len(nbrs)
            if deg:
                # The contiguous neighbour run is SPM-prefetched as a block.
                for op in self.spm_prefetch(self.neighbors, start * WORD, deg * WORD):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            for w in nbrs:
                # Random checks on the visited structures; R-MAT hubs
                # concentrate a fraction of these on hot rows.  sigma is
                # only updated for tree edges (~1/4 of probes).
                yield self.dist + int(w) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
                if rng.random() < 0.25:
                    yield self.sigma + int(w) * WORD, RequestType.STORE, WORD
                    emitted += 1
                    if emitted >= ops:
                        return
            # Back-propagation touch on delta[v].
            yield self.delta + v * WORD, RequestType.STORE, WORD
            emitted += 1
            fpos += threads
