"""Workload framework — synthetic generators for the paper's benchmarks.

The paper traces 12 parallel benchmarks on a modified RISC-V Spike
(section 5.2).  We cannot run Spike, so each benchmark is replaced by a
seeded generator that reproduces its *memory access pattern* — the only
property the MAC, the cache study and the HMC model observe (DESIGN.md
section 4, substitution 1).

A workload describes:

* an :class:`repro.trace.stats.ExecutionProfile` (IPC, RPI, SPM-miss
  rate) used by Eq. 2 / Fig. 9 and for cycle-stamping traces;
* per-thread operation streams (:meth:`Workload.thread_stream`) over a
  declared :class:`MemoryLayout` of arrays;
* :meth:`Workload.generate`, which interleaves the thread streams
  round-robin (the arrival order a multicore front-end produces) and
  stamps cycles at the profile's offered request rate.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.request import RequestType
from repro.seeding import DEFAULT_SEED
from repro.trace.record import TraceRecord
from repro.trace.stats import ExecutionProfile

#: (address, op, size) tuples produced by per-thread streams.
Op = Tuple[int, RequestType, int]

#: Rows are 256 B; arrays are row-aligned so address arithmetic in the
#: generators maps directly onto coalescing units.
ROW_BYTES = 256
WORD = 8


class MemoryLayout:
    """Row-aligned allocator for named arrays in the 52-bit address space.

    Regions are spaced by at least one row so accesses to different
    arrays never share a coalescing unit by accident.
    """

    def __init__(self, base: int = 1 << 32) -> None:
        self._next = _round_up(base, ROW_BYTES)
        self.regions: Dict[str, Tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` for ``name``; returns the base address."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already allocated")
        if nbytes < 1:
            raise ValueError("allocation must be positive")
        base = self._next
        self.regions[name] = (base, nbytes)
        self._next = _round_up(base + nbytes, ROW_BYTES) + ROW_BYTES
        if self._next >= (1 << 52):
            raise MemoryError("52-bit simulated address space exhausted")
        return base

    def base(self, name: str) -> int:
        return self.regions[name][0]

    def contains(self, name: str, addr: int) -> bool:
        base, size = self.regions[name]
        return base <= addr < base + size


def _round_up(x: int, align: int) -> int:
    return (x + align - 1) // align * align


class Workload(abc.ABC):
    """One synthetic benchmark.

    Subclasses set ``name``, ``suite`` and ``profile`` and implement
    :meth:`thread_stream`.
    """

    name: str = "abstract"
    suite: str = ""
    #: Eq. 2 inputs; values per benchmark are documented in registry.py.
    profile: ExecutionProfile

    def __init__(self, scale: int = 1, seed: int = DEFAULT_SEED) -> None:
        """``scale`` multiplies the working-set size; ``seed`` fixes RNG."""
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = scale
        self.seed = seed

    # -- to implement ----------------------------------------------------------

    @abc.abstractmethod
    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        """Yield up to ``ops`` operations for thread ``tid`` of ``threads``."""

    # -- shared machinery ----------------------------------------------------

    def generate(
        self,
        threads: int = 8,
        ops_per_thread: int = 4096,
        seed: Optional[int] = None,
    ) -> List[TraceRecord]:
        """Produce the interleaved, cycle-stamped trace.

        Threads are interleaved round-robin, one operation per turn —
        the arrival pattern of symmetric cores issuing in lockstep; the
        cycle stamps spread the aggregate stream at the profile's
        offered rate (Eq. 2) so trace timing matches Fig. 9.
        """
        if threads < 1:
            raise ValueError("need at least one thread")
        if ops_per_thread < 1:
            raise ValueError("need at least one op per thread")
        base_seed = self.seed if seed is None else seed
        streams = [
            self.thread_stream(
                tid,
                threads,
                ops_per_thread,
                np.random.default_rng((base_seed, tid)),
            )
            for tid in range(threads)
        ]
        rpc = max(self.profile.rpc(cores=threads), 1e-6)
        out: List[TraceRecord] = []
        alive = list(range(threads))
        k = 0
        while alive:
            next_alive = []
            for tid in alive:
                op = next(streams[tid], None)
                if op is None:
                    continue
                next_alive.append(tid)
                addr, rtype, size = op
                out.append(
                    TraceRecord(
                        op=rtype,
                        addr=addr,
                        size=size,
                        tid=tid,
                        core=tid % 8,
                        cycle=int(k / rpc),
                    )
                )
                k += 1
            alive = next_alive
        return out

    # -- helpers for subclasses ----------------------------------------------

    @staticmethod
    def seq_loads(base: int, start: int, count: int, stride: int = WORD) -> Iterator[Op]:
        """Unit/strided sequential load run over an array."""
        for i in range(count):
            yield base + (start + i) * stride, RequestType.LOAD, WORD

    @staticmethod
    def seq_stores(base: int, start: int, count: int, stride: int = WORD) -> Iterator[Op]:
        for i in range(count):
            yield base + (start + i) * stride, RequestType.STORE, WORD

    # The paper's node has software-managed SPMs with ISA extensions for
    # prefetch and write-back (section 5.1).  Streamable data therefore
    # reaches the MAC as contiguous FLIT-granularity block transfers; only
    # data-dependent gathers/scatters arrive as individual word accesses.

    @staticmethod
    def spm_prefetch(base: int, byte_off: int, nbytes: int) -> Iterator[Op]:
        """SPM block fetch: FLIT-sized loads over a contiguous range."""
        flit = 16
        start = byte_off - (byte_off % flit)
        end = byte_off + nbytes
        while start < end:
            yield base + start, RequestType.LOAD, flit
            start += flit

    @staticmethod
    def spm_writeback(base: int, byte_off: int, nbytes: int) -> Iterator[Op]:
        """SPM block write-back: FLIT-sized stores over a contiguous range."""
        flit = 16
        start = byte_off - (byte_off % flit)
        end = byte_off + nbytes
        while start < end:
            yield base + start, RequestType.STORE, flit
            start += flit

    @staticmethod
    def zipf_indices(
        rng: np.random.Generator, n: int, count: int, s: float = 1.1
    ) -> np.ndarray:
        """Zipf-popular gather indices over ``n`` elements.

        Real lookup tables (graph hubs, symbol tables, histogram heads)
        exhibit power-law popularity; ``s`` controls the skew.
        """
        ranks = rng.zipf(s + 1.0, size=count)
        return np.minimum(ranks - 1, n - 1)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scale={self.scale}, seed={self.seed})"


def interleave_round_robin(streams: Sequence[Iterator[Op]]) -> Iterator[Tuple[int, Op]]:
    """Round-robin merge of per-thread op streams; yields (tid, op)."""
    alive = list(range(len(streams)))
    while alive:
        next_alive = []
        for tid in alive:
            op = next(streams[tid], None)
            if op is not None:
                yield tid, op
                next_alive.append(tid)
        alive = next_alive
