"""Barcelona OpenMP Tasks Suite (BOTS) — NQUEENS, SPARSELU, SORT.

BOTS benchmarks are task-parallel; their memory behaviour is dominated
by the data each task touches:

* **NQUEENS** — backtracking search; each task works on a small board
  copy and a handful of column/diagonal occupancy arrays.  The working
  set per thread is a few hundred bytes re-touched constantly: extreme
  row locality (the paper's Fig. 12 shows NQUEENS among the largest
  bank-conflict reductions precisely because raw traffic hammers the
  same rows).
* **SPARSELU** — LU factorisation of a sparse blocked matrix; tasks
  operate on dense 32x32 FP64 tiles (8 KB), streaming them with unit
  stride: very high coalescibility (>60 % in Fig. 10).
* **SORT** — parallel mergesort; sequential merge streams with task
  recursion, moderate-to-high locality.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload


class NQueens(Workload):
    """Task-recursive N-queens backtracking (BOTS `nqueens`)."""

    name = "NQUEENS"
    suite = "bots"
    profile = ExecutionProfile("NQUEENS", ipc=3.30, rpi=0.38, mem_access_rate=0.74)

    def __init__(self, scale: int = 1, seed: int = 2019, board: int = 14) -> None:
        super().__init__(scale, seed)
        self.board = board
        layout = MemoryLayout()
        # Each thread owns a task stack of board states; states are small
        # and contiguous, so per-thread traffic concentrates in few rows.
        self.stack_bytes = 4096 * scale
        self.stacks = [
            layout.alloc(f"stack{t}", self.stack_bytes) for t in range(64)
        ]
        self.results = layout.alloc("results", 64 * WORD)
        # Task-descriptor heap touched by the OpenMP runtime: descriptors
        # are allocated/stolen all over it, so those accesses scatter.
        self.task_heap = layout.alloc("task_heap", 1 << 20)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        stack = self.stacks[tid % len(self.stacks)]
        words = self.stack_bytes // WORD
        heap_words = (1 << 20) // WORD
        depth = 0
        emitted = 0
        while emitted < ops:
            # Spawn: allocate a task descriptor somewhere in the runtime
            # heap (scattered) and link it into the stealing deque.
            t_desc = int(rng.integers(0, heap_words - 4))
            yield self.task_heap + t_desc * WORD, RequestType.STORE, WORD
            yield self.task_heap + (t_desc + 1) * WORD, RequestType.STORE, WORD
            emitted += 2
            if emitted >= ops:
                return
            # Work-stealing deque probes scan other threads' deques.
            for _ in range(12):
                p_ = int(rng.integers(0, heap_words))
                yield self.task_heap + p_ * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Push a board copy: sequential stores of `board` words.
            base = (depth * self.board) % (words - self.board)
            for i in range(self.board):
                yield stack + (base + i) * WORD, RequestType.STORE, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Probe occupancy: sequential loads over the same rows.
            for i in range(self.board):
                yield stack + (base + i) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Task retirement touches its descriptor again.
            yield self.task_heap + t_desc * WORD, RequestType.LOAD, WORD
            emitted += 1
            if rng.random() < 0.5 and depth < 12:
                depth += 1
            elif depth > 0:
                depth -= 1
            else:
                # Completed a subtree: bump the shared result counter.
                yield self.results + (tid % 64) * WORD, RequestType.STORE, WORD
                emitted += 1


class SparseLU(Workload):
    """Blocked sparse LU factorisation (BOTS `sparselu`)."""

    name = "SPARSELU"
    suite = "bots"
    profile = ExecutionProfile("SPARSELU", ipc=3.60, rpi=0.47, mem_access_rate=0.82)

    def __init__(
        self, scale: int = 1, seed: int = 2019, blocks: int = 16, block_dim: int = 32
    ) -> None:
        super().__init__(scale, seed)
        self.blocks = blocks * scale
        self.block_dim = block_dim
        self.block_words = block_dim * block_dim
        layout = MemoryLayout()
        nblocks = self.blocks * self.blocks
        self.matrix = layout.alloc("matrix", nblocks * self.block_words * WORD)
        self.layout = layout
        # ~40 % of blocks are non-empty (sparse block structure).
        rng = np.random.default_rng(seed)
        self.present = rng.random(nblocks) < 0.4

    def _block_base(self, bi: int, bj: int) -> int:
        idx = bi * self.blocks + bj
        return self.matrix + idx * self.block_words * WORD

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        emitted = 0
        k = 0
        nblocks = self.blocks * self.blocks
        while emitted < ops:
            # bmod task: A[i][j] -= L[i][k] * U[k][j] over dense tiles.
            bi = int(rng.integers(0, self.blocks))
            bj = (tid + k) % self.blocks
            k += 1
            # Sparse block-header probes: pointer chasing across the block
            # matrix (headers sit 8 KB apart, one row each).
            for probe in range(7):
                p = int(rng.integers(0, nblocks))
                yield self.matrix + p * self.block_words * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            if not self.present[bi * self.blocks + bj]:
                continue
            l_base = self._block_base(bi, k % self.blocks)
            u_base = self._block_base(k % self.blocks, bj)
            a_base = self._block_base(bi, bj)
            # SPM-prefetch one tile row from L and U, write back to A:
            # three unit-stride 256 B block transfers per task step.
            row = int(rng.integers(0, self.block_dim))
            off = row * self.block_dim * WORD
            nbytes = self.block_dim * WORD
            for op in self.spm_prefetch(l_base, off, nbytes):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_prefetch(u_base, off, nbytes):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_writeback(a_base, off, nbytes):
                yield op
                emitted += 1
                if emitted >= ops:
                    return


class BotsSort(Workload):
    """Parallel mergesort (BOTS `sort`)."""

    name = "SORT"
    suite = "bots"
    profile = ExecutionProfile("SORT", ipc=3.15, rpi=0.50, mem_access_rate=0.80)

    def __init__(self, scale: int = 1, seed: int = 2019, elements: int = 1 << 18) -> None:
        super().__init__(scale, seed)
        self.elements = elements * scale
        layout = MemoryLayout()
        self.src = layout.alloc("src", self.elements * WORD)
        self.tmp = layout.alloc("tmp", self.elements * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        chunk = self.elements // threads
        lo = tid * chunk
        heap_words = (1 << 20) // WORD
        emitted = 0
        a, b, out = 0, chunk // 2, 0
        while emitted < ops:
            # Task spawn/retire bookkeeping in the scattered runtime heap,
            # plus the binary-search splitter probes of pmerge.
            for _ in range(12):
                p = int(rng.integers(0, heap_words))
                yield self.tmp + p * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Merge step: two sequential read streams + one write stream,
            # consuming and producing one SPM block per stream per round.
            for op in self.spm_prefetch(self.src, (lo + a % max(chunk, 1)) * WORD, 128):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_prefetch(self.src, (lo + b % max(chunk, 1)) * WORD, 128):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            for op in self.spm_writeback(self.tmp, (lo + out % max(chunk, 1)) * WORD, 256):
                yield op
                emitted += 1
                if emitted >= ops:
                    return
            a += 16
            b += 16
            out += 32
