"""Grappolo — parallel Louvain community detection (PNNL).

The Louvain method's hot loop iterates the vertices of a community-
clustered graph: for each vertex it streams the CSR neighbour list and
looks up each neighbour's community id and community weight.  Because
vertices of the same community are relabelled to be contiguous as the
algorithm converges, those gathers concentrate on a small set of hot
rows — the high row locality behind Grappolo's >60 % coalescing
efficiency in Figs. 10/17.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.request import RequestType
from repro.trace.stats import ExecutionProfile

from .base import MemoryLayout, Op, WORD, Workload
from .graphs import CSRGraph, edges_to_csr


def _community_graph(
    n: int, communities: int, degree: int, intra_prob: float, seed: int
) -> CSRGraph:
    """Random graph with planted community structure.

    With probability ``intra_prob`` an edge stays inside its source's
    community (contiguous vertex ranges), otherwise it goes anywhere.
    Converged Louvain phases see >90 % intra-community edges.
    """
    rng = np.random.default_rng(seed)
    m = n * degree
    src = rng.integers(0, n, size=m, dtype=np.int64)
    csize = n // communities
    comm = src // max(csize, 1)
    intra = rng.random(m) < intra_prob
    local = comm * csize + rng.integers(0, max(csize, 1), size=m)
    anywhere = rng.integers(0, n, size=m, dtype=np.int64)
    dst = np.where(intra, np.minimum(local, n - 1), anywhere)
    return edges_to_csr(np.stack([src, dst], axis=1), n)


class Grappolo(Workload):
    """Louvain modularity-optimization sweep."""

    name = "GRAPPOLO"
    suite = "graph"
    profile = ExecutionProfile("GRAPPOLO", ipc=2.70, rpi=0.44, mem_access_rate=0.86)

    def __init__(
        self,
        scale: int = 1,
        seed: int = 2019,
        vertices: int = 1 << 14,
        communities: int = 256,
    ) -> None:
        super().__init__(scale, seed)
        n = vertices * scale
        self.communities = communities
        self.graph = _community_graph(
            n, communities, degree=12, intra_prob=0.93, seed=seed
        )
        layout = MemoryLayout()
        self.row_ptr = layout.alloc("row_ptr", (n + 1) * WORD)
        self.neighbors = layout.alloc("neighbors", self.graph.num_edges * WORD)
        self.comm_id = layout.alloc("comm_id", n * WORD)
        self.comm_weight = layout.alloc("comm_weight", communities * WORD)
        self.vertex_weight = layout.alloc("vertex_weight", n * WORD)
        self.layout = layout

    def thread_stream(
        self, tid: int, threads: int, ops: int, rng: np.random.Generator
    ) -> Iterator[Op]:
        g = self.graph
        n = g.num_vertices
        chunk = n // threads
        start = tid * chunk
        emitted = 0
        i = 0
        while emitted < ops:
            v = start + (i % max(chunk, 1))
            i += 1
            yield self.row_ptr + v * WORD, RequestType.LOAD, WORD
            yield self.vertex_weight + v * WORD, RequestType.LOAD, WORD
            emitted += 2
            nbrs = g.neighbors_of(v)
            ptr = int(g.row_ptr[v])
            deg = len(nbrs)
            if deg:
                # Neighbour run is contiguous: SPM block prefetch.
                for op in self.spm_prefetch(self.neighbors, ptr * WORD, deg * WORD):
                    yield op
                    emitted += 1
                    if emitted >= ops:
                        return
            for w in nbrs:
                # Community-id gathers: 85 % of neighbours are inside v's
                # own community, a contiguous vertex range spanning only a
                # handful of rows — the clustered locality Louvain builds.
                yield self.comm_id + int(w) * WORD, RequestType.LOAD, WORD
                emitted += 1
                if emitted >= ops:
                    return
            # Candidate-community weight table is tiny (64 entries): hot rows.
            c = int(rng.integers(0, self.communities))
            yield self.comm_weight + c * WORD, RequestType.LOAD, WORD
            yield self.comm_id + v * WORD, RequestType.STORE, WORD
            emitted += 2
