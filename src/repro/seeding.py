"""Single-knob seeding for reproducible runs.

Every stochastic component of the reproduction — workload generators
(numpy RNGs), ISA kernel input builders (``random.Random``) and the
fault injector — accepts a seed.  This module gives them one shared
default and a deterministic way to derive independent per-component
streams from a single root seed, so ``repro --seed N ...`` reproduces a
whole run (trace + faults) end to end.
"""

from __future__ import annotations

import zlib
from typing import Union

#: Root seed used across the package (the paper's publication year).
DEFAULT_SEED = 2019


def derive_seed(root: int, *parts: Union[int, str]) -> int:
    """Derive a stable sub-seed from a root seed and a component path.

    ``derive_seed(seed, "faults")`` and ``derive_seed(seed, "workload",
    tid)`` give independent, reproducible streams without the components
    sharing (and racing on) one RNG.  Stable across processes and Python
    versions (CRC-based, not ``hash``-based).
    """
    blob = ":".join([str(root), *map(str, parts)]).encode()
    return zlib.crc32(blob) & 0x7FFFFFFF
