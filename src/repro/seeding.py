"""Single-knob seeding for reproducible runs.

Every stochastic component of the reproduction — workload generators
(numpy RNGs), ISA kernel input builders (``random.Random``) and the
fault injector — accepts a seed.  This module gives them one shared
default and a deterministic way to derive independent per-component
streams from a single root seed, so ``repro --seed N ...`` reproduces a
whole run (trace + faults) end to end.
"""

from __future__ import annotations

import zlib
from typing import Tuple, Union

#: Root seed used across the package (the paper's publication year).
DEFAULT_SEED = 2019


def derive_seed(root: int, *parts: Union[int, str]) -> int:
    """Derive a stable sub-seed from a root seed and a component path.

    ``derive_seed(seed, "faults")`` and ``derive_seed(seed, "workload",
    tid)`` give independent, reproducible streams without the components
    sharing (and racing on) one RNG.  Stable across processes and Python
    versions (CRC-based, not ``hash``-based).
    """
    blob = ":".join([str(root), *map(str, parts)]).encode()
    return zlib.crc32(blob) & 0x7FFFFFFF


def derive_seeds(root: int, count: int, *parts: Union[int, str]) -> Tuple[int, ...]:
    """``count`` independent sub-seeds for a parallel fan-out.

    Seed *i* depends only on ``(root, parts, i)`` — never on which worker
    runs the task or in what order — so :mod:`repro.eval.parallel` runs
    that fan out stochastic tasks stay bit-identical to their serial
    equivalent (the determinism contract of ``run_tasks``).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return tuple(derive_seed(root, *parts, i) for i in range(count))
