"""Miss Status Holding Registers — the MHA the paper contrasts with.

Models the conventional miss-handling architecture of section 2.3: on a
(last-level) cache miss a new MSHR entry is allocated and the cache-line
request dispatched immediately; subsequent misses to the same line merge
into the pending entry until the fill returns.  The merge window is
therefore the *memory latency*, and the request size is always exactly
one cache line — the two structural limits (fixed 64 B, no adaptivity)
that motivate the MAC (section 2.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.request import MemoryRequest
from repro.obs.protocol import StatsMixin


@dataclass
class MSHREntry:
    """One outstanding line fill and the requests merged under it."""

    line: int
    dispatch_cycle: int
    fill_cycle: int
    requests: List[MemoryRequest] = field(default_factory=list)


@dataclass
class MSHRStats(StatsMixin):
    misses: int = 0
    allocations: int = 0
    merges: int = 0
    stalls: int = 0  # misses that found the MSHR file full

    @property
    def memory_requests(self) -> int:
        """Line fills actually dispatched to memory."""
        return self.allocations


class MSHRFile:
    """Fixed-size file of MSHRs in front of a memory with fixed latency."""

    def __init__(
        self,
        entries: int = 16,
        line_bytes: int = 64,
        fill_latency: int = 307,
    ) -> None:
        if entries < 1:
            raise ValueError("need at least one MSHR")
        self.entries = entries
        self.line_bytes = line_bytes
        self.fill_latency = fill_latency
        self._line_shift = line_bytes.bit_length() - 1
        self._pending: Dict[int, MSHREntry] = {}
        self.completed: List[MSHREntry] = []
        self.stats = MSHRStats()

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _retire(self, cycle: int) -> None:
        done = [line for line, e in self._pending.items() if e.fill_cycle <= cycle]
        for line in done:
            self.completed.append(self._pending.pop(line))

    def miss(self, request: MemoryRequest, cycle: int) -> bool:
        """Register a cache miss at ``cycle``.

        Returns False when the file is full (the processor must stall and
        retry); True when the miss was allocated or merged.
        """
        self._retire(cycle)
        self.stats.misses += 1
        line = self.line_of(request.addr)
        entry = self._pending.get(line)
        if entry is not None:
            entry.requests.append(request)
            self.stats.merges += 1
            return True
        if len(self._pending) >= self.entries:
            self.stats.stalls += 1
            self.stats.misses -= 1  # caller retries; do not double count
            return False
        self._pending[line] = MSHREntry(
            line=line,
            dispatch_cycle=cycle,
            fill_cycle=cycle + self.fill_latency,
            requests=[request],
        )
        self.stats.allocations += 1
        return True

    def drain(self) -> List[MSHREntry]:
        """Retire everything outstanding (end of run)."""
        self.completed.extend(self._pending.values())
        self._pending.clear()
        return self.completed

    @property
    def coalescing_efficiency(self) -> float:
        """Fraction of misses eliminated by MSHR merging (cf. Eq. 3)."""
        if self.stats.misses == 0:
            return 0.0
        return self.stats.merges / self.stats.misses
