"""Set-associative cache model for the motivation study (paper Fig. 1).

A tag-only LRU cache: no data is stored, so simulated datasets can reach
the paper's 32 GB sweep while the model allocates only the tag state of
the configured capacity.  An optional next-line prefetcher captures the
sequential-stream behaviour of conventional processors, which is what
keeps the miss rate of ``A[i] = B[i]`` near zero while random gathers
miss at 60 %+ (Fig. 1 right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..obs.protocol import StatsMixin


@dataclass
class CacheStats(StatsMixin):
    SNAPSHOT_DERIVED = ("miss_rate", "hit_rate")

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0


class SetAssociativeCache:
    """Tag-only set-associative LRU cache with optional next-line prefetch."""

    def __init__(
        self,
        capacity_bytes: int = 1 << 20,
        line_bytes: int = 64,
        ways: int = 8,
        prefetch_next_line: bool = False,
        name: str = "L1",
    ) -> None:
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if capacity_bytes % (line_bytes * ways):
            raise ValueError("capacity must divide evenly into sets")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = capacity_bytes // (line_bytes * ways)
        if self.sets & (self.sets - 1):
            raise ValueError("set count must be a power of two")
        self.prefetch_next_line = prefetch_next_line
        self.name = name
        self._line_shift = line_bytes.bit_length() - 1
        # Per-set LRU: dict preserves insertion order; tag -> True.
        self._tags: List[Dict[int, bool]] = [dict() for _ in range(self.sets)]
        # Lines brought in by the prefetcher but not yet demanded.
        self._prefetched: set = set()
        self.stats = CacheStats()

    # -- addressing -------------------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_of(self, line: int) -> int:
        return line & (self.sets - 1)

    # -- operations ---------------------------------------------------------------

    #: Streaming prefetches do not cross DRAM page boundaries (the
    #: physical mapping is unknown past a page), so a long unit-stride
    #: stream still takes one miss per page — the small residual miss
    #: rate of Fig. 1 (right)'s sequential curve.
    PAGE_BYTES = 4096

    def access(self, addr: int) -> bool:
        """Demand access; returns True on hit.  Handles fill + prefetch.

        The prefetcher is *tagged* next-line: a miss prefetches line+1,
        and a demand hit on a prefetched line keeps the stream running
        by prefetching one more — standard sequential tagged prefetching.
        """
        self.stats.accesses += 1
        line = self.line_of(addr)
        hit = self._touch(line)
        if hit:
            self.stats.hits += 1
            if line in self._prefetched:
                self._prefetched.discard(line)
                self.stats.prefetch_hits += 1
                if self.prefetch_next_line:
                    self._prefetch(line + 1)
        else:
            self.stats.misses += 1
            self._fill(line)
            if self.prefetch_next_line:
                self._prefetch(line + 1)
        return hit

    def _prefetch(self, line: int) -> None:
        lines_per_page = self.PAGE_BYTES // self.line_bytes
        if line % lines_per_page == 0:
            return  # stream stops at the page boundary
        if not self._present(line):
            self._fill(line)
            self._prefetched.add(line)
            self.stats.prefetch_issued += 1

    def contains(self, addr: int) -> bool:
        """Presence probe without state change."""
        return self._present(self.line_of(addr))

    def flush(self) -> None:
        for s in self._tags:
            s.clear()
        self._prefetched.clear()

    # -- internals --------------------------------------------------------------

    def _present(self, line: int) -> bool:
        return line in self._tags[self._set_of(line)]

    def _touch(self, line: int) -> bool:
        s = self._tags[self._set_of(line)]
        if line in s:
            s.pop(line)
            s[line] = True  # move to MRU
            return True
        return False

    def _fill(self, line: int) -> None:
        s = self._tags[self._set_of(line)]
        if line in s:
            s.pop(line)
        elif len(s) >= self.ways:
            victim, _ = next(iter(s.items()))
            s.pop(victim)
            self._prefetched.discard(victim)
            self.stats.evictions += 1
        s[line] = True
