"""Cache substrate for the motivation study and MSHR baseline (Fig. 1, section 2.3)."""

from .cache import CacheStats, SetAssociativeCache
from .hierarchy import CacheHierarchy, HierarchyStats
from .mshr import MSHREntry, MSHRFile, MSHRStats

__all__ = [
    "CacheHierarchy",
    "CacheStats",
    "HierarchyStats",
    "MSHREntry",
    "MSHRFile",
    "MSHRStats",
    "SetAssociativeCache",
]
