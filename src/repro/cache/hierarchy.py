"""Two-level cache hierarchy used for the Fig. 1 miss-rate analysis.

Models the conventional cache-based processor the paper contrasts with:
a private L1 per core and a shared LLC, both LRU; the L1 runs a
next-line prefetcher (sequential streams hit; random gathers do not).
The reported *miss rate* is the fraction of processor accesses that
reach main memory (miss in every level), matching Fig. 1's framing that
a miss "requires both accessing the main memory and handling the cache
miss itself".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.trace.record import TraceRecord
from repro.core.request import RequestType
from repro.obs.protocol import StatsMixin

from .cache import SetAssociativeCache


@dataclass
class HierarchyStats(StatsMixin):
    SNAPSHOT_DERIVED = ("miss_rate", "l1_miss_rate")

    accesses: int = 0
    l1_misses: int = 0
    llc_misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that reach main memory."""
        return self.llc_misses / self.accesses if self.accesses else 0.0

    @property
    def l1_miss_rate(self) -> float:
        return self.l1_misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """Private L1s + shared LLC for a multicore trace."""

    def __init__(
        self,
        cores: int = 8,
        l1_bytes: int = 32 << 10,
        llc_bytes: int = 8 << 20,
        line_bytes: int = 64,
        l1_ways: int = 8,
        llc_ways: int = 16,
        prefetch: bool = True,
    ) -> None:
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(
                l1_bytes, line_bytes, l1_ways, prefetch_next_line=prefetch, name=f"L1.{c}"
            )
            for c in range(cores)
        ]
        self.llc = SetAssociativeCache(
            llc_bytes, line_bytes, llc_ways, prefetch_next_line=False, name="LLC"
        )
        self.stats = HierarchyStats()

    def access(self, core: int, addr: int) -> bool:
        """One demand access; returns True when served by some cache level."""
        self.stats.accesses += 1
        l1 = self.l1s[core % len(self.l1s)]
        if l1.access(addr):
            return True
        self.stats.l1_misses += 1
        if self.llc.access(addr):
            return True
        self.stats.llc_misses += 1
        return False

    def run_trace(self, records: Iterable[TraceRecord]) -> HierarchyStats:
        """Replay every load/store of a trace through the hierarchy."""
        for rec in records:
            if rec.op in (RequestType.LOAD, RequestType.STORE):
                self.access(rec.core, rec.addr)
        return self.stats
