"""repro — reproduction of "MAC: Memory Access Coalescer for 3D-Stacked
Memory" (Wang et al., ICPP 2019).

Subpackages:

* :mod:`repro.core`      — the MAC itself (ARQ, FLIT map/table, builder,
  routers) plus the fast window engine.
* :mod:`repro.hmc`       — cycle-level Hybrid Memory Cube device model
  (the HMCSim-3.0 stand-in).
* :mod:`repro.node`      — cache-less multicore node and NUMA system.
* :mod:`repro.trace`     — memory tracing, analysis, execution stats.
* :mod:`repro.workloads` — the 12-benchmark synthetic evaluation suite.
* :mod:`repro.cache`     — cache hierarchy + MSHR substrate (Fig. 1,
  section 2.3).
* :mod:`repro.baselines` — comparator dispatch policies.
* :mod:`repro.eval`      — metrics, area model and per-figure drivers.

Quickstart::

    from repro import MAC, MACConfig, MemoryRequest, RequestType

    mac = MAC(MACConfig())
    mac.submit(MemoryRequest(addr=0x1000, rtype=RequestType.LOAD))
    packets = mac.run()
"""

from .core import (
    MAC,
    AddressCodec,
    CoalescedRequest,
    CoalescedResponse,
    FlitMap,
    FlitTable,
    FlitTablePolicy,
    MACConfig,
    MACStats,
    MemoryRequest,
    RequestType,
    SystemConfig,
    Target,
    coalesce_trace_fast,
)
from .hmc import HMCConfig, HMCDevice, HMCTiming
from .node import Node, NUMASystem, ScratchpadMemory

__version__ = "1.0.0"

__all__ = [
    "AddressCodec",
    "CoalescedRequest",
    "CoalescedResponse",
    "FlitMap",
    "FlitTable",
    "FlitTablePolicy",
    "HMCConfig",
    "HMCDevice",
    "HMCTiming",
    "MAC",
    "MACConfig",
    "MACStats",
    "MemoryRequest",
    "NUMASystem",
    "Node",
    "RequestType",
    "ScratchpadMemory",
    "SystemConfig",
    "Target",
    "coalesce_trace_fast",
    "__version__",
]
