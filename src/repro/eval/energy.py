"""Energy model for the memory path (paper section 2.2.1's motivation).

The paper motivates the HMC's short rows and closed-page policy with
power ("always leaving the DRAM's rows open would lead to high power
consumption"); coalescing compounds the saving by cutting both the
per-access control traffic on the SerDes links and the number of row
activations.  This model prices a packet stream with published
per-operation energies:

* HMC SerDes link transfer: ~13.7 pJ/bit end to end (Jeddeloh & Keeth,
  the paper's [24], report 10.48 pJ/bit for the cube; add host PHY);
* DRAM row activation: ~0.9 nJ for a 256 B row (activation energy
  scales with row length — the overfetch argument for short rows);
* column read/write: ~4 pJ/bit of payload moved inside the stack.

Values are configurable; the *ratios* between policies are the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.packet import CONTROL_BYTES_PER_ACCESS, CoalescedRequest


@dataclass(frozen=True, slots=True)
class EnergyParams:
    """Per-operation energies (picojoules)."""

    link_pj_per_bit: float = 13.7
    activation_pj_per_row: float = 900.0
    column_pj_per_bit: float = 4.0
    #: Static row energy if rows were held open (open-page comparison).
    open_row_pj_per_cycle: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "link_pj_per_bit",
            "activation_pj_per_row",
            "column_pj_per_bit",
            "open_row_pj_per_cycle",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Energy breakdown of one packet stream (picojoules)."""

    link_pj: float
    activation_pj: float
    column_pj: float
    packets: int

    @property
    def total_pj(self) -> float:
        return self.link_pj + self.activation_pj + self.column_pj

    @property
    def pj_per_packet(self) -> float:
        return self.total_pj / self.packets if self.packets else 0.0


def stream_energy(
    packets: Sequence[CoalescedRequest],
    params: EnergyParams | None = None,
    activations_per_packet: float = 1.0,
) -> EnergyReport:
    """Price a packet stream on the HMC path.

    Each packet moves ``size + 32`` control bytes over the links, opens
    (activates) its row ``activations_per_packet`` times (1 under
    closed-page with one-row packets), and reads/writes ``size`` bytes
    through the column path.
    """
    p = params or EnergyParams()
    link_bits = 8 * sum(pkt.size + CONTROL_BYTES_PER_ACCESS for pkt in packets)
    column_bits = 8 * sum(pkt.size for pkt in packets)
    activations = activations_per_packet * len(packets)
    return EnergyReport(
        link_pj=link_bits * p.link_pj_per_bit,
        activation_pj=activations * p.activation_pj_per_row,
        column_pj=column_bits * p.column_pj_per_bit,
        packets=len(packets),
    )


def energy_saving(
    raw_packets: Sequence[CoalescedRequest],
    coalesced_packets: Sequence[CoalescedRequest],
    params: EnergyParams | None = None,
) -> float:
    """Fraction of memory-path energy saved by coalescing."""
    raw = stream_energy(raw_packets, params).total_pj
    mac = stream_energy(coalesced_packets, params).total_pj
    if raw <= 0:
        return 0.0
    return 1.0 - mac / raw
