"""Open- vs closed-page policy study (paper section 2.2.1).

The paper justifies the HMC's closed-page operation with two arguments:
short (256 B) rows make row-buffer hits rare, and keeping 512 banks'
rows open burns power.  This module quantifies the first argument: it
maps a raw request stream onto open-page banks at different row lengths
and measures the achievable row-buffer hit rate — high for DDR's 8 KB
rows on semi-regular traffic, collapsing at the HMC's 256 B.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.packet import CoalescedRequest
from repro.ddr.bank import DDRBank
from repro.ddr.timing import DDRTiming


def open_page_hit_rate(
    packets: Sequence[CoalescedRequest],
    row_bytes: int,
    banks: int = 512,
    cycles_per_packet: float = 1.0,
) -> float:
    """Row-buffer hit rate of a packet stream under open-page banks.

    Banks are row-interleaved at ``row_bytes`` granularity, matching
    how an open-page controller would map the same physical addresses.
    """
    if row_bytes & (row_bytes - 1):
        raise ValueError("row size must be a power of two")
    if banks & (banks - 1):
        raise ValueError("bank count must be a power of two")
    timing = DDRTiming()
    bank_objs: List[DDRBank] = [DDRBank(timing) for _ in range(banks)]
    shift = row_bytes.bit_length() - 1
    t = 0.0
    for pkt in packets:
        row = pkt.addr >> shift
        bank = bank_objs[row & (banks - 1)]
        bank.access(int(t), row >> (banks - 1).bit_length())
        t += cycles_per_packet
    hits = sum(b.hits for b in bank_objs)
    total = sum(b.accesses for b in bank_objs)
    return hits / total if total else 0.0


def row_length_study(
    packets: Sequence[CoalescedRequest],
    row_lengths: Sequence[int] = (256, 1024, 8192),
) -> Dict[int, float]:
    """Hit rate per row length for one stream (section 2.2.1's table)."""
    return {n: open_page_hit_rate(packets, n) for n in row_lengths}
