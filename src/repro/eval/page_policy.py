"""Open- vs closed-page policy study (paper section 2.2.1).

The paper justifies the HMC's closed-page operation with two arguments:
short (256 B) rows make row-buffer hits rare, and keeping 512 banks'
rows open burns power.  This module quantifies the first argument: it
maps a raw request stream onto open-page banks at different row lengths
and measures the achievable row-buffer hit rate — high for DDR's 8 KB
rows on semi-regular traffic, collapsing at the HMC's 256 B.

The banks here are the *live* :class:`repro.hmc.bank.Bank` model in its
``open`` page policy — the same row-buffer state machine the device
simulates when ``HMCConfig.page_policy="open"`` — and the address →
(bank, row) mapping is the shared :func:`repro.hmc.bank.open_page_map`
helper, so the offline study and the in-simulator policy can never
drift apart.  (Earlier versions replayed onto an offline DDR bank
replica with its own copy of the shift arithmetic.)
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.packet import CoalescedRequest
from repro.hmc.bank import Bank, open_page_map
from repro.hmc.timing import HMCTiming


def open_page_hit_rate(
    packets: Sequence[CoalescedRequest],
    row_bytes: int,
    banks: int = 512,
    cycles_per_packet: float = 1.0,
) -> float:
    """Row-buffer hit rate of a packet stream under open-page banks.

    Banks are row-interleaved at ``row_bytes`` granularity, matching
    how an open-page controller would map the same physical addresses.
    """
    if row_bytes & (row_bytes - 1):
        raise ValueError("row size must be a power of two")
    if banks & (banks - 1):
        raise ValueError("bank count must be a power of two")
    timing = HMCTiming()
    bank_objs: List[Bank] = [
        Bank(timing, policy="open") for _ in range(banks)
    ]
    t = 0.0
    for pkt in packets:
        bank_idx, row = open_page_map(pkt.addr, row_bytes, banks)
        # Arrival at the stream cadence; a busy bank simply serializes
        # (the row-buffer outcome is what this study measures).
        bank_objs[bank_idx].access(int(t), row, 1)
        t += cycles_per_packet
    hits = sum(b.row_hits for b in bank_objs)
    total = sum(b.accesses for b in bank_objs)
    return hits / total if total else 0.0


def row_length_study(
    packets: Sequence[CoalescedRequest],
    row_lengths: Sequence[int] = (256, 1024, 8192),
) -> Dict[int, float]:
    """Hit rate per row length for one stream (section 2.2.1's table)."""
    return {n: open_page_hit_rate(packets, n) for n in row_lengths}
