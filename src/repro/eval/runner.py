"""Shared experiment machinery: trace generation, dispatch, device replay.

Each figure driver in :mod:`repro.eval.experiments` composes three steps:
generate the benchmark trace (cached per process), dispatch it through a
coalescing policy (MAC window engine, MAC cycle engine, or a baseline),
and optionally replay the packet stream through a fresh HMC device with
realistic pacing (raw requests at the ARQ's 1-accept/cycle rate, MAC
packets at the builder's 0.5/cycle issue rate, section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.direct import dispatch_raw
from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import MAC, coalesce_trace_fast
from repro.core.packet import CoalescedRequest
from repro.core.stats import MACStats
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.trace.record import TraceRecord, to_requests
from repro.workloads.registry import make

#: Default trace sizing for the figure benches: large enough for steady
#: state, small enough for second-scale pure-Python runs.
DEFAULT_THREADS = 8
DEFAULT_OPS_PER_THREAD = 3000


@lru_cache(maxsize=128)
def cached_trace(
    name: str,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    seed: int = 2019,
) -> Tuple[TraceRecord, ...]:
    """Deterministic benchmark trace, cached per process."""
    wl = make(name, seed=seed)
    return tuple(wl.generate(threads=threads, ops_per_thread=ops_per_thread))


@dataclass
class DispatchResult:
    """Packets + MAC-side stats of one dispatch policy over one trace."""

    name: str
    policy: str
    packets: List[CoalescedRequest]
    stats: MACStats


def dispatch(
    name: str,
    policy: str = "mac",
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    config: Optional[MACConfig] = None,
    seed: int = 2019,
    flit_policy: FlitTablePolicy = FlitTablePolicy.SPAN,
) -> DispatchResult:
    """Run one benchmark trace through a dispatch policy.

    policy: "mac" (window engine), "mac-cycle" (cycle engine), "raw"
    (direct 16 B dispatch).
    """
    trace = cached_trace(name, threads, ops_per_thread, seed)
    requests = list(to_requests(trace))
    stats = MACStats()
    if policy == "mac":
        packets = coalesce_trace_fast(requests, config, flit_policy, stats)
    elif policy == "mac-cycle":
        mac = MAC(config, policy=flit_policy)
        mac.stats = stats
        mac.aggregator.stats = stats
        packets = mac.process(requests)
    elif policy == "raw":
        packets = dispatch_raw(requests, config, stats)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return DispatchResult(name, policy, packets, stats)


@dataclass
class ReplayResult:
    """Device-side outcome of replaying one packet stream."""

    makespan: int
    mean_latency: float
    bank_conflicts: int
    activations: int
    wire_bytes: int
    device: HMCDevice


def replay_on_device(
    packets: Sequence[CoalescedRequest],
    cycles_per_packet: float = 0.0,
    hmc: Optional[HMCConfig] = None,
) -> ReplayResult:
    """Feed packets into a fresh device at the MAC's issue cadence.

    With ``cycles_per_packet`` = 0 (default) the MAC's fixed issue rate
    applies: one packet every ``pop_interval`` = 2 cycles (section 4.4).
    A positive value forces another cadence (1.0 models raw dispatch at
    the interface's 1-request/cycle accept rate).

    Note the structural consequence, visible on low-coalescing traces
    (e.g. IS): a MAC that eliminates fewer than half the raw requests
    emits for longer than raw dispatch would, because its issue port
    runs at half the accept rate — see EXPERIMENTS.md (Fig. 17 notes).
    """
    if cycles_per_packet < 0:
        raise ValueError("cadence must be non-negative")
    dev = HMCDevice(hmc)
    t = 0.0
    for pkt in packets:
        dev.submit(pkt, int(t))
        t += cycles_per_packet if cycles_per_packet > 0 else 2.0
    st = dev.stats
    return ReplayResult(
        makespan=st.makespan,
        mean_latency=st.mean_latency,
        bank_conflicts=dev.bank_conflicts,
        activations=dev.activations,
        wire_bytes=st.wire_bytes,
        device=dev,
    )


def compare_policies(
    name: str,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    config: Optional[MACConfig] = None,
    seed: int = 2019,
) -> Dict[str, ReplayResult]:
    """Raw vs MAC replay of one benchmark on identical devices."""
    raw = dispatch(name, "raw", threads, ops_per_thread, config, seed)
    mac = dispatch(name, "mac", threads, ops_per_thread, config, seed)
    return {
        "raw": replay_on_device(raw.packets, cycles_per_packet=1.0),
        "mac": replay_on_device(mac.packets),
    }
