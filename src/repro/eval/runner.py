"""Shared experiment machinery: trace generation, dispatch, device replay.

Each figure driver in :mod:`repro.eval.experiments` composes three steps:
generate the benchmark trace (cached per process), dispatch it through a
coalescing policy (MAC window engine, MAC cycle engine, or a baseline),
and optionally replay the packet stream through a fresh HMC device with
realistic pacing (raw requests at the ARQ's 1-accept/cycle rate, MAC
packets at the builder's 0.5/cycle issue rate, section 4.4).
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.baselines.direct import dispatch_raw
from repro.core.config import MACConfig
from repro.core.flit_table import FlitTablePolicy
from repro.core.mac import MAC, coalesce_trace_fast
from repro.core.packet import CoalescedRequest
from repro.core.stats import MACStats
from repro.hmc.config import HMCConfig
from repro.hmc.device import HMCDevice
from repro.obs.attribution import NULL_ATTRIBUTION, AttributionCollector
from repro.obs.metrics import flatten
from repro.obs.profiler import NULL_PROFILER
from repro.obs.timeline import NULL_TIMELINE
from repro.obs.tracer import NULL_TRACER
from repro.seeding import DEFAULT_SEED
from repro.trace.record import TraceRecord, to_requests
from repro.workloads.registry import make

#: Default trace sizing for the figure benches: large enough for steady
#: state, small enough for second-scale pure-Python runs.
DEFAULT_THREADS = 8
DEFAULT_OPS_PER_THREAD = 3000

#: Default number of traces kept warm per process.  Full traces are the
#: largest objects the eval layer holds on to, so the cap is deliberately
#: small; raise it with :func:`set_trace_cache_limit` for wide sweeps over
#: many (workload, sizing) combinations.
DEFAULT_TRACE_CACHE_LIMIT = 32


class TraceCache:
    """Explicit, clearable LRU cache for generated benchmark traces.

    Unlike the previous ``functools.lru_cache`` wrapper this cache can be
    emptied mid-session (long sweep sessions no longer pin dozens of full
    traces for the process lifetime), resized, and warmed up front — each
    pool worker in :mod:`repro.eval.parallel` carries its own instance
    (inherited warm through ``fork`` or primed by the pool initializer),
    so a trace is generated at most once per worker.
    """

    def __init__(self, maxsize: int = DEFAULT_TRACE_CACHE_LIMIT):
        if maxsize < 1:
            raise ValueError("trace cache needs room for at least one trace")
        self.maxsize = maxsize
        self._data: "OrderedDict[Tuple, Tuple[TraceRecord, ...]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(
        self, key: Tuple, factory: Callable[[], Tuple[TraceRecord, ...]]
    ) -> Tuple[TraceRecord, ...]:
        """Return the cached value for ``key``, generating it on a miss."""
        hit = self._data.get(key)
        if hit is not None:
            self.hits += 1
            self._data.move_to_end(key)
            return hit
        self.misses += 1
        value = factory()
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Change the capacity, evicting oldest entries if shrinking."""
        if maxsize < 1:
            raise ValueError("trace cache needs room for at least one trace")
        self.maxsize = maxsize
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def info(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }

    def save(self, path: Union[str, Path]) -> int:
        """Persist the cached traces to ``path`` (atomic pickle).

        The write goes through :func:`repro.ioutil.atomic_open`, so a
        crash mid-save leaves any previous snapshot intact.  Returns the
        number of traces written.
        """
        from repro.ioutil import atomic_open

        with atomic_open(path, "wb") as fh:
            pickle.dump({"version": 1, "traces": dict(self._data)}, fh)
        return len(self._data)

    def load(self, path: Union[str, Path]) -> int:
        """Merge a :meth:`save` snapshot into this cache (LRU order kept).

        Entries beyond ``maxsize`` are evicted oldest-first as usual.
        Returns the number of traces loaded.  Raises ``ValueError`` on a
        snapshot this version cannot read.
        """
        with open(path, "rb") as fh:
            doc = pickle.load(fh)
        if not isinstance(doc, dict) or doc.get("version") != 1:
            raise ValueError(f"unrecognized trace-cache snapshot: {path}")
        traces = doc["traces"]
        for key, value in traces.items():
            self._data[key] = value
            self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
        return len(traces)


#: Per-process trace cache (per *worker* under the parallel engine).
_TRACE_CACHE = TraceCache()


def cached_trace(
    name: str,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    seed: int = DEFAULT_SEED,
) -> Tuple[TraceRecord, ...]:
    """Deterministic benchmark trace, cached per process."""
    key = (name, threads, ops_per_thread, seed)
    return _TRACE_CACHE.get(
        key,
        lambda: tuple(
            make(name, seed=seed).generate(
                threads=threads, ops_per_thread=ops_per_thread
            )
        ),
    )


def clear_trace_cache() -> None:
    """Drop every cached trace (long sweep sessions reclaim memory)."""
    _TRACE_CACHE.clear()


def set_trace_cache_limit(maxsize: int) -> None:
    """Cap how many full traces stay warm in this process."""
    _TRACE_CACHE.resize(maxsize)


def trace_cache_info() -> Dict[str, int]:
    """Occupancy and hit/miss counters of the per-process trace cache."""
    return _TRACE_CACHE.info()


def warm_trace_cache(specs: Iterable[Tuple[str, int, int, int]]) -> None:
    """Pre-generate ``(name, threads, ops_per_thread, seed)`` traces.

    Used as the pool-worker initializer by :mod:`repro.eval.parallel`;
    already-cached specs (e.g. inherited from the parent via fork) cost
    nothing.
    """
    for name, threads, ops_per_thread, seed in specs:
        cached_trace(name, threads, ops_per_thread, seed)


@dataclass
class DispatchResult:
    """Packets + MAC-side stats of one dispatch policy over one trace."""

    name: str
    policy: str
    packets: List[CoalescedRequest]
    stats: MACStats

    def metrics(self) -> Dict[str, object]:
        """Flat ``mac.*`` metrics view of the dispatch stats."""
        return flatten(self.stats.snapshot(), "mac.")


def dispatch(
    name: str,
    policy: str = "mac",
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    config: Optional[MACConfig] = None,
    seed: int = DEFAULT_SEED,
    flit_policy: FlitTablePolicy = FlitTablePolicy.SPAN,
    tracer=NULL_TRACER,
    attrib=NULL_ATTRIBUTION,
    engine=None,
    timeline=NULL_TIMELINE,
    profiler=NULL_PROFILER,
) -> DispatchResult:
    """Run one benchmark trace through a dispatch policy.

    policy: "mac" (window engine), "mac-cycle" (cycle engine), "raw"
    (direct 16 B dispatch).  ``tracer`` records cycle-stamped ARQ/builder
    events for the cycle engine (the window and raw engines are not
    clocked, so they emit nothing); ``attrib`` likewise collects stage
    stamps and stall causes from the cycle engine only; ``timeline`` and
    ``profiler`` sample/time the cycle engine's run.  ``engine`` selects
    the simulation engine for the cycle policy (see :mod:`repro.sim`);
    the other policies are not clocked and ignore it.
    """
    trace = cached_trace(name, threads, ops_per_thread, seed)
    requests = list(to_requests(trace))
    stats = MACStats()
    if policy == "mac":
        packets = coalesce_trace_fast(requests, config, flit_policy, stats)
    elif policy == "mac-cycle":
        mac = MAC(
            config, policy=flit_policy, tracer=tracer, attrib=attrib,
            timeline=timeline,
        )
        mac.profiler = profiler
        mac.attach_stats(stats)
        packets = mac.process(requests, engine=engine)
    elif policy == "raw":
        packets = dispatch_raw(requests, config, stats)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return DispatchResult(name, policy, packets, stats)


@dataclass
class ReplayResult:
    """Device-side outcome of replaying one packet stream."""

    makespan: int
    mean_latency: float
    bank_conflicts: int
    activations: int
    wire_bytes: int
    device: HMCDevice

    def metrics(self) -> Dict[str, object]:
        """Flat namespaced metrics view of the replayed device."""
        return self.device.metrics()


def replay_on_device(
    packets: Sequence[CoalescedRequest],
    cycles_per_packet: float = 0.0,
    hmc: Optional[HMCConfig] = None,
    tracer=NULL_TRACER,
    attrib=NULL_ATTRIBUTION,
    use_issue_cycles: bool = False,
) -> ReplayResult:
    """Feed packets into a fresh device at the MAC's issue cadence.

    With ``cycles_per_packet`` = 0 (default) the MAC's fixed issue rate
    applies: one packet every ``pop_interval`` = 2 cycles (section 4.4).
    A positive value forces another cadence (1.0 models raw dispatch at
    the interface's 1-request/cycle accept rate).  With
    ``use_issue_cycles`` packets instead arrive at their own
    ``issue_cycle`` stamps — the attribution path needs this so the
    device clock matches the MAC clock that stamped the ``dispatch``
    mark and the per-stage deltas stay non-negative.  When ``attrib``
    is enabled each packet's raw requests are finalized after service,
    so open-loop runs aggregate submit->complete breakdowns.

    Note the structural consequence, visible on low-coalescing traces
    (e.g. IS): a MAC that eliminates fewer than half the raw requests
    emits for longer than raw dispatch would, because its issue port
    runs at half the accept rate — see EXPERIMENTS.md (Fig. 17 notes).
    """
    if cycles_per_packet < 0:
        raise ValueError("cadence must be non-negative")
    dev = HMCDevice(hmc, tracer=tracer, attrib=attrib)
    t = 0.0
    for pkt in packets:
        if use_issue_cycles:
            t = max(t, float(pkt.issue_cycle))
        dev.submit(pkt, int(t))
        if attrib.enabled:
            for raw in pkt.requests:
                attrib.finalize(raw)
        if not use_issue_cycles:
            t += cycles_per_packet if cycles_per_packet > 0 else 2.0
    st = dev.stats
    return ReplayResult(
        makespan=st.makespan,
        mean_latency=st.mean_latency,
        bank_conflicts=dev.bank_conflicts,
        activations=dev.activations,
        wire_bytes=st.wire_bytes,
        device=dev,
    )


def compare_policies(
    name: str,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    config: Optional[MACConfig] = None,
    seed: int = DEFAULT_SEED,
) -> Dict[str, ReplayResult]:
    """Raw vs MAC replay of one benchmark on identical devices."""
    raw = dispatch(name, "raw", threads, ops_per_thread, config, seed)
    mac = dispatch(name, "mac", threads, ops_per_thread, config, seed)
    return {
        "raw": replay_on_device(raw.packets, cycles_per_packet=1.0),
        "mac": replay_on_device(mac.packets),
    }


def attributed_node_run(
    name: str,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    seed: int = DEFAULT_SEED,
    coalescing: bool = True,
    config: Optional[MACConfig] = None,
    hmc: Optional[HMCConfig] = None,
    attrib: Optional[AttributionCollector] = None,
    engine=None,
    timeline=NULL_TIMELINE,
    profiler=NULL_PROFILER,
):
    """Closed-loop node run of one benchmark with attribution enabled.

    Builds per-core request streams from the benchmark trace, runs the
    full Fig. 4 node (cores -> MAC -> device -> response delivery), and
    returns ``(attrib, node)``.  This is the richest attribution source:
    all nine boundary marks are crossed, so every stage of the breakdown
    is populated and the exactness invariant covers the complete path.
    With ``coalescing=False`` the node runs the paper's uncoalesced
    baseline (1-entry ARQ, everything 16 B) for A/B bottleneck diffs.
    """
    from repro.core.config import SystemConfig
    from repro.node.node import Node

    trace = cached_trace(name, threads, ops_per_thread, seed)
    per_core: Dict[int, List] = {}
    for req in to_requests(trace):
        per_core.setdefault(req.core, []).append(req)
    at = attrib if attrib is not None else AttributionCollector()
    node = Node(
        [iter(reqs) for _, reqs in sorted(per_core.items())],
        system=SystemConfig(mac=config) if config is not None else None,
        coalescing_enabled=coalescing,
        hmc_config=hmc,
        attrib=at,
        timeline=timeline,
    )
    node.profiler = profiler
    node.run(engine=engine)
    return at, node


def numa_streams(
    name: str,
    nodes: int,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    seed: int = DEFAULT_SEED,
) -> List[List]:
    """Per-node, per-core request streams of one benchmark for a mesh.

    Each node generates its own trace with a node-derived seed, so the
    mesh runs ``nodes`` independent instances of the workload over the
    shared interleaved address space — the paper's Fig. 4 setup scaled
    out.  Requests are stamped with their origin node so responses can
    find their way home.
    """
    from repro.seeding import derive_seed

    out: List[List] = []
    for n in range(nodes):
        trace = cached_trace(
            name, threads, ops_per_thread, derive_seed(seed, "node", n)
        )
        per_core: Dict[int, List] = {}
        for req in to_requests(trace, node=n):
            per_core.setdefault(req.core, []).append(req)
        out.append([iter(reqs) for _, reqs in sorted(per_core.items())])
    return out


def numa_closed_loop(
    name: str,
    nodes: int = 4,
    threads: int = DEFAULT_THREADS,
    ops_per_thread: int = DEFAULT_OPS_PER_THREAD,
    seed: int = DEFAULT_SEED,
    interconnect_latency: int = 120,
    interleave_bytes: int = 1 << 12,
    config: Optional[MACConfig] = None,
    hmc: Optional[HMCConfig] = None,
    shards: Optional[int] = None,
    engine=None,
    max_cycles: int = 50_000_000,
    tracer=NULL_TRACER,
    timeline=NULL_TIMELINE,
    profiler=NULL_PROFILER,
):
    """Closed-loop NUMA mesh run of one benchmark; returns the system.

    The multi-node sibling of :func:`attributed_node_run`: every node is
    a full Fig. 4 node, remote requests coalesce at their home node, and
    ``shards`` (or ``$REPRO_SIM_SHARDS``) selects the conservative-PDES
    backend — bit-identical to serial by contract.  ``tracer`` and
    ``timeline`` both shard: workers collect locally and the parent
    merges deterministically at the final barrier.
    """
    from repro.core.config import SystemConfig
    from repro.node.system import NUMASystem

    system = NUMASystem(
        numa_streams(name, nodes, threads, ops_per_thread, seed),
        system=SystemConfig(mac=config) if config is not None else None,
        interconnect_latency=interconnect_latency,
        interleave_bytes=interleave_bytes,
        hmc_config=hmc,
        tracer=tracer,
        timeline=timeline,
    )
    system.profiler = profiler
    system.run(max_cycles, engine=engine, shards=shards)
    return system
