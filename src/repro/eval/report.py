"""Plain-text table rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table (floats rendered to 4 significant places)."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    srows = [[cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    title: str,
    measured: Dict[str, float],
    paper: Optional[Dict[str, float]] = None,
    unit: str = "",
) -> str:
    """Per-benchmark measured (and paper, when known) values."""
    headers = ["benchmark", f"measured{(' ' + unit) if unit else ''}"]
    if paper:
        headers.append("paper")
    rows = []
    for k, v in measured.items():
        row: List[object] = [k, v]
        if paper:
            row.append(paper.get(k, "-"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def bar_chart(
    values: Dict[str, float],
    width: int = 50,
    fmt=None,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart (one labelled bar per key).

    Bars scale to the maximum value; ``fmt`` renders the value label
    (defaults to 4 significant digits).
    """
    if not values:
        return title or ""
    fmt = fmt or (lambda v: f"{v:.4g}")
    label_w = max(len(k) for k in values)
    peak = max(abs(v) for v in values.values()) or 1.0
    lines: List[str] = [title] if title else []
    for key, value in values.items():
        n = int(round(abs(value) / peak * width))
        bar = ("#" * n) if value >= 0 else ("-" * n)
        lines.append(f"{key.ljust(label_w)} |{bar.ljust(width)}| {fmt(value)}")
    return "\n".join(lines)


def pct(x: float) -> str:
    """0.5286 -> '52.86%'."""
    return f"{100 * x:.2f}%"


def human_bytes(n: float) -> str:
    """Binary-prefixed byte count."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.2f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.2f} TiB"
