"""Evaluation layer: metrics (Eqs. 1-3), area model, experiment drivers."""

from . import energy, experiments, metrics, serialize, sweeps
from .area import AreaReport, arq_bytes, builder_bytes, entry_capacity, mac_area
from .metrics import (
    HMC_REQUEST_SIZES,
    bandwidth_efficiency,
    bandwidth_saved,
    coalescing_efficiency,
    control_overhead_fraction,
    mean_bandwidth_efficiency,
    requests_per_cycle,
    size_histogram,
    speedup,
    wire_bytes,
)
from .report import format_comparison, format_table, human_bytes, pct
from .sweeps import SweepPoint, best_point, format_sweep, sweep_grid
from .runner import (
    DispatchResult,
    ReplayResult,
    cached_trace,
    compare_policies,
    dispatch,
    replay_on_device,
)

__all__ = [
    "AreaReport",
    "DispatchResult",
    "HMC_REQUEST_SIZES",
    "ReplayResult",
    "arq_bytes",
    "bandwidth_efficiency",
    "bandwidth_saved",
    "builder_bytes",
    "cached_trace",
    "coalescing_efficiency",
    "compare_policies",
    "control_overhead_fraction",
    "dispatch",
    "energy",
    "serialize",
    "sweep_grid",
    "sweeps",
    "SweepPoint",
    "best_point",
    "format_sweep",
    "entry_capacity",
    "experiments",
    "format_comparison",
    "format_table",
    "human_bytes",
    "mac_area",
    "mean_bandwidth_efficiency",
    "metrics",
    "pct",
    "replay_on_device",
    "requests_per_cycle",
    "size_histogram",
    "speedup",
    "wire_bytes",
]
