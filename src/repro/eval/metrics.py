"""Evaluation metrics — Equations 1-3 and the derived quantities.

Every number reported in section 5.3 derives from these definitions:

* :func:`bandwidth_efficiency` — Eq. 1 (Fig. 3, Fig. 13);
* :func:`coalescing_efficiency` — Eq. 3 under the reduction-fraction
  reading (Figs. 10/11; see DESIGN.md section 3);
* :func:`requests_per_cycle` — Eq. 2 (Fig. 9);
* wire-traffic helpers for bandwidth saving (Fig. 14).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.packet import CONTROL_BYTES_PER_ACCESS, CoalescedRequest

#: HMC 2.1 request payload sizes (B) the protocol supports.
HMC_REQUEST_SIZES = (16, 32, 48, 64, 80, 96, 112, 128, 256)


def bandwidth_efficiency(request_bytes: int, overhead_bytes: int = CONTROL_BYTES_PER_ACCESS) -> float:
    """Eq. 1: payload fraction of a request/response exchange.

    >>> round(bandwidth_efficiency(16), 4)
    0.3333
    >>> round(bandwidth_efficiency(256), 4)
    0.8889
    """
    if request_bytes <= 0:
        raise ValueError("request size must be positive")
    if overhead_bytes < 0:
        raise ValueError("overhead must be non-negative")
    return request_bytes / (request_bytes + overhead_bytes)


def control_overhead_fraction(request_bytes: int, overhead_bytes: int = CONTROL_BYTES_PER_ACCESS) -> float:
    """1 - Eq. 1: the control fraction plotted in Fig. 3."""
    return 1.0 - bandwidth_efficiency(request_bytes, overhead_bytes)


def coalescing_efficiency(raw_requests: int, coalesced_requests: int) -> float:
    """Eq. 3 (reduction reading): fraction of raw requests eliminated."""
    if raw_requests < 0 or coalesced_requests < 0:
        raise ValueError("counts must be non-negative")
    if coalesced_requests > raw_requests:
        raise ValueError("cannot emit more packets than raw requests")
    if raw_requests == 0:
        return 0.0
    return 1.0 - coalesced_requests / raw_requests


def requests_per_cycle(
    ipc: float, rpi: float, cores: int, mem_access_rate: float
) -> float:
    """Eq. 2: raw requests per cycle offered to the MAC."""
    if min(ipc, rpi, mem_access_rate) <= 0 or cores < 1:
        raise ValueError("all factors must be positive")
    return ipc * rpi * cores * mem_access_rate


def mean_bandwidth_efficiency(packets: Sequence[CoalescedRequest]) -> float:
    """Traffic-weighted Eq. 1 over a packet stream (Fig. 13)."""
    payload = sum(p.size for p in packets)
    wire = payload + CONTROL_BYTES_PER_ACCESS * len(packets)
    return payload / wire if wire else 0.0


def wire_bytes(packets: Sequence[CoalescedRequest]) -> int:
    """Total link bytes: payload + 32 B control per packet."""
    return sum(p.size for p in packets) + CONTROL_BYTES_PER_ACCESS * len(packets)


def bandwidth_saved(
    raw_packets: Sequence[CoalescedRequest], coalesced: Sequence[CoalescedRequest]
) -> int:
    """Wire bytes saved by coalescing (Fig. 14); negative = regression."""
    return wire_bytes(raw_packets) - wire_bytes(coalesced)


def size_histogram(packets: Sequence[CoalescedRequest]) -> Dict[int, int]:
    hist: Dict[int, int] = {}
    for p in packets:
        hist[p.size] = hist.get(p.size, 0) + 1
    return hist


def speedup(latency_without: float, latency_with: float) -> float:
    """Fig. 17's gain metric: fraction by which latency is reduced."""
    if latency_without <= 0:
        raise ValueError("baseline latency must be positive")
    return 1.0 - latency_with / latency_without
