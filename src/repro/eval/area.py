"""Analytic area/space model of the MAC (paper sections 4.4 and 5.3.3).

Reproduces Fig. 16 and the 2062 B total of the text: the ARQ occupies
``entries x 64 B``; the request builder adds a fixed 14 B (16-bit FLIT
map latch + 12 B FLIT table); per-entry comparators and the 4 OR gates
are counted as logic, not memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MACConfig
from repro.core.request import TARGET_BYTES


@dataclass(frozen=True, slots=True)
class AreaReport:
    """Space breakdown of one MAC instance."""

    arq_entries: int
    arq_bytes: int
    builder_bytes: int
    comparators: int
    or_gates: int

    @property
    def total_bytes(self) -> int:
        return self.arq_bytes + self.builder_bytes


def arq_bytes(entries: int, entry_bytes: int = 64) -> int:
    """ARQ storage (Fig. 16): 8 entries -> 512 B ... 256 -> 16 KB."""
    if entries < 1:
        raise ValueError("entries must be positive")
    return entries * entry_bytes


def builder_bytes(config: MACConfig | None = None) -> int:
    """Fixed request-builder state: FLIT-map latch + FLIT table = 14 B."""
    cfg = config or MACConfig()
    flit_map_bytes = cfg.flits_per_row // 8  # 16 bits -> 2 B
    flit_table_bytes = (1 << cfg.groups_per_row) * 6 // 8  # 16 entries -> 12 B
    return flit_map_bytes + flit_table_bytes


def mac_area(config: MACConfig | None = None) -> AreaReport:
    """Full area report; the paper's configuration totals 2062 B."""
    cfg = config or MACConfig()
    return AreaReport(
        arq_entries=cfg.arq_entries,
        arq_bytes=arq_bytes(cfg.arq_entries, cfg.arq_entry_bytes),
        builder_bytes=builder_bytes(cfg),
        comparators=cfg.arq_entries,
        or_gates=cfg.groups_per_row,
    )


def entry_capacity(config: MACConfig | None = None) -> int:
    """Targets one entry can hold (section 5.3.3: (64-10)/4.5 = 12)."""
    cfg = config or MACConfig()
    return cfg.target_capacity


def target_bytes_used(avg_targets: float) -> float:
    """Average target storage per entry given Fig. 15's counts."""
    if avg_targets < 0:
        raise ValueError("target count must be non-negative")
    return avg_targets * TARGET_BYTES
